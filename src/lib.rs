//! # IANUS — NPU-PIM Unified Memory System (reproduction)
//!
//! A from-scratch Rust reproduction of *"IANUS: Integrated Accelerator
//! based on NPU-PIM Unified Memory System"* (Seo et al., ASPLOS 2024):
//! a command-level simulator of a 4-core NPU whose GDDR6-AiM main memory
//! doubles as an in-memory GEMV engine, together with the paper's
//! **PIM Access Scheduling** compiler, analytical A100/DFX baselines, an
//! energy model, a benchmark harness regenerating every figure of the
//! paper's evaluation — and, above the device models, a unified serving
//! layer: every platform implements the [`Backend`](prelude::Backend)
//! trait and plugs into the cluster-scale
//! [`ServingSim`](prelude::ServingSim) engine.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a stable module name.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `ianus-sim` | time base, event queue, resources |
//! | [`dram`] | `ianus-dram` | GDDR6 timing, Figure 5 address mapping |
//! | [`pim`] | `ianus-pim` | AiM device: commands, tiling, functional BF16 |
//! | [`noc`] | `ianus-noc` | all-to-all crossbar, PIM command broadcast |
//! | [`npu`] | `ianus-npu` | matrix/vector units, DMA, command scheduler |
//! | [`model`] | `ianus-model` | Table 3/4 model zoo, stages, shapes |
//! | [`system`] | `ianus-core` | IANUS system, PAS, energy, multi-device, `Backend`, `ServingSim` |
//! | [`baselines`] | `ianus-baselines` | A100 + DFX analytical models (as `Backend`s) |
//!
//! # Quickstart
//!
//! Every device model — the IANUS simulator, its NPU-MEM/partitioned
//! ablations, PCIe-ganged device groups, and both analytical baselines —
//! serves requests through one trait:
//!
//! ```
//! use ianus::prelude::*;
//!
//! let model = ModelConfig::gpt2_m();
//! let req = RequestShape::new(128, 8);
//! let mut platforms: Vec<Box<dyn Backend>> = vec![
//!     Box::new(IanusSystem::new(SystemConfig::ianus())),
//!     Box::new(IanusSystem::new(SystemConfig::npu_mem())),
//!     Box::new(GpuModel::a100()),
//!     Box::new(DfxModel::four_fpga()),
//! ];
//! let mut lat = Vec::new();
//! for p in &mut platforms {
//!     assert!(p.fits(&model).is_ok());
//!     lat.push(p.service_time(&model, req));
//! }
//! // IANUS beats its NPU-MEM ablation and both baselines.
//! assert!(lat[0] < lat[1] && lat[0] < lat[2] && lat[0] < lat[3]);
//! ```
//!
//! And clusters of backends serve seeded Poisson traffic through
//! [`ServingSim`](prelude::ServingSim), at request granularity (the
//! paper's batch-1 interactive regime) or with iteration-level
//! continuous batching (KV-gated admission into a running decode
//! batch):
//!
//! ```
//! use ianus::prelude::*;
//!
//! let report = ServingSim::new(ServingConfig::interactive(8.0, 200))
//!     .cluster(2, |_| IanusSystem::new(SystemConfig::ianus()))
//!     .dispatch(DispatchPolicy::LeastLoaded)
//!     .run(&ModelConfig::gpt2_m());
//! assert_eq!(report.completed, 200);
//! assert_eq!(report.per_replica.len(), 2);
//! assert!(report.stable());
//!
//! let batched = ServingSim::new(ServingConfig::interactive(8.0, 200))
//!     .cluster(2, |_| IanusSystem::new(SystemConfig::ianus()))
//!     .scheduling(Scheduling::iteration(4))
//!     .run(&ModelConfig::gpt2_m());
//! assert_eq!(batched.completed, 200);
//! assert!(batched.ttft.p50 <= batched.sojourn.p50);
//! ```
//!
//! Which mode wins is the paper's Section 6.1 argument made
//! quantitative. IANUS's PIM GEMVs make *non-batched* decode
//! bandwidth-efficient, so batch-1 serving already saturates the device
//! — batching only stretches inter-token latency. A weight-streaming
//! GPU is the opposite: batched decode amortizes its weight traffic, so
//! continuous batching multiplies its sustainable rate at the cost of
//! per-token latency. The pre-0.2 `system::serving::simulate` shim has
//! been removed; build a `ServingSim` directly.
//!
//! Iteration-level scheduling further supports **chunked prefill**
//! (long prompts interleave with resident decodes one chunk per
//! iteration instead of stalling them whole) and **KV-pressure
//! preemption** (optimistic admission against current KV lengths, with
//! eviction to a swap queue priced by `Backend::kv_transfer_time`).
//! *Which* request is admitted next, *which* sequence is evicted, and
//! *which* swapped sequence returns first are pluggable: a
//! [`SchedulerPolicy`](prelude::SchedulerPolicy) bundles an admission,
//! an eviction, and a re-admission policy trait (defaults: FCFS,
//! lowest-[`Priority`](prelude::Priority)/youngest, FIFO — reproducing
//! the historical scheduler bit-identically), request classes can carry
//! an [`Slo`](prelude::Slo) scored as `slo_attainment`/`goodput_rps`,
//! and `examples/policy_sweep.rs` compares the eviction policies under
//! identical KV pressure. KV accounting itself is switchable:
//! [`ServingSim::kv_block`](prelude::ServingSim::kv_block) replaces the
//! contiguous reservation arithmetic with a **paged block allocator**
//! ([`serving::kv`](system::serving::kv)) that shares class-wide prompt
//! prefixes copy-on-write across requests — a cache hit skips the
//! shared prefill and lowers TTFT, and evictions move only unshared
//! blocks. See [`Scheduling::IterationLevel`](prelude::Scheduling),
//! [`serving::policy`](system::serving::policy), and `ARCHITECTURE.md`
//! at the repo root for the full map.

pub use ianus_baselines as baselines;
pub use ianus_core as system;
pub use ianus_dram as dram;
pub use ianus_model as model;
pub use ianus_noc as noc;
pub use ianus_npu as npu;
pub use ianus_pim as pim;
pub use ianus_sim as sim;

/// The types most programs need.
pub mod prelude {
    pub use ianus_baselines::{DfxModel, GpuModel};
    pub use ianus_core::backend::Backend;
    pub use ianus_core::capacity::CapacityError;
    pub use ianus_core::multi_device::DeviceGroup;
    pub use ianus_core::pas::{AttnMapping, FcMapping, PasPolicy, Schedule};
    pub use ianus_core::serving::kv::{BlockAllocator, BlockTable, PagedKv, PrefixCache};
    pub use ianus_core::serving::policy::{
        CheapestEviction, DeadlineAdmission, DeadlineReadmission, FcfsAdmission, FifoReadmission,
        FreestKvMigration, LargestKv, LeastLoadedMigration, LeastProgress, LowestPriorityYoungest,
        PriorityAdmission, ShortestPromptAdmission, WidestSubtreeAdmission,
    };
    pub use ianus_core::serving::{
        AdmissionPolicy, ArrivalDraw, ArrivalProcess, ArrivalSpec, CoreMode, DisaggregationConfig,
        DispatchPolicy, DiurnalArrivals, EvictionMechanism, EvictionPolicy, LatencyPercentiles,
        MigrationPolicy, MmppArrivals, MultiTenantArrivals, PoissonArrivals, Priority,
        ReadmissionPolicy, ReplicaRole, RequestClass, SchedulerPolicy, Scheduling, ServingConfig,
        ServingReport, ServingSim, Slo, TenantReport, TenantSpec, WorkflowError, WorkflowNode,
        WorkflowTemplate,
    };
    pub use ianus_core::{
        EnergyModel, IanusSystem, MemoryPolicy, OpClass, RunReport, StageReport, SystemConfig,
    };
    pub use ianus_model::{ModelConfig, RequestShape, Stage};
    pub use ianus_sim::{Duration, Time};
}
