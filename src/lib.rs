//! # IANUS — NPU-PIM Unified Memory System (reproduction)
//!
//! A from-scratch Rust reproduction of *"IANUS: Integrated Accelerator
//! based on NPU-PIM Unified Memory System"* (Seo et al., ASPLOS 2024):
//! a command-level simulator of a 4-core NPU whose GDDR6-AiM main memory
//! doubles as an in-memory GEMV engine, together with the paper's
//! **PIM Access Scheduling** compiler, analytical A100/DFX baselines, an
//! energy model, and a benchmark harness regenerating every figure of the
//! paper's evaluation.
//!
//! This crate is a facade: each subsystem lives in its own crate and is
//! re-exported here under a stable module name.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`sim`] | `ianus-sim` | time base, event queue, resources |
//! | [`dram`] | `ianus-dram` | GDDR6 timing, Figure 5 address mapping |
//! | [`pim`] | `ianus-pim` | AiM device: commands, tiling, functional BF16 |
//! | [`noc`] | `ianus-noc` | all-to-all crossbar, PIM command broadcast |
//! | [`npu`] | `ianus-npu` | matrix/vector units, DMA, command scheduler |
//! | [`model`] | `ianus-model` | Table 3/4 model zoo, stages, shapes |
//! | [`system`] | `ianus-core` | IANUS system, PAS, energy, multi-device |
//! | [`baselines`] | `ianus-baselines` | A100 + DFX analytical models |
//!
//! # Quickstart
//!
//! ```
//! use ianus::prelude::*;
//!
//! // Simulate GPT-2 M answering a 128-token prompt with 8 output tokens
//! // on IANUS and on the NPU-MEM baseline (same NPU, plain GDDR6).
//! let req = RequestShape::new(128, 8);
//! let model = ModelConfig::gpt2_m();
//! let mut ianus = IanusSystem::new(SystemConfig::ianus());
//! let mut npu_mem = IanusSystem::new(SystemConfig::npu_mem());
//! let fast = ianus.run_request(&model, req);
//! let slow = npu_mem.run_request(&model, req);
//! assert!(slow.total > fast.total);
//! ```

pub use ianus_baselines as baselines;
pub use ianus_core as system;
pub use ianus_dram as dram;
pub use ianus_model as model;
pub use ianus_noc as noc;
pub use ianus_npu as npu;
pub use ianus_pim as pim;
pub use ianus_sim as sim;

/// The types most programs need.
pub mod prelude {
    pub use ianus_baselines::{DfxModel, GpuModel};
    pub use ianus_core::multi_device::DeviceGroup;
    pub use ianus_core::pas::{AttnMapping, FcMapping, PasPolicy, Schedule};
    pub use ianus_core::{
        EnergyModel, IanusSystem, MemoryPolicy, OpClass, RunReport, StageReport, SystemConfig,
    };
    pub use ianus_model::{ModelConfig, RequestShape, Stage};
    pub use ianus_sim::{Duration, Time};
}
