//! `ianus` — command-line front end to the simulator.
//!
//! ```text
//! ianus [--model NAME] [--input N] [--output N] [--system ianus|npu-mem|partitioned]
//!       [--devices D] [--fc adaptive|mu|pim] [--attn mu|pim] [--schedule overlap|naive]
//!       [--compare]
//! ianus --serve [--model NAME] [--system ...] [--devices D] [--replicas K]
//!       [--rate R] [--requests N]
//!       [--mix interactive|decode-heavy|long-prompt|shared-prefix|custom
//!             |agent-chain|tool-fanout|speculative]
//!       [--scheduling request|iteration] [--max-batch B]
//!       [--prefill-chunk N] [--preempt] [--kv-block N]
//!       [--admission fcfs|priority|shortest-prompt|edf|widest-subtree]
//!       [--eviction lowest-priority|largest-kv|least-progress|cheapest]
//!       [--readmission fifo|deadline]
//!       [--eviction-mechanism swap|recompute|cheapest]
//!       [--host-kv-gb G] [--overlap-dma]
//!       [--disaggregate P:D] [--prefill-system ianus|npu-mem|partitioned|a100|dfx]
//!       [--migration least-loaded|freest-kv]
//!       [--slo-ttft-ms MS] [--slo-itl-ms MS]
//!       [--compare] [--compare-policies]
//! ```
//!
//! `--slo-ttft-ms`/`--slo-itl-ms` attach an SLO to the mix's
//! interactive-tier classes (batch-tier classes carry no target), and
//! the report then shows SLO attainment and goodput. `--compare-policies`
//! replays the configured scenario under every eviction policy
//! (forcing iteration-level preemption on if needed) and reports which
//! one minimizes interactive SLO violations.
//!
//! `--host-kv-gb` bounds the host DRAM available for swapped KV per
//! replica (0 = unbounded; default: the backend's own budget, 32 GiB
//! for IANUS devices) — swap-outs past the pool fall back to
//! recompute-based eviction. `--eviction-mechanism` picks how victims
//! leave device memory (swap to host, drop-and-re-prefill, or
//! per-victim cheapest), and `--overlap-dma` runs swap traffic on a
//! per-replica DMA channel that overlaps decode instead of stalling
//! the batch.
//!
//! `--disaggregate P:D` replaces `--replicas` with a disaggregated
//! cluster: P prefill-only replicas hand every sequence off to one of
//! D decode-only replicas the moment its prefill completes, the KV
//! moving over the replicas' DMA lanes at each side's
//! `kv_transfer_time` price. The prefill side defaults to the
//! configured `--system`; `--prefill-system` swaps in a different
//! backend (e.g. `a100` for the paper's GPU-prefill/PIM-decode
//! split), and `--migration` picks the decode-replica selection
//! policy. Disaggregation requires iteration-level scheduling and
//! forces it on when needed; the report grows migration counts, the
//! migration stall, and a per-replica role breakdown.
//!
//! `--kv-block N` switches iteration-level KV accounting to **paged
//! blocks** of N tokens (0, the default, keeps the legacy contiguous
//! reservations). Paged mode shares class-wide prompt prefixes
//! copy-on-write — `--mix shared-prefix` is the mix built for it (two
//! (512, 512) tiers, each with a 384-token common prefix) — and the
//! report grows prefix-cache hit counts, cache-hit vs cold TTFT, and
//! block-fragmentation lines.
//!
//! The workflow mixes (`agent-chain`, `tool-fanout`, `speculative`)
//! serve DAGs of requests instead of independent ones: each "request"
//! is a workflow *instance*, a node becomes eligible when its last
//! parent completes, and under `--kv-block` children admit directly on
//! their parents' published KV blocks. They require (and force)
//! iteration-level scheduling; `--admission widest-subtree` prioritizes
//! nodes gating the most downstream work. The report grows workflow
//! latency percentiles, deadline attainment, cancelled-node counts
//! (speculative races), and the inherited-prefix ratio.
//!
//! Examples:
//!
//! ```text
//! cargo run --release --bin ianus -- --model gpt2-xl --input 128 --output 64
//! cargo run --release --bin ianus -- --model gpt-6.7b --devices 2 --compare
//! cargo run --release --bin ianus -- --serve --model gpt2-m --replicas 2 \
//!     --rate 8 --mix decode-heavy --scheduling iteration --max-batch 8
//! cargo run --release --bin ianus -- --serve --model gpt2-m --mix long-prompt \
//!     --scheduling iteration --max-batch 8 --prefill-chunk 128 --preempt \
//!     --slo-ttft-ms 2000 --slo-itl-ms 40
//! cargo run --release --bin ianus -- --serve --model gpt2-xl --mix custom \
//!     --input 512 --output 512 --scheduling iteration --max-batch 32 \
//!     --prefill-chunk 128 --preempt --slo-ttft-ms 60000 --slo-itl-ms 150 \
//!     --compare-policies
//! cargo run --release --bin ianus -- --serve --model gpt2-xl --mix shared-prefix \
//!     --rate 0.3 --requests 60 --scheduling iteration --max-batch 8 \
//!     --prefill-chunk 128 --preempt --kv-block 64
//! cargo run --release --bin ianus -- --serve --model gpt2-xl --mix custom \
//!     --input 896 --output 128 --rate 8 --disaggregate 1:6 --prefill-system a100 \
//!     --max-batch 8 --overlap-dma --slo-ttft-ms 100 --slo-itl-ms 50
//! cargo run --release --bin ianus -- --serve --model gpt2-xl --mix agent-chain \
//!     --rate 2 --requests 50 --max-batch 8 --prefill-chunk 128 --preempt \
//!     --kv-block 64 --admission widest-subtree
//! cargo run --release --bin ianus -- --serve --model gpt2-m --compare
//! ```

use ianus::prelude::*;

#[derive(Clone, Copy, PartialEq, Eq)]
enum MixKind {
    Interactive,
    DecodeHeavy,
    LongPrompt,
    /// Two (512, 512) tiers sharing a 384-token class prefix — the mix
    /// paged KV (`--kv-block`) and its copy-on-write prefix cache are
    /// built for; heavy enough to preempt under load.
    SharedPrefix,
    /// A 50/50 interactive/batch-tier mix of one `--input`/`--output`
    /// shape — the way to build KV pressure from the command line
    /// (e.g. `--mix custom --input 512 --output 512` on GPT-2 XL).
    Custom,
    /// Agentic workflow mixes (PR 9): each "request" is a DAG instance
    /// of the named built-in template; children admit on their parents'
    /// published KV under `--kv-block`. Forces iteration-level
    /// scheduling.
    AgentChain,
    ToolFanout,
    Speculative,
}

impl MixKind {
    fn by_name(name: &str) -> Option<MixKind> {
        Some(match name {
            "interactive" => MixKind::Interactive,
            "decode-heavy" => MixKind::DecodeHeavy,
            "long-prompt" => MixKind::LongPrompt,
            "shared-prefix" => MixKind::SharedPrefix,
            "custom" => MixKind::Custom,
            "agent-chain" => MixKind::AgentChain,
            "tool-fanout" => MixKind::ToolFanout,
            "speculative" => MixKind::Speculative,
            _ => return None,
        })
    }

    /// A workflow mix drives the engine's DAG layer instead of a flat
    /// class mix (and requires iteration-level scheduling).
    fn is_workflow(self) -> bool {
        matches!(
            self,
            MixKind::AgentChain | MixKind::ToolFanout | MixKind::Speculative
        )
    }
}

const MIXES: [&str; 8] = [
    "interactive",
    "decode-heavy",
    "long-prompt",
    "shared-prefix",
    "custom",
    "agent-chain",
    "tool-fanout",
    "speculative",
];
const ADMISSIONS: [&str; 5] = [
    "fcfs",
    "priority",
    "shortest-prompt",
    "edf",
    "widest-subtree",
];
const EVICTIONS: [&str; 4] = [
    "lowest-priority",
    "largest-kv",
    "least-progress",
    "cheapest",
];
const READMISSIONS: [&str; 2] = ["fifo", "deadline"];
const MECHANISMS: [&str; 3] = ["swap", "recompute", "cheapest"];
const MIGRATIONS: [&str; 2] = ["least-loaded", "freest-kv"];
const ARRIVAL_KINDS: [&str; 4] = ["poisson", "diurnal", "mmpp", "multi-tenant"];
const PREFILL_SYSTEMS: [&str; 5] = ["ianus", "npu-mem", "partitioned", "a100", "dfx"];

/// Resolves a flag value against its name table (the single source of
/// the valid policy names). Pure, so the parser tests can exercise it.
fn resolve(value: &str, table: &'static [&'static str]) -> Option<&'static str> {
    table.iter().find(|n| **n == value).copied()
}

/// [`resolve`], rejecting unknown names at parse time with an error
/// that lists the valid options for the offending flag.
fn intern(flag: &str, value: String, table: &'static [&'static str]) -> &'static str {
    resolve(&value, table).unwrap_or_else(|| {
        eprintln!(
            "unknown {flag} value {value:?}; valid options: {}",
            table.join(", ")
        );
        usage()
    })
}

/// Policy flags as parsed names; `SchedulerPolicy` is not `Clone`, so
/// fresh bundles are built from these on demand.
#[derive(Clone, Copy)]
struct PolicyNames {
    admission: &'static str,
    eviction: &'static str,
    readmission: &'static str,
    mechanism: &'static str,
}

impl PolicyNames {
    fn bundle(&self) -> SchedulerPolicy {
        bundle_of(
            self.admission,
            self.eviction,
            self.readmission,
            self.mechanism,
        )
    }
}

fn bundle_of(
    admission: &str,
    eviction: &str,
    readmission: &str,
    mechanism: &str,
) -> SchedulerPolicy {
    // Names were interned against the tables at parse time.
    let mut p = SchedulerPolicy::default();
    p = match admission {
        "fcfs" => p.with_admission(FcfsAdmission),
        "priority" => p.with_admission(PriorityAdmission),
        "shortest-prompt" => p.with_admission(ShortestPromptAdmission),
        "edf" => p.with_admission(DeadlineAdmission),
        "widest-subtree" => p.with_admission(WidestSubtreeAdmission),
        _ => unreachable!("interned admission name"),
    };
    p = match eviction {
        "lowest-priority" => p.with_eviction(LowestPriorityYoungest),
        "largest-kv" => p.with_eviction(LargestKv),
        "least-progress" => p.with_eviction(LeastProgress),
        "cheapest" => p.with_eviction(CheapestEviction),
        _ => unreachable!("interned eviction name"),
    };
    p = match readmission {
        "fifo" => p.with_readmission(FifoReadmission),
        "deadline" => p.with_readmission(DeadlineReadmission),
        _ => unreachable!("interned readmission name"),
    };
    match mechanism {
        "swap" => p.with_mechanism(EvictionMechanism::Swap),
        "recompute" => p.with_mechanism(EvictionMechanism::Recompute),
        "cheapest" => p.with_mechanism(EvictionMechanism::Cheapest),
        _ => unreachable!("interned mechanism name"),
    }
}

struct ServeArgs {
    replicas: usize,
    rate: f64,
    requests: u64,
    mix: MixKind,
    scheduling: Scheduling,
    /// The raw `--max-batch`/`--prefill-chunk` values, kept separately
    /// so `--compare-policies` honors them even when `--scheduling
    /// iteration` was not passed (its fallback must not silently drop
    /// configured knobs).
    max_batch: u32,
    prefill_chunk: Option<u64>,
    policy: PolicyNames,
    slo: Option<Slo>,
    compare_policies: bool,
    /// `--host-kv-gb`: `Some(None)` forces an unbounded pool (0),
    /// `Some(Some(b))` a finite one; `None` keeps the backend default.
    host_kv: Option<Option<u64>>,
    overlap_dma: bool,
    /// `--kv-block`: paged-KV block size in tokens (0 = contiguous).
    kv_block: u64,
    /// `--disaggregate P:D`: prefill/decode pool sizes (replaces
    /// `--replicas`).
    disaggregate: Option<(usize, usize)>,
    /// `--prefill-system`: backend of the prefill pool (`None` = the
    /// configured `--system`).
    prefill_system: Option<&'static str>,
    /// `--migration`: decode-replica selection policy at handoff.
    migration: &'static str,
    /// `--arrivals`: arrival-process shape (see [`ArrivalSpec`]).
    arrivals: &'static str,
    /// `--burst-factor`: burst-to-calm rate ratio for `diurnal`/`mmpp`.
    burst_factor: f64,
    /// `--tenants`: tenant count for `multi-tenant`.
    tenants: u32,
}

struct Args {
    model: ModelConfig,
    request: RequestShape,
    system: SystemConfig,
    devices: u32,
    compare: bool,
    serve: Option<ServeArgs>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ianus [--model NAME] [--input N] [--output N]\n\
         \x20            [--system ianus|npu-mem|partitioned] [--devices D]\n\
         \x20            [--fc adaptive|mu|pim] [--attn mu|pim] [--schedule overlap|naive]\n\
         \x20            [--compare]\n\
         \x20      ianus --serve [--model NAME] [--system ...] [--devices D]\n\
         \x20            [--replicas K] [--rate R] [--requests N]\n\
         \x20            [--mix interactive|decode-heavy|long-prompt|shared-prefix|custom\n\
         \x20                  |agent-chain|tool-fanout|speculative]\n\
         \x20            [--scheduling request|iteration] [--max-batch B]\n\
         \x20            [--prefill-chunk N] [--preempt] [--kv-block N]\n\
         \x20            [--admission fcfs|priority|shortest-prompt|edf|widest-subtree]\n\
         \x20            [--eviction lowest-priority|largest-kv|least-progress|cheapest]\n\
         \x20            [--readmission fifo|deadline]\n\
         \x20            [--eviction-mechanism swap|recompute|cheapest]\n\
         \x20            [--host-kv-gb G] [--overlap-dma]\n\
         \x20            [--disaggregate P:D] [--prefill-system ianus|npu-mem|partitioned|a100|dfx]\n\
         \x20            [--migration least-loaded|freest-kv]\n\
         \x20            [--arrivals poisson|diurnal|mmpp|multi-tenant]\n\
         \x20            [--burst-factor F] [--tenants K]\n\
         \x20            [--slo-ttft-ms MS] [--slo-itl-ms MS]\n\
         \x20            [--compare] [--compare-policies]\n\
         models: {}",
        ModelConfig::all()
            .iter()
            .map(|m| m.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2)
}

fn parse() -> Args {
    let mut model = ModelConfig::gpt2_xl();
    let mut input = 128u64;
    let mut output = 64u64;
    let mut system = SystemConfig::ianus();
    let mut pas = PasPolicy::ianus();
    let mut devices = 1u32;
    let mut compare = false;
    let mut serve = false;
    let mut replicas = 1usize;
    let mut rate = 4.0f64;
    let mut requests = 400u64;
    let mut mix = MixKind::Interactive;
    let mut iteration = false;
    let mut max_batch = 8u32;
    let mut prefill_chunk = 0u64; // 0 = monolithic prefill
    let mut preempt = false;
    let mut admission = "fcfs";
    let mut eviction = "lowest-priority";
    let mut readmission = "fifo";
    let mut mechanism = "swap";
    let mut slo_ttft_ms = 0u64; // 0 = no target
    let mut slo_itl_ms = 0u64;
    let mut compare_policies = false;
    let mut host_kv: Option<Option<u64>> = None;
    let mut overlap_dma = false;
    let mut kv_block = 0u64; // 0 = contiguous KV accounting
    let mut disaggregate: Option<(usize, usize)> = None;
    let mut prefill_system: Option<&'static str> = None;
    let mut migration = "least-loaded";
    let mut arrivals = "poisson";
    let mut burst_factor = 4.0f64;
    let mut tenants = 2u32;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--serve" => serve = true,
            "--replicas" => replicas = value().parse().unwrap_or_else(|_| usage()),
            "--rate" => rate = value().parse().unwrap_or_else(|_| usage()),
            "--requests" => requests = value().parse().unwrap_or_else(|_| usage()),
            "--max-batch" => max_batch = value().parse().unwrap_or_else(|_| usage()),
            "--prefill-chunk" => prefill_chunk = value().parse().unwrap_or_else(|_| usage()),
            "--preempt" => preempt = true,
            "--admission" => admission = intern("--admission", value(), &ADMISSIONS),
            "--eviction" => eviction = intern("--eviction", value(), &EVICTIONS),
            "--readmission" => readmission = intern("--readmission", value(), &READMISSIONS),
            "--eviction-mechanism" => {
                mechanism = intern("--eviction-mechanism", value(), &MECHANISMS)
            }
            "--host-kv-gb" => {
                let gb: u64 = value().parse().unwrap_or_else(|_| usage());
                // Checked: `gb << 30` would silently wrap absurd
                // values (≥ 2^34 GiB) to a tiny or zero pool.
                let bytes = gb.checked_mul(1 << 30).unwrap_or_else(|| usage());
                host_kv = Some((gb > 0).then_some(bytes));
            }
            "--overlap-dma" => overlap_dma = true,
            "--kv-block" => kv_block = value().parse().unwrap_or_else(|_| usage()),
            "--disaggregate" => {
                let v = value();
                let (p, d) = v.split_once(':').unwrap_or_else(|| usage());
                let p: usize = p.parse().unwrap_or_else(|_| usage());
                let d: usize = d.parse().unwrap_or_else(|_| usage());
                if p == 0 || d == 0 {
                    usage();
                }
                disaggregate = Some((p, d));
            }
            "--prefill-system" => {
                prefill_system = Some(intern("--prefill-system", value(), &PREFILL_SYSTEMS))
            }
            "--migration" => migration = intern("--migration", value(), &MIGRATIONS),
            "--arrivals" => arrivals = intern("--arrivals", value(), &ARRIVAL_KINDS),
            "--burst-factor" => {
                burst_factor = value().parse().unwrap_or_else(|_| usage());
                if burst_factor <= 1.0 {
                    eprintln!("--burst-factor must be above 1");
                    usage()
                }
            }
            "--tenants" => {
                tenants = value().parse().unwrap_or_else(|_| usage());
                if tenants == 0 {
                    eprintln!("--tenants must be at least 1");
                    usage()
                }
            }
            "--slo-ttft-ms" => slo_ttft_ms = value().parse().unwrap_or_else(|_| usage()),
            "--slo-itl-ms" => slo_itl_ms = value().parse().unwrap_or_else(|_| usage()),
            "--compare-policies" => compare_policies = true,
            "--mix" => {
                // Interned against MIXES for the same unknown-value
                // error the policy flags give.
                mix = MixKind::by_name(intern("--mix", value(), &MIXES))
                    .expect("MIXES and MixKind::by_name cover the same names");
            }
            "--scheduling" => {
                iteration = match value().as_str() {
                    "request" => false,
                    "iteration" => true,
                    _ => usage(),
                }
            }
            "--model" => {
                let name = value();
                model = ModelConfig::by_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown model {name:?}");
                    usage()
                });
            }
            "--input" => input = value().parse().unwrap_or_else(|_| usage()),
            "--output" => output = value().parse().unwrap_or_else(|_| usage()),
            "--devices" => devices = value().parse().unwrap_or_else(|_| usage()),
            "--system" => {
                system = match value().as_str() {
                    "ianus" => SystemConfig::ianus(),
                    "npu-mem" => SystemConfig::npu_mem(),
                    "partitioned" => SystemConfig::partitioned(),
                    _ => usage(),
                }
            }
            "--fc" => {
                pas.fc = match value().as_str() {
                    "adaptive" => FcMapping::Adaptive,
                    "mu" => FcMapping::MatrixUnit,
                    "pim" => FcMapping::Pim,
                    _ => usage(),
                }
            }
            "--attn" => {
                pas.attention = match value().as_str() {
                    "mu" => AttnMapping::MatrixUnit,
                    "pim" => AttnMapping::Pim,
                    _ => usage(),
                }
            }
            "--schedule" => {
                pas.schedule = match value().as_str() {
                    "overlap" => Schedule::Overlapped,
                    "naive" => Schedule::Naive,
                    _ => usage(),
                }
            }
            "--compare" => compare = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    let slo = (slo_ttft_ms > 0 || slo_itl_ms > 0).then(|| {
        // An unset half defaults to a day-long target no completed
        // request misses (effectively "only the other half is scored").
        Slo::new(
            if slo_ttft_ms > 0 {
                Duration::from_ms(slo_ttft_ms)
            } else {
                Duration::from_secs_f64(86_400.0)
            },
            if slo_itl_ms > 0 {
                Duration::from_ms(slo_itl_ms)
            } else {
                Duration::from_secs_f64(86_400.0)
            },
        )
    });
    Args {
        model,
        request: RequestShape::new(input, output),
        system: system.with_pas(pas).with_devices(devices),
        devices,
        compare,
        serve: serve.then_some(ServeArgs {
            replicas,
            rate,
            requests,
            mix,
            scheduling: if iteration {
                Scheduling::IterationLevel {
                    max_batch,
                    prefill_chunk: (prefill_chunk > 0).then_some(prefill_chunk),
                    preempt,
                }
            } else {
                Scheduling::RequestLevel
            },
            max_batch,
            prefill_chunk: (prefill_chunk > 0).then_some(prefill_chunk),
            policy: PolicyNames {
                admission,
                eviction,
                readmission,
                mechanism,
            },
            slo,
            compare_policies,
            host_kv,
            overlap_dma,
            kv_block,
            disaggregate,
            prefill_system,
            migration,
            arrivals,
            burst_factor,
            tenants,
        }),
    }
}

/// The configured mix, with any `--slo-*` target attached to its
/// interactive-tier classes (batch-tier classes carry no target).
fn serving_config(serve: &ServeArgs, shape: RequestShape) -> ServingConfig {
    let mut cfg = match serve.mix {
        MixKind::Interactive => ServingConfig::interactive(serve.rate, serve.requests),
        MixKind::DecodeHeavy => ServingConfig::decode_heavy(serve.rate, serve.requests),
        MixKind::LongPrompt => ServingConfig::long_prompt(serve.rate, serve.requests),
        MixKind::SharedPrefix => ServingConfig::shared_prefix(serve.rate, serve.requests),
        MixKind::AgentChain => ServingConfig::workflow_mix(
            serve.rate,
            serve.requests,
            vec![WorkflowTemplate::agent_chain()],
        ),
        MixKind::ToolFanout => ServingConfig::workflow_mix(
            serve.rate,
            serve.requests,
            vec![WorkflowTemplate::tool_fanout()],
        ),
        MixKind::Speculative => ServingConfig::workflow_mix(
            serve.rate,
            serve.requests,
            vec![WorkflowTemplate::speculative()],
        ),
        MixKind::Custom => ServingConfig {
            arrival_rate_hz: serve.rate,
            requests: serve.requests,
            seed: 0x5EED,
            mix: vec![
                RequestClass::new(shape, 0.5),
                RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
            ],
            workflows: vec![],
            arrivals: Default::default(),
        },
    };
    if let Some(slo) = serve.slo {
        for class in &mut cfg.mix {
            if class.priority == Priority::Interactive {
                *class = class.with_slo(slo);
            }
        }
    }
    cfg.arrivals(match serve.arrivals {
        "poisson" => ArrivalSpec::Poisson,
        "diurnal" => {
            // Amplitude so the peak-to-trough rate ratio equals the
            // burst factor: (1+a)/(1-a) = F. Period scales with the
            // rate so a run of a few hundred requests sees whole
            // cycles at any --rate.
            let amplitude = (serve.burst_factor - 1.0) / (serve.burst_factor + 1.0);
            ArrivalSpec::diurnal(amplitude, 200.0 / serve.rate)
        }
        // Symmetric phases, each ~30 mean interarrivals long: bursts
        // are long enough to pile up a queue, short enough that a run
        // alternates phases many times.
        "mmpp" => ArrivalSpec::mmpp(serve.burst_factor, 30.0 / serve.rate, 30.0 / serve.rate),
        "multi-tenant" => ArrivalSpec::multi_tenant(serve.tenants),
        _ => unreachable!("interned arrivals name"),
    })
}

/// One replica of the configured `--system`/`--devices`, carrying the
/// given role.
fn system_replica(sim: ServingSim, args: &Args, role: ReplicaRole) -> ServingSim {
    if args.devices > 1 {
        sim.replica_with_role(DeviceGroup::new(args.system, args.devices), role)
    } else {
        sim.replica_with_role(IanusSystem::new(args.system), role)
    }
}

fn build_cluster(args: &Args, serve: &ServeArgs, scheduling: Scheduling) -> ServingSim {
    let mut sim = ServingSim::new(serving_config(serve, args.request))
        .scheduling(scheduling)
        .policy(serve.policy.bundle())
        .overlap_dma(serve.overlap_dma)
        .kv_block(serve.kv_block);
    if let Some(pool) = serve.host_kv {
        sim = sim.host_kv_pool(pool);
    }
    if let Some((prefill, decode)) = serve.disaggregate {
        for _ in 0..prefill {
            sim = match serve.prefill_system {
                None => system_replica(sim, args, ReplicaRole::PrefillOnly),
                Some("a100") => sim.replica_with_role(GpuModel::a100(), ReplicaRole::PrefillOnly),
                Some("dfx") => {
                    sim.replica_with_role(DfxModel::four_fpga(), ReplicaRole::PrefillOnly)
                }
                Some(name) => {
                    let system = match name {
                        "ianus" => SystemConfig::ianus(),
                        "npu-mem" => SystemConfig::npu_mem(),
                        "partitioned" => SystemConfig::partitioned(),
                        _ => unreachable!("interned prefill-system name"),
                    };
                    sim.replica_with_role(IanusSystem::new(system), ReplicaRole::PrefillOnly)
                }
            };
        }
        for _ in 0..decode {
            sim = system_replica(sim, args, ReplicaRole::DecodeOnly);
        }
        sim = match serve.migration {
            "least-loaded" => sim.migration(LeastLoadedMigration),
            "freest-kv" => sim.migration(FreestKvMigration),
            _ => unreachable!("interned migration name"),
        };
    } else {
        for _ in 0..serve.replicas.max(1) {
            sim = system_replica(sim, args, ReplicaRole::Unified);
        }
    }
    sim
}

fn print_serving_report(label: &str, r: &ServingReport, slo: bool) {
    println!(
        "{label:<22} {:>7.1} req/s | util {:>5.1}% | sojourn p50/p99/max {:>8.0}/{:>8.0}/{:>8.0} ms",
        r.throughput_rps,
        r.utilization * 100.0,
        r.sojourn.p50.as_ms_f64(),
        r.sojourn.p99.as_ms_f64(),
        r.sojourn.max.as_ms_f64(),
    );
    println!(
        "{:<22} TTFT p50/p99/max {:>6.0}/{:>6.0}/{:>6.0} ms | ITL p50/p99/max {:>6.2}/{:>6.2}/{:>6.2} ms",
        "",
        r.ttft.p50.as_ms_f64(),
        r.ttft.p99.as_ms_f64(),
        r.ttft.max.as_ms_f64(),
        r.inter_token.p50.as_ms_f64(),
        r.inter_token.p99.as_ms_f64(),
        r.inter_token.max.as_ms_f64(),
    );
    println!(
        "{:<22} peak batch {} | KV {:>4.1}% | {}",
        "",
        r.peak_batch,
        r.peak_kv_occupancy * 100.0,
        if r.stable() { "stable" } else { "UNSTABLE" },
    );
    if slo {
        println!(
            "{:<22} SLO attainment {:>5.1}% | goodput {:>6.1} req/s (of {:>6.1})",
            "",
            r.slo_attainment * 100.0,
            r.goodput_rps,
            r.throughput_rps,
        );
    }
    if r.prefix_cache_hits > 0 || r.fragmentation > 0.0 {
        println!(
            "{:<22} prefix cache {} hit(s) | shared {:>4.1}% of prompt tokens | fragmentation {:>4.1}%",
            "",
            r.prefix_cache_hits,
            r.prefix_share_ratio * 100.0,
            r.fragmentation * 100.0,
        );
        println!(
            "{:<22} TTFT p50 cache-hit {:>6.0} ms vs cold {:>6.0} ms",
            "",
            r.ttft_cache_hit.p50.as_ms_f64(),
            r.ttft_cold.p50.as_ms_f64(),
        );
    }
    if r.migrations > 0 {
        println!(
            "{:<22} {} prefill->decode migration(s) | migration stall {:.2} s",
            "",
            r.migrations,
            r.migration_stall.as_secs_f64(),
        );
        for p in &r.per_replica {
            println!(
                "{:<22}   {:<16} {:<8} completed {:>6} | in/out {:>5}/{:>5} | util {:>5.1}%",
                "",
                p.name,
                p.role.name(),
                p.completed,
                p.migrations_in,
                p.migrations_out,
                p.utilization * 100.0,
            );
        }
    }
    if r.burst_inter_token != LatencyPercentiles::ZERO {
        println!(
            "{:<22} burst windows: ITL p50/p99 {:>6.2}/{:>6.2} ms (vs {:>6.2}/{:>6.2} steady) | SLO attain {:>5.1}%",
            "",
            r.burst_inter_token.p50.as_ms_f64(),
            r.burst_inter_token.p99.as_ms_f64(),
            r.inter_token.p50.as_ms_f64(),
            r.inter_token.p99.as_ms_f64(),
            r.burst_slo_attainment * 100.0,
        );
    }
    if r.per_tenant.len() > 1 {
        println!(
            "{:<22} tenant fairness (max/min goodput) {:.3}",
            "", r.tenant_fairness,
        );
        for t in &r.per_tenant {
            println!(
                "{:<22}   tenant {} completed {:>6} | sojourn p50/p99 {:>8.0}/{:>8.0} ms | goodput {:>6.2} req/s | SLO {:>5.1}%",
                "",
                t.tenant,
                t.completed,
                t.sojourn.p50.as_ms_f64(),
                t.sojourn.p99.as_ms_f64(),
                t.goodput_rps,
                t.slo_attainment * 100.0,
            );
        }
    }
    if r.completed_workflows > 0 {
        println!(
            "{:<22} workflows {} completed | latency p50/p99/max {:>7.0}/{:>7.0}/{:>7.0} ms | deadline attain {:>5.1}%",
            "",
            r.completed_workflows,
            r.workflow_latency.p50.as_ms_f64(),
            r.workflow_latency.p99.as_ms_f64(),
            r.workflow_latency.max.as_ms_f64(),
            r.workflow_slo_attainment * 100.0,
        );
        println!(
            "{:<22} cancelled nodes {} | inherited prefix {:>4.1}% of child prompt tokens",
            "",
            r.cancelled_nodes,
            r.inherited_prefix_ratio * 100.0,
        );
    }
    if r.preemptions > 0 {
        println!(
            "{:<22} preempted {} request(s) {} time(s) (max {} per request; {} by recompute)",
            "", r.preempted_requests, r.preemptions, r.max_preemptions, r.recomputes,
        );
        println!(
            "{:<22} swap DMA {:.2} s ({:.2} s stalled compute) | host pool peak {} MiB{}",
            "",
            r.kv_dma.as_secs_f64(),
            r.swap_stall.as_secs_f64(),
            r.host_kv_peak_bytes >> 20,
            if r.host_kv_peak_occupancy > 0.0 {
                format!(" ({:.0}% of pool)", r.host_kv_peak_occupancy * 100.0)
            } else {
                String::new()
            },
        );
    }
}

fn scheduling_label(scheduling: Scheduling) -> String {
    match scheduling {
        Scheduling::RequestLevel => "request-level".to_string(),
        Scheduling::IterationLevel {
            max_batch,
            prefill_chunk,
            preempt,
        } => {
            let chunk = match prefill_chunk {
                Some(c) => format!(", chunk {c}"),
                None => String::new(),
            };
            let pre = if preempt { ", preempt" } else { "" };
            format!("iteration (batch {max_batch}{chunk}{pre})")
        }
    }
}

/// `--compare-policies`: the configured scenario (iteration-level with
/// preemption forced on — eviction never fires without it) replayed
/// under all three eviction policies on one warm engine.
fn compare_policies_main(args: &Args, serve: &ServeArgs) {
    if serve.scheduling == Scheduling::RequestLevel {
        println!("(--compare-policies forces iteration-level scheduling with --preempt)\n");
    }
    // Either way the sweep honors the configured --max-batch and
    // --prefill-chunk; only preempt is forced (eviction never fires
    // without it).
    let scheduling = Scheduling::IterationLevel {
        max_batch: serve.max_batch,
        prefill_chunk: serve.prefill_chunk,
        preempt: true,
    };
    let mut sim = build_cluster(args, serve, scheduling);
    if let Err((i, e)) = sim.fits(&args.model) {
        eprintln!("model does not fit replica {i}: {e}");
        std::process::exit(1);
    }
    println!(
        "eviction-policy sweep under {} ({} admission, {} readmission, {} mechanism):",
        scheduling_label(scheduling),
        serve.policy.admission,
        serve.policy.readmission,
        serve.policy.mechanism,
    );
    let scored = serve.slo.is_some();
    if scored {
        println!(
            "  {:<18} {:>11} {:>10} {:>12} {:>12} {:>11} {:>11}",
            "eviction",
            "preemptions",
            "recomputes",
            "itl p99 ms",
            "itl max ms",
            "slo attain",
            "goodput r/s"
        );
    } else {
        println!(
            "  {:<18} {:>11} {:>10} {:>12} {:>12}   (pass --slo-ttft-ms/--slo-itl-ms to score)",
            "eviction", "preemptions", "recomputes", "itl p99 ms", "itl max ms"
        );
    }
    let mut best: Option<(&'static str, f64)> = None;
    for eviction in EVICTIONS {
        sim.set_policy(bundle_of(
            serve.policy.admission,
            eviction,
            serve.policy.readmission,
            serve.policy.mechanism,
        ));
        let r = sim.run(&args.model);
        if scored {
            println!(
                "  {:<18} {:>11} {:>10} {:>12.1} {:>12.1} {:>10.1}% {:>11.2}",
                eviction,
                r.preemptions,
                r.recomputes,
                r.inter_token.p99.as_ms_f64(),
                r.inter_token.max.as_ms_f64(),
                r.slo_attainment * 100.0,
                r.goodput_rps,
            );
            if best.is_none_or(|(_, b)| r.slo_attainment > b) {
                best = Some((eviction, r.slo_attainment));
            }
        } else {
            println!(
                "  {:<18} {:>11} {:>10} {:>12.1} {:>12.1}",
                eviction,
                r.preemptions,
                r.recomputes,
                r.inter_token.p99.as_ms_f64(),
                r.inter_token.max.as_ms_f64(),
            );
        }
    }
    if let Some((winner, att)) = best {
        println!(
            "\n{winner} minimizes SLO violations ({:.1}% of requests within SLO).",
            att * 100.0
        );
    }
}

fn serve_main(args: &Args, serve: &ServeArgs) {
    let mix_name = match serve.mix {
        MixKind::Interactive => "interactive",
        MixKind::DecodeHeavy => "decode-heavy",
        MixKind::LongPrompt => "long-prompt",
        MixKind::SharedPrefix => "shared-prefix (384-token class prefix)",
        MixKind::AgentChain => "agent-chain workflow (4-node chain)",
        MixKind::ToolFanout => "tool-fanout workflow (plan, 4 tools, join)",
        MixKind::Speculative => "speculative workflow (racing branches)",
        MixKind::Custom => "custom (50/50 interactive/batch tiers)",
    };
    let cluster_label = match serve.disaggregate {
        Some((p, d)) => format!(
            "{p} prefill ({}) + {d} decode, {} migration",
            serve.prefill_system.unwrap_or("same system"),
            serve.migration,
        ),
        None => format!("{} replica(s)", serve.replicas),
    };
    println!(
        "serving {} | {mix_name} mix | {cluster_label} x {} device(s) | {} req at {} req/s\n",
        args.model.name, args.devices, serve.requests, serve.rate
    );
    if serve.compare_policies {
        compare_policies_main(args, serve);
        return;
    }
    let modes: Vec<Scheduling> = if serve.disaggregate.is_some() || serve.mix.is_workflow() {
        // Role dispatch and the workflow DAG layer live in the
        // iteration-level loop; coerce and say so rather than assert
        // deep in the engine.
        match serve.scheduling {
            it @ Scheduling::IterationLevel { .. } => vec![it],
            Scheduling::RequestLevel => {
                if serve.disaggregate.is_some() {
                    println!("(--disaggregate forces iteration-level scheduling)\n");
                } else {
                    println!("(workflow mixes force iteration-level scheduling)\n");
                }
                vec![Scheduling::IterationLevel {
                    max_batch: serve.max_batch,
                    prefill_chunk: serve.prefill_chunk,
                    preempt: false,
                }]
            }
        }
    } else if args.compare {
        // --compare contrasts request-level with the *configured*
        // iteration-level form (keeping any chunking/preemption knobs).
        let iteration = match serve.scheduling {
            it @ Scheduling::IterationLevel { .. } => it,
            Scheduling::RequestLevel => Scheduling::iteration(8),
        };
        vec![Scheduling::RequestLevel, iteration]
    } else {
        vec![serve.scheduling]
    };
    // One engine across all modes: switching with `set_scheduling`
    // keeps the warm service/prefill/decode memos, so the second mode
    // and the sustainable-rate searches are queueing-only passes.
    let mut sim = build_cluster(args, serve, modes[0]);
    if let Err((i, e)) = sim.fits(&args.model) {
        eprintln!("model does not fit replica {i}: {e}");
        std::process::exit(1);
    }
    for scheduling in modes {
        sim.set_scheduling(scheduling);
        let report = sim.run(&args.model);
        print_serving_report(&scheduling_label(scheduling), &report, serve.slo.is_some());
        if args.compare {
            let sustainable = sim.sustainable_rate(&args.model, 0.1, 512.0);
            println!("{:<22} sustainable rate {sustainable:.1} req/s\n", "");
        }
    }
}

fn print_report(label: &str, r: &RunReport) {
    println!(
        "{label:<12} total {:>10.2} ms | summ {:>8.2} ms | gen {:>9.2} ms | {} tok | {:>6.1} TFLOPS",
        r.total.as_ms_f64(),
        r.summarization.as_ms_f64(),
        r.generation.as_ms_f64(),
        r.generation_steps + 1,
        r.throughput_tflops(),
    );
}

fn main() {
    let args = parse();
    if let Some(serve) = &args.serve {
        serve_main(&args, serve);
        return;
    }
    println!(
        "{} | ({},{}) | {:?} memory | {} device(s)\n",
        args.model.name,
        args.request.input,
        args.request.output,
        args.system.memory,
        args.system.devices
    );
    match ianus::system::capacity::check_request(&args.system, &args.model, args.request) {
        Ok(cap) => println!(
            "memory: {:.1}% of {} GiB per device (weights {} MiB, KV {} MiB)\n",
            cap.occupancy() * 100.0,
            cap.available_bytes >> 30,
            cap.weight_bytes >> 20,
            cap.kv_bytes >> 20,
        ),
        Err(e) => {
            eprintln!("request does not fit: {e}");
            eprintln!("hint: add devices with --devices");
            std::process::exit(1);
        }
    }
    let mut sys = IanusSystem::new(args.system);
    let report = sys.run_request(&args.model, args.request);
    print_report("simulated", &report);
    if let Some(t) = report.per_token_latency() {
        println!("{:<12} {:.3} ms per generated token", "", t.as_ms_f64());
    }
    println!(
        "{:<12} dynamic energy {:.2} mJ",
        "",
        report.energy.total_pj() / 1e9
    );
    println!("\nbusy time by class:");
    for class in OpClass::ALL {
        let t = report.breakdown.get(class);
        if t.as_ns_f64() > 0.0 {
            println!("  {:<24} {:>10.2} ms", class.label(), t.as_ms_f64());
        }
    }
    if args.compare {
        println!("\nbaselines:");
        let mut npu = IanusSystem::new(SystemConfig::npu_mem());
        print_report("npu-mem", &npu.run_request(&args.model, args.request));
        let gpu = GpuModel::a100().request_latency(&args.model, args.request);
        println!("{:<12} total {:>10.2} ms", "a100 (hf)", gpu.as_ms_f64());
        let dfx = DfxModel::four_fpga().request_latency(&args.model, args.request);
        println!("{:<12} total {:>10.2} ms", "dfx x4", dfx.as_ms_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every advertised name resolves to itself; `resolve` is the
    /// single gate between flag values and the policy/mix matches, so
    /// this pins the tables and those matches in sync (an accepted name
    /// that later hit an `unreachable!` would be a parser bug).
    #[test]
    fn known_names_resolve_and_build() {
        for a in ADMISSIONS {
            let _ = bundle_of(
                resolve(a, &ADMISSIONS).expect("admission"),
                resolve(EVICTIONS[0], &EVICTIONS).expect("eviction"),
                resolve(READMISSIONS[0], &READMISSIONS).expect("readmission"),
                resolve(MECHANISMS[0], &MECHANISMS).expect("mechanism"),
            );
        }
        for e in EVICTIONS {
            let _ = bundle_of("fcfs", e, "fifo", "swap");
        }
        for name in MIXES {
            assert_eq!(resolve(name, &MIXES), Some(name));
            assert!(MixKind::by_name(name).is_some(), "MIXES entry {name:?}");
        }
    }

    /// Unknown values never resolve — the parse loop then reports the
    /// flag's valid options instead of silently defaulting.
    #[test]
    fn unknown_names_are_rejected() {
        assert_eq!(resolve("fifo-lifo", &ADMISSIONS), None);
        assert_eq!(resolve("widest", &ADMISSIONS), None);
        assert_eq!(resolve("biggest-kv", &EVICTIONS), None);
        assert_eq!(resolve("agentchain", &MIXES), None);
        assert_eq!(resolve("", &MIXES), None);
        assert!(MixKind::by_name("agent_chain").is_none());
    }

    /// The workflow mixes build validated workflow configs (DAG
    /// preflight runs at construction) that drive the engine's
    /// workflow layer, and the flat mixes keep `workflows` empty.
    #[test]
    fn workflow_mixes_build_workflow_configs() {
        for (name, nodes) in [("agent-chain", 4), ("tool-fanout", 6), ("speculative", 5)] {
            let mix = MixKind::by_name(name).expect("workflow mix name");
            assert!(mix.is_workflow());
            let serve = test_serve_args(mix);
            let cfg = serving_config(&serve, RequestShape::new(128, 64));
            assert!(cfg.mix.is_empty());
            assert_eq!(cfg.workflows.len(), 1);
            assert_eq!(cfg.workflows[0].node_count(), nodes);
        }
        let flat = serving_config(
            &test_serve_args(MixKind::Interactive),
            RequestShape::new(128, 64),
        );
        assert!(flat.workflows.is_empty());
        assert!(!flat.mix.is_empty());
    }

    fn test_serve_args(mix: MixKind) -> ServeArgs {
        ServeArgs {
            replicas: 1,
            rate: 4.0,
            requests: 10,
            mix,
            scheduling: Scheduling::iteration(8),
            max_batch: 8,
            prefill_chunk: None,
            policy: PolicyNames {
                admission: "fcfs",
                eviction: "lowest-priority",
                readmission: "fifo",
                mechanism: "swap",
            },
            slo: None,
            compare_policies: false,
            host_kv: None,
            overlap_dma: false,
            kv_block: 0,
            disaggregate: None,
            prefill_system: None,
            migration: "least-loaded",
            arrivals: "poisson",
            burst_factor: 4.0,
            tenants: 2,
        }
    }
}
