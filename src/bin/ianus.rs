//! `ianus` — command-line front end to the simulator.
//!
//! ```text
//! ianus [--model NAME] [--input N] [--output N] [--system ianus|npu-mem|partitioned]
//!       [--devices D] [--fc adaptive|mu|pim] [--attn mu|pim] [--schedule overlap|naive]
//!       [--compare]
//! ianus --serve [--model NAME] [--system ...] [--devices D] [--replicas K]
//!       [--rate R] [--requests N] [--mix interactive|decode-heavy|long-prompt]
//!       [--scheduling request|iteration] [--max-batch B]
//!       [--prefill-chunk N] [--preempt] [--compare]
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run --release --bin ianus -- --model gpt2-xl --input 128 --output 64
//! cargo run --release --bin ianus -- --model gpt-6.7b --devices 2 --compare
//! cargo run --release --bin ianus -- --serve --model gpt2-m --replicas 2 \
//!     --rate 8 --mix decode-heavy --scheduling iteration --max-batch 8
//! cargo run --release --bin ianus -- --serve --model gpt2-m --mix long-prompt \
//!     --scheduling iteration --max-batch 8 --prefill-chunk 128 --preempt
//! cargo run --release --bin ianus -- --serve --model gpt2-m --compare
//! ```

use ianus::prelude::*;

#[derive(Clone, Copy, PartialEq, Eq)]
enum MixKind {
    Interactive,
    DecodeHeavy,
    LongPrompt,
}

struct ServeArgs {
    replicas: usize,
    rate: f64,
    requests: u64,
    mix: MixKind,
    scheduling: Scheduling,
}

struct Args {
    model: ModelConfig,
    request: RequestShape,
    system: SystemConfig,
    devices: u32,
    compare: bool,
    serve: Option<ServeArgs>,
}

fn usage() -> ! {
    eprintln!(
        "usage: ianus [--model NAME] [--input N] [--output N]\n\
         \x20            [--system ianus|npu-mem|partitioned] [--devices D]\n\
         \x20            [--fc adaptive|mu|pim] [--attn mu|pim] [--schedule overlap|naive]\n\
         \x20            [--compare]\n\
         \x20      ianus --serve [--model NAME] [--system ...] [--devices D]\n\
         \x20            [--replicas K] [--rate R] [--requests N]\n\
         \x20            [--mix interactive|decode-heavy|long-prompt]\n\
         \x20            [--scheduling request|iteration] [--max-batch B]\n\
         \x20            [--prefill-chunk N] [--preempt] [--compare]\n\
         models: {}",
        ModelConfig::all()
            .iter()
            .map(|m| m.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2)
}

fn parse() -> Args {
    let mut model = ModelConfig::gpt2_xl();
    let mut input = 128u64;
    let mut output = 64u64;
    let mut system = SystemConfig::ianus();
    let mut pas = PasPolicy::ianus();
    let mut devices = 1u32;
    let mut compare = false;
    let mut serve = false;
    let mut replicas = 1usize;
    let mut rate = 4.0f64;
    let mut requests = 400u64;
    let mut mix = MixKind::Interactive;
    let mut iteration = false;
    let mut max_batch = 8u32;
    let mut prefill_chunk = 0u64; // 0 = monolithic prefill
    let mut preempt = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--serve" => serve = true,
            "--replicas" => replicas = value().parse().unwrap_or_else(|_| usage()),
            "--rate" => rate = value().parse().unwrap_or_else(|_| usage()),
            "--requests" => requests = value().parse().unwrap_or_else(|_| usage()),
            "--max-batch" => max_batch = value().parse().unwrap_or_else(|_| usage()),
            "--prefill-chunk" => prefill_chunk = value().parse().unwrap_or_else(|_| usage()),
            "--preempt" => preempt = true,
            "--mix" => {
                mix = match value().as_str() {
                    "interactive" => MixKind::Interactive,
                    "decode-heavy" => MixKind::DecodeHeavy,
                    "long-prompt" => MixKind::LongPrompt,
                    _ => usage(),
                }
            }
            "--scheduling" => {
                iteration = match value().as_str() {
                    "request" => false,
                    "iteration" => true,
                    _ => usage(),
                }
            }
            "--model" => {
                let name = value();
                model = ModelConfig::by_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown model {name:?}");
                    usage()
                });
            }
            "--input" => input = value().parse().unwrap_or_else(|_| usage()),
            "--output" => output = value().parse().unwrap_or_else(|_| usage()),
            "--devices" => devices = value().parse().unwrap_or_else(|_| usage()),
            "--system" => {
                system = match value().as_str() {
                    "ianus" => SystemConfig::ianus(),
                    "npu-mem" => SystemConfig::npu_mem(),
                    "partitioned" => SystemConfig::partitioned(),
                    _ => usage(),
                }
            }
            "--fc" => {
                pas.fc = match value().as_str() {
                    "adaptive" => FcMapping::Adaptive,
                    "mu" => FcMapping::MatrixUnit,
                    "pim" => FcMapping::Pim,
                    _ => usage(),
                }
            }
            "--attn" => {
                pas.attention = match value().as_str() {
                    "mu" => AttnMapping::MatrixUnit,
                    "pim" => AttnMapping::Pim,
                    _ => usage(),
                }
            }
            "--schedule" => {
                pas.schedule = match value().as_str() {
                    "overlap" => Schedule::Overlapped,
                    "naive" => Schedule::Naive,
                    _ => usage(),
                }
            }
            "--compare" => compare = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args {
        model,
        request: RequestShape::new(input, output),
        system: system.with_pas(pas).with_devices(devices),
        devices,
        compare,
        serve: serve.then_some(ServeArgs {
            replicas,
            rate,
            requests,
            mix,
            scheduling: if iteration {
                Scheduling::IterationLevel {
                    max_batch,
                    prefill_chunk: (prefill_chunk > 0).then_some(prefill_chunk),
                    preempt,
                }
            } else {
                Scheduling::RequestLevel
            },
        }),
    }
}

fn serving_config(mix: MixKind, rate: f64, requests: u64) -> ServingConfig {
    match mix {
        MixKind::Interactive => ServingConfig::interactive(rate, requests),
        MixKind::DecodeHeavy => ServingConfig::decode_heavy(rate, requests),
        MixKind::LongPrompt => ServingConfig::long_prompt(rate, requests),
    }
}

fn build_cluster(args: &Args, serve: &ServeArgs, scheduling: Scheduling) -> ServingSim {
    let cfg = serving_config(serve.mix, serve.rate, serve.requests);
    let mut sim = ServingSim::new(cfg).scheduling(scheduling);
    for _ in 0..serve.replicas.max(1) {
        if args.devices > 1 {
            sim = sim.replica(DeviceGroup::new(args.system, args.devices));
        } else {
            sim = sim.replica(IanusSystem::new(args.system));
        }
    }
    sim
}

fn print_serving_report(label: &str, r: &ianus::system::serving::ServingReport) {
    println!(
        "{label:<22} {:>7.1} req/s | util {:>5.1}% | sojourn p50/p99 {:>8.0}/{:>8.0} ms",
        r.throughput_rps,
        r.utilization * 100.0,
        r.p50_sojourn.as_ms_f64(),
        r.p99_sojourn.as_ms_f64(),
    );
    println!(
        "{:<22} TTFT p50/p99 {:>6.0}/{:>6.0} ms | ITL p50/p99 {:>6.2}/{:>6.2} ms | peak batch {} | KV {:>4.1}% | {}",
        "",
        r.ttft.p50.as_ms_f64(),
        r.ttft.p99.as_ms_f64(),
        r.inter_token.p50.as_ms_f64(),
        r.inter_token.p99.as_ms_f64(),
        r.peak_batch,
        r.peak_kv_occupancy * 100.0,
        if r.stable() { "stable" } else { "UNSTABLE" },
    );
    if r.preemptions > 0 {
        println!(
            "{:<22} preempted {} request(s) {} time(s) (max {} per request)",
            "", r.preempted_requests, r.preemptions, r.max_preemptions,
        );
    }
}

fn serve_main(args: &Args, serve: &ServeArgs) {
    let mix_name = match serve.mix {
        MixKind::Interactive => "interactive",
        MixKind::DecodeHeavy => "decode-heavy",
        MixKind::LongPrompt => "long-prompt",
    };
    println!(
        "serving {} | {mix_name} mix | {} replica(s) x {} device(s) | {} req at {} req/s\n",
        args.model.name, serve.replicas, args.devices, serve.requests, serve.rate
    );
    let modes: Vec<Scheduling> = if args.compare {
        // --compare contrasts request-level with the *configured*
        // iteration-level form (keeping any chunking/preemption knobs).
        let iteration = match serve.scheduling {
            it @ Scheduling::IterationLevel { .. } => it,
            Scheduling::RequestLevel => Scheduling::iteration(8),
        };
        vec![Scheduling::RequestLevel, iteration]
    } else {
        vec![serve.scheduling]
    };
    // One engine across all modes: switching with `set_scheduling`
    // keeps the warm service/prefill/decode memos, so the second mode
    // and the sustainable-rate searches are queueing-only passes.
    let mut sim = build_cluster(args, serve, modes[0]);
    if let Err((i, e)) = sim.fits(&args.model) {
        eprintln!("model does not fit replica {i}: {e}");
        std::process::exit(1);
    }
    for scheduling in modes {
        sim.set_scheduling(scheduling);
        let label = match scheduling {
            Scheduling::RequestLevel => "request-level".to_string(),
            Scheduling::IterationLevel {
                max_batch,
                prefill_chunk,
                preempt,
            } => {
                let chunk = match prefill_chunk {
                    Some(c) => format!(", chunk {c}"),
                    None => String::new(),
                };
                let pre = if preempt { ", preempt" } else { "" };
                format!("iteration (batch {max_batch}{chunk}{pre})")
            }
        };
        let report = sim.run(&args.model);
        print_serving_report(&label, &report);
        if args.compare {
            let sustainable = sim.sustainable_rate(&args.model, 0.1, 512.0);
            println!("{:<22} sustainable rate {sustainable:.1} req/s\n", "");
        }
    }
}

fn print_report(label: &str, r: &RunReport) {
    println!(
        "{label:<12} total {:>10.2} ms | summ {:>8.2} ms | gen {:>9.2} ms | {} tok | {:>6.1} TFLOPS",
        r.total.as_ms_f64(),
        r.summarization.as_ms_f64(),
        r.generation.as_ms_f64(),
        r.generation_steps + 1,
        r.throughput_tflops(),
    );
}

fn main() {
    let args = parse();
    if let Some(serve) = &args.serve {
        serve_main(&args, serve);
        return;
    }
    println!(
        "{} | ({},{}) | {:?} memory | {} device(s)\n",
        args.model.name,
        args.request.input,
        args.request.output,
        args.system.memory,
        args.system.devices
    );
    match ianus::system::capacity::check_request(&args.system, &args.model, args.request) {
        Ok(cap) => println!(
            "memory: {:.1}% of {} GiB per device (weights {} MiB, KV {} MiB)\n",
            cap.occupancy() * 100.0,
            cap.available_bytes >> 30,
            cap.weight_bytes >> 20,
            cap.kv_bytes >> 20,
        ),
        Err(e) => {
            eprintln!("request does not fit: {e}");
            eprintln!("hint: add devices with --devices");
            std::process::exit(1);
        }
    }
    let mut sys = IanusSystem::new(args.system);
    let report = sys.run_request(&args.model, args.request);
    print_report("simulated", &report);
    if let Some(t) = report.per_token_latency() {
        println!("{:<12} {:.3} ms per generated token", "", t.as_ms_f64());
    }
    println!(
        "{:<12} dynamic energy {:.2} mJ",
        "",
        report.energy.total_pj() / 1e9
    );
    println!("\nbusy time by class:");
    for class in OpClass::ALL {
        let t = report.breakdown.get(class);
        if t.as_ns_f64() > 0.0 {
            println!("  {:<24} {:>10.2} ms", class.label(), t.as_ms_f64());
        }
    }
    if args.compare {
        println!("\nbaselines:");
        let mut npu = IanusSystem::new(SystemConfig::npu_mem());
        print_report("npu-mem", &npu.run_request(&args.model, args.request));
        let gpu = GpuModel::a100().request_latency(&args.model, args.request);
        println!("{:<12} total {:>10.2} ms", "a100 (hf)", gpu.as_ms_f64());
        let dfx = DfxModel::four_fpga().request_latency(&args.model, args.request);
        println!("{:<12} total {:>10.2} ms", "dfx x4", dfx.as_ms_f64());
    }
}
