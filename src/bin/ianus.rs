//! `ianus` — command-line front end to the simulator.
//!
//! ```text
//! ianus [--model NAME] [--input N] [--output N] [--system ianus|npu-mem|partitioned]
//!       [--devices D] [--fc adaptive|mu|pim] [--attn mu|pim] [--schedule overlap|naive]
//!       [--compare]
//! ```
//!
//! Examples:
//!
//! ```text
//! cargo run --release --bin ianus -- --model gpt2-xl --input 128 --output 64
//! cargo run --release --bin ianus -- --model gpt-6.7b --devices 2 --compare
//! ```

use ianus::prelude::*;

struct Args {
    model: ModelConfig,
    request: RequestShape,
    system: SystemConfig,
    compare: bool,
}

fn usage() -> ! {
    eprintln!(
        "usage: ianus [--model NAME] [--input N] [--output N]\n\
         \x20            [--system ianus|npu-mem|partitioned] [--devices D]\n\
         \x20            [--fc adaptive|mu|pim] [--attn mu|pim] [--schedule overlap|naive]\n\
         \x20            [--compare]\n\
         models: {}",
        ModelConfig::all()
            .iter()
            .map(|m| m.name)
            .collect::<Vec<_>>()
            .join(", ")
    );
    std::process::exit(2)
}

fn parse() -> Args {
    let mut model = ModelConfig::gpt2_xl();
    let mut input = 128u64;
    let mut output = 64u64;
    let mut system = SystemConfig::ianus();
    let mut pas = PasPolicy::ianus();
    let mut devices = 1u32;
    let mut compare = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut value = || args.next().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--model" => {
                let name = value();
                model = ModelConfig::by_name(&name).unwrap_or_else(|| {
                    eprintln!("unknown model {name:?}");
                    usage()
                });
            }
            "--input" => input = value().parse().unwrap_or_else(|_| usage()),
            "--output" => output = value().parse().unwrap_or_else(|_| usage()),
            "--devices" => devices = value().parse().unwrap_or_else(|_| usage()),
            "--system" => {
                system = match value().as_str() {
                    "ianus" => SystemConfig::ianus(),
                    "npu-mem" => SystemConfig::npu_mem(),
                    "partitioned" => SystemConfig::partitioned(),
                    _ => usage(),
                }
            }
            "--fc" => {
                pas.fc = match value().as_str() {
                    "adaptive" => FcMapping::Adaptive,
                    "mu" => FcMapping::MatrixUnit,
                    "pim" => FcMapping::Pim,
                    _ => usage(),
                }
            }
            "--attn" => {
                pas.attention = match value().as_str() {
                    "mu" => AttnMapping::MatrixUnit,
                    "pim" => AttnMapping::Pim,
                    _ => usage(),
                }
            }
            "--schedule" => {
                pas.schedule = match value().as_str() {
                    "overlap" => Schedule::Overlapped,
                    "naive" => Schedule::Naive,
                    _ => usage(),
                }
            }
            "--compare" => compare = true,
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    Args {
        model,
        request: RequestShape::new(input, output),
        system: system.with_pas(pas).with_devices(devices),
        compare,
    }
}

fn print_report(label: &str, r: &RunReport) {
    println!(
        "{label:<12} total {:>10.2} ms | summ {:>8.2} ms | gen {:>9.2} ms | {} tok | {:>6.1} TFLOPS",
        r.total.as_ms_f64(),
        r.summarization.as_ms_f64(),
        r.generation.as_ms_f64(),
        r.generation_steps + 1,
        r.throughput_tflops(),
    );
}

fn main() {
    let args = parse();
    println!(
        "{} | ({},{}) | {:?} memory | {} device(s)\n",
        args.model.name,
        args.request.input,
        args.request.output,
        args.system.memory,
        args.system.devices
    );
    match ianus::system::capacity::check_request(&args.system, &args.model, args.request) {
        Ok(cap) => println!(
            "memory: {:.1}% of {} GiB per device (weights {} MiB, KV {} MiB)\n",
            cap.occupancy() * 100.0,
            cap.available_bytes >> 30,
            cap.weight_bytes >> 20,
            cap.kv_bytes >> 20,
        ),
        Err(e) => {
            eprintln!("request does not fit: {e}");
            eprintln!("hint: add devices with --devices");
            std::process::exit(1);
        }
    }
    let mut sys = IanusSystem::new(args.system);
    let report = sys.run_request(&args.model, args.request);
    print_report("simulated", &report);
    if let Some(t) = report.per_token_latency() {
        println!("{:<12} {:.3} ms per generated token", "", t.as_ms_f64());
    }
    println!(
        "{:<12} dynamic energy {:.2} mJ",
        "",
        report.energy.total_pj() / 1e9
    );
    println!("\nbusy time by class:");
    for class in OpClass::ALL {
        let t = report.breakdown.get(class);
        if t.as_ns_f64() > 0.0 {
            println!("  {:<24} {:>10.2} ms", class.label(), t.as_ms_f64());
        }
    }
    if args.compare {
        println!("\nbaselines:");
        let mut npu = IanusSystem::new(SystemConfig::npu_mem());
        print_report("npu-mem", &npu.run_request(&args.model, args.request));
        let gpu = GpuModel::a100().request_latency(&args.model, args.request);
        println!("{:<12} total {:>10.2} ms", "a100 (hf)", gpu.as_ms_f64());
        let dfx = DfxModel::four_fpga().request_latency(&args.model, args.request);
        println!("{:<12} total {:>10.2} ms", "dfx x4", dfx.as_ms_f64());
    }
}
