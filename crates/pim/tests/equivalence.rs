//! Property tests: the closed-form PIM cost model is exactly equivalent to
//! the micro-command replay executor, and functional GEMV respects basic
//! algebraic invariants.

use ianus_pim::functional::{gemv_bf16, Bf16};
use ianus_pim::{GemvShape, MacroCommand, MicroExecutor, PimConfig, PimModel, Tiling};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn analytic_equals_executor(
        rows in 1u64..4096,
        cols in 1u64..4096,
        batch in 1u32..4,
        gelu in any::<bool>(),
        channels in prop::sample::select(vec![1u32, 2, 4, 8]),
    ) {
        let cfg = PimConfig::ianus_default().with_channels(channels);
        let shape = GemvShape::new(rows, cols).with_batch(batch).with_gelu(gelu);
        let analytic = PimModel::new(cfg).gemv(shape).total;
        let reference = MicroExecutor::new(cfg).run_macro(&MacroCommand::Gemv(shape));
        prop_assert_eq!(analytic, reference);
    }

    #[test]
    fn cost_monotonic_in_rows(rows in 64u64..2048, cols in 64u64..2048) {
        let m = PimModel::new(PimConfig::ianus_default());
        let a = m.gemv(GemvShape::new(rows, cols)).total;
        let b = m.gemv(GemvShape::new(rows + 512, cols)).total;
        prop_assert!(b >= a);
    }

    #[test]
    fn internal_bytes_cover_weights(rows in 1u64..4096, cols in 1u64..4096) {
        let m = PimModel::new(PimConfig::ianus_default());
        let shape = GemvShape::new(rows, cols);
        let c = m.gemv(shape);
        // Padding rounds reads up to burst granularity, never below the
        // true weight footprint.
        prop_assert!(c.internal_bytes >= shape.weight_bytes());
    }

    #[test]
    fn tiling_covers_all_rows(rows in 1u64..100_000, cols in 1u64..8192) {
        let t = Tiling::new(&PimConfig::ianus_default(), GemvShape::new(rows, cols));
        prop_assert!(t.row_blocks() * u64::from(t.rows_per_tile()) >= rows);
        let chunk_sum: u64 = (0..t.col_chunks()).map(|cb| u64::from(t.chunk_elems(cb))).sum();
        prop_assert_eq!(chunk_sum, cols);
    }

    #[test]
    fn gemv_linear_in_scaling(scale in 1u32..8) {
        // GEMV(2^k · x) == 2^k · GEMV(x) exactly in BF16 (power-of-two
        // scaling only touches exponents).
        let cfg = PimConfig::ianus_default();
        let w: Vec<Bf16> = (0..64).map(|i| Bf16::from_f32(((i % 13) as f32 - 6.0) / 8.0)).collect();
        let x1: Vec<Bf16> = (0..16).map(|i| Bf16::from_f32(((i % 7) as f32 - 3.0) / 4.0)).collect();
        let k = (1u32 << scale) as f32;
        let xk: Vec<Bf16> = x1.iter().map(|v| Bf16::from_f32(v.to_f32() * k)).collect();
        let y1 = gemv_bf16(&cfg, &w, 4, 16, &x1, false);
        let yk = gemv_bf16(&cfg, &w, 4, 16, &xk, false);
        for (a, b) in y1.iter().zip(&yk) {
            prop_assert_eq!(Bf16::from_f32(a.to_f32() * k).to_bits(), b.to_bits());
        }
    }
}
