//! Closed-form PIM operation cost model.
//!
//! [`PimModel`] prices a macro PIM command by walking its tile schedule
//! with the same timing constraints the [`crate::MicroExecutor`] enforces
//! per micro command — but in O(tiles) instead of O(micro commands), with
//! no per-bank state. The two are asserted equal in tests, so the system
//! simulator can use `PimModel` on hot paths with reference fidelity.

use crate::executor::AF_COST;
use crate::{GemvShape, PimConfig, Tiling};
use ianus_sim::{Duration, Time};

/// Cost and activity counts of one macro PIM operation.
///
/// The activity counts feed the Figure 11 dynamic-energy model: internal
/// weight reads (priced at 3× a normal DRAM read, per the paper's
/// assumption), global-buffer fill traffic and accumulator drain traffic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimOpCost {
    /// Makespan of the operation on its channel group.
    pub total: Duration,
    /// All-bank MAC micro commands issued (per channel).
    pub mac_commands: u64,
    /// DRAM row activations across all banks and channels.
    pub activations: u64,
    /// Bytes of weights streamed through the in-bank PUs (all channels).
    pub internal_bytes: u64,
    /// Bytes written into global buffers (input vector broadcast).
    pub gb_bytes: u64,
    /// Bytes of accumulator results drained to the NPU.
    pub drain_bytes: u64,
}

impl PimOpCost {
    /// Achieved internal bandwidth in GB/s.
    pub fn internal_bandwidth_gbps(&self) -> f64 {
        if self.total == Duration::ZERO {
            0.0
        } else {
            self.internal_bytes as f64 / self.total.as_ns_f64()
        }
    }
}

/// Fast analytic model of the PIM device.
///
/// # Examples
///
/// ```
/// use ianus_pim::{GemvShape, PimConfig, PimModel};
/// let m = PimModel::new(PimConfig::ianus_default());
/// let c = m.gemv(GemvShape::new(1024, 1024));
/// assert_eq!(c.mac_commands, 8 * 64);
/// assert_eq!(c.internal_bytes, 1024 * 1024 * 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct PimModel {
    cfg: PimConfig,
}

impl PimModel {
    /// Creates a model for a device configuration.
    pub fn new(cfg: PimConfig) -> Self {
        PimModel { cfg }
    }

    /// The device configuration.
    pub fn config(&self) -> &PimConfig {
        &self.cfg
    }

    /// Matrix rows computed per tile (banks × channels).
    pub fn rows_per_tile(&self) -> u32 {
        self.cfg.org.banks_per_channel * self.cfg.channels
    }

    /// Prices a (batched) GEMV macro operation in the paper's row-major
    /// tile order.
    pub fn gemv(&self, shape: GemvShape) -> PimOpCost {
        self.gemv_with_order(shape, crate::TileOrder::RowMajor)
    }

    /// Prices a GEMV under a chosen tile order (the tiling ablation).
    /// Column-major order drains partial sums after every tile; the
    /// NPU-side re-accumulation cost is not included here.
    pub fn gemv_with_order(&self, shape: GemvShape, order: crate::TileOrder) -> PimOpCost {
        let t = self.cfg.timings;
        let burst = self.cfg.org.burst_duration();
        let tiling = Tiling::new(&self.cfg, shape);
        let stages = self.cfg.org.banks_per_channel.div_ceil(t.act_group.max(1)) as usize;

        // Per activation-stage bank-group readiness (ACT may issue when the
        // group's previous precharge + tRP has elapsed).
        let mut act_ready = vec![Time::ZERO; stages];
        let mut bus_free = Time::ZERO;
        let mut last_mac = Time::ZERO;
        let mut gb_ready = Time::ZERO;
        let mut acc_free = Time::ZERO;
        let mut horizon = Time::ZERO;
        let mut gb_beats_total: u64 = 0;
        let mut drains_total: u64 = 0;

        for batch_item in 0..shape.batch {
            for tile in tiling.walk_with(order) {
                if tile.reload_gb {
                    let beats = u64::from(tiling.gb_beats(tile.col_chunk));
                    if batch_item == 0 {
                        gb_beats_total += beats;
                    }
                    let start = bus_free.max(last_mac);
                    let done = start + burst * beats;
                    bus_free = done;
                    gb_ready = done;
                    horizon = horizon.max(done);
                }
                // Staged all-bank activation.
                let mut stage_at = vec![Time::ZERO; stages];
                for s in 0..stages {
                    let want = if s == 0 {
                        Time::ZERO
                    } else {
                        stage_at[s - 1] + t.t_rrd
                    };
                    stage_at[s] = want.max(act_ready[s]);
                }
                let data_ready = stage_at[stages - 1] + t.t_rcd_rd;
                let first_mac = (last_mac + t.t_ccd_l)
                    .max(gb_ready)
                    .max(acc_free)
                    .max(data_ready);
                last_mac = first_mac + t.t_ccd_l * (u64::from(tile.macs) - 1);
                horizon = horizon.max(last_mac + burst);
                // Per-group precharge and next-activate readiness.
                for s in 0..stages {
                    let pre = last_mac.max(stage_at[s] + t.t_ras);
                    act_ready[s] = pre + t.t_rp;
                    horizon = horizon.max(act_ready[s]);
                }
                if tile.last_chunk {
                    if batch_item == 0 {
                        drains_total += u64::from(self.cfg.org.banks_per_channel);
                    }
                    let af_done = if shape.gelu {
                        last_mac + AF_COST
                    } else {
                        last_mac
                    };
                    horizon = horizon.max(af_done);
                    let beats = u64::from(self.cfg.org.banks_per_channel);
                    let start = bus_free.max(last_mac).max(af_done);
                    let end = start + t.t_ccd_l * beats;
                    bus_free = end;
                    acc_free = end;
                    horizon = horizon.max(end);
                }
            }
        }

        let batch = u64::from(shape.batch);
        let macs = tiling.total_macs() * batch;
        let burst_bytes = u64::from(self.cfg.org.burst_bytes);
        let pus = u64::from(self.cfg.total_pus());
        // Each MAC micro command streams one burst through every PU.
        let internal_bytes = macs * burst_bytes * pus;
        // Every channel's global buffer is physically written per fill.
        let gb_bytes = gb_beats_total * burst_bytes * batch * u64::from(self.cfg.channels);
        // Each drain reads one accumulator per bank per channel (BF16).
        let drain_bytes = drains_total * 2 * batch * u64::from(self.cfg.channels);
        PimOpCost {
            total: horizon.since(Time::ZERO),
            mac_commands: macs,
            activations: tiling.activations() * batch,
            internal_bytes,
            gb_bytes,
            drain_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MacroCommand, MicroExecutor};

    fn model() -> PimModel {
        PimModel::new(PimConfig::ianus_default())
    }

    fn agree(shape: GemvShape) {
        let cfg = PimConfig::ianus_default();
        let analytic = PimModel::new(cfg).gemv(shape).total;
        let reference = MicroExecutor::new(cfg).run_macro(&MacroCommand::Gemv(shape));
        assert_eq!(
            analytic, reference,
            "shape {shape:?}: analytic {analytic} vs executor {reference}"
        );
    }

    #[test]
    fn matches_executor_on_key_shapes() {
        for shape in [
            GemvShape::new(128, 1024),
            GemvShape::new(1024, 1024),
            GemvShape::new(6144, 1536),  // GPT-2 XL FFN
            GemvShape::new(1920, 1920),  // GPT-2 2.5B ragged
            GemvShape::new(50257, 1600), // LM head-ish
            GemvShape::new(100, 64),     // QK^T head slice
            GemvShape::new(4096, 1024).with_gelu(true),
            GemvShape::new(1024, 4096).with_batch(3),
        ] {
            agree(shape);
        }
    }

    #[test]
    fn matches_executor_on_channel_subsets() {
        for ch in [1, 2, 4, 8] {
            let cfg = PimConfig::ianus_default().with_channels(ch);
            let shape = GemvShape::new(768, 768);
            let analytic = PimModel::new(cfg).gemv(shape).total;
            let reference = MicroExecutor::new(cfg).run_macro(&MacroCommand::Gemv(shape));
            assert_eq!(analytic, reference, "channels {ch}");
        }
    }

    #[test]
    fn counts_are_consistent() {
        // 2048×2048: 16 row blocks × 2 column chunks × 64 MACs each.
        let c = model().gemv(GemvShape::new(2048, 2048));
        assert_eq!(c.mac_commands, 16 * 2 * 64);
        assert_eq!(c.internal_bytes, 2048 * 2048 * 2);
        assert_eq!(c.activations, 16 * 2 * 128);
        assert_eq!(c.drain_bytes, 2048 * 2);
        // Multi-chunk walk reloads both chunks per row block on all 8
        // channels: 16 × 2 KB × 2 × 8.
        assert_eq!(c.gb_bytes, 16 * 2048 * 2 * 8);
    }

    #[test]
    fn time_proportional_to_batch() {
        let m = model();
        let t1 = m.gemv(GemvShape::new(4096, 1024)).total;
        let t8 = m.gemv(GemvShape::new(4096, 1024).with_batch(8)).total;
        let r = t8.as_ns_f64() / t1.as_ns_f64();
        assert!(r > 7.5 && r < 8.5, "ratio {r}");
    }

    #[test]
    fn tile_order_traffic_tradeoff() {
        // The tiling ablation: row-major reloads the global buffer per
        // tile but drains once per row block; column-major is the
        // opposite. Traffic counters must reflect exactly that.
        let m = model();
        let shape = GemvShape::new(2048, 2048); // 16 row blocks × 2 chunks
        let row = m.gemv_with_order(shape, crate::TileOrder::RowMajor);
        let col = m.gemv_with_order(shape, crate::TileOrder::ColMajor);
        assert!(row.gb_bytes > col.gb_bytes);
        assert!(col.drain_bytes > row.drain_bytes);
        assert_eq!(row.internal_bytes, col.internal_bytes);
        // Single-chunk shapes are identical under both orders.
        let s1 = GemvShape::new(2048, 1024);
        assert_eq!(
            m.gemv_with_order(s1, crate::TileOrder::RowMajor),
            m.gemv_with_order(s1, crate::TileOrder::ColMajor)
        );
    }

    #[test]
    fn xl_decoder_fc_latency_regime() {
        // All per-decoder FC weights of GPT-2 XL ≈ 28.3M params: at ~47%
        // of 4096 GB/s the PIM time should be in the tens of microseconds.
        let m = model();
        let qkv = m.gemv(GemvShape::new(3 * 1536, 1536)).total;
        let proj = m.gemv(GemvShape::new(1536, 1536)).total;
        let ffn1 = m.gemv(GemvShape::new(6144, 1536).with_gelu(true)).total;
        let ffn2 = m.gemv(GemvShape::new(1536, 6144)).total;
        let per_decoder = qkv + proj + ffn1 + ffn2;
        assert!(
            per_decoder.as_us_f64() > 15.0 && per_decoder.as_us_f64() < 45.0,
            "{per_decoder}"
        );
    }
}
