//! GDDR6-AiM processing-in-memory device model.
//!
//! IANUS builds on SK hynix's Accelerator-in-Memory (AiM): a GDDR6 device
//! with one processing unit (PU) per bank — 16 BF16 multipliers, an adder
//! tree, a MAC accumulator and an activation-function unit — plus a 2 KB
//! global buffer per channel that holds the (reused) input vector of a
//! matrix-vector product. All 16 banks of all channels compute in lockstep
//! ("true all-bank parallelism"), giving the paper's 4096 GB/s internal
//! bandwidth on 8 channels versus 256 GB/s external.
//!
//! This crate models that device at three coordinated levels:
//!
//! * **Micro commands** ([`MicroCommand`]) — `WR_GB`, `ACT_ALL`, `MAC`,
//!   `AF`, `RD_MAC`, `PRE_ALL` — executed against per-bank
//!   [`ianus_dram::BankState`] machines by [`MicroExecutor`] for
//!   reference-quality timing.
//! * **Macro commands** ([`MacroCommand`]) — one per *operation* (e.g. a
//!   whole GEMV), decoded into micro commands by the PIM control unit
//!   (`pcu::decode`), exactly as Section 4.3 describes.
//! * **Closed-form timing** ([`PimModel`]) — fast analytic cost identical
//!   in structure to the micro schedule, unit-tested against
//!   [`MicroExecutor`] so the system simulator can price millions of PIM
//!   operations without per-command event overhead.
//!
//! The crate also carries the *functional* half of the device —
//! [`functional`] implements BF16 GEMV + GELU through the exact Figure 4
//! tile layout so numerics can be validated end-to-end (the repo's stand-in
//! for the paper's FPGA prototype validation).
//!
//! # Examples
//!
//! ```
//! use ianus_pim::{GemvShape, PimConfig, PimModel};
//!
//! let model = PimModel::new(PimConfig::ianus_default());
//! // One decoder-block FFN FC of GPT-2 XL: 6144×1536, one token.
//! let op = model.gemv(GemvShape::new(6144, 1536).with_batch(1));
//! assert!(op.total.as_us_f64() > 5.0 && op.total.as_us_f64() < 30.0);
//! // All-bank parallelism: 16 banks × 8 channels rows per tile.
//! assert_eq!(model.rows_per_tile(), 128);
//! ```

mod alloc;
mod command;
mod config;
mod executor;
pub mod functional;
mod pcu;
mod tiling;
mod timing;

pub use alloc::{AllocError, WeightAllocator, WeightHandle};
pub use command::{MacroCommand, MicroCommand};
pub use config::PimConfig;
pub use executor::MicroExecutor;
pub use tiling::{GemvShape, TileOrder, TileWalk, Tiling};
pub use timing::{PimModel, PimOpCost};
