//! Weight-matrix tiling for PIM GEMV (paper Figure 4).
//!
//! A weight matrix is cut into tiles of `banks × channels` matrix rows by
//! up to 1024 columns (one DRAM row of BF16 per matrix-row chunk). Every
//! matrix row chunk in a tile lands at the *same DRAM row address* in a
//! different (channel, bank), so a tile computes with full all-bank,
//! all-channel parallelism and zero row conflicts — the property the
//! Figure 5 address mapping exists to guarantee.

use crate::PimConfig;

/// Shape of a (batched) matrix-vector product offloaded to PIM.
///
/// `out_rows × in_cols` weights multiply an `in_cols` input vector per
/// batch item. PIM executes batch items sequentially (the paper notes PIM
/// time is proportional to token count, unlike the matrix unit).
///
/// # Examples
///
/// ```
/// use ianus_pim::GemvShape;
/// let s = GemvShape::new(6400, 1600).with_batch(4).with_gelu(true);
/// assert_eq!(s.flops(), 2 * 6400 * 1600 * 4);
/// assert_eq!(s.weight_bytes(), 6400 * 1600 * 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GemvShape {
    /// Output dimension (weight rows computed by PUs).
    pub out_rows: u64,
    /// Input dimension (elements dotted per weight row).
    pub in_cols: u64,
    /// Sequentially repeated input vectors (tokens).
    pub batch: u32,
    /// Fuse the GELU activation-function pass after accumulation.
    pub gelu: bool,
}

impl GemvShape {
    /// Creates a single-token GEMV without activation fusion.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(out_rows: u64, in_cols: u64) -> Self {
        assert!(out_rows > 0 && in_cols > 0, "degenerate GEMV shape");
        GemvShape {
            out_rows,
            in_cols,
            batch: 1,
            gelu: false,
        }
    }

    /// Sets the batch (token) count.
    ///
    /// # Panics
    ///
    /// Panics if `batch` is zero.
    pub fn with_batch(mut self, batch: u32) -> Self {
        assert!(batch > 0, "batch must be positive");
        self.batch = batch;
        self
    }

    /// Enables or disables the fused GELU pass.
    pub fn with_gelu(mut self, gelu: bool) -> Self {
        self.gelu = gelu;
        self
    }

    /// Total floating-point operations (2 per multiply-accumulate).
    pub fn flops(&self) -> u64 {
        2 * self.out_rows * self.in_cols * u64::from(self.batch)
    }

    /// Bytes of BF16 weights the operation reads (once, regardless of
    /// batch — but PIM re-reads per batch item; see [`Tiling`]).
    pub fn weight_bytes(&self) -> u64 {
        self.out_rows * self.in_cols * 2
    }
}

/// Derived tile geometry of a [`GemvShape`] on a [`PimConfig`].
///
/// # Examples
///
/// ```
/// use ianus_pim::{GemvShape, PimConfig, Tiling};
/// let t = Tiling::new(&PimConfig::ianus_default(), GemvShape::new(6144, 1536));
/// assert_eq!(t.rows_per_tile(), 128);
/// assert_eq!(t.row_blocks(), 48);
/// assert_eq!(t.col_chunks(), 2); // 1536 = 1024 + 512
/// assert_eq!(t.tiles(), 96);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tiling {
    shape: GemvShape,
    rows_per_tile: u32,
    elems_per_row: u32,
    elems_per_mac: u32,
}

impl Tiling {
    /// Computes the tile geometry.
    pub fn new(cfg: &PimConfig, shape: GemvShape) -> Self {
        Tiling {
            shape,
            rows_per_tile: cfg.org.banks_per_channel * cfg.channels,
            elems_per_row: cfg.elems_per_row(),
            elems_per_mac: cfg.elems_per_mac(),
        }
    }

    /// The shape being tiled.
    pub fn shape(&self) -> GemvShape {
        self.shape
    }

    /// Matrix rows per tile (banks × channels).
    pub fn rows_per_tile(&self) -> u32 {
        self.rows_per_tile
    }

    /// Number of tile rows (blocks of `rows_per_tile` output rows).
    pub fn row_blocks(&self) -> u64 {
        self.shape.out_rows.div_ceil(u64::from(self.rows_per_tile))
    }

    /// Number of 1024-element column chunks of the input vector.
    pub fn col_chunks(&self) -> u64 {
        self.shape.in_cols.div_ceil(u64::from(self.elems_per_row))
    }

    /// Total tiles (row blocks × column chunks).
    pub fn tiles(&self) -> u64 {
        self.row_blocks() * self.col_chunks()
    }

    /// Input-vector elements in column chunk `cb` (the last may be short).
    pub fn chunk_elems(&self, cb: u64) -> u32 {
        let per = u64::from(self.elems_per_row);
        let start = cb * per;
        let end = (start + per).min(self.shape.in_cols);
        debug_assert!(end > start, "chunk index out of range");
        (end - start) as u32
    }

    /// `MAC` micro commands per bank for column chunk `cb`.
    pub fn macs_in_chunk(&self, cb: u64) -> u32 {
        self.chunk_elems(cb).div_ceil(self.elems_per_mac)
    }

    /// `WR_GB` beats (32 B writes) needed to fill the global buffer for
    /// column chunk `cb`.
    pub fn gb_beats(&self, cb: u64) -> u32 {
        // Same granularity as a MAC: one burst per beat.
        self.macs_in_chunk(cb)
    }

    /// Total `MAC` commands for one batch item across all tiles.
    pub fn total_macs(&self) -> u64 {
        (0..self.col_chunks())
            .map(|cb| u64::from(self.macs_in_chunk(cb)))
            .sum::<u64>()
            * self.row_blocks()
    }

    /// Total DRAM row activations for one batch item (every bank of every
    /// channel opens one row per tile).
    pub fn activations(&self) -> u64 {
        self.tiles() * u64::from(self.rows_per_tile)
    }

    /// DRAM rows of capacity consumed per bank by the weight allocation.
    pub fn rows_per_bank(&self) -> u64 {
        self.tiles()
    }

    /// Iterates tiles in the paper's row-major order.
    pub fn walk(&self) -> TileWalk {
        self.walk_with(TileOrder::RowMajor)
    }

    /// Iterates tiles in a chosen order (the tiling ablation).
    pub fn walk_with(&self, order: TileOrder) -> TileWalk {
        TileWalk {
            tiling: *self,
            order,
            rb: 0,
            cb: 0,
        }
    }
}

/// Tile visit order for a multi-chunk GEMV.
///
/// Row-major (the paper's choice) finishes each row block before moving
/// on: per-bank accumulators hold partial sums across the row block's
/// chunks and drain once, but the 2 KB global buffer must be reloaded at
/// every tile. Column-major reuses each input chunk across all row
/// blocks (one global-buffer load per chunk) but must drain partial sums
/// after *every* tile — the accumulator cannot survive a revisit — and
/// the NPU re-accumulates the partials.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TileOrder {
    /// Row block outer, column chunk inner (the paper's assumption).
    #[default]
    RowMajor,
    /// Column chunk outer, row block inner.
    ColMajor,
}

/// A tile visited during a row-major walk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tile {
    /// Row-block index.
    pub row_block: u64,
    /// Column-chunk index.
    pub col_chunk: u64,
    /// Whether this is the last column chunk of its row block (accumulator
    /// drains after it).
    pub last_chunk: bool,
    /// `MAC` commands per bank in this tile.
    pub macs: u32,
    /// Whether the global buffer must be (re)loaded before this tile.
    pub reload_gb: bool,
}

/// Tile iterator produced by [`Tiling::walk`] / [`Tiling::walk_with`].
#[derive(Debug, Clone)]
pub struct TileWalk {
    tiling: Tiling,
    order: TileOrder,
    rb: u64,
    cb: u64,
}

impl Iterator for TileWalk {
    type Item = Tile;

    fn next(&mut self) -> Option<Tile> {
        let blocks = self.tiling.row_blocks();
        let chunks = self.tiling.col_chunks();
        match self.order {
            TileOrder::RowMajor => {
                if self.rb >= blocks {
                    return None;
                }
                let t = Tile {
                    row_block: self.rb,
                    col_chunk: self.cb,
                    // The accumulator drains once per row block.
                    last_chunk: self.cb + 1 == chunks,
                    macs: self.tiling.macs_in_chunk(self.cb),
                    // With a single chunk the global buffer persists
                    // across row blocks; with several, row-major order
                    // forces a reload per tile (the 2 KB buffer only
                    // holds one chunk).
                    reload_gb: chunks > 1 || (self.rb == 0 && self.cb == 0),
                };
                self.cb += 1;
                if self.cb == chunks {
                    self.cb = 0;
                    self.rb += 1;
                }
                Some(t)
            }
            TileOrder::ColMajor => {
                if self.cb >= chunks {
                    return None;
                }
                let t = Tile {
                    row_block: self.rb,
                    col_chunk: self.cb,
                    // Partial sums drain after every tile: the next visit
                    // to this row block happens chunks later.
                    last_chunk: true,
                    macs: self.tiling.macs_in_chunk(self.cb),
                    // One global-buffer load per chunk, reused across all
                    // row blocks.
                    reload_gb: self.rb == 0,
                };
                self.rb += 1;
                if self.rb == blocks {
                    self.rb = 0;
                    self.cb += 1;
                }
                Some(t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> PimConfig {
        PimConfig::ianus_default()
    }

    #[test]
    fn exact_multiple_shape() {
        let t = Tiling::new(&cfg(), GemvShape::new(1024, 1024));
        assert_eq!(t.row_blocks(), 8);
        assert_eq!(t.col_chunks(), 1);
        assert_eq!(t.tiles(), 8);
        assert_eq!(t.macs_in_chunk(0), 64);
        assert_eq!(t.total_macs(), 8 * 64);
    }

    #[test]
    fn ragged_shape_rounds_up() {
        // GPT-2 2.5B: embedding 1920 — paper notes 2×1024 chunks with the
        // second only 896 wide (poorer PIM utilization).
        let t = Tiling::new(&cfg(), GemvShape::new(1920, 1920));
        assert_eq!(t.row_blocks(), 15);
        assert_eq!(t.col_chunks(), 2);
        assert_eq!(t.chunk_elems(0), 1024);
        assert_eq!(t.chunk_elems(1), 896);
        assert_eq!(t.macs_in_chunk(1), 56);
    }

    #[test]
    fn head_dim_utilization_matches_paper() {
        // Paper: QK^T with head dim 64 uses only 64/1024 = 6.25% of a row.
        let t = Tiling::new(&cfg(), GemvShape::new(128, 64));
        let useful = t.shape().in_cols as f64 / 1024.0;
        assert!((useful - 0.0625).abs() < 1e-12);
        assert_eq!(t.macs_in_chunk(0), 4);
    }

    #[test]
    fn channel_subset_shrinks_tiles() {
        let t = Tiling::new(&cfg().with_channels(2), GemvShape::new(1024, 1024));
        assert_eq!(t.rows_per_tile(), 32);
        assert_eq!(t.row_blocks(), 32);
    }

    #[test]
    fn walk_row_major_with_reloads() {
        let t = Tiling::new(&cfg(), GemvShape::new(256, 2048));
        let tiles: Vec<Tile> = t.walk().collect();
        assert_eq!(tiles.len(), 4);
        assert_eq!(
            tiles
                .iter()
                .map(|t| (t.row_block, t.col_chunk))
                .collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (1, 0), (1, 1)]
        );
        assert!(tiles.iter().all(|t| t.reload_gb));
        assert_eq!(
            tiles.iter().filter(|t| t.last_chunk).count(),
            2 // one drain per row block
        );
    }

    #[test]
    fn walk_single_chunk_loads_gb_once() {
        let t = Tiling::new(&cfg(), GemvShape::new(512, 512));
        let tiles: Vec<Tile> = t.walk().collect();
        assert_eq!(tiles.iter().filter(|t| t.reload_gb).count(), 1);
        assert!(tiles.iter().all(|t| t.last_chunk));
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_rows_rejected() {
        let _ = GemvShape::new(0, 4);
    }

    #[test]
    fn col_major_walk_reuses_gb_and_drains_every_tile() {
        let t = Tiling::new(&cfg(), GemvShape::new(256, 2048));
        let tiles: Vec<Tile> = t.walk_with(TileOrder::ColMajor).collect();
        assert_eq!(tiles.len(), 4);
        assert_eq!(
            tiles
                .iter()
                .map(|t| (t.col_chunk, t.row_block))
                .collect::<Vec<_>>(),
            vec![(0, 0), (0, 1), (1, 0), (1, 1)]
        );
        // One global-buffer load per chunk, drain after every tile.
        assert_eq!(tiles.iter().filter(|t| t.reload_gb).count(), 2);
        assert!(tiles.iter().all(|t| t.last_chunk));
    }

    #[test]
    fn both_orders_cover_the_same_tiles() {
        let t = Tiling::new(&cfg(), GemvShape::new(1000, 3000));
        let mut a: Vec<(u64, u64)> = t.walk().map(|t| (t.row_block, t.col_chunk)).collect();
        let mut b: Vec<(u64, u64)> = t
            .walk_with(TileOrder::ColMajor)
            .map(|t| (t.row_block, t.col_chunk))
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
