//! Reference micro-command replay engine.
//!
//! [`MicroExecutor`] replays a PCU-decoded micro command stream against one
//! channel's 16 [`BankState`] machines (all channels run in lockstep under
//! command broadcast, so one channel's timing is the group's timing). It is
//! the ground truth the fast closed-form [`crate::PimModel`] is tested
//! against; the system simulator never calls it on hot paths.

use crate::{MicroCommand, PimConfig};
use ianus_dram::{BankCommand, BankState};
use ianus_sim::{Duration, Time};

/// Additional latency of an `AF` (GELU LUT interpolation) micro command.
/// The LUT rows are DRAM-resident but cached at the PU after first touch;
/// the paper gives no figure, so we charge a small fixed pipeline cost.
pub(crate) const AF_COST: Duration = Duration::from_ns(8);

/// Replay engine for micro PIM command streams.
///
/// # Examples
///
/// ```
/// use ianus_pim::{GemvShape, MacroCommand, MicroExecutor, PimConfig};
///
/// let cfg = PimConfig::ianus_default();
/// let exec = MicroExecutor::new(cfg);
/// let d = exec.run_macro(&MacroCommand::Gemv(GemvShape::new(128, 1024)));
/// // One tile: GB load + activate + 64 MACs + drain — order 150–250 ns.
/// assert!(d.as_ns_f64() > 100.0 && d.as_ns_f64() < 300.0);
/// ```
#[derive(Debug, Clone)]
pub struct MicroExecutor {
    cfg: PimConfig,
}

#[derive(Debug)]
struct ReplayState {
    banks: Vec<BankState>,
    /// Shared peripheral/external data path (GB fills, accumulator drains).
    bus_free: Time,
    /// Completion of the most recent MAC command.
    last_mac: Time,
    /// When the global buffer holds the chunk MACs may consume.
    gb_ready: Time,
    /// When the current accumulators were last drained (MACs of the next
    /// row block must not start before this).
    acc_free: Time,
    /// Completion time of the most recent activation stage.
    last_act_stage: Option<Time>,
    /// Pending activation-function completion gating the next drain.
    af_done: Time,
    /// Latest completion of any command (the macro op's end time).
    horizon: Time,
}

impl MicroExecutor {
    /// Creates an executor for a device configuration.
    pub fn new(cfg: PimConfig) -> Self {
        MicroExecutor { cfg }
    }

    /// Replays a micro stream once and returns its makespan.
    pub fn run(&self, stream: &[MicroCommand]) -> Duration {
        self.run_batched(stream, 1)
    }

    /// Replays a micro stream `batch` times back-to-back (PIM processes
    /// batched GEMV token-sequentially) and returns the total makespan.
    ///
    /// # Panics
    ///
    /// Panics if the stream is malformed (e.g. a `MAC` with no prior
    /// activation), which indicates a PCU decode bug.
    pub fn run_batched(&self, stream: &[MicroCommand], batch: u32) -> Duration {
        let t = self.cfg.timings;
        let burst = self.cfg.org.burst_duration();
        let mut st = ReplayState {
            banks: (0..self.cfg.org.banks_per_channel)
                .map(|_| BankState::new(t))
                .collect(),
            bus_free: Time::ZERO,
            last_mac: Time::ZERO,
            gb_ready: Time::ZERO,
            acc_free: Time::ZERO,
            last_act_stage: None,
            af_done: Time::ZERO,
            horizon: Time::ZERO,
        };
        for _ in 0..batch {
            let mut next_bank = 0usize; // rotates activation stages over banks
            for cmd in stream {
                match *cmd {
                    MicroCommand::WrGb => {
                        // The buffer may not be overwritten while previous
                        // MACs still read it; beats stream on the bus.
                        let start = st.bus_free.max(st.last_mac);
                        let done = start + burst;
                        st.bus_free = done;
                        st.gb_ready = done;
                        st.horizon = st.horizon.max(done);
                    }
                    MicroCommand::ActAll { banks, row } => {
                        let want = match st.last_act_stage {
                            Some(prev) => prev + t.t_rrd,
                            None => Time::ZERO,
                        };
                        let mut stage_at = want;
                        for _ in 0..banks {
                            let b = &mut st.banks[next_bank];
                            let at = b
                                .issue(want, BankCommand::Activate { row })
                                .expect("PCU decode must alternate ACT/PRE legally");
                            stage_at = stage_at.max(at);
                            next_bank = (next_bank + 1) % st.banks.len();
                        }
                        // A tile's stages chain at tRRD; after the final
                        // stage (bank rotation wrapped) the chain resets.
                        st.last_act_stage = if next_bank == 0 { None } else { Some(stage_at) };
                        st.horizon = st.horizon.max(stage_at);
                    }
                    MicroCommand::Mac => {
                        // Broadcast read on every bank; issue time is the
                        // max of all banks' constraints plus GB/accumulator
                        // availability and the MAC cadence.
                        let want = (st.last_mac + t.t_ccd_l).max(st.gb_ready).max(st.acc_free);
                        let mut at = want;
                        for b in &mut st.banks {
                            at = at.max(
                                b.issue(want, BankCommand::Read)
                                    .expect("MAC requires an open row"),
                            );
                        }
                        st.last_mac = at;
                        st.horizon = st.horizon.max(at + burst);
                    }
                    MicroCommand::Af => {
                        st.af_done = st.last_mac + AF_COST;
                        st.horizon = st.horizon.max(st.af_done);
                    }
                    MicroCommand::RdMac => {
                        let start = st.bus_free.max(st.last_mac).max(st.af_done);
                        let done = start + t.t_ccd_l;
                        st.bus_free = done;
                        st.acc_free = done;
                        st.horizon = st.horizon.max(done);
                    }
                    MicroCommand::PreAll => {
                        let want = st.last_mac;
                        let mut at = want;
                        for b in &mut st.banks {
                            at = at.max(
                                b.issue(want, BankCommand::Precharge)
                                    .expect("PRE requires an open row"),
                            );
                        }
                        st.last_act_stage = None;
                        st.horizon = st.horizon.max(at + t.t_rp);
                    }
                }
            }
        }
        st.horizon.since(Time::ZERO)
    }

    /// Decodes and replays a macro command (including its batch dimension).
    pub fn run_macro(&self, cmd: &crate::MacroCommand) -> Duration {
        let stream = crate::pcu::decode(&self.cfg, cmd);
        let batch = match cmd {
            crate::MacroCommand::Gemv(s) => s.batch,
        };
        self.run_batched(&stream, batch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GemvShape, MacroCommand};

    fn exec() -> MicroExecutor {
        MicroExecutor::new(PimConfig::ianus_default())
    }

    #[test]
    fn single_tile_timing_breakdown() {
        // 128×1024 on 8 channels = 1 tile: 64 GB beats (64 ns, overlapping
        // the staged activation), first MAC at max(gb, act+tRCDRD),
        // 64 MACs at 1 ns, drain 16 beats.
        let d = exec().run_macro(&MacroCommand::Gemv(GemvShape::new(128, 1024)));
        // act stages: 3×tRRD = 6 ns, data ready at 6+36 = 42 ns; GB ready
        // at 64 ns; MACs span 64..128 ns; drain ends ≈ 144 ns; PRE+tRP ≈ 158.
        assert!(d.as_ns_f64() >= 140.0 && d.as_ns_f64() <= 170.0, "{d}");
    }

    #[test]
    fn batch_scales_linearly() {
        let e = exec();
        let one = e.run_macro(&MacroCommand::Gemv(GemvShape::new(1024, 1024)));
        let four = e.run_macro(&MacroCommand::Gemv(
            GemvShape::new(1024, 1024).with_batch(4),
        ));
        let ratio = four.as_ns_f64() / one.as_ns_f64();
        assert!(ratio > 3.7 && ratio < 4.3, "ratio {ratio}");
    }

    #[test]
    fn gelu_fusion_costs_little() {
        let e = exec();
        let plain = e.run_macro(&MacroCommand::Gemv(GemvShape::new(4096, 1024)));
        let fused = e.run_macro(&MacroCommand::Gemv(
            GemvShape::new(4096, 1024).with_gelu(true),
        ));
        assert!(fused >= plain);
        let overhead = fused.as_ns_f64() / plain.as_ns_f64();
        assert!(overhead < 1.10, "GELU fusion overhead {overhead}");
    }

    #[test]
    fn fewer_channels_slower() {
        let full = MicroExecutor::new(PimConfig::ianus_default())
            .run_macro(&MacroCommand::Gemv(GemvShape::new(2048, 1024)));
        let quarter = MicroExecutor::new(PimConfig::ianus_default().with_channels(2))
            .run_macro(&MacroCommand::Gemv(GemvShape::new(2048, 1024)));
        let ratio = quarter.as_ns_f64() / full.as_ns_f64();
        assert!(ratio > 3.0 && ratio < 4.5, "ratio {ratio}");
    }

    #[test]
    fn internal_bandwidth_efficiency_plausible() {
        // Large GEMV should sustain a large fraction of the steady-state
        // tile pipeline: useful MAC time is 64 ns of a ~136 ns tile period.
        let e = exec();
        let shape = GemvShape::new(65536, 1024);
        let d = e.run_macro(&MacroCommand::Gemv(shape));
        let bytes = shape.weight_bytes() as f64;
        let gbps = bytes / d.as_ns_f64();
        let peak = PimConfig::ianus_default().internal_bandwidth_gbps();
        let eff = gbps / peak;
        assert!(eff > 0.40 && eff < 0.60, "efficiency {eff}");
    }
}
