//! PIM control unit: macro → micro command decode (paper Section 4.3).
//!
//! One macro PIM command describes a whole operation; the PCU expands it
//! into the exact micro command stream the PIM memory controllers replay.
//! Keeping the expansion separate from execution lets the tests assert the
//! stream's structure and lets the executor stay a dumb replay engine.

use crate::{MacroCommand, MicroCommand, PimConfig, Tiling};

/// Decodes a macro command into its broadcast micro-command stream for one
/// batch item, repeated `shape.batch` times by the caller or executor.
///
/// The stream for a GEMV follows the paper's row-major tile walk:
/// per tile — optional `WR_GB` beats, staged `ACT_ALL`, the `MAC` burst
/// sequence, `PRE_ALL`; per row block — optional `AF`, then `RD_MAC`
/// drain beats (one per bank).
pub fn decode(cfg: &PimConfig, cmd: &MacroCommand) -> Vec<MicroCommand> {
    match cmd {
        MacroCommand::Gemv(shape) => {
            let tiling = Tiling::new(cfg, *shape);
            let mut out = Vec::new();
            let stages = cfg
                .org
                .banks_per_channel
                .div_ceil(cfg.timings.act_group.max(1));
            for tile in tiling.walk() {
                if tile.reload_gb {
                    for _ in 0..tiling.gb_beats(tile.col_chunk) {
                        out.push(MicroCommand::WrGb);
                    }
                }
                for s in 0..stages {
                    let banks = cfg
                        .timings
                        .act_group
                        .min(cfg.org.banks_per_channel - s * cfg.timings.act_group);
                    out.push(MicroCommand::ActAll {
                        banks,
                        row: tile.row_block * tiling.col_chunks() + tile.col_chunk,
                    });
                }
                for _ in 0..tile.macs {
                    out.push(MicroCommand::Mac);
                }
                out.push(MicroCommand::PreAll);
                if tile.last_chunk {
                    if shape.gelu {
                        out.push(MicroCommand::Af);
                    }
                    for _ in 0..cfg.org.banks_per_channel {
                        out.push(MicroCommand::RdMac);
                    }
                }
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GemvShape;

    #[test]
    fn stream_structure_single_tile() {
        let cfg = PimConfig::ianus_default();
        let stream = decode(&cfg, &MacroCommand::Gemv(GemvShape::new(128, 1024)));
        let n = |pred: fn(&MicroCommand) -> bool| stream.iter().filter(|c| pred(c)).count();
        assert_eq!(n(|c| matches!(c, MicroCommand::WrGb)), 64);
        assert_eq!(n(|c| matches!(c, MicroCommand::ActAll { .. })), 4); // 16 banks / group 4
        assert_eq!(n(|c| matches!(c, MicroCommand::Mac)), 64);
        assert_eq!(n(|c| matches!(c, MicroCommand::PreAll)), 1);
        assert_eq!(n(|c| matches!(c, MicroCommand::RdMac)), 16);
        assert_eq!(n(|c| matches!(c, MicroCommand::Af)), 0);
    }

    #[test]
    fn gelu_adds_af_per_row_block() {
        let cfg = PimConfig::ianus_default();
        let stream = decode(
            &cfg,
            &MacroCommand::Gemv(GemvShape::new(256, 1024).with_gelu(true)),
        );
        let afs = stream
            .iter()
            .filter(|c| matches!(c, MicroCommand::Af))
            .count();
        assert_eq!(afs, 2);
    }

    #[test]
    fn multi_chunk_reloads_gb() {
        let cfg = PimConfig::ianus_default();
        let stream = decode(&cfg, &MacroCommand::Gemv(GemvShape::new(256, 2048)));
        let wr = stream
            .iter()
            .filter(|c| matches!(c, MicroCommand::WrGb))
            .count();
        // 2 row blocks × 2 chunks × 64 beats.
        assert_eq!(wr, 256);
    }

    #[test]
    fn act_rows_distinct_per_tile() {
        let cfg = PimConfig::ianus_default();
        let stream = decode(&cfg, &MacroCommand::Gemv(GemvShape::new(512, 2048)));
        let mut rows: Vec<u64> = stream
            .iter()
            .filter_map(|c| match c {
                MicroCommand::ActAll { row, .. } => Some(*row),
                _ => None,
            })
            .collect();
        rows.dedup();
        // 4 row blocks × 2 chunks = 8 distinct tile rows.
        assert_eq!(rows.len(), 8);
    }
}
