//! PIM device configuration (Table 1, PIM rows).

use ianus_dram::{GddrOrganization, GddrTimings};
use ianus_sim::Frequency;

/// Configuration of the PIM compute resources layered on a GDDR6 device.
///
/// The paper's values: 1 PU per bank running at 1 GHz with 16 BF16
/// multipliers (32 GFLOPS/PU), one 2 KB global buffer per channel, 8
/// channels in total (4 chips × 2 channels), 1 TFLOPS per chip.
///
/// # Examples
///
/// ```
/// use ianus_pim::PimConfig;
/// let cfg = PimConfig::ianus_default();
/// assert_eq!(cfg.total_pus(), 128);
/// // 128 PUs × 32 GFLOPS = 4.1 TFLOPS ≈ 4 chips × 1 TFLOPS.
/// assert!((cfg.peak_tflops() - 4.096).abs() < 1e-9);
/// assert_eq!(cfg.internal_bandwidth_gbps(), 4096.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PimConfig {
    /// Underlying DRAM organization.
    pub org: GddrOrganization,
    /// DRAM timing parameters (PIM commands obey the same constraints).
    pub timings: GddrTimings,
    /// Number of channels this PIM group computes across. Defaults to all
    /// channels of the organization; per-core head-parallel operations use
    /// a subset.
    pub channels: u32,
    /// PU clock (paper: 1 GHz).
    pub pu_clock: Frequency,
    /// BF16 multiply-accumulate lanes per PU (paper: 16, from 32 B bursts).
    pub pu_lanes: u32,
    /// Global buffer bytes per channel (paper: 2 KB = one DRAM row).
    pub gb_bytes: u32,
}

impl PimConfig {
    /// The paper's Table 1 PIM configuration (all 8 channels).
    pub fn ianus_default() -> Self {
        PimConfig {
            org: GddrOrganization::ianus_default(),
            timings: GddrTimings::ianus_default(),
            channels: 8,
            pu_clock: Frequency::from_ghz(1.0),
            pu_lanes: 16,
            gb_bytes: 2048,
        }
    }

    /// Restricts the configuration to a channel subset (e.g. the 2 channels
    /// of one chip serving one attention head group).
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or exceeds the organization's channels.
    pub fn with_channels(mut self, channels: u32) -> Self {
        assert!(
            channels > 0 && channels <= self.org.channels,
            "channel subset {channels} out of range"
        );
        self.channels = channels;
        self
    }

    /// Total processing units in this group (banks × channels).
    pub fn total_pus(&self) -> u32 {
        self.org.banks_per_channel * self.channels
    }

    /// BF16 elements one DRAM row holds (1024 for 2 KB rows).
    pub fn elems_per_row(&self) -> u32 {
        self.org.row_bytes / 2
    }

    /// Elements consumed by one `MAC` micro command per bank (one burst).
    pub fn elems_per_mac(&self) -> u32 {
        self.org.burst_bytes / 2
    }

    /// Peak MAC throughput in TFLOPS (2 FLOPs per MAC lane per cycle).
    pub fn peak_tflops(&self) -> f64 {
        self.total_pus() as f64 * self.pu_lanes as f64 * 2.0 * self.pu_clock.as_hz() / 1e12
    }

    /// Peak internal bandwidth in GB/s: every bank streams one burst per
    /// MAC command at the column-to-column cadence.
    pub fn internal_bandwidth_gbps(&self) -> f64 {
        self.org.burst_bytes as f64 * self.total_pus() as f64 / self.timings.t_ccd_l.as_ns_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chip_level_figures_match_paper() {
        let cfg = PimConfig::ianus_default();
        // Per chip: 2 channels × 16 banks = 32 PUs × 32 GFLOPS ≈ 1 TFLOPS.
        let per_chip = cfg.peak_tflops() / cfg.org.chips() as f64;
        assert!((per_chip - 1.024).abs() < 1e-9);
        // Per chip internal bandwidth: 1024 GB/s (paper Section 6.1).
        assert_eq!(
            cfg.internal_bandwidth_gbps() / cfg.org.chips() as f64,
            1024.0
        );
    }

    #[test]
    fn channel_subset() {
        let cfg = PimConfig::ianus_default().with_channels(2);
        assert_eq!(cfg.total_pus(), 32);
        assert_eq!(cfg.internal_bandwidth_gbps(), 1024.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_channels_rejected() {
        let _ = PimConfig::ianus_default().with_channels(0);
    }

    #[test]
    fn element_geometry() {
        let cfg = PimConfig::ianus_default();
        assert_eq!(cfg.elems_per_row(), 1024);
        assert_eq!(cfg.elems_per_mac(), 16);
    }
}
