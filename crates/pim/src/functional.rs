//! Functional (value-level) model of the AiM datapath.
//!
//! The paper validates IANUS functionally on an FPGA prototype with real
//! AiM chips (matching full-precision GPT-2 perplexity within noise). This
//! module is the repo's stand-in: it executes BF16 GEMV **through the same
//! Figure 4 tile layout** the timing model prices — per-bank partial dot
//! products over 32 B bursts, accumulated in f32 as the AiM adder tree
//! does, with the GELU activation evaluated by LUT interpolation as in the
//! device — so numerics can be compared against an f32 reference.
//!
//! # Examples
//!
//! ```
//! use ianus_pim::functional::{gemv_bf16, Bf16};
//! use ianus_pim::PimConfig;
//!
//! let cfg = PimConfig::ianus_default();
//! let w: Vec<Bf16> = (0..4 * 8).map(|i| Bf16::from_f32(i as f32 * 0.125)).collect();
//! let x: Vec<Bf16> = (0..8).map(|i| Bf16::from_f32(1.0 / (i + 1) as f32)).collect();
//! let y = gemv_bf16(&cfg, &w, 4, 8, &x, false);
//! assert_eq!(y.len(), 4);
//! ```

use crate::PimConfig;

/// A bfloat16 value (1 sign, 8 exponent, 7 mantissa bits).
///
/// Conversion from `f32` uses round-to-nearest-even, matching hardware
/// BF16 converters.
///
/// # Examples
///
/// ```
/// use ianus_pim::functional::Bf16;
/// let x = Bf16::from_f32(1.2345678);
/// // BF16 keeps ~2-3 significant decimal digits.
/// assert!((x.to_f32() - 1.2345678).abs() < 0.01);
/// assert_eq!(Bf16::from_f32(1.0).to_f32(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Bf16(u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);

    /// Converts from `f32` with round-to-nearest-even.
    pub fn from_f32(x: f32) -> Self {
        let bits = x.to_bits();
        if x.is_nan() {
            // Quiet NaN, preserve sign.
            return Bf16(((bits >> 16) as u16) | 0x0040);
        }
        // Round to nearest even on the truncated 16 bits.
        let round_bit = 0x0000_8000u32;
        let lsb = (bits >> 16) & 1;
        let rounded = bits.wrapping_add(0x0000_7FFF + lsb);
        let _ = round_bit;
        Bf16((rounded >> 16) as u16)
    }

    /// Converts to `f32` exactly.
    pub fn to_f32(self) -> f32 {
        f32::from_bits(u32::from(self.0) << 16)
    }

    /// Raw bit pattern.
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Constructs from a raw bit pattern.
    pub fn from_bits(bits: u16) -> Self {
        Bf16(bits)
    }
}

impl From<Bf16> for f32 {
    fn from(v: Bf16) -> f32 {
        v.to_f32()
    }
}

/// The device GELU lookup table: 256 knots over `[-8, 8]` with linear
/// interpolation, saturating outside the range (GELU(x) ≈ 0 for x ≤ -8 and
/// ≈ x for x ≥ 8).
///
/// # Examples
///
/// ```
/// use ianus_pim::functional::GeluLut;
/// let lut = GeluLut::new();
/// assert!((lut.eval(0.0)).abs() < 1e-3);
/// assert!((lut.eval(3.0) - 2.9959).abs() < 2e-2);
/// assert_eq!(lut.eval(-20.0), 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct GeluLut {
    knots: Vec<f32>,
    lo: f32,
    hi: f32,
}

/// Reference GELU (tanh approximation used by GPT-2).
pub fn gelu_reference(x: f32) -> f32 {
    let x3 = x * x * x;
    0.5 * x * (1.0 + ((0.797_884_6_f32) * (x + 0.044_715 * x3)).tanh())
}

impl GeluLut {
    /// Builds the 256-entry table.
    pub fn new() -> Self {
        let (lo, hi) = (-8.0f32, 8.0f32);
        let n = 256;
        let knots = (0..=n)
            .map(|i| gelu_reference(lo + (hi - lo) * i as f32 / n as f32))
            .collect();
        GeluLut { knots, lo, hi }
    }

    /// Evaluates GELU by linear interpolation, saturating outside
    /// `[-8, 8]`.
    pub fn eval(&self, x: f32) -> f32 {
        if x <= self.lo {
            return 0.0;
        }
        if x >= self.hi {
            return x;
        }
        let n = (self.knots.len() - 1) as f32;
        let pos = (x - self.lo) / (self.hi - self.lo) * n;
        let i = pos.floor() as usize;
        let frac = pos - i as f32;
        self.knots[i] * (1.0 - frac) + self.knots[i + 1] * frac
    }
}

impl Default for GeluLut {
    fn default() -> Self {
        GeluLut::new()
    }
}

/// Executes a BF16 GEMV `y = W·x` through the PIM tile layout.
///
/// `w` is `rows × cols` in row-major order. Each matrix row is processed
/// the way a bank PU would: 16-element bursts multiplied in BF16 and
/// accumulated into an f32 accumulator via an adder tree, tile by tile in
/// the row-major Figure 4 walk. With `gelu`, the device LUT is applied to
/// each accumulator before BF16 output conversion.
///
/// # Panics
///
/// Panics if `w.len() != rows * cols` or `x.len() != cols`.
pub fn gemv_bf16(
    cfg: &PimConfig,
    w: &[Bf16],
    rows: usize,
    cols: usize,
    x: &[Bf16],
    gelu: bool,
) -> Vec<Bf16> {
    assert_eq!(w.len(), rows * cols, "weight shape mismatch");
    assert_eq!(x.len(), cols, "input length mismatch");
    let lut = GeluLut::new();
    let chunk = cfg.elems_per_row() as usize;
    let lane = cfg.elems_per_mac() as usize;
    let mut y = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = &w[r * cols..(r + 1) * cols];
        // Column chunks mirror the tile walk; each bank-local accumulator
        // persists across chunks of its row block.
        let mut acc = 0.0f32;
        for (cstart, xchunk) in x.chunks(chunk).enumerate().map(|(i, c)| (i * chunk, c)) {
            let wchunk = &row[cstart..cstart + xchunk.len()];
            // One MAC command = one 16-lane burst through the adder tree.
            for (wl, xl) in wchunk.chunks(lane).zip(xchunk.chunks(lane)) {
                let partial: f32 = wl
                    .iter()
                    .zip(xl)
                    .map(|(a, b)| a.to_f32() * b.to_f32())
                    .sum();
                acc += partial;
            }
        }
        let out = if gelu { lut.eval(acc) } else { acc };
        y.push(Bf16::from_f32(out));
    }
    y
}

/// f32 reference GEMV for validation.
pub fn gemv_reference(w: &[f32], rows: usize, cols: usize, x: &[f32], gelu: bool) -> Vec<f32> {
    assert_eq!(w.len(), rows * cols, "weight shape mismatch");
    assert_eq!(x.len(), cols, "input length mismatch");
    (0..rows)
        .map(|r| {
            let dot: f32 = w[r * cols..(r + 1) * cols]
                .iter()
                .zip(x)
                .map(|(a, b)| a * b)
                .sum();
            if gelu {
                gelu_reference(dot)
            } else {
                dot
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bf16_roundtrip_exact_values() {
        for v in [0.0f32, 1.0, -2.0, 0.5, 256.0, -0.09375] {
            assert_eq!(Bf16::from_f32(v).to_f32(), v, "{v}");
        }
    }

    #[test]
    fn bf16_round_to_nearest_even() {
        // 1.0 + 2^-8 rounds down (tie goes to even), 1.0 + 3×2^-9 rounds up.
        let just_above = f32::from_bits(0x3F80_8000);
        assert_eq!(Bf16::from_f32(just_above).to_bits(), 0x3F80);
        let more = f32::from_bits(0x3F80_8001);
        assert_eq!(Bf16::from_f32(more).to_bits(), 0x3F81);
    }

    #[test]
    fn bf16_nan_preserved() {
        assert!(Bf16::from_f32(f32::NAN).to_f32().is_nan());
    }

    #[test]
    fn gelu_lut_close_to_reference() {
        let lut = GeluLut::new();
        let mut max_err = 0.0f32;
        let mut x = -8.0f32;
        while x <= 8.0 {
            let err = (lut.eval(x) - gelu_reference(x)).abs();
            max_err = max_err.max(err);
            x += 0.013;
        }
        assert!(max_err < 5e-3, "max LUT error {max_err}");
    }

    #[test]
    fn gemv_matches_reference_within_bf16_tolerance() {
        let cfg = PimConfig::ianus_default();
        let rows = 64;
        let cols = 1536;
        // Deterministic pseudo-random weights.
        let mut seed = 0x12345u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
        };
        let wf: Vec<f32> = (0..rows * cols).map(|_| next() * 0.05).collect();
        let xf: Vec<f32> = (0..cols).map(|_| next()).collect();
        let w: Vec<Bf16> = wf.iter().map(|&v| Bf16::from_f32(v)).collect();
        let x: Vec<Bf16> = xf.iter().map(|&v| Bf16::from_f32(v)).collect();
        // Reference uses the BF16-quantized operands so only accumulation
        // order/precision differs.
        let wq: Vec<f32> = w.iter().map(|v| v.to_f32()).collect();
        let xq: Vec<f32> = x.iter().map(|v| v.to_f32()).collect();
        let want = gemv_reference(&wq, rows, cols, &xq, false);
        let got = gemv_bf16(&cfg, &w, rows, cols, &x, false);
        for (g, w_) in got.iter().zip(&want) {
            let err = (g.to_f32() - w_).abs();
            let tol = 0.02 * w_.abs().max(1.0);
            assert!(err <= tol, "got {} want {}", g.to_f32(), w_);
        }
    }

    #[test]
    fn gemv_gelu_path() {
        let cfg = PimConfig::ianus_default();
        let w = vec![Bf16::ONE; 8];
        let x = vec![Bf16::from_f32(0.25); 8];
        // dot = 2.0 → GELU(2.0) ≈ 1.9546
        let y = gemv_bf16(&cfg, &w, 1, 8, &x, true);
        assert!((y[0].to_f32() - 1.9546).abs() < 0.02, "{}", y[0].to_f32());
    }

    #[test]
    #[should_panic(expected = "input length mismatch")]
    fn shape_mismatch_panics() {
        let cfg = PimConfig::ianus_default();
        let _ = gemv_bf16(&cfg, &[Bf16::ZERO; 4], 2, 2, &[Bf16::ZERO; 3], false);
    }
}
