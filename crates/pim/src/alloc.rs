//! PIM-resident weight allocation.
//!
//! The Figure 5 address mapping gives every tile its own DRAM row address;
//! this module is the allocator that hands those row addresses out. Each
//! GEMV weight matrix consumes `tiles()` row addresses — one DRAM row in
//! *every* bank of *every* channel of the group per tile — so capacity
//! accounting is simply row-address accounting, and two operands never
//! share a row (no row conflicts between operations either).
//!
//! The unified-memory capacity argument of Section 3.2 falls out of this
//! allocator: GPT-2 2.5B's FC weights fit the 8 GB unified device but not
//! a 4 GB PIM partition (see tests).

use crate::{GemvShape, PimConfig, Tiling};
use std::fmt;

/// Error returned when an allocation exceeds the device's row capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    /// Rows requested by the failed allocation.
    pub requested_rows: u64,
    /// Rows still free.
    pub free_rows: u64,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "PIM allocation of {} tile rows exceeds {} free rows",
            self.requested_rows, self.free_rows
        )
    }
}

impl std::error::Error for AllocError {}

/// A placed weight matrix: its tile geometry plus the base DRAM row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WeightHandle {
    /// First DRAM row address of the allocation.
    pub base_row: u64,
    /// Tile geometry of the matrix.
    pub tiling: Tiling,
}

impl WeightHandle {
    /// DRAM row address of tile `(row_block, col_chunk)`.
    ///
    /// # Panics
    ///
    /// Panics if the tile coordinates are out of range.
    pub fn row_of_tile(&self, row_block: u64, col_chunk: u64) -> u64 {
        assert!(
            row_block < self.tiling.row_blocks(),
            "row block out of range"
        );
        assert!(
            col_chunk < self.tiling.col_chunks(),
            "col chunk out of range"
        );
        self.base_row + row_block * self.tiling.col_chunks() + col_chunk
    }

    /// One-past-the-last row address of the allocation.
    pub fn end_row(&self) -> u64 {
        self.base_row + self.tiling.tiles()
    }
}

/// Bump allocator over the PIM group's DRAM rows.
///
/// # Examples
///
/// ```
/// use ianus_pim::{GemvShape, PimConfig, WeightAllocator};
///
/// let mut alloc = WeightAllocator::new(PimConfig::ianus_default());
/// let qkv = alloc.alloc(GemvShape::new(3 * 1536, 1536))?;
/// let ffn = alloc.alloc(GemvShape::new(6144, 1536))?;
/// assert!(ffn.base_row >= qkv.end_row());
/// # Ok::<(), ianus_pim::AllocError>(())
/// ```
#[derive(Debug, Clone)]
pub struct WeightAllocator {
    cfg: PimConfig,
    next_row: u64,
    capacity_rows: u64,
    /// Rows reserved for non-weight uses (GELU LUT, scratch).
    reserved_rows: u64,
}

impl WeightAllocator {
    /// Creates an allocator over all rows of the configuration's banks,
    /// with a small reservation for the activation-function LUT rows the
    /// paper stores in DRAM (Section 4.2.2).
    pub fn new(cfg: PimConfig) -> Self {
        let capacity_rows = cfg.org.rows_per_bank();
        WeightAllocator {
            cfg,
            next_row: 0,
            capacity_rows,
            reserved_rows: 4,
        }
    }

    /// The device configuration.
    pub fn config(&self) -> &PimConfig {
        &self.cfg
    }

    /// Rows still free.
    pub fn free_rows(&self) -> u64 {
        self.capacity_rows - self.reserved_rows - self.next_row
    }

    /// Bytes still free across the whole group (free rows × row bytes ×
    /// banks × channels).
    pub fn free_bytes(&self) -> u64 {
        self.free_rows()
            * u64::from(self.cfg.org.row_bytes)
            * u64::from(self.cfg.org.banks_per_channel)
            * u64::from(self.cfg.channels)
    }

    /// Fraction of allocated row capacity actually covered by weight
    /// elements (padding in ragged tiles wastes the rest).
    pub fn utilization_of(&self, shape: GemvShape) -> f64 {
        let tiling = Tiling::new(&self.cfg, shape);
        let allocated =
            tiling.tiles() * u64::from(tiling.rows_per_tile()) * u64::from(self.cfg.org.row_bytes);
        shape.weight_bytes() as f64 / allocated as f64
    }

    /// Allocates rows for a weight matrix.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] when the matrix's tiles do not fit the
    /// remaining rows.
    pub fn alloc(&mut self, shape: GemvShape) -> Result<WeightHandle, AllocError> {
        let tiling = Tiling::new(&self.cfg, shape);
        let rows = tiling.tiles();
        if rows > self.free_rows() {
            return Err(AllocError {
                requested_rows: rows,
                free_rows: self.free_rows(),
            });
        }
        let base_row = self.next_row;
        self.next_row += rows;
        Ok(WeightHandle { base_row, tiling })
    }

    /// Frees everything (models a full re-load of the device).
    pub fn reset(&mut self) {
        self.next_row = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_non_overlapping() {
        let mut a = WeightAllocator::new(PimConfig::ianus_default());
        let h1 = a.alloc(GemvShape::new(1024, 1024)).unwrap();
        let h2 = a.alloc(GemvShape::new(2048, 2048)).unwrap();
        assert_eq!(h1.base_row, 0);
        assert_eq!(h1.end_row(), 8);
        assert_eq!(h2.base_row, 8);
        assert_eq!(h2.end_row(), 8 + 32);
    }

    #[test]
    fn tile_row_addresses_are_dense_and_unique() {
        let mut a = WeightAllocator::new(PimConfig::ianus_default());
        let h = a.alloc(GemvShape::new(512, 2048)).unwrap();
        let mut rows = Vec::new();
        for rb in 0..h.tiling.row_blocks() {
            for cc in 0..h.tiling.col_chunks() {
                rows.push(h.row_of_tile(rb, cc));
            }
        }
        let mut sorted = rows.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), rows.len());
        assert_eq!(*sorted.first().unwrap(), h.base_row);
        assert_eq!(*sorted.last().unwrap() + 1, h.end_row());
    }

    #[test]
    fn capacity_exhaustion_reports_error() {
        let mut a = WeightAllocator::new(PimConfig::ianus_default());
        // One bank holds 32768 rows; grab nearly all of them.
        let huge = GemvShape::new(128 * 32_000, 1024);
        a.alloc(huge).unwrap();
        let err = a.alloc(GemvShape::new(128 * 1000, 1024)).unwrap_err();
        assert!(err.requested_rows > err.free_rows);
        assert!(err.to_string().contains("exceeds"));
    }

    /// The Section 3.2 capacity argument, at allocator granularity.
    #[test]
    fn gpt2_2_5b_fits_unified_not_partitioned_half() {
        // All FC weights of GPT-2 2.5B, column-sliced per core over 4
        // cores: allocate each core's slice into its 2-channel group.
        let per_core = |channels: u32, capacity: u64| -> Result<(), AllocError> {
            let mut org = ianus_dram::GddrOrganization::ianus_default();
            org.capacity = capacity;
            let cfg = PimConfig {
                org,
                ..PimConfig::ianus_default()
            }
            .with_channels(channels);
            let mut a = WeightAllocator::new(cfg);
            let e: u64 = 1920;
            for _ in 0..54 {
                // Per-core column slices of QKV, proj, FFN1, FFN2.
                a.alloc(GemvShape::new(3 * e / 4, e))?;
                a.alloc(GemvShape::new(e / 4, e))?;
                a.alloc(GemvShape::new(e, e))?; // 4E/4
                a.alloc(GemvShape::new(e / 4, 4 * e))?;
            }
            a.alloc(GemvShape::new(50257 / 4, e))?;
            Ok(())
        };
        // Unified: 2 channels of the 8 GB device per core.
        assert!(per_core(2, 8 << 30).is_ok());
        // Partitioned: 1 channel of a 4 GB PIM half per core — the same
        // slice does not fit.
        assert!(per_core(1, 4 << 30).is_err());
    }

    #[test]
    fn utilization_reflects_ragged_shapes() {
        let a = WeightAllocator::new(PimConfig::ianus_default());
        // Exact multiple: full utilization.
        assert!((a.utilization_of(GemvShape::new(1024, 1024)) - 1.0).abs() < 1e-12);
        // 64-wide input uses 6.25% of each row.
        let u = a.utilization_of(GemvShape::new(128, 64));
        assert!((u - 0.0625).abs() < 1e-12, "{u}");
    }

    #[test]
    fn reset_restores_capacity() {
        let mut a = WeightAllocator::new(PimConfig::ianus_default());
        let before = a.free_rows();
        a.alloc(GemvShape::new(4096, 4096)).unwrap();
        a.reset();
        assert_eq!(a.free_rows(), before);
    }
}
