//! PIM macro and micro commands (paper Section 4.3).
//!
//! The NPU command scheduler deals only in **macro** PIM commands — one per
//! operation — so that normal memory commands are never interleaved into
//! the middle of a PIM computation. The PIM control unit (PCU) decodes each
//! macro command into the **micro** command stream that the PIM memory
//! controllers replay against the DRAM banks.

use crate::GemvShape;

/// One micro PIM command, broadcast to all banks of the participating
/// channels (the NoC broadcasts PIM commands; see Section 4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MicroCommand {
    /// Write one 32 B beat of the input vector into each channel's global
    /// buffer.
    WrGb,
    /// Activate the tile's row in a group of `banks` banks (power-staged
    /// all-bank activation).
    ActAll {
        /// Banks activated by this stage.
        banks: u32,
        /// DRAM row (tile) index being opened.
        row: u64,
    },
    /// One all-bank MAC step: every PU multiplies a 32 B burst from its
    /// bank against the matching global-buffer slice and accumulates.
    Mac,
    /// Apply the activation function (GELU LUT interpolation) to the
    /// accumulators.
    Af,
    /// Read one accumulator value per bank out to the peripheral.
    RdMac,
    /// Precharge all banks.
    PreAll,
}

/// One macro PIM command — a whole operation, scheduled as a unit.
///
/// # Examples
///
/// ```
/// use ianus_pim::{GemvShape, MacroCommand};
/// let cmd = MacroCommand::Gemv(GemvShape::new(4096, 1024));
/// assert!(matches!(cmd, MacroCommand::Gemv(_)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacroCommand {
    /// Matrix-vector multiply (optionally batched over tokens, optionally
    /// fused with GELU — the paper fuses FFN GELU into the PIM FC).
    Gemv(GemvShape),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_commands_are_value_types() {
        let a = MicroCommand::ActAll { banks: 4, row: 9 };
        let b = a;
        assert_eq!(a, b);
        assert_ne!(a, MicroCommand::Mac);
    }

    #[test]
    fn macro_command_carries_shape() {
        let MacroCommand::Gemv(shape) = MacroCommand::Gemv(GemvShape::new(128, 1024));
        assert_eq!(shape.out_rows, 128);
    }
}
