//! Property tests for the FR-FCFS memory controller.

use ianus_dram::{GddrOrganization, GddrTimings, MemoryController, Request};
use proptest::prelude::*;

fn org() -> GddrOrganization {
    GddrOrganization::ianus_default()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every request either hits the row buffer, conflicts, or is the
    /// bank's first activation — the three counts must account for the
    /// whole stream.
    #[test]
    fn hits_plus_conflicts_bounded(addrs in prop::collection::vec(0u64..(1 << 26), 1..300)) {
        let reqs: Vec<Request> = addrs
            .iter()
            .map(|&a| Request { addr: a & !31, write: a % 3 == 0 })
            .collect();
        let mut mc = MemoryController::new(org(), GddrTimings::ianus_default());
        let done = mc.run(&reqs);
        prop_assert_eq!(done.len(), reqs.len());
        prop_assert!(mc.row_hits() + mc.row_conflicts() <= reqs.len() as u64);
        // First-touch activations: at most one per bank.
        let first_touches = reqs.len() as u64 - mc.row_hits() - mc.row_conflicts();
        prop_assert!(first_touches <= u64::from(org().channels * org().banks_per_channel));
    }

    /// Completion times on one channel are strictly increasing (the data
    /// bus serializes bursts) and the makespan is at least the pure
    /// serialization bound for the busiest channel.
    #[test]
    fn channel_serialization_bound(count in 1usize..400) {
        // All requests to channel 0 (addresses below one channel stride
        // pattern): sequential columns in one bank row region.
        let reqs: Vec<Request> = (0..count as u64)
            .map(|i| Request { addr: (i % 64) * 32, write: false })
            .collect();
        let mut mc = MemoryController::new(org(), GddrTimings::ianus_default());
        let done = mc.run(&reqs);
        for w in done.windows(2) {
            prop_assert!(w[1].done > w[0].done);
        }
        let makespan = done.last().unwrap().done;
        // 32 B per burst at 32 B/ns: at least `count` ns.
        prop_assert!(makespan.as_ns_f64() >= count as f64 - 1.0);
    }

    /// Determinism: identical streams produce identical completions.
    #[test]
    fn controller_deterministic(addrs in prop::collection::vec(0u64..(1 << 24), 1..100)) {
        let reqs: Vec<Request> = addrs
            .iter()
            .map(|&a| Request { addr: a & !31, write: false })
            .collect();
        let a = MemoryController::new(org(), GddrTimings::ianus_default()).run(&reqs);
        let b = MemoryController::new(org(), GddrTimings::ianus_default()).run(&reqs);
        prop_assert_eq!(a, b);
    }
}
