//! Closed-form bulk transfer cost model for normal (non-PIM) DRAM traffic.
//!
//! NPU DMA traffic in IANUS is overwhelmingly long sequential streams
//! (weight matrices, KV cache blocks). Under the Figure 5 address mapping a
//! stream walks columns within a bank row, then banks, then channels, then
//! rows — so per-bank activate/precharge latency overlaps with transfers
//! from the 15 other banks, and sustained bandwidth approaches the pin rate.
//! We model a stream as: fixed access latency (first activate + tRCDRD),
//! then pin-rate data transfer de-rated by a row-turnaround efficiency.

use crate::{GddrOrganization, GddrTimings};
use ianus_sim::Duration;

/// Cost model for bulk sequential reads/writes.
///
/// # Examples
///
/// ```
/// use ianus_dram::{GddrOrganization, GddrTimings, TransferModel};
/// let org = GddrOrganization::ianus_default();
/// let m = TransferModel::new(org, GddrTimings::ianus_default());
/// // 256 MB over 8 channels at ~32 GB/s/channel: ~1 ms.
/// let t = m.bulk_read(256 << 20, 8);
/// assert!(t.as_ms_f64() > 0.9 && t.as_ms_f64() < 1.3);
/// // More channels, faster:
/// assert!(m.bulk_read(1 << 20, 8) < m.bulk_read(1 << 20, 2));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct TransferModel {
    org: GddrOrganization,
    timings: GddrTimings,
    refresh: bool,
}

impl Default for TransferModel {
    fn default() -> Self {
        TransferModel::new(
            GddrOrganization::ianus_default(),
            GddrTimings::ianus_default(),
        )
    }
}

impl TransferModel {
    /// Creates a model from an organization and timing set. Refresh
    /// modelling is off by default (the paper's 256 GB/s is nominal);
    /// enable it with [`Self::with_refresh`] for the refresh ablation.
    pub fn new(org: GddrOrganization, timings: GddrTimings) -> Self {
        TransferModel {
            org,
            timings,
            refresh: false,
        }
    }

    /// Enables or disables refresh-overhead derating (tRFC per tREFI of
    /// lost bandwidth).
    pub fn with_refresh(mut self, refresh: bool) -> Self {
        self.refresh = refresh;
        self
    }

    /// Organization the model was built with.
    pub fn organization(&self) -> GddrOrganization {
        self.org
    }

    /// Fraction of pin bandwidth sustained by an interleaved sequential
    /// stream.
    ///
    /// Each bank supplies a 2 KB row in 64 ns of bursts and needs
    /// tRAS+tRP = 51 ns of turnaround; with 16 banks interleaved the
    /// turnaround of one bank hides behind 15 banks' worth of data, so the
    /// efficiency is `min(1, banks*row_time / (row_cycle + ... ))`, which
    /// saturates at 1.0 for the default organization. The model still
    /// de-rates streams too short to cover the first row activation.
    pub fn stream_efficiency(&self) -> f64 {
        let row_transfer_ns = self.org.row_bytes as f64 / self.org.channel_bandwidth_bytes_per_ns();
        let turnaround_ns = self.timings.row_cycle().as_ns_f64();
        let banks = self.org.banks_per_channel as f64;
        // One bank must re-open its next row while the other banks stream.
        let eff = ((banks - 1.0) * row_transfer_ns / turnaround_ns).min(1.0);
        if self.refresh {
            eff * (1.0 - self.timings.refresh_overhead())
        } else {
            eff
        }
    }

    /// Fixed latency before the first data beat of a read stream.
    pub fn read_latency(&self) -> Duration {
        self.timings.t_rcd_rd + self.timings.t_ck * 2
    }

    /// Fixed latency before the first data beat of a write stream.
    pub fn write_latency(&self) -> Duration {
        self.timings.t_rcd_wr + self.timings.t_ck * 2
    }

    /// Duration of a sequential read of `bytes` striped across `channels`
    /// channels.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or exceeds the organization's channels.
    pub fn bulk_read(&self, bytes: u64, channels: u32) -> Duration {
        self.read_latency() + self.data_time(bytes, channels)
    }

    /// Duration of a sequential write of `bytes` striped across `channels`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero or exceeds the organization's channels.
    pub fn bulk_write(&self, bytes: u64, channels: u32) -> Duration {
        self.write_latency() + self.data_time(bytes, channels)
    }

    /// Pure data-beat time (no fixed latency), used when modelling streams
    /// pipelined behind other work.
    pub fn data_time(&self, bytes: u64, channels: u32) -> Duration {
        assert!(
            channels > 0 && channels <= self.org.channels,
            "channel count {channels} out of range"
        );
        if bytes == 0 {
            return Duration::ZERO;
        }
        let bw =
            self.org.channel_bandwidth_bytes_per_ns() * channels as f64 * self.stream_efficiency();
        // Transfers are whole bursts.
        let bursts = bytes.div_ceil(u64::from(self.org.burst_bytes));
        let eff_bytes = bursts * u64::from(self.org.burst_bytes);
        Duration::from_ns_f64(eff_bytes as f64 / bw)
    }

    /// Effective sustained bandwidth over `channels` channels, in GB/s.
    pub fn effective_bandwidth_gbps(&self, channels: u32) -> f64 {
        self.org.channel_bandwidth_bytes_per_ns() * channels as f64 * self.stream_efficiency()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> TransferModel {
        TransferModel::default()
    }

    #[test]
    fn efficiency_saturates_for_default_org() {
        // 15 banks × 64 ns row transfer ≫ 51 ns turnaround.
        assert_eq!(model().stream_efficiency(), 1.0);
    }

    #[test]
    fn bandwidth_matches_table2() {
        assert_eq!(model().effective_bandwidth_gbps(8), 256.0);
    }

    #[test]
    fn zero_bytes_costs_only_latency() {
        let m = model();
        assert_eq!(m.bulk_read(0, 8), m.read_latency());
        assert_eq!(m.data_time(0, 4), Duration::ZERO);
    }

    #[test]
    fn rounds_up_to_burst() {
        let m = model();
        assert_eq!(m.data_time(1, 8), m.data_time(32, 8));
        assert!(m.data_time(33, 8) > m.data_time(32, 8));
    }

    #[test]
    fn scales_with_channels() {
        let m = model();
        let one = m.data_time(1 << 20, 1);
        let eight = m.data_time(1 << 20, 8);
        let ratio = one.as_ns_f64() / eight.as_ns_f64();
        assert!((ratio - 8.0).abs() < 0.01, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn too_many_channels_panics() {
        let _ = model().data_time(64, 9);
    }

    #[test]
    fn refresh_derates_bandwidth() {
        let base = model();
        let with = TransferModel::default().with_refresh(true);
        assert!(with.stream_efficiency() < base.stream_efficiency());
        assert!(with.effective_bandwidth_gbps(8) > 230.0);
        assert!(with.bulk_read(1 << 24, 8) > base.bulk_read(1 << 24, 8));
    }

    #[test]
    fn gpt2_xl_weight_stream_time() {
        // 3.2 GB of weights at 256 GB/s ≈ 12.5 ms — the paper's NPU-MEM
        // generation bottleneck (≈ 15.5 ms/token including compute).
        let m = model();
        let t = m.bulk_read(3_200_000_000, 8);
        assert!(t.as_ms_f64() > 11.0 && t.as_ms_f64() < 14.0, "{t}");
    }
}
