//! The paper's Figure 5 DRAM address mapping.
//!
//! IANUS maps physical addresses as **(MSB) Row – Channel – Bank – Column –
//! Offset (LSB)**. The row address indexes a PIM *tile*, so all data of one
//! tile shares a row address (no row conflicts during a tile's computation),
//! while the channel/bank bits in the middle spread each tile row across
//! every channel and bank (maximizing all-bank/all-channel parallelism), and
//! the column bits at the LSB keep each 1024-element matrix row inside a
//! single bank's processing unit.

use crate::GddrOrganization;

/// A fully decoded DRAM location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Location {
    /// Row (page) index inside the bank — also the PIM tile index.
    pub row: u64,
    /// Channel index.
    pub channel: u32,
    /// Bank index inside the channel.
    pub bank: u32,
    /// Column burst index inside the row.
    pub column: u32,
    /// Byte offset inside the burst.
    pub offset: u32,
}

/// Encoder/decoder for the Row–Channel–Bank–Column mapping of Figure 5.
///
/// # Examples
///
/// ```
/// use ianus_dram::{AddressMapping, GddrOrganization};
/// let map = AddressMapping::new(GddrOrganization::ianus_default());
/// let addr = 0xDEAD_BEEF;
/// let loc = map.decode(addr);
/// assert_eq!(map.encode(&loc), addr);
/// // Consecutive bursts stay in the same bank (column is LSB above offset):
/// let next = map.decode(addr & !0x1F);
/// let nn = map.decode((addr & !0x1F) + 32);
/// assert_eq!((next.channel, next.bank), (nn.channel, nn.bank));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMapping {
    org: GddrOrganization,
    offset_bits: u32,
    column_bits: u32,
    bank_bits: u32,
    channel_bits: u32,
}

fn bits_for(n: u32) -> u32 {
    assert!(n.is_power_of_two(), "dimension {n} must be a power of two");
    n.trailing_zeros()
}

impl AddressMapping {
    /// Creates the mapping for a given organization.
    ///
    /// # Panics
    ///
    /// Panics if any dimension of the organization is not a power of two.
    pub fn new(org: GddrOrganization) -> Self {
        AddressMapping {
            org,
            offset_bits: bits_for(org.burst_bytes),
            column_bits: bits_for(org.row_bytes / org.burst_bytes),
            bank_bits: bits_for(org.banks_per_channel),
            channel_bits: bits_for(org.channels),
        }
    }

    /// The organization this mapping was built for.
    pub fn organization(&self) -> GddrOrganization {
        self.org
    }

    /// Decodes a physical byte address into a [`Location`].
    pub fn decode(&self, addr: u64) -> Location {
        let mut a = addr;
        let offset = (a & ((1 << self.offset_bits) - 1)) as u32;
        a >>= self.offset_bits;
        let column = (a & ((1 << self.column_bits) - 1)) as u32;
        a >>= self.column_bits;
        let bank = (a & ((1 << self.bank_bits) - 1)) as u32;
        a >>= self.bank_bits;
        let channel = (a & ((1 << self.channel_bits) - 1)) as u32;
        a >>= self.channel_bits;
        Location {
            row: a,
            channel,
            bank,
            column,
            offset,
        }
    }

    /// Encodes a [`Location`] back into a physical byte address.
    pub fn encode(&self, loc: &Location) -> u64 {
        let mut a = loc.row;
        a = (a << self.channel_bits) | u64::from(loc.channel);
        a = (a << self.bank_bits) | u64::from(loc.bank);
        a = (a << self.column_bits) | u64::from(loc.column);
        (a << self.offset_bits) | u64::from(loc.offset)
    }

    /// Bytes covered by one row address across all channels and banks —
    /// i.e. the footprint of one PIM tile.
    ///
    /// With the default organization this is 2 KB × 16 banks × 8 channels
    /// = 256 KB, matching the Figure 4 tile of (16 × 8) rows × 1024 BF16.
    pub fn tile_bytes(&self) -> u64 {
        u64::from(self.org.row_bytes)
            * u64::from(self.org.banks_per_channel)
            * u64::from(self.org.channels)
    }

    /// The tile (row) index that a byte address belongs to.
    pub fn tile_of(&self, addr: u64) -> u64 {
        self.decode(addr).row
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> AddressMapping {
        AddressMapping::new(GddrOrganization::ianus_default())
    }

    #[test]
    fn roundtrip_simple() {
        let m = map();
        for addr in [0u64, 31, 32, 2047, 2048, 1 << 20, (8u64 << 30) - 1] {
            assert_eq!(m.encode(&m.decode(addr)), addr, "addr {addr:#x}");
        }
    }

    #[test]
    fn field_layout_matches_figure5() {
        let m = map();
        // offset: 5 bits, column: 6 bits, bank: 4, channel: 3, row above.
        let loc = m.decode(1 << 5);
        assert_eq!(loc.column, 1);
        let loc = m.decode(1 << 11);
        assert_eq!(loc.bank, 1);
        let loc = m.decode(1 << 15);
        assert_eq!(loc.channel, 1);
        let loc = m.decode(1 << 18);
        assert_eq!(loc.row, 1);
    }

    #[test]
    fn tile_shares_row_address() {
        let m = map();
        let tile = m.tile_bytes();
        assert_eq!(tile, 256 * 1024);
        // every byte in [0, tile) decodes to row 0
        for addr in (0..tile).step_by(4096) {
            assert_eq!(m.decode(addr).row, 0);
        }
        assert_eq!(m.decode(tile).row, 1);
    }

    #[test]
    fn matrix_row_stays_in_one_bank() {
        // 1024 BF16 = 2048 B = one DRAM row: consecutive addresses within
        // a 2 KB block must land in the same (channel, bank).
        let m = map();
        let base = 123 * 2048u64;
        let l0 = m.decode(base);
        for delta in (0..2048).step_by(32) {
            let l = m.decode(base + delta);
            assert_eq!((l.channel, l.bank, l.row), (l0.channel, l0.bank, l0.row));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let mut org = GddrOrganization::ianus_default();
        org.channels = 6;
        let _ = AddressMapping::new(org);
    }
}
