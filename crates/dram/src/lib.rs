//! GDDR6 DRAM device model for the IANUS unified memory system.
//!
//! IANUS (ASPLOS 2024) uses GDDR6-based AiM devices as *both* the NPU's main
//! memory and the PIM compute substrate. This crate models the plain-DRAM
//! half of that story:
//!
//! * [`GddrTimings`] / [`GddrOrganization`] — the Table 1 device parameters
//!   (16 Gb/s/pin ×16, 8 channels, 16 banks/channel, 2 KB rows, tCK = 0.5 ns,
//!   tCCD = 1 ns, tRAS = 21 ns, tRP = 30 ns, tRCDRD = 36 ns, tRCDWR = 24 ns,
//!   tWR = 36 ns).
//! * [`AddressMapping`] — the paper's Figure 5 Row–Channel–Bank–Column
//!   mapping that places one PIM tile per row address so PIM computation
//!   never row-conflicts within a tile.
//! * [`BankState`] — a per-bank state machine that validates command
//!   legality and timing; the PIM crate drives it with micro-command
//!   streams and the closed-form models are tested against it.
//! * [`TransferModel`] — closed-form cost of bulk sequential reads/writes
//!   (NPU DMA traffic), with bank-interleaving assumptions that match the
//!   address mapping.
//!
//! # Examples
//!
//! ```
//! use ianus_dram::{AddressMapping, GddrOrganization, GddrTimings, TransferModel};
//!
//! let org = GddrOrganization::ianus_default();
//! let map = AddressMapping::new(org);
//! let loc = map.decode(0);
//! assert_eq!((loc.row, loc.channel, loc.bank, loc.column), (0, 0, 0, 0));
//!
//! // Reading 1 MiB striped over all 8 channels at 32 B/ns/channel.
//! let xfer = TransferModel::new(org, GddrTimings::ianus_default());
//! let t = xfer.bulk_read(1 << 20, org.channels);
//! assert!(t.as_us_f64() > 3.9 && t.as_us_f64() < 4.6);
//! ```

mod address;
mod bank;
mod controller;
mod params;
mod transfer;

pub use address::{AddressMapping, Location};
pub use bank::{BankCommand, BankState, TimingError};
pub use controller::{Completion, MemoryController, Request};
pub use params::{GddrOrganization, GddrTimings};
pub use transfer::TransferModel;
