//! Device organization and timing parameters (paper Table 1).

use ianus_sim::Duration;

/// Physical organization of the GDDR6/AiM memory system attached to one
/// IANUS device.
///
/// The paper's configuration: 8 channels of ×16 GDDR6 at 16 Gb/s/pin
/// (32 B/ns per channel, 256 GB/s aggregate external bandwidth), 2 channels
/// per chip, 16 banks per channel, 2 KB rows, 8 GB total capacity.
///
/// # Examples
///
/// ```
/// use ianus_dram::GddrOrganization;
/// let org = GddrOrganization::ianus_default();
/// assert_eq!(org.external_bandwidth_gbps(), 256.0);
/// assert_eq!(org.capacity_bytes(), 8 << 30);
/// assert_eq!(org.rows_per_bank(), 32768);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GddrOrganization {
    /// Number of independent channels (paper: 8).
    pub channels: u32,
    /// Channels packaged per GDDR6-AiM chip (paper: 2).
    pub channels_per_chip: u32,
    /// Banks per channel (paper: 16).
    pub banks_per_channel: u32,
    /// Row (page) size in bytes (paper: 2 KB).
    pub row_bytes: u32,
    /// Bytes transferred per column burst (BL16 on a ×16 interface: 32 B).
    pub burst_bytes: u32,
    /// Per-pin data rate in Gb/s (paper: 16).
    pub pin_gbps: u32,
    /// Data pins per channel (×16 organization).
    pub pins: u32,
    /// Total capacity in bytes (paper: 8 GB).
    pub capacity: u64,
}

impl GddrOrganization {
    /// The paper's Table 1 organization.
    pub fn ianus_default() -> Self {
        GddrOrganization {
            channels: 8,
            channels_per_chip: 2,
            banks_per_channel: 16,
            row_bytes: 2048,
            burst_bytes: 32,
            pin_gbps: 16,
            pins: 16,
            capacity: 8 << 30,
        }
    }

    /// The clamshell configuration the paper's Section 7.1 mentions as
    /// the alternative capacity-scaling path: two ×8-mode devices share
    /// each channel, doubling capacity (16 GB) at unchanged per-channel
    /// bandwidth and bank count.
    pub fn ianus_clamshell() -> Self {
        GddrOrganization {
            capacity: 16 << 30,
            ..Self::ianus_default()
        }
    }

    /// Number of physical AiM chips.
    pub fn chips(&self) -> u32 {
        self.channels / self.channels_per_chip
    }

    /// Peak external (pin) bandwidth of one channel in bytes/ns (= GB/s).
    pub fn channel_bandwidth_bytes_per_ns(&self) -> f64 {
        (self.pin_gbps as f64 * self.pins as f64) / 8.0
    }

    /// Peak aggregate external bandwidth in GB/s.
    pub fn external_bandwidth_gbps(&self) -> f64 {
        self.channel_bandwidth_bytes_per_ns() * self.channels as f64
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity
    }

    /// Capacity of a single bank in bytes.
    pub fn bank_bytes(&self) -> u64 {
        self.capacity / u64::from(self.channels * self.banks_per_channel)
    }

    /// Number of rows in each bank.
    pub fn rows_per_bank(&self) -> u64 {
        self.bank_bytes() / u64::from(self.row_bytes)
    }

    /// Column bursts per row.
    pub fn bursts_per_row(&self) -> u32 {
        self.row_bytes / self.burst_bytes
    }

    /// Time for one column burst on the data pins.
    pub fn burst_duration(&self) -> Duration {
        // bytes / (bytes per ns)
        Duration::from_ns_f64(self.burst_bytes as f64 / self.channel_bandwidth_bytes_per_ns())
    }
}

/// DRAM timing parameters in the paper's Table 1.
///
/// All values are the paper's; `t_rrd` and `act_group` govern how all-bank
/// activation is staged for PIM (banks activate in power-limited groups),
/// which Table 1 leaves implicit — defaults follow GDDR6 datasheets.
///
/// # Examples
///
/// ```
/// use ianus_dram::GddrTimings;
/// let t = GddrTimings::ianus_default();
/// assert_eq!(t.t_rp.as_ns_f64(), 30.0);
/// assert_eq!(t.t_ccd_l.as_ns_f64(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GddrTimings {
    /// Command clock period (0.5 ns).
    pub t_ck: Duration,
    /// Column-to-column delay, different bank group (1 ns).
    pub t_ccd_s: Duration,
    /// Column-to-column delay, same bank group (1 ns).
    pub t_ccd_l: Duration,
    /// Minimum row-active time before precharge (21 ns).
    pub t_ras: Duration,
    /// Write recovery time (36 ns).
    pub t_wr: Duration,
    /// Precharge period (30 ns).
    pub t_rp: Duration,
    /// Activate-to-read delay (36 ns).
    pub t_rcd_rd: Duration,
    /// Activate-to-write delay (24 ns).
    pub t_rcd_wr: Duration,
    /// Activate-to-activate delay between different banks (power limit).
    pub t_rrd: Duration,
    /// Banks that may activate simultaneously in one PIM `ACT_ALL` stage.
    pub act_group: u32,
    /// Average refresh interval (one refresh command per tREFI).
    pub t_refi: Duration,
    /// Refresh cycle time (bank unavailable per refresh).
    pub t_rfc: Duration,
}

impl GddrTimings {
    /// The paper's Table 1 timings.
    pub fn ianus_default() -> Self {
        GddrTimings {
            t_ck: Duration::from_ps(500),
            t_ccd_s: Duration::from_ns(1),
            t_ccd_l: Duration::from_ns(1),
            t_ras: Duration::from_ns(21),
            t_wr: Duration::from_ns(36),
            t_rp: Duration::from_ns(30),
            t_rcd_rd: Duration::from_ns(36),
            t_rcd_wr: Duration::from_ns(24),
            t_rrd: Duration::from_ns(2),
            act_group: 4,
            t_refi: Duration::from_ns(1900),
            t_rfc: Duration::from_ns(120),
        }
    }

    /// Full row cycle: activate, min active window, precharge.
    pub fn row_cycle(&self) -> Duration {
        self.t_ras + self.t_rp
    }

    /// Fraction of time a bank spends refreshing (bandwidth lost to
    /// refresh when it cannot be hidden behind other banks).
    pub fn refresh_overhead(&self) -> f64 {
        self.t_rfc.as_ns_f64() / self.t_refi.as_ns_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_organization_matches_table1() {
        let org = GddrOrganization::ianus_default();
        assert_eq!(org.chips(), 4);
        assert_eq!(org.channel_bandwidth_bytes_per_ns(), 32.0);
        assert_eq!(org.external_bandwidth_gbps(), 256.0);
        assert_eq!(org.bank_bytes(), 64 << 20);
        assert_eq!(org.bursts_per_row(), 64);
        assert_eq!(org.burst_duration(), Duration::from_ns(1));
    }

    #[test]
    fn clamshell_doubles_capacity_only() {
        let base = GddrOrganization::ianus_default();
        let clam = GddrOrganization::ianus_clamshell();
        assert_eq!(clam.capacity_bytes(), 2 * base.capacity_bytes());
        assert_eq!(
            clam.external_bandwidth_gbps(),
            base.external_bandwidth_gbps()
        );
        assert_eq!(clam.rows_per_bank(), 2 * base.rows_per_bank());
    }

    #[test]
    fn refresh_overhead_small() {
        let t = GddrTimings::ianus_default();
        let o = t.refresh_overhead();
        assert!(o > 0.03 && o < 0.10, "{o}");
    }

    #[test]
    fn default_timings_match_table1() {
        let t = GddrTimings::ianus_default();
        assert_eq!(t.t_ck.as_ps(), 500);
        assert_eq!(t.t_ras.as_ns_f64(), 21.0);
        assert_eq!(t.t_wr.as_ns_f64(), 36.0);
        assert_eq!(t.t_rcd_rd.as_ns_f64(), 36.0);
        assert_eq!(t.t_rcd_wr.as_ns_f64(), 24.0);
        assert_eq!(t.row_cycle().as_ns_f64(), 51.0);
    }
}
