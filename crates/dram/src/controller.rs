//! Request-level memory controller (FR-FCFS) — the reference model for
//! normal DRAM traffic.
//!
//! The paper's PIM memory controller "supports both PIM commands and
//! normal memory commands … tracks the state of each memory bank and
//! generates appropriate commands following pre-defined timing
//! constraints". The PIM half of that statement is `ianus_pim`'s micro
//! executor; this module is the *normal* half: a controller that takes a
//! stream of read/write requests, decodes them through the Figure 5
//! address mapping, keeps per-bank [`BankState`] machines, schedules with
//! first-ready–first-come-first-served (open-row hits bypass waiting
//! conflicts), and reports the completion time.
//!
//! Like the PIM executor it is used as ground truth: the closed-form
//! [`crate::TransferModel`] used on simulator hot paths is validated
//! against it in tests (sequential streams must sustain the pin rate;
//! pathological row-conflict streams must not).

use crate::{AddressMapping, BankCommand, BankState, GddrOrganization, GddrTimings};
use ianus_sim::{Duration, Time};

/// A memory request (one burst).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Request {
    /// Physical byte address (rounded down to burst granularity).
    pub addr: u64,
    /// Write (true) or read (false).
    pub write: bool,
}

/// Per-request completion record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// Index of the request in the submitted order.
    pub index: usize,
    /// Time the data burst finished on the pins.
    pub done: Time,
}

/// FR-FCFS memory controller over one device's channels.
///
/// # Examples
///
/// ```
/// use ianus_dram::{GddrOrganization, GddrTimings, MemoryController, Request};
///
/// let mut mc = MemoryController::new(
///     GddrOrganization::ianus_default(),
///     GddrTimings::ianus_default(),
/// );
/// // Two reads in the same row: the second is a row hit.
/// let reqs = [
///     Request { addr: 0, write: false },
///     Request { addr: 32, write: false },
/// ];
/// let done = mc.run(&reqs);
/// assert_eq!(done.len(), 2);
/// assert!(done[1].done > done[0].done);
/// ```
#[derive(Debug)]
pub struct MemoryController {
    org: GddrOrganization,
    mapping: AddressMapping,
    banks: Vec<BankState>,    // [channel][bank] flattened
    data_bus_free: Vec<Time>, // per channel
    row_hits: u64,
    row_conflicts: u64,
}

impl MemoryController {
    /// Creates an idle controller.
    pub fn new(org: GddrOrganization, timings: GddrTimings) -> Self {
        let n = (org.channels * org.banks_per_channel) as usize;
        MemoryController {
            org,
            mapping: AddressMapping::new(org),
            banks: (0..n).map(|_| BankState::new(timings)).collect(),
            data_bus_free: vec![Time::ZERO; org.channels as usize],
            row_hits: 0,
            row_conflicts: 0,
        }
    }

    /// Row-buffer hits served so far.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer conflicts (precharge + activate) served so far.
    pub fn row_conflicts(&self) -> u64 {
        self.row_conflicts
    }

    fn bank_index(&self, channel: u32, bank: u32) -> usize {
        (channel * self.org.banks_per_channel + bank) as usize
    }

    /// Executes a request stream with FR-FCFS per-bank scheduling:
    /// requests are taken in order per bank; a request to an already-open
    /// row issues immediately (row hit), otherwise the controller
    /// precharges and activates first.
    ///
    /// Returns completions in submission order.
    pub fn run(&mut self, requests: &[Request]) -> Vec<Completion> {
        let burst = self.org.burst_duration();
        let mut completions = Vec::with_capacity(requests.len());
        for (index, req) in requests.iter().enumerate() {
            let loc = self.mapping.decode(req.addr);
            let bi = self.bank_index(loc.channel, loc.bank);
            // Open the right row.
            let open = self.banks[bi].open_row();
            let want = Time::ZERO;
            if open != Some(loc.row) {
                if open.is_some() {
                    self.row_conflicts += 1;
                    self.banks[bi]
                        .issue(want, BankCommand::Precharge)
                        .expect("row open before precharge");
                }
                self.banks[bi]
                    .issue(want, BankCommand::Activate { row: loc.row })
                    .expect("bank idle before activate");
            } else {
                self.row_hits += 1;
            }
            let cmd = if req.write {
                BankCommand::Write
            } else {
                BankCommand::Read
            };
            // Column command issues when both the bank and the channel's
            // data pins allow it; the burst occupies the pins afterwards.
            let bus = self.data_bus_free[loc.channel as usize];
            let issue = self.banks[bi].issue(bus, cmd).expect("row is open");
            let done = issue.max(bus) + burst;
            self.data_bus_free[loc.channel as usize] = done;
            completions.push(Completion { index, done });
        }
        completions
    }

    /// Total makespan of a request stream run on a fresh controller.
    pub fn stream_makespan(
        org: GddrOrganization,
        timings: GddrTimings,
        requests: &[Request],
    ) -> Duration {
        let mut mc = MemoryController::new(org, timings);
        let completions = mc.run(requests);
        completions
            .iter()
            .map(|c| c.done)
            .max()
            .unwrap_or(Time::ZERO)
            .since(Time::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransferModel;

    fn org() -> GddrOrganization {
        GddrOrganization::ianus_default()
    }

    fn timings() -> GddrTimings {
        GddrTimings::ianus_default()
    }

    /// Sequential addresses (the Figure 5 mapping walks columns, banks,
    /// channels) must sustain ~pin bandwidth — the closed-form
    /// TransferModel's core assumption.
    #[test]
    fn sequential_stream_matches_closed_form() {
        let bytes: u64 = 4 << 20;
        let reqs: Vec<Request> = (0..bytes / 32)
            .map(|i| Request {
                addr: i * 32,
                write: false,
            })
            .collect();
        let measured = MemoryController::stream_makespan(org(), timings(), &reqs);
        let model = TransferModel::new(org(), timings()).bulk_read(bytes, 8);
        let rel = (measured.as_ns_f64() - model.as_ns_f64()).abs() / model.as_ns_f64();
        assert!(rel < 0.05, "controller {measured} vs model {model}");
    }

    #[test]
    fn sequential_stream_is_mostly_row_hits() {
        let mut mc = MemoryController::new(org(), timings());
        let reqs: Vec<Request> = (0..64 * 1024u64)
            .map(|i| Request {
                addr: i * 32,
                write: false,
            })
            .collect();
        mc.run(&reqs);
        let hits = mc.row_hits() as f64 / reqs.len() as f64;
        assert!(hits > 0.95, "hit rate {hits}");
    }

    /// A stream that ping-pongs between two rows of one bank conflicts on
    /// every access and collapses to the row-cycle rate — the behaviour
    /// the Figure 5 mapping is designed to avoid for PIM tiles.
    #[test]
    fn row_conflict_stream_is_slow() {
        let map = AddressMapping::new(org());
        let tile = map.tile_bytes();
        let n = 512u64;
        let reqs: Vec<Request> = (0..n)
            .map(|i| Request {
                addr: (i % 2) * tile,
                write: false,
            })
            .collect();
        let conflict = MemoryController::stream_makespan(org(), timings(), &reqs);
        let seq: Vec<Request> = (0..n)
            .map(|i| Request {
                addr: i * 32,
                write: false,
            })
            .collect();
        let sequential = MemoryController::stream_makespan(org(), timings(), &seq);
        assert!(
            conflict.as_ns_f64() > 10.0 * sequential.as_ns_f64(),
            "conflict {conflict} vs sequential {sequential}"
        );
    }

    #[test]
    fn writes_respect_write_recovery() {
        // Alternate-row writes to one bank pay tWR before each precharge.
        let map = AddressMapping::new(org());
        let tile = map.tile_bytes();
        let reqs: Vec<Request> = (0..16u64)
            .map(|i| Request {
                addr: (i % 2) * tile,
                write: true,
            })
            .collect();
        let writes = MemoryController::stream_makespan(org(), timings(), &reqs);
        let reads: Vec<Request> = reqs
            .iter()
            .map(|r| Request { write: false, ..*r })
            .collect();
        let read_time = MemoryController::stream_makespan(org(), timings(), &reads);
        assert!(writes > read_time);
    }

    #[test]
    fn completions_in_submission_order_per_bank() {
        let mut mc = MemoryController::new(org(), timings());
        let reqs: Vec<Request> = (0..32u64)
            .map(|i| Request {
                addr: i * 32,
                write: false,
            })
            .collect();
        let done = mc.run(&reqs);
        // Same bank (first 64 bursts share a row): completions monotone.
        for w in done.windows(2) {
            assert!(w[1].done > w[0].done);
        }
    }
}
