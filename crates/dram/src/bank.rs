//! Per-bank DRAM state machine with timing-constraint checking.
//!
//! The PIM micro-command executor (in `ianus-pim`) drives one `BankState`
//! per bank to produce reference timings; the closed-form macro-command
//! models are unit-tested against it. Normal (non-PIM) traffic uses the
//! closed-form [`crate::TransferModel`] instead — simulating every burst of
//! multi-gigabyte weight streams would be prohibitively slow.

use crate::GddrTimings;
use ianus_sim::Time;
use std::fmt;

/// Commands understood by a single bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankCommand {
    /// Open `row`.
    Activate { row: u64 },
    /// Column read burst (also models a PIM `MAC` read, which shares read
    /// timing).
    Read,
    /// Column write burst.
    Write,
    /// Close the open row.
    Precharge,
}

/// Reasons a command cannot legally issue at a given time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimingError {
    /// Activate issued while a row is already open.
    RowAlreadyOpen,
    /// Read/write issued with no open row, or to the wrong row.
    RowNotOpen,
    /// Precharge with no row open.
    NothingToPrecharge,
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::RowAlreadyOpen => write!(f, "activate while a row is open"),
            TimingError::RowNotOpen => write!(f, "column access to a closed or different row"),
            TimingError::NothingToPrecharge => write!(f, "precharge with no open row"),
        }
    }
}

impl std::error::Error for TimingError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RowState {
    Idle,
    Active(u64),
}

/// Timing state of one DRAM bank.
///
/// `issue` returns the earliest legal issue time for the command (respecting
/// tRP/tRCD/tRAS/tWR/tCCD) and advances internal state; the caller supplies
/// the time it *wants* to issue and receives the constrained time.
///
/// # Examples
///
/// ```
/// use ianus_dram::{BankCommand, BankState, GddrTimings};
/// use ianus_sim::Time;
///
/// let mut bank = BankState::new(GddrTimings::ianus_default());
/// let t0 = bank.issue(Time::ZERO, BankCommand::Activate { row: 7 }).unwrap();
/// let t1 = bank.issue(t0, BankCommand::Read).unwrap();
/// // First read waits tRCDRD = 36 ns after the activate.
/// assert_eq!((t1 - t0).as_ns_f64(), 36.0);
/// ```
#[derive(Debug, Clone)]
pub struct BankState {
    timings: GddrTimings,
    state: RowState,
    last_activate: Time,
    last_read: Time,
    last_write: Time,
    precharge_ready: Time,
    /// Earliest time a future activate may issue (after precharge completes).
    activate_ready: Time,
    issued: u64,
}

impl BankState {
    /// Creates an idle bank.
    pub fn new(timings: GddrTimings) -> Self {
        BankState {
            timings,
            state: RowState::Idle,
            last_activate: Time::ZERO,
            last_read: Time::ZERO,
            last_write: Time::ZERO,
            precharge_ready: Time::ZERO,
            activate_ready: Time::ZERO,
            issued: 0,
        }
    }

    /// Currently open row, if any.
    pub fn open_row(&self) -> Option<u64> {
        match self.state {
            RowState::Idle => None,
            RowState::Active(r) => Some(r),
        }
    }

    /// Total commands issued.
    pub fn issued(&self) -> u64 {
        self.issued
    }

    /// Issues `cmd` no earlier than `want`, returning the actual issue time.
    ///
    /// # Errors
    ///
    /// Returns a [`TimingError`] if the command is illegal in the current
    /// row state (e.g. reading from a closed row).
    pub fn issue(&mut self, want: Time, cmd: BankCommand) -> Result<Time, TimingError> {
        let t = self.timings;
        let at = match cmd {
            BankCommand::Activate { row } => {
                if self.state != RowState::Idle {
                    return Err(TimingError::RowAlreadyOpen);
                }
                let at = want.max(self.activate_ready);
                self.state = RowState::Active(row);
                self.last_activate = at;
                // tRAS lower-bounds the next precharge.
                self.precharge_ready = at + t.t_ras;
                at
            }
            BankCommand::Read => {
                if self.state == RowState::Idle {
                    return Err(TimingError::RowNotOpen);
                }
                let at = want
                    .max(self.last_activate + t.t_rcd_rd)
                    .max(self.last_read + t.t_ccd_l)
                    .max(self.last_write + t.t_ccd_l);
                self.last_read = at;
                at
            }
            BankCommand::Write => {
                if self.state == RowState::Idle {
                    return Err(TimingError::RowNotOpen);
                }
                let at = want
                    .max(self.last_activate + t.t_rcd_wr)
                    .max(self.last_write + t.t_ccd_l)
                    .max(self.last_read + t.t_ccd_l);
                self.last_write = at;
                // Write recovery gates precharge.
                self.precharge_ready = self.precharge_ready.max(at + t.t_wr);
                at
            }
            BankCommand::Precharge => {
                if self.state == RowState::Idle {
                    return Err(TimingError::NothingToPrecharge);
                }
                let at = want.max(self.precharge_ready);
                self.state = RowState::Idle;
                self.activate_ready = at + t.t_rp;
                at
            }
        };
        self.issued += 1;
        Ok(at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ianus_sim::Duration;

    fn bank() -> BankState {
        BankState::new(GddrTimings::ianus_default())
    }

    #[test]
    fn activate_read_precharge_cycle() {
        let mut b = bank();
        let act = b
            .issue(Time::ZERO, BankCommand::Activate { row: 1 })
            .unwrap();
        let rd = b.issue(act, BankCommand::Read).unwrap();
        assert_eq!(rd - act, Duration::from_ns(36)); // tRCDRD
                                                     // Precharge requested at the read time (after tRAS already met)
                                                     // issues immediately; requested early it waits for tRAS.
        let pre = b.issue(rd, BankCommand::Precharge).unwrap();
        assert_eq!(pre, rd);
        let act2 = b.issue(pre, BankCommand::Activate { row: 2 }).unwrap();
        assert_eq!(act2 - pre, Duration::from_ns(30)); // tRP
    }

    #[test]
    fn back_to_back_reads_at_tccd() {
        let mut b = bank();
        let act = b
            .issue(Time::ZERO, BankCommand::Activate { row: 0 })
            .unwrap();
        let r0 = b.issue(act, BankCommand::Read).unwrap();
        let r1 = b.issue(r0, BankCommand::Read).unwrap();
        let r2 = b.issue(r1, BankCommand::Read).unwrap();
        assert_eq!(r1 - r0, Duration::from_ns(1));
        assert_eq!(r2 - r1, Duration::from_ns(1));
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let mut b = bank();
        let act = b
            .issue(Time::ZERO, BankCommand::Activate { row: 0 })
            .unwrap();
        let wr = b.issue(act, BankCommand::Write).unwrap();
        assert_eq!(wr - act, Duration::from_ns(24)); // tRCDWR
        let pre = b.issue(wr, BankCommand::Precharge).unwrap();
        assert_eq!(pre - wr, Duration::from_ns(36)); // tWR
    }

    #[test]
    fn illegal_commands_rejected() {
        let mut b = bank();
        assert_eq!(
            b.issue(Time::ZERO, BankCommand::Read),
            Err(TimingError::RowNotOpen)
        );
        assert_eq!(
            b.issue(Time::ZERO, BankCommand::Precharge),
            Err(TimingError::NothingToPrecharge)
        );
        b.issue(Time::ZERO, BankCommand::Activate { row: 3 })
            .unwrap();
        assert_eq!(
            b.issue(Time::ZERO, BankCommand::Activate { row: 4 }),
            Err(TimingError::RowAlreadyOpen)
        );
    }

    #[test]
    fn full_row_read_duration() {
        // Reading an entire 2 KB row: ACT + tRCDRD + 63 × tCCD after the
        // first read = 36 + 63 = 99 ns from activate to last read issue.
        let mut b = bank();
        let act = b
            .issue(Time::ZERO, BankCommand::Activate { row: 0 })
            .unwrap();
        let mut last = act;
        for _ in 0..64 {
            last = b.issue(last, BankCommand::Read).unwrap();
        }
        assert_eq!(last - act, Duration::from_ns(36 + 63));
    }
}
