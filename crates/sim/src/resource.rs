//! Busy-until occupancy tracking for exclusive hardware units.

use crate::{Duration, Time};

/// An exclusive hardware unit (matrix unit, DMA engine, PIM channel, …).
///
/// A `Resource` serializes work: each [`acquire`](Resource::acquire) starts
/// no earlier than both the requested time and the completion of previously
/// acquired work, and busy time is accumulated for utilization reports.
///
/// # Examples
///
/// ```
/// use ianus_sim::{Duration, Resource, Time};
/// let mut dma = Resource::new("dma0");
/// let a = dma.acquire(Time::ZERO, Duration::from_ns(40));
/// // Requested at 10 ns but the unit is busy until 40 ns.
/// let b = dma.acquire(Time::from_ns(10), Duration::from_ns(5));
/// assert_eq!(a, Time::from_ns(40));
/// assert_eq!(b, Time::from_ns(45));
/// assert_eq!(dma.busy_time(), Duration::from_ns(45));
/// ```
#[derive(Debug, Clone)]
pub struct Resource {
    name: String,
    free_at: Time,
    busy: Duration,
    acquisitions: u64,
}

impl Resource {
    /// Creates an idle resource with a diagnostic name.
    pub fn new(name: impl Into<String>) -> Self {
        Resource {
            name: name.into(),
            free_at: Time::ZERO,
            busy: Duration::ZERO,
            acquisitions: 0,
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Earliest time new work may start.
    pub fn free_at(&self) -> Time {
        self.free_at
    }

    /// Occupies the resource for `dur`, starting no earlier than `ready`.
    /// Returns the completion time.
    pub fn acquire(&mut self, ready: Time, dur: Duration) -> Time {
        let start = ready.max(self.free_at);
        self.free_at = start + dur;
        self.busy += dur;
        self.acquisitions += 1;
        self.free_at
    }

    /// Start time the next `acquire(ready, _)` would get, without acquiring.
    pub fn next_start(&self, ready: Time) -> Time {
        ready.max(self.free_at)
    }

    /// Pushes the free time forward without accumulating busy time
    /// (used to model blocking, e.g. DMA held in "wait" during a PIM op).
    pub fn block_until(&mut self, t: Time) {
        self.free_at = self.free_at.max(t);
    }

    /// Total accumulated busy time.
    pub fn busy_time(&self) -> Duration {
        self.busy
    }

    /// Number of acquisitions served.
    pub fn acquisitions(&self) -> u64 {
        self.acquisitions
    }

    /// Busy fraction over the interval `[0, end]`; zero if `end` is zero.
    pub fn utilization(&self, end: Time) -> f64 {
        if end.as_ps() == 0 {
            0.0
        } else {
            self.busy.as_ps() as f64 / end.as_ps() as f64
        }
    }

    /// Resets occupancy and statistics to the idle state.
    pub fn reset(&mut self) {
        self.free_at = Time::ZERO;
        self.busy = Duration::ZERO;
        self.acquisitions = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serializes_work() {
        let mut r = Resource::new("mu");
        assert_eq!(
            r.acquire(Time::from_ns(5), Duration::from_ns(10)),
            Time::from_ns(15)
        );
        assert_eq!(
            r.acquire(Time::ZERO, Duration::from_ns(1)),
            Time::from_ns(16)
        );
        assert_eq!(r.acquisitions(), 2);
    }

    #[test]
    fn idle_gap_not_counted_busy() {
        let mut r = Resource::new("vu");
        r.acquire(Time::from_ns(100), Duration::from_ns(10));
        assert_eq!(r.busy_time(), Duration::from_ns(10));
        assert!((r.utilization(Time::from_ns(110)) - 10.0 / 110.0).abs() < 1e-12);
    }

    #[test]
    fn block_until_pushes_without_busy() {
        let mut r = Resource::new("dma");
        r.block_until(Time::from_ns(50));
        assert_eq!(r.free_at(), Time::from_ns(50));
        assert_eq!(r.busy_time(), Duration::ZERO);
        assert_eq!(
            r.acquire(Time::ZERO, Duration::from_ns(5)),
            Time::from_ns(55)
        );
    }

    #[test]
    fn reset_restores_idle() {
        let mut r = Resource::new("x");
        r.acquire(Time::ZERO, Duration::from_ns(9));
        r.reset();
        assert_eq!(r.free_at(), Time::ZERO);
        assert_eq!(r.busy_time(), Duration::ZERO);
        assert_eq!(r.acquisitions(), 0);
    }

    #[test]
    fn utilization_zero_horizon() {
        let r = Resource::new("y");
        assert_eq!(r.utilization(Time::ZERO), 0.0);
    }
}
