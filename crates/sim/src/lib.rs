//! Discrete-event simulation primitives shared by every IANUS component model.
//!
//! The IANUS reproduction is a *command-level* simulator with
//! cycle-resolution timestamps: every hardware unit (matrix unit, vector
//! unit, DMA engine, PIM channel, …) is a [`Resource`] whose occupancy is
//! tracked in integer picoseconds, and the system schedulers advance a
//! shared clock by executing commands against those resources.
//!
//! This crate deliberately contains no IANUS-specific policy — only the
//! time base ([`Time`], [`Duration`]), an ordered [`EventQueue`], busy-until
//! [`Resource`] accounting, and [`Stats`] counters used for reports.
//!
//! # Examples
//!
//! ```
//! use ianus_sim::{Duration, EventQueue, Resource, Time};
//!
//! let mut q = EventQueue::new();
//! q.push(Time::from_ns(10), "b");
//! q.push(Time::from_ns(5), "a");
//! assert_eq!(q.pop(), Some((Time::from_ns(5), "a")));
//!
//! let mut mu = Resource::new("matrix-unit");
//! let done = mu.acquire(Time::ZERO, Duration::from_ns(100));
//! assert_eq!(done, Time::from_ns(100));
//! ```

mod event;
mod resource;
mod stats;
mod time;

pub use event::{EventQueue, SlotQueue};
pub use resource::Resource;
pub use stats::Stats;
pub use time::{Duration, Frequency, Time};
