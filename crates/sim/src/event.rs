//! A deterministic time-ordered event queue, and a slot-indexed
//! next-event index built on it.

use crate::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-heap of `(key, payload)` events with FIFO tie-breaking.
///
/// Events pushed at the same key pop in insertion order, which keeps
/// the simulator deterministic regardless of heap internals. The key
/// defaults to [`Time`] but any `Ord + Copy` type works — the serving
/// engine keys its replica index with `(f64-total-order, replica)`
/// pairs, for example.
///
/// # Examples
///
/// ```
/// use ianus_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(5), 'b');
/// q.push(Time::from_ns(5), 'c');
/// q.push(Time::from_ns(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E, K: Ord + Copy = Time> {
    heap: BinaryHeap<Entry<E, K>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E, K: Ord + Copy> {
    key: Reverse<(K, u64)>,
    event: E,
}

impl<E, K: Ord + Copy> PartialEq for Entry<E, K> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E, K: Ord + Copy> Eq for Entry<E, K> {}
impl<E, K: Ord + Copy> PartialOrd for Entry<E, K> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E, K: Ord + Copy> Ord for Entry<E, K> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E, K: Ord + Copy> EventQueue<E, K> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at key `at`.
    pub fn push(&mut self, at: K, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(K, E)> {
        self.heap.pop().map(|e| ((e.key.0).0, e.event))
    }

    /// Key and payload of the earliest pending event.
    pub fn peek(&self) -> Option<(K, &E)> {
        self.heap.peek().map(|e| ((e.key.0).0, &e.event))
    }

    /// Key of the earliest pending event.
    pub fn peek_time(&self) -> Option<K> {
        self.heap.peek().map(|e| (e.key.0).0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E, K: Ord + Copy> Default for EventQueue<E, K> {
    fn default() -> Self {
        Self::new()
    }
}

/// A next-event index over a fixed set of dense integer *slots*
/// (replicas, channels, …), supporting O(log n) reschedule by **lazy
/// invalidation**: rescheduling or cancelling a slot bumps its stamp,
/// and stale heap entries are skipped when they surface.
///
/// Ties on equal keys resolve to the **lowest slot index** — the order
/// a linear `for slot in 0..n` scan with a strict `<` would pick —
/// which is what lets an event-driven engine replace a per-step scan
/// bit-identically.
///
/// # Examples
///
/// ```
/// use ianus_sim::SlotQueue;
/// let mut q = SlotQueue::new(3);
/// q.schedule(2, 10u64);
/// q.schedule(0, 10);
/// q.schedule(1, 5);
/// q.schedule(1, 20); // reschedule: the old entry is invalidated
/// assert_eq!(q.pop(), Some((10, 0))); // slot order breaks the 10-tie
/// assert_eq!(q.pop(), Some((10, 2)));
/// assert_eq!(q.pop(), Some((20, 1)));
/// assert_eq!(q.pop(), None);
/// ```
#[derive(Debug)]
pub struct SlotQueue<K: Ord + Copy> {
    /// Heap of `((key, slot), stamp)`; an entry is live iff its stamp
    /// matches the slot's current stamp.
    heap: EventQueue<u64, (K, usize)>,
    /// Per-slot `(stamp, scheduled key)`.
    state: Vec<(u64, Option<K>)>,
    scheduled: usize,
}

impl<K: Ord + Copy> SlotQueue<K> {
    /// Creates an index over `slots` slots, none scheduled.
    pub fn new(slots: usize) -> Self {
        SlotQueue {
            heap: EventQueue::new(),
            state: vec![(0, None); slots],
            scheduled: 0,
        }
    }

    /// Schedules (or reschedules) `slot` at `key`.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn schedule(&mut self, slot: usize, key: K) {
        let (stamp, entry) = &mut self.state[slot];
        *stamp += 1;
        if entry.is_none() {
            self.scheduled += 1;
        }
        *entry = Some(key);
        self.heap.push((key, slot), *stamp);
    }

    /// Cancels `slot`'s pending entry, if any.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    pub fn cancel(&mut self, slot: usize) {
        let (stamp, entry) = &mut self.state[slot];
        if entry.take().is_some() {
            *stamp += 1;
            self.scheduled -= 1;
        }
    }

    /// The key `slot` is currently scheduled at, if any.
    pub fn key_of(&self, slot: usize) -> Option<K> {
        self.state[slot].1
    }

    /// Key and slot of the earliest live entry, pruning stale entries.
    pub fn peek(&mut self) -> Option<(K, usize)> {
        while let Some(((key, slot), &stamp)) = self.heap.peek() {
            if self.state[slot].0 == stamp {
                debug_assert!(self.state[slot].1.is_some());
                return Some((key, slot));
            }
            self.heap.pop();
        }
        None
    }

    /// Removes and returns the earliest live entry.
    pub fn pop(&mut self) -> Option<(K, usize)> {
        let (key, slot) = self.peek()?;
        self.heap.pop();
        let (stamp, entry) = &mut self.state[slot];
        *stamp += 1;
        *entry = None;
        self.scheduled -= 1;
        Some((key, slot))
    }

    /// Number of scheduled slots.
    pub fn len(&self) -> usize {
        self.scheduled
    }

    /// Whether no slot is scheduled.
    pub fn is_empty(&self) -> bool {
        self.scheduled == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(4), ());
        q.push(Time::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
        assert_eq!(q.peek(), Some((Time::from_ns(2), &())));
    }

    #[test]
    fn generic_keys() {
        // A non-Time key: (u64, usize) pairs order lexicographically.
        let mut q: EventQueue<&str, (u64, usize)> = EventQueue::new();
        q.push((5, 2), "late");
        q.push((5, 1), "early");
        assert_eq!(q.pop(), Some(((5, 1), "early")));
        assert_eq!(q.pop(), Some(((5, 2), "late")));
    }

    #[test]
    fn slot_queue_orders_and_ties_by_slot() {
        let mut q = SlotQueue::new(4);
        q.schedule(3, 7u64);
        q.schedule(1, 7);
        q.schedule(2, 3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.peek(), Some((3, 2)));
        assert_eq!(q.pop(), Some((3, 2)));
        // Equal keys pop in slot order, not insertion order.
        assert_eq!(q.pop(), Some((7, 1)));
        assert_eq!(q.pop(), Some((7, 3)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn slot_queue_reschedule_invalidates() {
        let mut q = SlotQueue::new(2);
        q.schedule(0, 1u64);
        q.schedule(1, 2);
        q.schedule(0, 9); // move slot 0 later
        assert_eq!(q.key_of(0), Some(9));
        assert_eq!(q.pop(), Some((2, 1)));
        assert_eq!(q.pop(), Some((9, 0)));
        assert_eq!(q.pop(), None);
        // Reschedule to the *same* key also invalidates the old entry.
        q.schedule(0, 5);
        q.schedule(0, 5);
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((5, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn slot_queue_cancel() {
        let mut q = SlotQueue::new(3);
        q.schedule(0, 4u64);
        q.schedule(1, 1);
        q.cancel(1);
        q.cancel(2); // cancelling an unscheduled slot is a no-op
        assert_eq!(q.len(), 1);
        assert_eq!(q.key_of(1), None);
        assert_eq!(q.pop(), Some((4, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn slot_queue_heavy_churn_stays_consistent() {
        // Reschedule every slot many times; the queue must always pop
        // the live minimum despite the pile of stale entries.
        let mut q = SlotQueue::new(8);
        let mut keys = [0u64; 8];
        let mut x = 0x12345678u64;
        for _ in 0..200 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let slot = (x >> 33) as usize % 8;
            let key = x % 1000;
            q.schedule(slot, key);
            keys[slot] = key;
        }
        let mut live: Vec<(u64, usize)> = keys.iter().enumerate().map(|(s, &k)| (k, s)).collect();
        live.sort();
        for want in live {
            assert_eq!(q.pop(), Some(want));
        }
        assert!(q.is_empty());
    }
}
