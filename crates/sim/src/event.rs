//! A deterministic time-ordered event queue.

use crate::Time;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Min-heap of `(Time, payload)` events with FIFO tie-breaking.
///
/// Events pushed at the same timestamp pop in insertion order, which keeps
/// the simulator deterministic regardless of heap internals.
///
/// # Examples
///
/// ```
/// use ianus_sim::{EventQueue, Time};
/// let mut q = EventQueue::new();
/// q.push(Time::from_ns(5), 'b');
/// q.push(Time::from_ns(5), 'c');
/// q.push(Time::from_ns(1), 'a');
/// let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
/// assert_eq!(order, vec!['a', 'b', 'c']);
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    seq: u64,
}

#[derive(Debug)]
struct Entry<E> {
    key: Reverse<(Time, u64)>,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `event` at timestamp `at`.
    pub fn push(&mut self, at: Time, event: E) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            key: Reverse((at, seq)),
            event,
        });
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.heap.pop().map(|e| ((e.key.0).0, e.event))
    }

    /// Timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.peek().map(|e| (e.key.0).0)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue has no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time() {
        let mut q = EventQueue::new();
        q.push(Time::from_ns(30), 3);
        q.push(Time::from_ns(10), 1);
        q.push(Time::from_ns(20), 2);
        assert_eq!(q.pop(), Some((Time::from_ns(10), 1)));
        assert_eq!(q.pop(), Some((Time::from_ns(20), 2)));
        assert_eq!(q.pop(), Some((Time::from_ns(30), 3)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn fifo_among_ties() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(Time::from_ns(7), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop().unwrap().1, i);
        }
    }

    #[test]
    fn peek_and_len() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.peek_time(), None);
        q.push(Time::from_ns(4), ());
        q.push(Time::from_ns(2), ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.peek_time(), Some(Time::from_ns(2)));
    }
}
