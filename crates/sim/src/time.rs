//! Integer time base for the simulator.
//!
//! All component models agree on **picoseconds** as the base unit. This is
//! fine enough to express both the 0.5 ns GDDR6 command clock (`tCK`) and the
//! 700 MHz NPU clock (1428.57 ps, rounded per cycle count conversion) without
//! floating-point drift in the hot scheduling loops.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute simulation timestamp in picoseconds since reset.
///
/// `Time` is an opaque newtype so timestamps and durations cannot be mixed
/// up: `Time + Duration = Time`, `Time - Time = Duration`, and adding two
/// `Time` values is a compile error.
///
/// # Examples
///
/// ```
/// use ianus_sim::{Duration, Time};
/// let t = Time::from_ns(3) + Duration::from_ps(500);
/// assert_eq!(t.as_ps(), 3_500);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(u64);

/// A span of simulated time in picoseconds.
///
/// # Examples
///
/// ```
/// use ianus_sim::Duration;
/// assert_eq!(Duration::from_ns(2) * 3, Duration::from_ns(6));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Duration(u64);

impl Time {
    /// The zero timestamp (simulation reset).
    pub const ZERO: Time = Time(0);

    /// Creates a timestamp from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Time(ps)
    }

    /// Creates a timestamp from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Time(ns * 1_000)
    }

    /// Raw picosecond value.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in (fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in (fractional) milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Later of two timestamps.
    pub fn max(self, other: Time) -> Time {
        Time(self.0.max(other.0))
    }

    /// Earlier of two timestamps.
    pub fn min(self, other: Time) -> Time {
        Time(self.0.min(other.0))
    }

    /// Duration since an earlier timestamp.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `earlier` is after `self`.
    pub fn since(self, earlier: Time) -> Duration {
        debug_assert!(earlier.0 <= self.0, "since() with later timestamp");
        Duration(self.0 - earlier.0)
    }

    /// Duration since an earlier timestamp, clamped to zero when `earlier`
    /// is actually later (useful for slack computations).
    pub fn saturating_since(self, earlier: Time) -> Duration {
        Duration(self.0.saturating_sub(earlier.0))
    }
}

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0);

    /// Creates a duration from raw picoseconds.
    pub const fn from_ps(ps: u64) -> Self {
        Duration(ps)
    }

    /// Creates a duration from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        Duration(ns * 1_000)
    }

    /// Creates a duration from microseconds.
    pub const fn from_us(us: u64) -> Self {
        Duration(us * 1_000_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        Duration(ms * 1_000_000_000)
    }

    /// Creates a duration from fractional nanoseconds, rounding to the
    /// nearest picosecond.
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0, "negative duration");
        Duration((ns * 1e3).round() as u64)
    }

    /// Creates a duration from fractional seconds, rounding to the nearest
    /// picosecond.
    pub fn from_secs_f64(secs: f64) -> Self {
        debug_assert!(secs >= 0.0, "negative duration");
        Duration((secs * 1e12).round() as u64)
    }

    /// Raw picosecond value.
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Value in (fractional) nanoseconds.
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// Value in (fractional) microseconds.
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Value in (fractional) milliseconds.
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Value in (fractional) seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e12
    }

    /// Longer of two durations.
    pub fn max(self, other: Duration) -> Duration {
        Duration(self.0.max(other.0))
    }

    /// Shorter of two durations.
    pub fn min(self, other: Duration) -> Duration {
        Duration(self.0.min(other.0))
    }

    /// Difference clamped at zero.
    pub fn saturating_sub(self, other: Duration) -> Duration {
        Duration(self.0.saturating_sub(other.0))
    }
}

impl Add<Duration> for Time {
    type Output = Time;
    fn add(self, rhs: Duration) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for Time {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub<Time> for Time {
    type Output = Duration;
    fn sub(self, rhs: Time) -> Duration {
        self.since(rhs)
    }
}

impl Add for Duration {
    type Output = Duration;
    fn add(self, rhs: Duration) -> Duration {
        Duration(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    fn add_assign(&mut self, rhs: Duration) {
        self.0 += rhs.0;
    }
}

impl Sub for Duration {
    type Output = Duration;
    fn sub(self, rhs: Duration) -> Duration {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        Duration(self.0 - rhs.0)
    }
}

impl SubAssign for Duration {
    fn sub_assign(&mut self, rhs: Duration) {
        debug_assert!(rhs.0 <= self.0, "duration underflow");
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for Duration {
    type Output = Duration;
    fn mul(self, rhs: u64) -> Duration {
        Duration(self.0 * rhs)
    }
}

impl Div<u64> for Duration {
    type Output = Duration;
    fn div(self, rhs: u64) -> Duration {
        Duration(self.0 / rhs)
    }
}

impl Sum for Duration {
    fn sum<I: Iterator<Item = Duration>>(iter: I) -> Duration {
        iter.fold(Duration::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        Duration(self.0).fmt(f)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps >= 1_000_000_000 {
            write!(f, "{:.3} ms", ps as f64 / 1e9)
        } else if ps >= 1_000_000 {
            write!(f, "{:.3} us", ps as f64 / 1e6)
        } else if ps >= 1_000 {
            write!(f, "{:.3} ns", ps as f64 / 1e3)
        } else {
            write!(f, "{ps} ps")
        }
    }
}

/// A clock frequency, used to convert cycle counts to durations.
///
/// # Examples
///
/// ```
/// use ianus_sim::Frequency;
/// let npu = Frequency::from_mhz(700);
/// // 700 cycles at 700 MHz is exactly 1 us.
/// assert_eq!(npu.cycles(700).as_ns_f64(), 1000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd)]
pub struct Frequency {
    hz: f64,
}

impl Frequency {
    /// Creates a frequency from megahertz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is zero.
    pub fn from_mhz(mhz: u64) -> Self {
        assert!(mhz > 0, "frequency must be positive");
        Frequency {
            hz: mhz as f64 * 1e6,
        }
    }

    /// Creates a frequency from gigahertz.
    ///
    /// # Panics
    ///
    /// Panics if `ghz` is not positive.
    pub fn from_ghz(ghz: f64) -> Self {
        assert!(ghz > 0.0, "frequency must be positive");
        Frequency { hz: ghz * 1e9 }
    }

    /// Frequency in hertz.
    pub fn as_hz(self) -> f64 {
        self.hz
    }

    /// Duration of `n` clock cycles, rounded to the nearest picosecond.
    pub fn cycles(self, n: u64) -> Duration {
        Duration::from_ps((n as f64 * 1e12 / self.hz).round() as u64)
    }

    /// Duration of a fractional number of cycles (e.g. pipelined averages).
    pub fn cycles_f64(self, n: f64) -> Duration {
        debug_assert!(n >= 0.0);
        Duration::from_ps((n * 1e12 / self.hz).round() as u64)
    }

    /// Period of one clock cycle.
    pub fn period(self) -> Duration {
        self.cycles(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_duration_arithmetic() {
        let t0 = Time::from_ns(10);
        let t1 = t0 + Duration::from_ns(5);
        assert_eq!(t1, Time::from_ns(15));
        assert_eq!(t1 - t0, Duration::from_ns(5));
        assert_eq!(t1.since(t0).as_ns_f64(), 5.0);
    }

    #[test]
    fn saturating_since_clamps() {
        let early = Time::from_ns(1);
        let late = Time::from_ns(2);
        assert_eq!(early.saturating_since(late), Duration::ZERO);
        assert_eq!(late.saturating_since(early), Duration::from_ns(1));
    }

    #[test]
    fn duration_scaling() {
        let d = Duration::from_ns(3);
        assert_eq!(d * 4, Duration::from_ns(12));
        assert_eq!(Duration::from_ns(12) / 4, d);
        let total: Duration = (0..4).map(|_| d).sum();
        assert_eq!(total, Duration::from_ns(12));
    }

    #[test]
    fn frequency_cycle_conversion() {
        let f = Frequency::from_ghz(1.0);
        assert_eq!(f.cycles(64), Duration::from_ns(64));
        let npu = Frequency::from_mhz(700);
        // One NPU cycle is 1/0.7 ns = 1428.57 ps, rounded to 1429.
        assert_eq!(npu.cycles(1).as_ps(), 1429);
        // Bulk conversion rounds once, not per cycle.
        assert_eq!(npu.cycles(7_000_000).as_ps(), 10_000_000_000_000 / 1_000);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Duration::from_ps(12)), "12 ps");
        assert_eq!(format!("{}", Duration::from_ns(12)), "12.000 ns");
        assert_eq!(format!("{}", Duration::from_us(12)), "12.000 us");
        assert_eq!(format!("{}", Duration::from_us(12_000)), "12.000 ms");
    }

    #[test]
    fn from_fractional_constructors() {
        assert_eq!(Duration::from_ns_f64(0.5).as_ps(), 500);
        assert_eq!(Duration::from_secs_f64(1e-9).as_ps(), 1_000);
    }
}
