//! Named statistic counters for simulation reports.

use std::collections::BTreeMap;
use std::fmt;

/// A set of named accumulating counters (`f64`-valued).
///
/// Counters are created on first use and iterate in name order, which keeps
/// report output stable across runs.
///
/// # Examples
///
/// ```
/// use ianus_sim::Stats;
/// let mut s = Stats::new();
/// s.add("dram.read_bytes", 64.0);
/// s.add("dram.read_bytes", 64.0);
/// s.incr("pim.macro_ops");
/// assert_eq!(s.get("dram.read_bytes"), 128.0);
/// assert_eq!(s.get("pim.macro_ops"), 1.0);
/// assert_eq!(s.get("missing"), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Stats {
    counters: BTreeMap<String, f64>,
}

impl Stats {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Stats::default()
    }

    /// Adds `amount` to counter `name`, creating it at zero if absent.
    pub fn add(&mut self, name: &str, amount: f64) {
        *self.counters.entry(name.to_owned()).or_insert(0.0) += amount;
    }

    /// Adds one to counter `name`.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1.0);
    }

    /// Sets counter `name` to `value`, overwriting any previous value.
    pub fn set(&mut self, name: &str, value: f64) {
        self.counters.insert(name.to_owned(), value);
    }

    /// Current value of counter `name` (zero if never touched).
    pub fn get(&self, name: &str) -> f64 {
        self.counters.get(name).copied().unwrap_or(0.0)
    }

    /// Merges another counter set into this one by summation.
    pub fn merge(&mut self, other: &Stats) {
        for (k, v) in &other.counters {
            self.add(k, *v);
        }
    }

    /// Iterates `(name, value)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, f64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Number of distinct counters.
    pub fn len(&self) -> usize {
        self.counters.len()
    }

    /// Whether no counter exists.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty()
    }
}

impl fmt::Display for Stats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k:<40} {v:.3}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_and_reads() {
        let mut s = Stats::new();
        s.add("a", 1.5);
        s.add("a", 2.5);
        s.incr("b");
        assert_eq!(s.get("a"), 4.0);
        assert_eq!(s.get("b"), 1.0);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn merge_sums_counters() {
        let mut a = Stats::new();
        a.add("x", 1.0);
        let mut b = Stats::new();
        b.add("x", 2.0);
        b.add("y", 3.0);
        a.merge(&b);
        assert_eq!(a.get("x"), 3.0);
        assert_eq!(a.get("y"), 3.0);
    }

    #[test]
    fn set_overwrites() {
        let mut s = Stats::new();
        s.add("x", 5.0);
        s.set("x", 1.0);
        assert_eq!(s.get("x"), 1.0);
    }

    #[test]
    fn iterates_in_name_order() {
        let mut s = Stats::new();
        s.add("z", 1.0);
        s.add("a", 1.0);
        let names: Vec<&str> = s.iter().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }

    #[test]
    fn display_nonempty() {
        let mut s = Stats::new();
        s.add("k", 1.0);
        assert!(format!("{s}").contains('k'));
    }
}
