//! Calibrated analytical model of DFX (4-FPGA transformer appliance).

use ianus_core::backend::Backend;
use ianus_core::capacity::CapacityError;
use ianus_model::{ModelConfig, RequestShape};
use ianus_sim::Duration;

/// Aggregate HBM2 capacity of the 4-FPGA appliance (4 x 8 GiB Alveo
/// U280 stacks).
pub const DFX_HBM_BYTES: u64 = 4 * 8 * (1 << 30);

/// The DFX baseline (Hong et al., MICRO 2022) with 4 FPGAs.
///
/// DFX sizes its compute to match memory bandwidth and processes tokens
/// one at a time in *both* stages — which is why the paper's Figure 9
/// shows DFX summarization latency growing linearly with input size
/// (≈ 6.9 ms per token for GPT-2 XL) while IANUS's does not. The model
/// streams all FC parameters per token at a calibrated fraction of the
/// appliance's aggregate HBM2 bandwidth, plus a fixed per-token vector /
/// network overhead.
///
/// # Examples
///
/// ```
/// use ianus_baselines::DfxModel;
/// use ianus_model::{ModelConfig, RequestShape};
///
/// let dfx = DfxModel::four_fpga();
/// let xl = ModelConfig::gpt2_xl();
/// // Paper Figure 9: (32,1) = 227 ms, (128,256) = 2642 ms.
/// let a = dfx.request_latency(&xl, RequestShape::new(32, 1)).as_ms_f64();
/// assert!((a / 227.0 - 1.0).abs() < 0.15);
/// let b = dfx.request_latency(&xl, RequestShape::new(128, 256)).as_ms_f64();
/// assert!((b / 2642.0 - 1.0).abs() < 0.15);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DfxModel {
    /// Aggregate HBM2 bandwidth of the appliance (Table 2: 1840 GB/s).
    pub mem_gbps: f64,
    /// Fraction of bandwidth sustained end-to-end (calibrated to the
    /// paper's 6.9 ms/token on GPT-2 XL's 2.9 GB of parameters).
    pub bw_efficiency: f64,
    /// Fixed per-token overhead (vector ops, inter-FPGA ring).
    pub per_token_overhead: Duration,
    /// Aggregate host-link bandwidth in GB/s (each Alveo U280 sits on
    /// PCIe 3.0 ×16; the four FPGAs drain their KV shards in parallel).
    pub host_gbps: f64,
    /// Host DRAM reserved for swapped-out KV caches, in bytes (the
    /// appliance's FPGAs share one server host). Swap-outs past this
    /// pool fall back to recompute-based eviction.
    pub host_kv_bytes: u64,
}

impl DfxModel {
    /// The paper's 4-FPGA DFX configuration.
    pub fn four_fpga() -> Self {
        DfxModel {
            mem_gbps: 1840.0,
            bw_efficiency: 0.23,
            per_token_overhead: Duration::from_us(150),
            host_gbps: 4.0 * 16.0,
            host_kv_bytes: 64 << 30,
        }
    }

    /// Relative acquisition cost in the abstract units of
    /// [`device_cost_units`](ianus_core::capacity::device_cost_units):
    /// aggregate HBM capacity plus a bandwidth premium. Used to size
    /// equal-cost pools against other device classes.
    pub fn cost_units(&self) -> f64 {
        ianus_core::capacity::device_cost_units(DFX_HBM_BYTES, self.mem_gbps)
    }

    /// Time to process one token (either stage).
    pub fn per_token_latency(&self, model: &ModelConfig) -> Duration {
        let bytes = model.fc_param_count() * 2 + model.block_ops().lm_head_fc().weight_bytes();
        let stream = Duration::from_ns_f64(bytes as f64 / (self.mem_gbps * self.bw_efficiency));
        stream + self.per_token_overhead
    }

    /// End-to-end request latency: `input + output − 1` token passes
    /// (saturating via [`RequestShape::total_tokens`], so a struct-literal
    /// `output: 0` cannot underflow into a ~2^64-token request).
    pub fn request_latency(&self, model: &ModelConfig, request: RequestShape) -> Duration {
        self.per_token_latency(model) * request.total_tokens()
    }
}

impl Backend for DfxModel {
    fn name(&self) -> &str {
        "DFX (4-FPGA)"
    }

    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(*self))
    }

    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
        self.request_latency(model, shape)
    }

    fn fits(&self, model: &ModelConfig) -> Result<(), CapacityError> {
        crate::fits_in_memory(model, DFX_HBM_BYTES)
    }

    fn prefill_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        self.per_token_latency(model) * tokens.max(1)
    }

    /// DFX processes tokens strictly one at a time (its compute is sized
    /// to its bandwidth with no batch dimension), so a batched iteration
    /// is `batch` serial token passes — batching buys DFX nothing.
    fn decode_time(&mut self, model: &ModelConfig, _past_tokens: u64, batch: u32) -> Duration {
        self.per_token_latency(model) * u64::from(batch.max(1))
    }

    fn batch_fits(
        &self,
        model: &ModelConfig,
        batch: &[RequestShape],
    ) -> Result<f64, CapacityError> {
        crate::batch_fits_in_memory(model, batch, DFX_HBM_BYTES)
    }

    /// KV swaps drain each FPGA's shard over its own PCIe link; the
    /// aggregate host bandwidth binds.
    fn kv_transfer_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        crate::kv_transfer_over_host_link(model, tokens, self.host_gbps)
    }

    fn host_kv_bytes(&self) -> Option<u64> {
        Some(self.host_kv_bytes)
    }

    /// Aggregate HBM left for KV blocks once the weights and the
    /// working-buffer margin are resident, matching
    /// [`batch_fits`](Backend::batch_fits)'s single-pool accounting.
    fn kv_budget_bytes(&self, model: &ModelConfig, _widest_input: u64) -> Option<u64> {
        Some(
            DFX_HBM_BYTES
                .saturating_sub(model.param_bytes())
                .saturating_sub(ianus_core::capacity::WORKING_BUFFER_BYTES),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xl_per_token_near_paper() {
        // Paper Section 6.2: 6.9 ms to generate one GPT-2 XL token.
        let t = DfxModel::four_fpga()
            .per_token_latency(&ModelConfig::gpt2_xl())
            .as_ms_f64();
        assert!((t / 6.9 - 1.0).abs() < 0.12, "{t}");
    }

    #[test]
    fn summarization_scales_linearly_with_input() {
        let dfx = DfxModel::four_fpga();
        let xl = ModelConfig::gpt2_xl();
        let t32 = dfx.request_latency(&xl, RequestShape::new(32, 1));
        let t128 = dfx.request_latency(&xl, RequestShape::new(128, 1));
        let ratio = t128.as_ns_f64() / t32.as_ns_f64();
        assert!((ratio - 4.0).abs() < 0.1, "{ratio}");
    }

    #[test]
    fn figure9_grid_within_tolerance() {
        // All nine Figure 9 DFX cells.
        let paper = [
            ((32u64, 1u64), 227.0),
            ((32, 16), 330.0),
            ((32, 256), 1981.0),
            ((64, 1), 447.0),
            ((64, 16), 550.0),
            ((64, 256), 2201.0),
            ((128, 1), 887.0),
            ((128, 16), 991.0),
            ((128, 256), 2642.0),
        ];
        let dfx = DfxModel::four_fpga();
        let xl = ModelConfig::gpt2_xl();
        for ((i, o), want) in paper {
            let got = dfx
                .request_latency(&xl, RequestShape::new(i, o))
                .as_ms_f64();
            let rel = (got / want - 1.0).abs();
            assert!(rel < 0.15, "({i},{o}): got {got:.0}, paper {want}");
        }
    }
}
