//! Calibrated analytical model of A100 + PyTorch eager inference.

use ianus_core::backend::Backend;
use ianus_core::capacity::CapacityError;
use ianus_model::{ModelConfig, ModelFamily, RequestShape, Stage};
use ianus_sim::Duration;

/// HBM2e capacity of the A100-SXM comparison GPU (80 GB).
pub const A100_HBM_BYTES: u64 = 80 * (1 << 30);

/// Kernel classes of one decoder block under eager PyTorch execution.
///
/// The class costs reproduce the paper's Figure 2 latency breakdown of
/// the GPT-2 XL generation stage on A100: LayerNorm + residual ≈ 13.2%,
/// self-attention ≈ 41.4% (66.1% of which is non-computing data
/// manipulation), FC + FFN ≈ 45.4%.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum KernelClass {
    /// Cheap elementwise kernels: layer norms, residual adds, scaling.
    Elementwise,
    /// Attention compute kernels: QKᵀ, softmax, SV.
    AttentionCompute,
    /// Attention data manipulation: head split/merge, transpose, concat.
    AttentionReorder,
    /// FC/FFN GEMM or GEMV kernels (plus bias/activation epilogues).
    FullyConnected,
}

/// Figure 2-style breakdown of one generation-stage decoder block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuBreakdown {
    /// LayerNorm + residual share of block latency.
    pub layernorm_residual: f64,
    /// Self-attention share of block latency.
    pub self_attention: f64,
    /// FC + FFN share of block latency.
    pub fc_ffn: f64,
    /// Non-computing share *within* self-attention.
    pub attention_noncompute: f64,
}

/// The A100 GPU model.
///
/// # Examples
///
/// ```
/// use ianus_baselines::GpuModel;
/// use ianus_model::{ModelConfig, RequestShape};
///
/// let gpu = GpuModel::a100();
/// let m = ModelConfig::gpt2_m();
/// // Paper Figure 8: GPT-2 M (128,1) ≈ 15 ms on A100.
/// let t = gpu.request_latency(&m, RequestShape::new(128, 1));
/// assert!(t.as_ms_f64() > 10.0 && t.as_ms_f64() < 20.0);
/// // (128,512) ≈ 6.9 s — generation is dispatch-bound.
/// let t = gpu.request_latency(&m, RequestShape::new(128, 512));
/// assert!(t.as_ms_f64() > 5_000.0 && t.as_ms_f64() < 9_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuModel {
    /// Platform name (distinguishes the eager and Megatron calibrations).
    pub name: &'static str,
    /// Peak BF16 throughput (Table 2: 255 TFLOPS).
    pub peak_tflops: f64,
    /// Fraction of peak sustained by large GEMMs.
    pub flops_efficiency: f64,
    /// Peak HBM2e bandwidth (Table 2: 2039 GB/s).
    pub mem_gbps: f64,
    /// Bandwidth fraction sustained by GEMV-style weight streaming.
    pub gemv_bw_efficiency: f64,
    /// Dispatch cost of an elementwise kernel.
    pub elementwise_cost: Duration,
    /// Dispatch cost of an attention compute kernel.
    pub attn_compute_cost: Duration,
    /// Dispatch cost of an attention reorder kernel.
    pub attn_reorder_cost: Duration,
    /// Dispatch cost of an FC kernel (before roofline terms).
    pub fc_dispatch_cost: Duration,
    /// Fixed per-stage overhead (host-side setup, final sampling).
    pub stage_overhead: Duration,
    /// Host-link bandwidth in GB/s (PCIe 4.0 ×16 on the A100-SXM
    /// board), the path KV caches take when swapped to host memory.
    pub host_gbps: f64,
    /// Host DRAM reserved for swapped-out KV caches, in bytes — one
    /// GPU's slice of the serving host's memory. Swap-outs past this
    /// pool fall back to recompute-based eviction.
    pub host_kv_bytes: u64,
}

/// Kernel counts of one decoder block in eager HuggingFace GPT-2.
const ELEMENTWISE_KERNELS: u64 = 4; // 2 layer norms + 2 residual adds
const ATTN_COMPUTE_KERNELS: u64 = 3; // QK^T, softmax, SV
const ATTN_REORDER_KERNELS: u64 = 4; // split heads, transpose, concat KV, merge heads
const FC_KERNELS: u64 = 4; // QKV, out proj, FFN1(+GELU), FFN2

impl GpuModel {
    /// The calibrated A100 model (HuggingFace eager execution, used for
    /// the GPT-2 and BERT comparisons of Figures 2/8/14).
    pub fn a100() -> Self {
        GpuModel {
            name: "A100 (eager)",
            peak_tflops: 255.0,
            flops_efficiency: 0.55,
            mem_gbps: 2039.0,
            gemv_bw_efficiency: 0.40,
            elementwise_cost: Duration::from_ns(18_000),
            attn_compute_cost: Duration::from_ns(25_000),
            attn_reorder_cost: Duration::from_ns(38_000),
            fc_dispatch_cost: Duration::from_ns(45_000),
            stage_overhead: Duration::from_us(1500),
            host_gbps: 32.0,
            // A DGX-A100 host carries 2 TB of DRAM across 8 GPUs; one
            // GPU's generous slice.
            host_kv_bytes: 192 << 30,
        }
    }

    /// The A100 running Megatron-LM (used for the Table 4 large models of
    /// Figure 17 / Section 7): fused kernels cut per-block dispatch to
    /// ≈36% of eager HuggingFace, and large GEMVs sustain a higher
    /// fraction of HBM bandwidth. Calibrated against the paper's 6.7B /
    /// 13B / 30B GPU latencies (33/54/107 ms prefill at 256 tokens,
    /// ≈18/29/55 ms per generated token).
    pub fn a100_megatron() -> Self {
        GpuModel {
            name: "A100 (Megatron)",
            gemv_bw_efficiency: 0.55,
            elementwise_cost: Duration::from_ns(6_500),
            attn_compute_cost: Duration::from_ns(9_000),
            attn_reorder_cost: Duration::from_ns(13_700),
            fc_dispatch_cost: Duration::from_ns(16_000),
            ..Self::a100()
        }
    }

    /// Relative acquisition cost in the abstract units of
    /// [`device_cost_units`](ianus_core::capacity::device_cost_units):
    /// HBM capacity plus a bandwidth premium. Used to size equal-cost
    /// pools against other device classes (e.g. a GPU-prefill /
    /// PIM-decode disaggregated cluster).
    pub fn cost_units(&self) -> f64 {
        ianus_core::capacity::device_cost_units(A100_HBM_BYTES, self.mem_gbps)
    }

    /// Roofline time of a GEMM: `flops` against dense-GEMM efficiency,
    /// `bytes` against streaming bandwidth — whichever binds.
    fn roofline(&self, flops: u64, bytes: u64, gemv: bool) -> Duration {
        let compute_ns = flops as f64 / (self.peak_tflops * self.flops_efficiency * 1e3);
        let bw = if gemv {
            self.mem_gbps * self.gemv_bw_efficiency
        } else {
            self.mem_gbps * 0.75
        };
        let mem_ns = bytes as f64 / bw;
        Duration::from_ns_f64(compute_ns.max(mem_ns))
    }

    /// Latency of one decoder/encoder block for a stage.
    pub fn block_latency(&self, model: &ModelConfig, stage: &Stage) -> Duration {
        let ops = model.block_ops();
        let tokens = stage.batch_tokens();
        let gemv = stage.is_generation();
        let dispatch = self.elementwise_cost * ELEMENTWISE_KERNELS
            + self.attn_compute_cost * ATTN_COMPUTE_KERNELS
            + self.attn_reorder_cost * ATTN_REORDER_KERNELS
            + self.fc_dispatch_cost * FC_KERNELS;
        // FC weights stream from HBM every block (no reuse at batch 1);
        // attention reads the KV cache.
        let fc_time = self.roofline(
            ops.qkv_fc().gemm_flops(tokens)
                + ops.attn_out_fc().gemm_flops(tokens)
                + ops.ffn1_fc().gemm_flops(tokens)
                + ops.ffn2_fc().gemm_flops(tokens),
            ops.block_fc_bytes(),
            gemv,
        );
        let attn_time = self.roofline(ops.attention_flops(stage), ops.kv_read_bytes(stage), gemv);
        dispatch + fc_time + attn_time
    }

    /// Latency of one full stage (all blocks + LM head + stage overhead).
    pub fn stage_latency(&self, model: &ModelConfig, stage: &Stage) -> Duration {
        let ops = model.block_ops();
        let mut t = self.block_latency(model, stage) * model.blocks + self.stage_overhead;
        if model.family == ModelFamily::Gpt {
            t += self.fc_dispatch_cost
                + self.roofline(
                    ops.lm_head_fc().gemm_flops(1),
                    ops.lm_head_fc().weight_bytes(),
                    true,
                );
        }
        t
    }

    /// Latency of one decode iteration over `batch` concurrent
    /// sequences, each attending to `past_tokens` of context.
    ///
    /// Batching turns the per-block GEMVs into skinny GEMMs: FC and
    /// LM-head FLOPs grow with the batch while their weight traffic is
    /// read **once** per iteration, so the memory-bound side — which
    /// dominates non-batched decode — is amortized across the batch.
    /// Attention reads each sequence's own KV cache, so it scales
    /// linearly, as does nothing else: kernel dispatch is per-iteration.
    /// At `batch == 1` this is exactly
    /// [`stage_latency`](Self::stage_latency) of the generation stage.
    pub fn batched_decode_latency(
        &self,
        model: &ModelConfig,
        past_tokens: u64,
        batch: u64,
    ) -> Duration {
        let stage = Stage::Generation { past_tokens };
        let b = batch.max(1);
        let ops = model.block_ops();
        let dispatch = self.elementwise_cost * ELEMENTWISE_KERNELS
            + self.attn_compute_cost * ATTN_COMPUTE_KERNELS
            + self.attn_reorder_cost * ATTN_REORDER_KERNELS
            + self.fc_dispatch_cost * FC_KERNELS;
        let fc_time = self.roofline(
            (ops.qkv_fc().gemm_flops(1)
                + ops.attn_out_fc().gemm_flops(1)
                + ops.ffn1_fc().gemm_flops(1)
                + ops.ffn2_fc().gemm_flops(1))
                * b,
            ops.block_fc_bytes(),
            true,
        );
        let attn_time = self.roofline(
            ops.attention_flops(&stage) * b,
            ops.kv_read_bytes(&stage) * b,
            true,
        );
        let mut t = (dispatch + fc_time + attn_time) * model.blocks + self.stage_overhead;
        if model.family == ModelFamily::Gpt {
            t += self.fc_dispatch_cost
                + self.roofline(
                    ops.lm_head_fc().gemm_flops(1) * b,
                    ops.lm_head_fc().weight_bytes(),
                    true,
                );
        }
        t
    }

    /// End-to-end request latency (summarization + generation steps).
    pub fn request_latency(&self, model: &ModelConfig, request: RequestShape) -> Duration {
        request
            .stages()
            .map(|s| self.stage_latency(model, &s))
            .sum()
    }

    /// Achieved throughput in TFLOPS for a request.
    pub fn throughput_tflops(&self, model: &ModelConfig, request: RequestShape) -> f64 {
        let flops: u64 = request.stages().map(|s| model.stage_flops(&s)).sum();
        flops as f64 / self.request_latency(model, request).as_secs_f64() / 1e12
    }

    /// Figure 2-style breakdown of a generation-stage decoder block.
    pub fn decoder_breakdown(&self, model: &ModelConfig, stage: &Stage) -> GpuBreakdown {
        let ops = model.block_ops();
        let tokens = stage.batch_tokens();
        let gemv = stage.is_generation();
        let ln = (self.elementwise_cost * ELEMENTWISE_KERNELS).as_ns_f64();
        let attn_reorder = (self.attn_reorder_cost * ATTN_REORDER_KERNELS).as_ns_f64();
        let attn_compute = (self.attn_compute_cost * ATTN_COMPUTE_KERNELS).as_ns_f64()
            + self
                .roofline(ops.attention_flops(stage), ops.kv_read_bytes(stage), gemv)
                .as_ns_f64();
        let fc = (self.fc_dispatch_cost * FC_KERNELS).as_ns_f64()
            + self
                .roofline(
                    ops.qkv_fc().gemm_flops(tokens)
                        + ops.attn_out_fc().gemm_flops(tokens)
                        + ops.ffn1_fc().gemm_flops(tokens)
                        + ops.ffn2_fc().gemm_flops(tokens),
                    ops.block_fc_bytes(),
                    gemv,
                )
                .as_ns_f64();
        let attn = attn_reorder + attn_compute;
        let total = ln + attn + fc;
        GpuBreakdown {
            layernorm_residual: ln / total,
            self_attention: attn / total,
            fc_ffn: fc / total,
            attention_noncompute: attn_reorder / attn,
        }
    }
}

impl Backend for GpuModel {
    fn name(&self) -> &str {
        self.name
    }

    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(*self))
    }

    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
        self.request_latency(model, shape)
    }

    fn fits(&self, model: &ModelConfig) -> Result<(), CapacityError> {
        crate::fits_in_memory(model, A100_HBM_BYTES)
    }

    fn prefill_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        self.stage_latency(
            model,
            &Stage::Summarization {
                tokens: tokens.max(1),
            },
        )
    }

    fn decode_time(&mut self, model: &ModelConfig, past_tokens: u64, batch: u32) -> Duration {
        self.batched_decode_latency(model, past_tokens, u64::from(batch))
    }

    fn batch_fits(
        &self,
        model: &ModelConfig,
        batch: &[RequestShape],
    ) -> Result<f64, CapacityError> {
        crate::batch_fits_in_memory(model, batch, A100_HBM_BYTES)
    }

    /// KV swaps to host memory stream over the PCIe host link — HBM can
    /// feed it an order of magnitude faster, so the link binds.
    fn kv_transfer_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        crate::kv_transfer_over_host_link(model, tokens, self.host_gbps)
    }

    fn host_kv_bytes(&self) -> Option<u64> {
        Some(self.host_kv_bytes)
    }

    /// HBM left for KV blocks once the weights and the working-buffer
    /// margin are resident — the same arithmetic as
    /// [`batch_fits`](Backend::batch_fits), restated as a budget.
    fn kv_budget_bytes(&self, model: &ModelConfig, _widest_input: u64) -> Option<u64> {
        Some(
            A100_HBM_BYTES
                .saturating_sub(model.param_bytes())
                .saturating_sub(ianus_core::capacity::WORKING_BUFFER_BYTES),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gpu() -> GpuModel {
        GpuModel::a100()
    }

    #[test]
    fn per_block_generation_cost_near_half_millisecond() {
        // The constant the paper's Figure 8 data implies: ≈ 0.55–0.6 ms
        // per decoder block per generated token, for every GPT-2 size.
        for m in ModelConfig::gpt2_family() {
            let t = gpu().block_latency(&m, &Stage::Generation { past_tokens: 128 });
            assert!(
                t.as_us_f64() > 450.0 && t.as_us_f64() < 700.0,
                "{}: {t}",
                m.name
            );
        }
    }

    #[test]
    fn figure8_prefill_latencies() {
        // Paper: GPT-2 M/L/XL/2.5B (128,1) = 15/22/29/32 ms.
        let cases = [
            (ModelConfig::gpt2_m(), 15.0),
            (ModelConfig::gpt2_l(), 22.0),
            (ModelConfig::gpt2_xl(), 29.0),
            (ModelConfig::gpt2_2_5b(), 32.0),
        ];
        for (m, want) in cases {
            let got = gpu()
                .request_latency(&m, RequestShape::new(128, 1))
                .as_ms_f64();
            let rel = (got / want - 1.0).abs();
            assert!(rel < 0.25, "{}: got {got:.1}, paper {want}", m.name);
        }
    }

    #[test]
    fn figure8_generation_heavy_latency() {
        // Paper: GPT-2 XL (128,512) = 13.6 s.
        let got = gpu()
            .request_latency(&ModelConfig::gpt2_xl(), RequestShape::new(128, 512))
            .as_ms_f64();
        assert!((got / 13_622.0 - 1.0).abs() < 0.25, "got {got:.0} ms");
    }

    #[test]
    fn figure2_breakdown_shape() {
        // Paper Figure 2: LN+add 13.2%, self-attn 41.4% (66.1%
        // non-computing), FC+FFN 45.4% — generation stage of GPT-2 XL.
        let b = gpu().decoder_breakdown(
            &ModelConfig::gpt2_xl(),
            &Stage::Generation { past_tokens: 512 },
        );
        assert!((b.layernorm_residual - 0.132).abs() < 0.04, "{b:?}");
        assert!((b.self_attention - 0.414).abs() < 0.06, "{b:?}");
        assert!((b.fc_ffn - 0.454).abs() < 0.06, "{b:?}");
        assert!((b.attention_noncompute - 0.661).abs() < 0.08, "{b:?}");
    }

    #[test]
    fn prefill_latency_insensitive_to_input_size() {
        // Paper: (128,1) / (256,1) / (512,1) all ≈ 15 ms for GPT-2 M.
        let g = gpu();
        let m = ModelConfig::gpt2_m();
        let a = g.request_latency(&m, RequestShape::new(128, 1)).as_ms_f64();
        let c = g.request_latency(&m, RequestShape::new(512, 1)).as_ms_f64();
        assert!(c / a < 1.35, "{a} vs {c}");
    }

    #[test]
    fn bert_throughput_grows_with_model_size() {
        let g = gpu();
        let req = RequestShape::new(512, 1);
        let tb = g.throughput_tflops(&ModelConfig::bert_b(), req);
        let t39 = g.throughput_tflops(&ModelConfig::bert_3_9b(), req);
        assert!(t39 > 3.0 * tb, "B {tb} vs 3.9B {t39}");
    }
}
