//! Comparison platforms: NVIDIA A100 (PyTorch eager) and DFX.
//!
//! The paper compares IANUS against an A100-SXM running HuggingFace /
//! Megatron GPT-2 with batch size 1, and against DFX, a 4-FPGA appliance
//! for transformer text generation. Neither platform is available to this
//! reproduction, so both are **calibrated analytical models**:
//!
//! * [`GpuModel`] — a kernel-dispatch + roofline model. The paper's own
//!   GPU numbers show non-batched GPT-2 inference on A100 is dominated by
//!   per-kernel dispatch (≈ 0.55 ms per decoder block regardless of model
//!   width — see Figure 8's near-identical per-block latencies), with
//!   roofline compute/memory terms that only matter for large
//!   summarization batches (BERT, Figure 14). Kernel-class costs are
//!   calibrated once against Figure 2's breakdown and reused everywhere.
//! * [`DfxModel`] — a bandwidth-bound per-token model: DFX processes both
//!   stages token-serially at a calibrated fraction of its HBM bandwidth
//!   (Figure 9's DFX rows: ≈ 6.9 ms per token for GPT-2 XL).
//!
//! Both models consume the same [`ianus_model`] shapes as the IANUS
//! simulator, so comparisons never diverge on workload definition — and
//! both implement [`ianus_core::backend::Backend`], so they plug into
//! [`ianus_core::serving::ServingSim`] clusters and any other consumer of
//! the unified serving interface alongside the simulated devices.

mod dfx;
mod gpu;

pub use dfx::{DfxModel, DFX_HBM_BYTES};
pub use gpu::{GpuBreakdown, GpuModel, KernelClass, A100_HBM_BYTES};

/// Shared residency check for the analytical baselines: the core crate's
/// nominal footprint (weights + capped 1024-token KV cache + buffer
/// margin, defined once in `ianus_core::capacity::nominal_footprint_bytes`)
/// against `available` memory.
pub(crate) fn fits_in_memory(
    model: &ianus_model::ModelConfig,
    available: u64,
) -> Result<(), ianus_core::capacity::CapacityError> {
    let required = ianus_core::capacity::nominal_footprint_bytes(model);
    if required > available {
        Err(ianus_core::capacity::CapacityError::OutOfMemory {
            required,
            available,
        })
    } else {
        Ok(())
    }
}

/// Shared batch-residency check for the analytical baselines (the
/// `Backend::batch_fits` admission gate): weights, the core crate's
/// working-buffer margin, and every sequence's KV cache at its final
/// length against `available` memory. The single-pool analogue of
/// `ianus_core::capacity::check_batch`'s sharded accounting. Returns the
/// projected occupancy on success.
pub(crate) fn batch_fits_in_memory(
    model: &ianus_model::ModelConfig,
    batch: &[ianus_model::RequestShape],
    available: u64,
) -> Result<f64, ianus_core::capacity::CapacityError> {
    use ianus_core::capacity::CapacityError;
    let mut required = model.param_bytes() + ianus_core::capacity::WORKING_BUFFER_BYTES;
    for shape in batch {
        let total_seq = shape.total_tokens();
        if total_seq > model.max_seq {
            return Err(CapacityError::SequenceTooLong {
                requested: total_seq,
                max_seq: model.max_seq,
            });
        }
        required += model.kv_bytes_per_token() * total_seq;
    }
    if required > available {
        Err(CapacityError::OutOfMemory {
            required,
            available,
        })
    } else {
        Ok(required as f64 / available as f64)
    }
}

/// Shared KV-swap pricing for the analytical baselines (the
/// `Backend::kv_transfer_time` cost): the core crate's swap-traffic
/// convention (`ianus_core::capacity::kv_swap_bytes`) streamed over the
/// platform's host link. Defined once so the two baselines can never
/// diverge on the formula.
pub(crate) fn kv_transfer_over_host_link(
    model: &ianus_model::ModelConfig,
    tokens: u64,
    host_gbps: f64,
) -> ianus_sim::Duration {
    let bytes = ianus_core::capacity::kv_swap_bytes(model, tokens);
    ianus_sim::Duration::from_ns_f64(bytes as f64 / host_gbps)
}

#[cfg(test)]
mod backend_tests {
    use super::*;
    use ianus_core::backend::Backend;
    use ianus_model::{ModelConfig, RequestShape};

    #[test]
    fn baseline_backends_match_direct_latency() {
        let model = ModelConfig::gpt2_xl();
        let shape = RequestShape::new(128, 16);
        let mut gpu = GpuModel::a100();
        assert_eq!(
            gpu.service_time(&model, shape),
            GpuModel::a100().request_latency(&model, shape)
        );
        let mut dfx = DfxModel::four_fpga();
        assert_eq!(
            dfx.service_time(&model, shape),
            DfxModel::four_fpga().request_latency(&model, shape)
        );
    }

    #[test]
    fn baseline_kv_transfer_prices_host_link() {
        let model = ModelConfig::gpt2_xl();
        let bytes = ianus_core::capacity::kv_swap_bytes(&model, 512);
        let mut gpu = GpuModel::a100();
        let t = gpu.kv_transfer_time(&model, 512);
        // bytes / (GB/s) = nanoseconds.
        let want = bytes as f64 / gpu.host_gbps;
        assert!((t.as_ns_f64() / want - 1.0).abs() < 1e-9, "{t}");
        // DFX's four parallel Gen3 ×16 links aggregate to twice the
        // A100 board's single Gen4 ×16, so the same KV swaps faster.
        let mut dfx = DfxModel::four_fpga();
        let td = dfx.kv_transfer_time(&model, 512);
        assert_eq!(td.as_ns_f64(), t.as_ns_f64() / 2.0);
        assert_eq!(gpu.kv_transfer_time(&model, 0).as_ns_f64(), 0.0);
    }

    #[test]
    fn baseline_capacity_reflects_hbm() {
        // 80 GB HBM holds 30B BF16 weights (60 GB), not 175B.
        assert!(GpuModel::a100().fits(&ModelConfig::gpt_30b()).is_ok());
        assert!(DfxModel::four_fpga().fits(&ModelConfig::gpt_30b()).is_err());
        assert!(DfxModel::four_fpga().fits(&ModelConfig::gpt2_xl()).is_ok());
        assert_eq!(Backend::name(&GpuModel::a100()), "A100 (eager)");
        assert_eq!(Backend::name(&DfxModel::four_fpga()), "DFX (4-FPGA)");
    }
}
