//! Comparison platforms: NVIDIA A100 (PyTorch eager) and DFX.
//!
//! The paper compares IANUS against an A100-SXM running HuggingFace /
//! Megatron GPT-2 with batch size 1, and against DFX, a 4-FPGA appliance
//! for transformer text generation. Neither platform is available to this
//! reproduction, so both are **calibrated analytical models**:
//!
//! * [`GpuModel`] — a kernel-dispatch + roofline model. The paper's own
//!   GPU numbers show non-batched GPT-2 inference on A100 is dominated by
//!   per-kernel dispatch (≈ 0.55 ms per decoder block regardless of model
//!   width — see Figure 8's near-identical per-block latencies), with
//!   roofline compute/memory terms that only matter for large
//!   summarization batches (BERT, Figure 14). Kernel-class costs are
//!   calibrated once against Figure 2's breakdown and reused everywhere.
//! * [`DfxModel`] — a bandwidth-bound per-token model: DFX processes both
//!   stages token-serially at a calibrated fraction of its HBM bandwidth
//!   (Figure 9's DFX rows: ≈ 6.9 ms per token for GPT-2 XL).
//!
//! Both models consume the same [`ianus_model`] shapes as the IANUS
//! simulator, so comparisons never diverge on workload definition.

mod dfx;
mod gpu;

pub use dfx::DfxModel;
pub use gpu::{GpuBreakdown, GpuModel, KernelClass};
