//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and [`Rng::gen_range`] over
//! half-open ranges. The generator is SplitMix64 — statistically fine for
//! simulation workloads and exactly reproducible across platforms, which
//! is all the simulator needs (it never does cryptography).
//!
//! Swapping in the real `rand` crate later only changes the streams, not
//! any API call site.

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased uniform draw in `[0, span)` via Lemire's widening-multiply
/// rejection method (Lemire 2019, "Fast Random Integer Generation in an
/// Interval"): `x * span` maps a 64-bit word onto `span` buckets of the
/// 128-bit product's high half; the low half detects the (at most
/// `2^64 mod span`) words that would over-fill a bucket, and those are
/// redrawn. A plain `next_u64() % span` over-weights the first
/// `2^64 mod span` values of a non-power-of-two span.
fn sample_u64_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = u128::from(rng.next_u64()) * u128::from(span);
    if (m as u64) < span {
        // threshold = (2^64 - span) % span = 2^64 mod span.
        let threshold = span.wrapping_neg() % span;
        while (m as u64) < threshold {
            m = u128::from(rng.next_u64()) * u128::from(span);
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires low < high");
                // The span of a half-open range over a ≤64-bit integer
                // type always fits in u64.
                let span = ((high as u128) - (low as u128)) as u64;
                low + sample_u64_below(rng, span) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range requires low < high");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + unit * (high - low);
        // Guard the half-open upper bound against rounding.
        if v >= high {
            low
        } else {
            v
        }
    }
}

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`] (the subset of `rand::Rng`
/// this workspace uses).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand`'s
    /// ChaCha-based `StdRng`; same API, different — but still seeded and
    /// reproducible — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0f64..1.0).to_bits(),
                b.gen_range(0.0f64..1.0).to_bits()
            );
        }
    }

    #[test]
    fn f64_range_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }

    /// RNG that replays a scripted sequence of words (then falls back to
    /// a counter), for pinning the rejection-sampling edge cases.
    struct ScriptedRng {
        script: Vec<u64>,
        pos: usize,
    }

    impl super::RngCore for ScriptedRng {
        fn next_u64(&mut self) -> u64 {
            let v = self
                .script
                .get(self.pos)
                .copied()
                .unwrap_or(self.pos as u64);
            self.pos += 1;
            v
        }
    }

    #[test]
    fn lemire_rejects_overfull_bucket_words() {
        // span = 6: 2^64 mod 6 = 4, so words whose widening product has a
        // low half < 4 must be rejected and redrawn. x = 3 gives
        // m = 18, low half 18 < span, threshold = 4, 18 >= 4 -> accepted
        // with high half 0. x = 0 gives low half 0 < 4 -> rejected.
        let mut rng = ScriptedRng {
            script: vec![0, u64::MAX],
            pos: 0,
        };
        // First word (0) is rejected; u64::MAX maps to the top bucket.
        let v = rng.gen_range(0u64..6);
        assert_eq!(v, 5, "rejection must skip the biased word");
        assert_eq!(rng.pos, 2, "exactly one redraw");

        // A power-of-two span never rejects (threshold = 0).
        let mut rng = ScriptedRng {
            script: vec![0],
            pos: 0,
        };
        assert_eq!(rng.gen_range(0u64..8), 0);
        assert_eq!(rng.pos, 1);
    }

    #[test]
    fn int_draws_uniform_over_non_power_of_two_span() {
        // Uniformity regression for the modulo-bias fix: 60k draws over a
        // span of 6 — each value within 5% of the expected 10k, and the
        // chi-square statistic far below the 0.999 quantile (~20.5 for
        // 5 degrees of freedom).
        let mut rng = StdRng::seed_from_u64(0xB1A5);
        const DRAWS: u64 = 60_000;
        let mut counts = [0u64; 6];
        for _ in 0..DRAWS {
            counts[rng.gen_range(10u64..16) as usize - 10] += 1;
        }
        let expected = DRAWS as f64 / 6.0;
        let mut chi2 = 0.0;
        for (i, &c) in counts.iter().enumerate() {
            let dev = (c as f64 - expected).abs() / expected;
            assert!(dev < 0.05, "value {i}: {c} draws, {dev:.3} off uniform");
            chi2 += (c as f64 - expected).powi(2) / expected;
        }
        assert!(chi2 < 20.5, "chi-square {chi2:.1} over 0.999 quantile");
    }

    #[test]
    fn int_range_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..7);
            assert!((3..7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "range endpoints never drawn");
    }
}
