//! Minimal offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the tiny slice of `rand`'s API it actually uses: a seedable
//! deterministic generator ([`rngs::StdRng`]) and [`Rng::gen_range`] over
//! half-open ranges. The generator is SplitMix64 — statistically fine for
//! simulation workloads and exactly reproducible across platforms, which
//! is all the simulator needs (it never does cryptography).
//!
//! Swapping in the real `rand` crate later only changes the streams, not
//! any API call site.

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high)` from `rng`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range requires low < high");
                let span = (high as u128) - (low as u128);
                low + (rng.next_u64() as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "gen_range requires low < high");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        let v = low + unit * (high - low);
        // Guard the half-open upper bound against rounding.
        if v >= high {
            low
        } else {
            v
        }
    }
}

/// Core generator interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over any [`RngCore`] (the subset of `rand::Rng`
/// this workspace uses).
pub trait Rng: RngCore {
    /// Uniform draw from a half-open range.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range.start, range.end)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of generators from seeds.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator (stand-in for `rand`'s
    /// ChaCha-based `StdRng`; same API, different — but still seeded and
    /// reproducible — stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0f64..1.0).to_bits(),
                b.gen_range(0.0f64..1.0).to_bits()
            );
        }
    }

    #[test]
    fn f64_range_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&v));
        }
    }

    #[test]
    fn int_range_respected() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..10_000 {
            let v = rng.gen_range(3u64..7);
            assert!((3..7).contains(&v));
            seen_lo |= v == 3;
            seen_hi |= v == 6;
        }
        assert!(seen_lo && seen_hi, "range endpoints never drawn");
    }
}
