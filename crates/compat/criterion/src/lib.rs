//! Minimal offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of criterion's API its benches use: `Criterion` with
//! `bench_function` / `benchmark_group` / `bench_with_input`, `Bencher`
//! with `iter`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros (both the list and the
//! `name/config/targets` forms).
//!
//! Statistics are intentionally simple — a timed warm-up pass followed by
//! `sample_size` timed samples, reporting min/mean/max per iteration —
//! which is plenty for the workspace's regression-spotting use. Swapping
//! in real criterion later changes no call site.

use std::time::{Duration, Instant};

/// Benchmark runner and configuration.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Criterion {
    /// The default configuration (20 samples, 3 s budget, 1 s warm-up).
    #[allow(clippy::should_implement_trait)]
    pub fn default() -> Self {
        Criterion {
            sample_size: 20,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_secs(1),
        }
    }

    /// Sets the number of timed samples.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_one(self, name, |b| f(b));
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_one(self.criterion, &label, |b| f(b, input));
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id rendered from a parameter value.
    pub fn from_parameter<D: std::fmt::Display>(parameter: D) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

/// Timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F: FnMut(&mut Bencher)>(cfg: &Criterion, name: &str, mut f: F) {
    // Warm-up: grow the iteration count until one sample costs ≥ ~1 ms or
    // the warm-up budget is spent, so cheap routines aren't timer-noise.
    let mut iters = 1u64;
    let warm_start = Instant::now();
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(1) || warm_start.elapsed() >= cfg.warm_up_time {
            break;
        }
        iters = iters.saturating_mul(2);
    }

    let deadline = Instant::now() + cfg.measurement_time;
    let mut per_iter_ns: Vec<f64> = Vec::with_capacity(cfg.sample_size);
    for _ in 0..cfg.sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        per_iter_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        if Instant::now() >= deadline {
            break;
        }
    }
    let mean = per_iter_ns.iter().sum::<f64>() / per_iter_ns.len() as f64;
    let min = per_iter_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = per_iter_ns.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "{name:<40} {:>12} {:>12} {:>12}   ({} samples x {iters} iters)",
        fmt_ns(min),
        fmt_ns(mean),
        fmt_ns(max),
        per_iter_ns.len(),
    );
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.1} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            println!(
                "{:<40} {:>12} {:>12} {:>12}",
                "benchmark", "min", "mean", "max"
            );
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(50))
            .warm_up_time(Duration::from_millis(10));
        let mut count = 0u64;
        c.bench_function("noop", |b| b.iter(|| count += 1));
        assert!(count > 0);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default()
            .sample_size(2)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("g");
        g.bench_with_input(BenchmarkId::from_parameter("x"), &3u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
    }
}
