//! Minimal offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors the slice of proptest's API its property tests use:
//!
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges, tuples, and the combinators below;
//! * `prop::sample::select`, `prop::collection::vec`, `prop::option::of`,
//!   and [`strategy::any`] (for `bool`);
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` support) and
//!   [`prop_assert!`] / [`prop_assert_eq!`];
//! * [`test_runner::ProptestConfig::with_cases`].
//!
//! Unlike real proptest there is **no shrinking** and no persisted failure
//! corpus: each test derives a deterministic RNG from its own name and
//! runs `cases` independently sampled inputs, so failures reproduce
//! exactly on re-run. That covers what the workspace needs — randomized
//! coverage of invariants — while remaining a few hundred lines and fully
//! offline.

pub mod test_runner {
    //! Test configuration, RNG, and failure plumbing.

    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of sampled cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` sampled inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // Real proptest defaults to 256; property bodies in this
            // workspace simulate whole devices, so default lower and let
            // tests opt into more.
            ProptestConfig { cases: 32 }
        }
    }

    /// Failure raised by `prop_assert!` family macros.
    #[derive(Debug)]
    pub struct TestCaseError(pub String);

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic SplitMix64 RNG; each test seeds one from its name so
    /// runs are reproducible without a persistence file.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from a test name (FNV-1a over the bytes).
        pub fn from_name(name: &str) -> Self {
            let mut h = 0xCBF2_9CE4_8422_2325u64;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next uniform 64-bit word.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw below `bound` (`bound > 0`).
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and base implementations.

    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Samples one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    // Widen through i128 so signed ranges with a
                    // negative start compute the correct span.
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (u128::from(rng.next_u64()) % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary {
        /// Samples one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for u64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.next_u64()
        }
    }

    /// Strategy over a type's whole domain.
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod prop {
    //! The `prop::` combinator namespace.

    pub mod sample {
        //! Uniform selection from explicit value sets.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy drawing uniformly from a fixed vector.
        #[derive(Debug, Clone)]
        pub struct Select<T> {
            values: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                assert!(!self.values.is_empty(), "select over empty vector");
                self.values[rng.below(self.values.len() as u64) as usize].clone()
            }
        }

        /// Uniform choice among `values`.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            Select { values }
        }
    }

    pub mod collection {
        //! Collection strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        use std::ops::Range;

        /// Strategy generating vectors of strategy-driven elements.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: Range<usize>,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                assert!(self.len.start < self.len.end, "empty length range");
                let span = (self.len.end - self.len.start) as u64;
                let n = self.len.start + rng.below(span) as usize;
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Vector of `element` values with a length in `len`.
        pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }
    }

    pub mod option {
        //! `Option` strategies.

        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;

        /// Strategy generating `None` a quarter of the time (matching real
        /// proptest's default weighting) and `Some(inner)` otherwise.
        #[derive(Debug, Clone)]
        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
                if rng.below(4) == 0 {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        /// `Option` of `inner`'s values.
        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

pub mod prelude {
    //! Everything property tests import.

    pub use crate::prop;
    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declares property tests. Each function's arguments are drawn from the
/// strategies after `in`, `cases` times per test run.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            cfg = (<$crate::test_runner::ProptestConfig as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

/// Internal expansion of [`proptest!`]: one wrapped `#[test]` per item.
/// The `#[test]` attribute itself rides along in `$meta`.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __inputs = format!(
                    concat!($(stringify!($arg), " = {:?}, ",)+ ""),
                    $(&$arg,)+
                );
                let __result: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let Err(e) = __result {
                    panic!(
                        "property {} failed at case {}/{} with {}: {}",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                        __inputs,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(
                format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($lhs),
            stringify!($rhs),
            l,
            r
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u64..17, y in 0usize..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5);
        }

        #[test]
        fn combinators_compose(
            v in prop::collection::vec(0u32..10, 1..8),
            pick in prop::sample::select(vec![1u8, 2, 4]),
            opt in prop::option::of(0u64..3),
            flag in any::<bool>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert!(v.iter().all(|&e| e < 10));
            prop_assert!([1u8, 2, 4].contains(&pick));
            if let Some(o) = opt {
                prop_assert!(o < 3);
            }
            prop_assert_eq!(flag, flag);
        }

        #[test]
        fn prop_map_applies(double in (1u64..10).prop_map(|v| v * 2)) {
            prop_assert!(double % 2 == 0 && double < 20);
        }
    }

    #[test]
    fn signed_ranges_with_negative_start_stay_in_bounds() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let mut rng = TestRng::from_name("signed");
        let mut seen_negative = false;
        for _ in 0..1000 {
            let v = (-5i32..5).generate(&mut rng);
            assert!((-5..5).contains(&v), "{v}");
            seen_negative |= v < 0;
            let w = (i64::MIN..0).generate(&mut rng);
            assert!(w < 0);
        }
        assert!(seen_negative);
    }

    #[test]
    fn rng_is_deterministic_per_name() {
        use crate::test_runner::TestRng;
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
