//! NPU configuration (paper Table 1, NPU rows).

use ianus_sim::{Duration, Frequency};

/// Configuration of one IANUS NPU and its cores.
///
/// Paper values: 4 cores at 700 MHz; per core a 128×64-PE matrix unit with
/// 4 MACs per PE (46 TFLOPS), sixteen 4-wide VLIW vector processors,
/// 12 MB activation + 4 MB weight scratchpads; command scheduler with
/// 4-slot issue queues and a 256-slot pending queue; 8 PIM memory
/// controllers; PCIe 5.0 ×16 host interface.
///
/// # Examples
///
/// ```
/// use ianus_npu::NpuConfig;
/// let cfg = NpuConfig::ianus_default();
/// assert_eq!(cfg.cores, 4);
/// // 128×64 PEs × 4 MACs × 2 FLOP × 0.7 GHz ≈ 45.9 TFLOPS per core.
/// assert!((cfg.mu_peak_tflops() - 45.875).abs() < 0.01);
/// // 4 cores ≈ 184 TFLOPS (Table 2).
/// assert!((cfg.peak_tflops() - 183.5).abs() < 0.1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NpuConfig {
    /// Number of cores (paper: 4).
    pub cores: u32,
    /// Core clock (paper: 700 MHz).
    pub clock: Frequency,
    /// Matrix unit systolic rows (token/M dimension; paper: 128).
    pub mu_rows: u32,
    /// Matrix unit systolic columns (output/N dimension; paper: 64).
    pub mu_cols: u32,
    /// MACs per processing element (paper: 4; unrolls the K dimension).
    pub mu_macs_per_pe: u32,
    /// Vector processors per core (paper: 16).
    pub vu_processors: u32,
    /// VLIW issue width of each vector processor (paper: 4).
    pub vu_width: u32,
    /// Activation scratchpad bytes per core (paper: 12 MB).
    pub am_bytes: u64,
    /// Weight scratchpad bytes per core (paper: 4 MB).
    pub wm_bytes: u64,
    /// On-chip streaming (transpose) path bytes per cycle.
    pub onchip_stream_bytes_per_cycle: u32,
    /// Issue-queue slots per unit (paper: 4).
    pub issue_slots: u32,
    /// Pending-queue slots (paper: 256).
    pub pending_slots: u32,
    /// Fixed scheduler dispatch cost charged per command.
    pub dispatch_overhead: Duration,
}

impl NpuConfig {
    /// The paper's Table 1 NPU configuration.
    pub fn ianus_default() -> Self {
        let clock = Frequency::from_mhz(700);
        NpuConfig {
            cores: 4,
            clock,
            mu_rows: 128,
            mu_cols: 64,
            mu_macs_per_pe: 4,
            vu_processors: 16,
            vu_width: 4,
            am_bytes: 12 << 20,
            wm_bytes: 4 << 20,
            onchip_stream_bytes_per_cycle: 128,
            issue_slots: 4,
            pending_slots: 256,
            dispatch_overhead: clock.cycles(4),
        }
    }

    /// Sets the core count (used by the Figure 15 sensitivity study).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn with_cores(mut self, cores: u32) -> Self {
        assert!(cores > 0, "core count must be positive");
        self.cores = cores;
        self
    }

    /// Peak matrix-unit throughput of one core in TFLOPS.
    pub fn mu_peak_tflops(&self) -> f64 {
        self.mu_rows as f64
            * self.mu_cols as f64
            * self.mu_macs_per_pe as f64
            * 2.0
            * self.clock.as_hz()
            / 1e12
    }

    /// Peak throughput of all cores in TFLOPS.
    pub fn peak_tflops(&self) -> f64 {
        self.mu_peak_tflops() * self.cores as f64
    }

    /// Vector lanes per core (processors × VLIW width).
    pub fn vu_lanes(&self) -> u32 {
        self.vu_processors * self.vu_width
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table1() {
        let c = NpuConfig::ianus_default();
        assert_eq!(c.vu_lanes(), 64);
        assert_eq!(c.am_bytes, 12 << 20);
        assert_eq!(c.wm_bytes, 4 << 20);
        assert_eq!(c.issue_slots, 4);
        assert_eq!(c.pending_slots, 256);
    }

    #[test]
    fn with_cores_scales_peak() {
        let c = NpuConfig::ianus_default().with_cores(2);
        assert!((c.peak_tflops() - 2.0 * c.mu_peak_tflops()).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_cores_rejected() {
        let _ = NpuConfig::ianus_default().with_cores(0);
    }
}
