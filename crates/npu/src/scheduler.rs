//! Dependency-driven command scheduler (paper Section 4.3).
//!
//! The IANUS command scheduler checks dependencies between commands and
//! the status of every compute, DMA and PIM unit, issuing a command when
//! its dependencies are resolved and its unit is free. This module is the
//! execution engine for that microarchitecture: a [`Program`] is a list of
//! [`Command`]s (emitted in compile order) over the units of an
//! [`Engine`]; [`Engine::run`] performs in-order-per-unit list scheduling
//! with cross-unit overlap, which is exactly what the paper's 4-slot
//! issue queues + pending queue produce for compiler-ordered streams.
//!
//! A command may occupy a second, *shared* resource in addition to its
//! unit — this is how the unified-memory conflict is modelled: normal DMA
//! commands and macro PIM commands both hold the memory-channel resource,
//! so they serialize; in a partitioned system they hold different
//! resources and overlap.
//!
//! # Examples
//!
//! ```
//! use ianus_npu::scheduler::{Command, Engine, Program};
//! use ianus_sim::Duration;
//!
//! let mut eng = Engine::new(2, Duration::ZERO); // units: 0 = MU, 1 = DMA
//! let mut prog = Program::new();
//! let load = prog.push(Command::new(1, Duration::from_ns(100), 0));
//! let gemm = prog.push(Command::new(0, Duration::from_ns(50), 1).after(load));
//! let load2 = prog.push(Command::new(1, Duration::from_ns(100), 0)); // overlaps gemm
//! let gemm2 = prog.push(Command::new(0, Duration::from_ns(50), 1).after(load2).after(gemm));
//! let report = eng.run(&prog);
//! assert_eq!(report.finish(gemm2).as_ns_f64(), 250.0);
//! ```

use ianus_sim::{Duration, Resource, Time};

/// Identifier of a command within its [`Program`].
pub type CmdId = usize;

/// Index of a hardware unit within its [`Engine`].
pub type UnitId = usize;

/// A schedulable command.
#[derive(Debug, Clone)]
pub struct Command {
    /// Unit that executes the command.
    pub unit: UnitId,
    /// Additional resources held for the full duration (e.g. the unified
    /// memory channel tokens a DMA stream touches).
    pub shared: Vec<UnitId>,
    /// Execution time on the unit.
    pub duration: Duration,
    /// Commands that must finish first.
    pub deps: Vec<CmdId>,
    /// Caller-defined class for busy-time attribution (breakdown reports).
    pub tag: usize,
}

impl Command {
    /// Creates a command on `unit` lasting `duration`, attributed to `tag`.
    pub fn new(unit: UnitId, duration: Duration, tag: usize) -> Self {
        Command {
            unit,
            shared: Vec::new(),
            duration,
            deps: Vec::new(),
            tag,
        }
    }

    /// Adds a dependency.
    pub fn after(mut self, dep: CmdId) -> Self {
        self.deps.push(dep);
        self
    }

    /// Adds all dependencies from an iterator.
    pub fn after_all<I: IntoIterator<Item = CmdId>>(mut self, deps: I) -> Self {
        self.deps.extend(deps);
        self
    }

    /// Holds `resource` for the command's duration in addition to its unit.
    pub fn holding(mut self, resource: UnitId) -> Self {
        self.shared.push(resource);
        self
    }

    /// Holds every resource in `resources` for the command's duration.
    pub fn holding_all<I: IntoIterator<Item = UnitId>>(mut self, resources: I) -> Self {
        self.shared.extend(resources);
        self
    }
}

/// A compiler-ordered list of commands.
#[derive(Debug, Clone, Default)]
pub struct Program {
    commands: Vec<Command>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Appends a command, returning its id.
    pub fn push(&mut self, cmd: Command) -> CmdId {
        self.commands.push(cmd);
        self.commands.len() - 1
    }

    /// Number of commands.
    pub fn len(&self) -> usize {
        self.commands.len()
    }

    /// Whether the program is empty.
    pub fn is_empty(&self) -> bool {
        self.commands.is_empty()
    }

    /// The commands in emission order.
    pub fn commands(&self) -> &[Command] {
        &self.commands
    }

    /// Id the next pushed command will receive.
    pub fn next_id(&self) -> CmdId {
        self.commands.len()
    }
}

/// One command's execution interval, emitted by [`Engine::run_traced`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Command id within the program.
    pub cmd: CmdId,
    /// Unit the command executed on.
    pub unit: UnitId,
    /// Tag of the command.
    pub tag: usize,
    /// Start of execution.
    pub start: Time,
    /// End of execution.
    pub end: Time,
}

/// Serializes spans as a Chrome `chrome://tracing` / Perfetto JSON array
/// ("X" complete events; timestamps in microseconds). Unit and tag names
/// are optional lookups — indices are printed when a name is missing.
///
/// # Examples
///
/// ```
/// use ianus_npu::scheduler::{chrome_trace, Span};
/// use ianus_sim::Time;
/// let spans = [Span { cmd: 0, unit: 1, tag: 0, start: Time::ZERO, end: Time::from_ns(1500) }];
/// let json = chrome_trace(&spans, &["mu", "dma"], &["gemm"]);
/// assert!(json.contains("\"name\": \"gemm\""));
/// assert!(json.contains("\"tid\": \"dma\""));
/// ```
pub fn chrome_trace(spans: &[Span], unit_names: &[&str], tag_names: &[&str]) -> String {
    let mut out = String::from("[\n");
    for (i, s) in spans.iter().enumerate() {
        let name = tag_names
            .get(s.tag)
            .map_or_else(|| format!("tag{}", s.tag), |n| (*n).to_owned());
        let tid = unit_names
            .get(s.unit)
            .map_or_else(|| format!("unit{}", s.unit), |n| (*n).to_owned());
        let ts = s.start.as_ps() as f64 / 1e6;
        let dur = (s.end.as_ps() - s.start.as_ps()) as f64 / 1e6;
        out.push_str(&format!(
            "  {{\"name\": \"{name}\", \"ph\": \"X\", \"pid\": 0, \"tid\": \"{tid}\", \
             \"ts\": {ts:.3}, \"dur\": {dur:.3}, \"args\": {{\"cmd\": {}}}}}{}\n",
            s.cmd,
            if i + 1 == spans.len() { "" } else { "," }
        ));
    }
    out.push(']');
    out
}

/// Execution result of a program.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    finish: Vec<Time>,
    makespan: Time,
    tag_busy: Vec<Duration>,
    unit_busy: Vec<Duration>,
}

impl ExecutionReport {
    /// Completion time of command `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn finish(&self, id: CmdId) -> Time {
        self.finish[id]
    }

    /// Completion time of the whole program.
    pub fn makespan(&self) -> Time {
        self.makespan
    }

    /// Total busy time attributed to `tag` (zero for unseen tags).
    pub fn tag_busy(&self, tag: usize) -> Duration {
        self.tag_busy.get(tag).copied().unwrap_or(Duration::ZERO)
    }

    /// Total busy time of `unit`.
    pub fn unit_busy(&self, unit: UnitId) -> Duration {
        self.unit_busy.get(unit).copied().unwrap_or(Duration::ZERO)
    }
}

/// The unit pool a program executes against.
///
/// Units are plain indices; the system layer defines the convention (which
/// index is a core's matrix unit, which is the shared memory bus, …).
#[derive(Debug, Clone)]
pub struct Engine {
    units: Vec<Resource>,
    dispatch: Duration,
}

impl Engine {
    /// Creates an engine with `units` resources and a fixed per-command
    /// dispatch overhead (the command scheduler's issue cost).
    pub fn new(units: usize, dispatch: Duration) -> Self {
        Engine {
            units: (0..units)
                .map(|i| Resource::new(format!("unit{i}")))
                .collect(),
            dispatch,
        }
    }

    /// Number of units.
    pub fn unit_count(&self) -> usize {
        self.units.len()
    }

    /// Executes `program`, resetting all units first.
    ///
    /// # Panics
    ///
    /// Panics if a command references an out-of-range unit or a dependency
    /// on a later command (programs must be emitted in topological order).
    pub fn run(&mut self, program: &Program) -> ExecutionReport {
        self.run_inner(program, None)
    }

    /// Executes `program` and records one [`Span`] per command for
    /// timeline inspection / Chrome-trace export.
    pub fn run_traced(&mut self, program: &Program) -> (ExecutionReport, Vec<Span>) {
        let mut spans = Vec::with_capacity(program.len());
        let report = self.run_inner(program, Some(&mut spans));
        (report, spans)
    }

    fn run_inner(
        &mut self,
        program: &Program,
        mut trace: Option<&mut Vec<Span>>,
    ) -> ExecutionReport {
        for u in &mut self.units {
            u.reset();
        }
        let n = program.len();
        let mut finish = vec![Time::ZERO; n];
        let mut makespan = Time::ZERO;
        let mut tag_busy: Vec<Duration> = Vec::new();
        for (id, cmd) in program.commands().iter().enumerate() {
            let mut ready = Time::ZERO;
            for &d in &cmd.deps {
                assert!(d < id, "dependency {d} of command {id} is not earlier");
                ready = ready.max(finish[d]);
            }
            ready += self.dispatch;
            // Start when the unit and every shared resource are free.
            let mut start = self.units[cmd.unit].next_start(ready);
            for &s in &cmd.shared {
                assert!(s != cmd.unit, "shared resource equals unit");
                start = start.max(self.units[s].next_start(ready));
            }
            let done = self.units[cmd.unit].acquire(start, cmd.duration);
            for &s in &cmd.shared {
                self.units[s].acquire(start, cmd.duration);
            }
            finish[id] = done;
            makespan = makespan.max(done);
            if cmd.tag >= tag_busy.len() {
                tag_busy.resize(cmd.tag + 1, Duration::ZERO);
            }
            tag_busy[cmd.tag] += cmd.duration;
            if let Some(spans) = trace.as_deref_mut() {
                spans.push(Span {
                    cmd: id,
                    unit: cmd.unit,
                    tag: cmd.tag,
                    start,
                    end: done,
                });
            }
        }
        ExecutionReport {
            finish,
            makespan,
            tag_busy,
            unit_busy: self.units.iter().map(|u| u.busy_time()).collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const NS: fn(u64) -> Duration = Duration::from_ns;

    #[test]
    fn independent_units_overlap() {
        let mut eng = Engine::new(2, Duration::ZERO);
        let mut p = Program::new();
        p.push(Command::new(0, NS(100), 0));
        p.push(Command::new(1, NS(100), 0));
        let r = eng.run(&p);
        assert_eq!(r.makespan(), Time::from_ns(100));
    }

    #[test]
    fn same_unit_serializes() {
        let mut eng = Engine::new(1, Duration::ZERO);
        let mut p = Program::new();
        p.push(Command::new(0, NS(100), 0));
        p.push(Command::new(0, NS(100), 0));
        let r = eng.run(&p);
        assert_eq!(r.makespan(), Time::from_ns(200));
    }

    #[test]
    fn dependencies_chain() {
        let mut eng = Engine::new(2, Duration::ZERO);
        let mut p = Program::new();
        let a = p.push(Command::new(0, NS(100), 0));
        let b = p.push(Command::new(1, NS(50), 0).after(a));
        let r = eng.run(&p);
        assert_eq!(r.finish(b), Time::from_ns(150));
    }

    #[test]
    fn shared_resource_excludes() {
        // Unit 0 and unit 1 both hold resource 2: they cannot overlap —
        // the unified-memory PIM/DMA conflict in miniature.
        let mut eng = Engine::new(3, Duration::ZERO);
        let mut p = Program::new();
        p.push(Command::new(0, NS(100), 0).holding(2));
        p.push(Command::new(1, NS(100), 0).holding(2));
        let r = eng.run(&p);
        assert_eq!(r.makespan(), Time::from_ns(200));
        // Without the shared resource they overlap.
        let mut p2 = Program::new();
        p2.push(Command::new(0, NS(100), 0));
        p2.push(Command::new(1, NS(100), 0));
        assert_eq!(eng.run(&p2).makespan(), Time::from_ns(100));
    }

    #[test]
    fn dispatch_overhead_charged_per_command() {
        let mut eng = Engine::new(1, NS(5));
        let mut p = Program::new();
        let a = p.push(Command::new(0, NS(10), 0));
        let b = p.push(Command::new(0, NS(10), 0).after(a));
        let r = eng.run(&p);
        assert_eq!(r.finish(b), Time::from_ns(30));
    }

    #[test]
    fn pipelined_load_compute() {
        // Classic double buffering: loads on unit 1, GEMMs on unit 0.
        let mut eng = Engine::new(2, Duration::ZERO);
        let mut p = Program::new();
        let mut prev_gemm: Option<CmdId> = None;
        let mut last = 0;
        for _ in 0..4 {
            let load = p.push(Command::new(1, NS(100), 0));
            let mut gemm = Command::new(0, NS(60), 1).after(load);
            if let Some(g) = prev_gemm {
                gemm = gemm.after(g);
            }
            last = p.push(gemm);
            prev_gemm = Some(last);
        }
        let r = eng.run(&p);
        // Loads dominate: 4×100 + final gemm 60.
        assert_eq!(r.finish(last), Time::from_ns(460));
        assert_eq!(r.tag_busy(1), NS(240));
        assert_eq!(r.unit_busy(1), NS(400));
    }

    #[test]
    fn traced_run_matches_untraced() {
        let mut eng = Engine::new(2, NS(1));
        let mut p = Program::new();
        let a = p.push(Command::new(0, NS(10), 0));
        let b = p.push(Command::new(1, NS(20), 1).after(a));
        let plain = eng.run(&p);
        let (traced, spans) = eng.run_traced(&p);
        assert_eq!(plain.makespan(), traced.makespan());
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].cmd, a);
        assert_eq!(spans[1].end, traced.finish(b));
        assert!(spans[1].start >= spans[0].end);
    }

    #[test]
    fn chrome_trace_is_valid_shape() {
        let spans = [
            Span {
                cmd: 0,
                unit: 0,
                tag: 0,
                start: Time::ZERO,
                end: Time::from_ns(10),
            },
            Span {
                cmd: 1,
                unit: 5,
                tag: 9,
                start: Time::from_ns(10),
                end: Time::from_ns(30),
            },
        ];
        let json = chrome_trace(&spans, &["mu"], &["gemm"]);
        assert!(json.starts_with('[') && json.ends_with(']'));
        // Unknown indices fall back to numbered names.
        assert!(json.contains("unit5") && json.contains("tag9"));
        // Two events, one trailing comma.
        assert_eq!(json.matches("\"ph\": \"X\"").count(), 2);
    }

    #[test]
    #[should_panic(expected = "not earlier")]
    fn forward_dependency_rejected() {
        let mut eng = Engine::new(1, Duration::ZERO);
        let mut p = Program::new();
        p.push(Command::new(0, NS(1), 0).after(5));
        let _ = eng.run(&p);
    }
}
