//! DMA engine timing, including the on-chip streaming transpose path.

use crate::NpuConfig;
use ianus_sim::{Duration, Frequency};

/// Timing model of a core's DMA engines.
///
/// Off-chip transfer time is supplied by the memory system (the DMA is
/// bandwidth-bound on the unified GDDR6 channels); this model adds the
/// engine's fixed setup cost and implements the **on-chip transpose**
/// stream between the activation and weight scratchpads — the streaming
/// buffer + weight-interleaving microarchitecture of Section 4.2.1 that
/// keeps key transposes off the memory channels entirely (so they never
/// block PIM).
///
/// # Examples
///
/// ```
/// use ianus_npu::{DmaEngine, NpuConfig};
/// let dma = DmaEngine::new(&NpuConfig::ianus_default());
/// // Transposing a 512×64 BF16 key block on-chip: tens of ns per KB.
/// let t = dma.onchip_transpose(512 * 64 * 2);
/// assert!(t.as_us_f64() < 1.0);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DmaEngine {
    clock: Frequency,
    stream_bytes_per_cycle: u32,
    setup_cycles: u64,
}

impl DmaEngine {
    /// Creates the timing model from a core configuration.
    pub fn new(cfg: &NpuConfig) -> Self {
        DmaEngine {
            clock: cfg.clock,
            stream_bytes_per_cycle: cfg.onchip_stream_bytes_per_cycle,
            setup_cycles: 16,
        }
    }

    /// Fixed descriptor/setup cost charged per DMA command.
    pub fn setup(&self) -> Duration {
        self.clock.cycles(self.setup_cycles)
    }

    /// On-chip AM→WM (or WM→AM) streaming move of `bytes`, e.g. the
    /// partial-transpose path with the streaming buffer.
    pub fn onchip_move(&self, bytes: u64) -> Duration {
        let cycles = bytes.div_ceil(u64::from(self.stream_bytes_per_cycle));
        self.setup() + self.clock.cycles(cycles)
    }

    /// On-chip transpose: same streaming path; entry-size mismatch is
    /// resolved by the streaming buffer at line rate, so cost equals a
    /// move (this is the point of the microarchitecture).
    pub fn onchip_transpose(&self, bytes: u64) -> Duration {
        self.onchip_move(bytes)
    }

    /// Off-chip transfer of `bytes` given the memory system's sustained
    /// bandwidth for this stream (`bytes_per_ns`) — the engine adds its
    /// setup cost.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_ns` is not positive.
    pub fn offchip(&self, bytes: u64, bytes_per_ns: f64) -> Duration {
        assert!(bytes_per_ns > 0.0, "bandwidth must be positive");
        self.setup() + Duration::from_ns_f64(bytes as f64 / bytes_per_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dma() -> DmaEngine {
        DmaEngine::new(&NpuConfig::ianus_default())
    }

    #[test]
    fn onchip_bandwidth() {
        let d = dma();
        // 128 B/cycle at 700 MHz = 89.6 GB/s.
        let t = d.onchip_move(896_000);
        let ns = t.as_ns_f64() - d.setup().as_ns_f64();
        assert!((ns - 10_000.0).abs() < 10.0, "{ns}");
    }

    #[test]
    fn transpose_costs_like_move() {
        let d = dma();
        assert_eq!(d.onchip_transpose(4096), d.onchip_move(4096));
    }

    #[test]
    fn offchip_setup_plus_stream() {
        let d = dma();
        let t = d.offchip(256_000, 256.0);
        assert!((t.as_ns_f64() - d.setup().as_ns_f64() - 1000.0).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn zero_bandwidth_rejected() {
        let _ = dma().offchip(1, 0.0);
    }
}
