//! Vector unit (VLIW) timing model.

use crate::NpuConfig;
use ianus_sim::{Duration, Frequency};

/// Vector operations the paper maps to the VU (Section 4.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VuOp {
    /// Two-phase layer normalization (mean/variance pass + normalize pass).
    LayerNorm,
    /// Residual element-wise addition.
    ResidualAdd,
    /// Masked softmax in a single fused kernel (max-subtract for
    /// stability, 1-bit bitmap masks).
    MaskedSoftmax,
    /// GELU via lookup-table approximation.
    Gelu,
    /// Key concatenation / data movement inside the VU register files
    /// (generation-stage attention, Figure 7c step 1).
    Concat,
    /// Generic element-wise scale (e.g. 1/√d attention scaling).
    Scale,
}

impl VuOp {
    /// Average VLIW operations issued per element (passes over the data ×
    /// per-element work).
    fn ops_per_elem(self) -> f64 {
        match self {
            // mean+var pass then normalize pass, each ~1 op/elem plus the
            // multiply-add of the affine parameters.
            VuOp::LayerNorm => 3.0,
            VuOp::ResidualAdd => 1.0,
            // max pass, exp+accumulate pass, divide pass.
            VuOp::MaskedSoftmax => 3.5,
            // LUT index + interpolate.
            VuOp::Gelu => 2.0,
            VuOp::Concat => 0.5,
            VuOp::Scale => 1.0,
        }
    }
}

/// Analytic timing for the sixteen 4-wide VLIW vector processors.
///
/// Throughput is `processors × width` lanes per cycle; each op charges a
/// per-kernel startup cost (pipeline + loop setup), which is what makes
/// many tiny vector kernels expensive relative to their FLOP count — the
/// paper's Figure 2 motivation.
///
/// # Examples
///
/// ```
/// use ianus_npu::{NpuConfig, VectorUnit, VuOp};
/// let vu = VectorUnit::new(&NpuConfig::ianus_default());
/// let small = vu.op(VuOp::ResidualAdd, 1536);
/// let large = vu.op(VuOp::ResidualAdd, 512 * 1536);
/// assert!(large > small * 100);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct VectorUnit {
    lanes: u32,
    clock: Frequency,
    startup_cycles: u64,
}

impl VectorUnit {
    /// Creates the timing model from a core configuration.
    pub fn new(cfg: &NpuConfig) -> Self {
        VectorUnit {
            lanes: cfg.vu_lanes(),
            clock: cfg.clock,
            startup_cycles: 32,
        }
    }

    /// Cycles to run `op` over `elems` elements.
    pub fn op_cycles(&self, op: VuOp, elems: u64) -> u64 {
        let work = (elems as f64 * op.ops_per_elem() / self.lanes as f64).ceil() as u64;
        self.startup_cycles + work
    }

    /// Wall-clock duration of [`Self::op_cycles`].
    pub fn op(&self, op: VuOp, elems: u64) -> Duration {
        self.clock.cycles(self.op_cycles(op, elems))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vu() -> VectorUnit {
        VectorUnit::new(&NpuConfig::ianus_default())
    }

    #[test]
    fn startup_dominates_tiny_kernels() {
        let v = vu();
        // 64 elements on 64 lanes: 1-3 work cycles vs 32 startup.
        let c = v.op_cycles(VuOp::ResidualAdd, 64);
        assert_eq!(c, 33);
    }

    #[test]
    fn throughput_scales_with_elements() {
        let v = vu();
        let a = v.op_cycles(VuOp::Gelu, 1 << 16);
        let b = v.op_cycles(VuOp::Gelu, 1 << 17);
        assert!((b - 32) as f64 / (a - 32) as f64 > 1.99);
    }

    #[test]
    fn softmax_costlier_than_add() {
        let v = vu();
        assert!(v.op_cycles(VuOp::MaskedSoftmax, 4096) > v.op_cycles(VuOp::ResidualAdd, 4096));
    }

    #[test]
    fn generation_layernorm_sub_microsecond() {
        // LayerNorm over one 1536-wide token must be ~0.1 us — the paper's
        // motivation for a dedicated vector unit (GPU pays kernel-launch
        // overheads instead).
        let v = vu();
        let d = v.op(VuOp::LayerNorm, 1536);
        assert!(d.as_ns_f64() < 200.0, "{d}");
    }
}
