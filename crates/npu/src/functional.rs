//! Functional (value-level) vector-unit kernels (paper Section 4.2.2).
//!
//! The timing side of the vector unit lives in [`crate::VectorUnit`];
//! this module implements what the kernels *compute*, with the paper's
//! microarchitectural choices made explicit:
//!
//! * **two-phase layer normalization** — mean/variance pass, then a
//!   normalize pass (the VU's on-chip memory cannot hold intermediate
//!   per-element state for large token counts);
//! * **masked softmax in one fused kernel** — masks are stored as 1-bit
//!   bitmaps (8× smaller than byte masks), and numerical stability comes
//!   from subtracting the row maximum;
//! * **GELU via lookup-table approximation** with linear interpolation.
//!
//! The kernels compute in f32 (the VLIW lanes' internal precision);
//! BF16 conversion happens at scratchpad boundaries and is owned by the
//! callers.

/// Packs a boolean mask into the paper's 1-bit bitmap format (LSB-first).
///
/// # Examples
///
/// ```
/// use ianus_npu::functional::{pack_mask, mask_bit};
/// let bits = pack_mask(&[true, false, true, true]);
/// assert_eq!(bits, vec![0b1101]);
/// assert!(mask_bit(&bits, 0) && !mask_bit(&bits, 1));
/// ```
pub fn pack_mask(mask: &[bool]) -> Vec<u8> {
    let mut out = vec![0u8; mask.len().div_ceil(8)];
    for (i, &m) in mask.iter().enumerate() {
        if m {
            out[i / 8] |= 1 << (i % 8);
        }
    }
    out
}

/// Reads bit `i` of a packed mask (out-of-range bits read as masked-off).
pub fn mask_bit(bits: &[u8], i: usize) -> bool {
    bits.get(i / 8).is_some_and(|b| b & (1 << (i % 8)) != 0)
}

/// Builds the causal (lower-triangular) attention bitmap for a query at
/// position `pos` over `len` key positions.
pub fn causal_mask(pos: usize, len: usize) -> Vec<u8> {
    pack_mask(&(0..len).map(|k| k <= pos).collect::<Vec<_>>())
}

/// Two-phase layer normalization with affine parameters.
///
/// # Panics
///
/// Panics if `x` is empty or the parameter lengths mismatch.
pub fn layer_norm(x: &[f32], gamma: &[f32], beta: &[f32]) -> Vec<f32> {
    assert!(!x.is_empty(), "layer norm of empty vector");
    assert!(
        gamma.len() == x.len() && beta.len() == x.len(),
        "parameter length mismatch"
    );
    // Phase 1: statistics.
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + 1e-5).sqrt();
    // Phase 2: normalize.
    x.iter()
        .zip(gamma.iter().zip(beta))
        .map(|(v, (g, b))| (v - mean) * inv * g + b)
        .collect()
}

/// Fused masked softmax over one attention row: masked-off positions are
/// excluded (treated as −∞), stability comes from max subtraction — not
/// "the large value" the paper replaces (Section 4.2.2).
///
/// # Panics
///
/// Panics if every position is masked off.
pub fn masked_softmax(scores: &[f32], mask_bits: &[u8]) -> Vec<f32> {
    let max = scores
        .iter()
        .enumerate()
        .filter(|(i, _)| mask_bit(mask_bits, *i))
        .map(|(_, &v)| v)
        .fold(f32::NEG_INFINITY, f32::max);
    assert!(max.is_finite(), "softmax with all positions masked");
    let mut out = vec![0.0f32; scores.len()];
    let mut sum = 0.0f32;
    for (i, &s) in scores.iter().enumerate() {
        if mask_bit(mask_bits, i) {
            let e = (s - max).exp();
            out[i] = e;
            sum += e;
        }
    }
    for v in &mut out {
        *v /= sum;
    }
    out
}

/// GELU via the VU's 256-knot lookup table over `[-8, 8]` with linear
/// interpolation (Section 4.2.2 / NN-LUT-style approximation).
#[derive(Debug, Clone)]
pub struct GeluTable {
    knots: Vec<f32>,
}

fn gelu_exact(x: f32) -> f32 {
    let x3 = x * x * x;
    0.5 * x * (1.0 + ((0.797_884_6_f32) * (x + 0.044_715 * x3)).tanh())
}

impl GeluTable {
    /// Builds the table.
    pub fn new() -> Self {
        GeluTable {
            knots: (0..=256)
                .map(|i| gelu_exact(-8.0 + 16.0 * i as f32 / 256.0))
                .collect(),
        }
    }

    /// Evaluates one element.
    pub fn eval(&self, x: f32) -> f32 {
        if x <= -8.0 {
            return 0.0;
        }
        if x >= 8.0 {
            return x;
        }
        let pos = (x + 8.0) / 16.0 * 256.0;
        let i = pos.floor() as usize;
        let frac = pos - i as f32;
        self.knots[i] * (1.0 - frac) + self.knots[i + 1] * frac
    }

    /// Evaluates a slice in place.
    pub fn apply(&self, x: &mut [f32]) {
        for v in x {
            *v = self.eval(*v);
        }
    }
}

impl Default for GeluTable {
    fn default() -> Self {
        GeluTable::new()
    }
}

/// Residual addition (one VU pass).
///
/// # Panics
///
/// Panics if lengths mismatch.
pub fn residual_add(x: &mut [f32], residual: &[f32]) {
    assert_eq!(x.len(), residual.len(), "length mismatch");
    for (a, b) in x.iter_mut().zip(residual) {
        *a += b;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mask_pack_roundtrip() {
        let mask: Vec<bool> = (0..19).map(|i| i % 3 == 0).collect();
        let bits = pack_mask(&mask);
        assert_eq!(bits.len(), 3);
        for (i, &m) in mask.iter().enumerate() {
            assert_eq!(mask_bit(&bits, i), m, "bit {i}");
        }
        // Bitmap is 8x smaller than byte masks (paper's data-movement
        // argument).
        assert!(bits.len() * 8 >= mask.len());
    }

    #[test]
    fn causal_mask_shape() {
        let bits = causal_mask(2, 5);
        let visible: Vec<bool> = (0..5).map(|i| mask_bit(&bits, i)).collect();
        assert_eq!(visible, vec![true, true, true, false, false]);
    }

    #[test]
    fn layer_norm_zero_mean_unit_var() {
        let x: Vec<f32> = (0..64).map(|i| i as f32 * 0.3 - 7.0).collect();
        let ones = vec![1.0f32; 64];
        let zeros = vec![0.0f32; 64];
        let y = layer_norm(&x, &ones, &zeros);
        let mean: f32 = y.iter().sum::<f32>() / 64.0;
        let var: f32 = y.iter().map(|v| v * v).sum::<f32>() / 64.0;
        assert!(mean.abs() < 1e-5, "mean {mean}");
        assert!((var - 1.0).abs() < 1e-3, "var {var}");
    }

    #[test]
    fn masked_softmax_excludes_masked_positions() {
        let scores = [1.0f32, 100.0, 2.0, 3.0];
        // Mask off the huge score.
        let bits = pack_mask(&[true, false, true, true]);
        let p = masked_softmax(&scores, &bits);
        assert_eq!(p[1], 0.0);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-6);
        assert!(p[3] > p[2] && p[2] > p[0]);
    }

    #[test]
    fn masked_softmax_stable_for_large_scores() {
        let scores = [5000.0f32, 5001.0];
        let bits = pack_mask(&[true, true]);
        let p = masked_softmax(&scores, &bits);
        assert!(p.iter().all(|v| v.is_finite()));
        assert!((p[0] + p[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "all positions masked")]
    fn fully_masked_softmax_panics() {
        let _ = masked_softmax(&[1.0, 2.0], &pack_mask(&[false, false]));
    }

    #[test]
    fn gelu_table_accuracy() {
        let t = GeluTable::new();
        let mut max_err = 0.0f32;
        let mut x = -10.0f32;
        while x < 10.0 {
            max_err =
                max_err.max((t.eval(x) - gelu_exact(x.clamp(-8.0, 8.0).max(x.min(8.0)))).abs());
            x += 0.01;
        }
        // Saturation regions are exact by construction; interior < 5e-3.
        assert!(t.eval(-9.0) == 0.0 && t.eval(9.0) == 9.0);
        let mut interior_err = 0.0f32;
        let mut x = -8.0f32;
        while x <= 8.0 {
            interior_err = interior_err.max((t.eval(x) - gelu_exact(x)).abs());
            x += 0.01;
        }
        assert!(interior_err < 5e-3, "{interior_err}");
    }

    #[test]
    fn residual_add_elementwise() {
        let mut x = vec![1.0f32, 2.0];
        residual_add(&mut x, &[0.5, -2.0]);
        assert_eq!(x, vec![1.5, 0.0]);
    }
}
