//! Matrix unit (systolic array) timing model.

use crate::NpuConfig;
use ianus_sim::{Duration, Frequency};

/// Analytic timing for the 128×64 weight-stationary systolic array.
///
/// A GEMM `[m×k] · [k×n]` is tiled into `ceil(m/128) × ceil(n/64)` output
/// tiles; each tile streams `ceil(k/4)` systolic steps (4 MACs per PE
/// unroll the reduction dimension). The array pipeline fill/drain
/// (`rows + cols` cycles) is paid once per dependent chain and a small
/// restart cost per tile, which matches the paper's observation that the
/// unit processes up to 128 tokens "in parallel" — `m ≤ 128` costs the
/// same as `m = 128`.
///
/// # Examples
///
/// ```
/// use ianus_npu::{MatrixUnit, NpuConfig};
/// let mu = MatrixUnit::new(&NpuConfig::ianus_default());
/// // 1 token costs the same as 128 tokens (Figure 12's explanation).
/// assert_eq!(mu.gemm(1, 1024, 1024), mu.gemm(128, 1024, 1024));
/// assert!(mu.gemm(256, 1024, 1024) > mu.gemm(128, 1024, 1024));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct MatrixUnit {
    rows: u32,
    cols: u32,
    macs_per_pe: u32,
    clock: Frequency,
}

impl MatrixUnit {
    /// Creates the timing model from a core configuration.
    pub fn new(cfg: &NpuConfig) -> Self {
        MatrixUnit {
            rows: cfg.mu_rows,
            cols: cfg.mu_cols,
            macs_per_pe: cfg.mu_macs_per_pe,
            clock: cfg.clock,
        }
    }

    /// Output tiles a GEMM decomposes into.
    pub fn tiles(&self, m: u64, n: u64) -> u64 {
        m.div_ceil(u64::from(self.rows)) * n.div_ceil(u64::from(self.cols))
    }

    /// Cycles to execute a GEMM of `m×k` activations against `k×n` weights
    /// already resident in the weight scratchpad.
    pub fn gemm_cycles(&self, m: u64, k: u64, n: u64) -> u64 {
        assert!(m > 0 && k > 0 && n > 0, "degenerate GEMM shape");
        let steps = k.div_ceil(u64::from(self.macs_per_pe));
        let fill = u64::from(self.rows + self.cols);
        // Pipeline restart between tiles is short (weights for the next
        // tile preload behind the current one).
        let restart = 16u64;
        self.tiles(m, n) * (steps + restart) + fill
    }

    /// Wall-clock duration of [`Self::gemm_cycles`].
    pub fn gemm(&self, m: u64, k: u64, n: u64) -> Duration {
        self.clock.cycles(self.gemm_cycles(m, k, n))
    }

    /// Achieved fraction of peak MACs for a GEMM shape.
    pub fn efficiency(&self, m: u64, k: u64, n: u64) -> f64 {
        let useful = m as f64 * k as f64 * n as f64;
        let peak_per_cycle = self.rows as f64 * self.cols as f64 * self.macs_per_pe as f64;
        useful / (self.gemm_cycles(m, k, n) as f64 * peak_per_cycle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mu() -> MatrixUnit {
        MatrixUnit::new(&NpuConfig::ianus_default())
    }

    #[test]
    fn tile_decomposition() {
        let m = mu();
        assert_eq!(m.tiles(128, 64), 1);
        assert_eq!(m.tiles(129, 64), 2);
        assert_eq!(m.tiles(512, 6144), 4 * 96);
    }

    #[test]
    fn large_gemm_near_peak() {
        let m = mu();
        let eff = m.efficiency(512, 4096, 4096);
        assert!(eff > 0.90, "efficiency {eff}");
    }

    #[test]
    fn gemv_poor_efficiency() {
        // m = 1: 1/128 of the array rows are useful — why generation-stage
        // FCs belong on PIM.
        let m = mu();
        let eff = m.efficiency(1, 4096, 4096);
        assert!(eff < 0.01, "efficiency {eff}");
    }

    #[test]
    fn xl_summarization_decoder_regime() {
        // GPT-2 XL, 512 tokens, all decoder FCs ≈ 29 GFLOP on 46 TFLOPS:
        // ≈ 0.63 ms at peak; with tiling overheads below 0.85 ms.
        let m = mu();
        let d = m.gemm(512, 1536, 3 * 1536)
            + m.gemm(512, 1536, 1536)
            + m.gemm(512, 1536, 6144)
            + m.gemm(512, 6144, 1536);
        assert!(d.as_ms_f64() > 0.55 && d.as_ms_f64() < 0.85, "{d}");
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_dim_rejected() {
        let _ = mu().gemm_cycles(0, 1, 1);
    }
}
