//! NPU core model for IANUS (paper Sections 4.1–4.2).
//!
//! One NPU core pairs a 128×64 systolic **matrix unit** (4 MACs per PE,
//! 46 TFLOPS at 700 MHz) with a **vector unit** of sixteen 4-wide VLIW
//! processors, fed by two scratchpads — a 12 MB activation scratchpad (AM)
//! and a 4 MB weight scratchpad (WM) with transposed addressing and a 2:1
//! entry-size ratio — plus DMA engines that also implement the on-chip
//! streaming transpose path between the two scratchpads.
//!
//! The crate models each unit with analytic cycle counts
//! ([`MatrixUnit`], [`VectorUnit`], [`DmaEngine`]) and provides the
//! dependency-driven [`scheduler`] that the paper's command scheduler
//! microarchitecture (issue queues + pending queue + completion-time
//! dependency resolution) maps onto. System-level policy — what runs
//! where, and how PIM access is arbitrated — lives in `ianus-core`.
//!
//! # Examples
//!
//! ```
//! use ianus_npu::{MatrixUnit, NpuConfig, VectorUnit, VuOp};
//!
//! let cfg = NpuConfig::ianus_default();
//! let mu = MatrixUnit::new(&cfg);
//! // Summarization FC tile: 512 tokens × (1536 → 6144).
//! let t = mu.gemm(512, 1536, 6144);
//! assert!(t.as_us_f64() > 100.0 && t.as_us_f64() < 400.0);
//!
//! let vu = VectorUnit::new(&cfg);
//! let ln = vu.op(VuOp::LayerNorm, 1536);
//! assert!(ln.as_ns_f64() < 200.0);
//! ```

mod config;
mod dma;
pub mod functional;
mod matrix;
pub mod scheduler;
mod scratchpad;
mod vector;

pub use config::NpuConfig;
pub use dma::DmaEngine;
pub use matrix::MatrixUnit;
pub use scratchpad::{Scratchpad, ScratchpadError};
pub use vector::{VectorUnit, VuOp};
