//! Activation / weight scratchpad capacity accounting.

use std::fmt;

/// Error returned when an allocation exceeds scratchpad capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScratchpadError {
    requested: u64,
    free: u64,
}

impl fmt::Display for ScratchpadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "scratchpad allocation of {} bytes exceeds {} free bytes",
            self.requested, self.free
        )
    }
}

impl std::error::Error for ScratchpadError {}

/// A simple bump allocator over one scratchpad (AM or WM).
///
/// The compiler uses this to verify that tiling choices fit on-chip (e.g.
/// double-buffered FC weight tiles in the 4 MB WM, or a summarization
/// stage's activations in the 12 MB AM).
///
/// # Examples
///
/// ```
/// use ianus_npu::Scratchpad;
/// let mut wm = Scratchpad::new("wm", 4 << 20, 256);
/// let a = wm.alloc(1 << 20)?;
/// assert_eq!(a, 0);
/// assert_eq!(wm.free_bytes(), 3 << 20);
/// wm.reset();
/// assert_eq!(wm.free_bytes(), 4 << 20);
/// # Ok::<(), ianus_npu::ScratchpadError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scratchpad {
    name: String,
    capacity: u64,
    entry_bytes: u32,
    used: u64,
    high_water: u64,
}

impl Scratchpad {
    /// Creates an empty scratchpad of `capacity` bytes with entries of
    /// `entry_bytes` (allocations round up to whole entries).
    ///
    /// # Panics
    ///
    /// Panics if `entry_bytes` is zero.
    pub fn new(name: impl Into<String>, capacity: u64, entry_bytes: u32) -> Self {
        assert!(entry_bytes > 0, "entry size must be positive");
        Scratchpad {
            name: name.into(),
            capacity,
            entry_bytes,
            used: 0,
            high_water: 0,
        }
    }

    /// Diagnostic name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently free.
    pub fn free_bytes(&self) -> u64 {
        self.capacity - self.used
    }

    /// Largest occupancy ever reached.
    pub fn high_water(&self) -> u64 {
        self.high_water
    }

    /// Allocates `bytes` (rounded up to whole entries), returning the
    /// offset.
    ///
    /// # Errors
    ///
    /// Returns [`ScratchpadError`] if the rounded request does not fit.
    pub fn alloc(&mut self, bytes: u64) -> Result<u64, ScratchpadError> {
        let rounded = bytes.div_ceil(u64::from(self.entry_bytes)) * u64::from(self.entry_bytes);
        if rounded > self.free_bytes() {
            return Err(ScratchpadError {
                requested: rounded,
                free: self.free_bytes(),
            });
        }
        let off = self.used;
        self.used += rounded;
        self.high_water = self.high_water.max(self.used);
        Ok(off)
    }

    /// Frees everything (scratchpads are managed per phase by the
    /// compiler, not individually).
    pub fn reset(&mut self) {
        self.used = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_rounds_to_entries() {
        let mut sp = Scratchpad::new("am", 1024, 256);
        sp.alloc(1).unwrap();
        assert_eq!(sp.free_bytes(), 768);
    }

    #[test]
    fn overflow_reports_error() {
        let mut sp = Scratchpad::new("wm", 512, 128);
        sp.alloc(512).unwrap();
        let err = sp.alloc(1).unwrap_err();
        assert_eq!(err.free, 0);
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn high_water_tracks_peak() {
        let mut sp = Scratchpad::new("am", 1 << 20, 64);
        sp.alloc(1000).unwrap();
        sp.reset();
        sp.alloc(64).unwrap();
        assert_eq!(sp.high_water(), 1024);
    }
}
