//! Property tests stressing the command-scheduler engine with random
//! programs: the schedule must respect fundamental bounds regardless of
//! structure.

use ianus_npu::scheduler::{Command, Engine, Program};
use ianus_sim::{Duration, Time};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandCmd {
    unit: usize,
    dur_ns: u64,
    // Dependencies reference earlier commands by relative offset.
    dep_offsets: Vec<usize>,
    shared: Option<usize>,
}

fn rand_cmd(units: usize) -> impl Strategy<Value = RandCmd> {
    (
        0..units,
        1u64..500,
        prop::collection::vec(1usize..8, 0..3),
        prop::option::of(0..units),
    )
        .prop_map(|(unit, dur_ns, dep_offsets, shared)| RandCmd {
            unit,
            dur_ns,
            dep_offsets,
            shared,
        })
}

fn build(cmds: &[RandCmd], units: usize) -> Program {
    let mut p = Program::new();
    for (i, c) in cmds.iter().enumerate() {
        let mut cmd = Command::new(c.unit, Duration::from_ns(c.dur_ns), c.unit);
        for &off in &c.dep_offsets {
            if off <= i && i > 0 {
                cmd = cmd.after(i - off.min(i));
            }
        }
        if let Some(s) = c.shared {
            if s != c.unit && s < units {
                cmd = cmd.holding(s);
            }
        }
        p.push(cmd);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn makespan_bounds(cmds in prop::collection::vec(rand_cmd(5), 1..60)) {
        let units = 5;
        let p = build(&cmds, units);
        let mut eng = Engine::new(units, Duration::ZERO);
        let r = eng.run(&p);
        // Upper bound: fully serialized execution.
        let total: u64 = cmds.iter().map(|c| c.dur_ns).sum();
        prop_assert!(r.makespan() <= Time::from_ns(total));
        // Lower bound: the busiest unit's work.
        let mut per_unit = [0u64; 5];
        for c in &cmds {
            per_unit[c.unit] += c.dur_ns;
            if let Some(s) = c.shared {
                if s != c.unit {
                    per_unit[s] += c.dur_ns;
                }
            }
        }
        let bound = per_unit.iter().copied().max().unwrap_or(0);
        prop_assert!(r.makespan() >= Time::from_ns(bound));
    }

    #[test]
    fn commands_finish_after_dependencies(
        cmds in prop::collection::vec(rand_cmd(4), 2..40),
    ) {
        let p = build(&cmds, 4);
        let mut eng = Engine::new(4, Duration::from_ns(1));
        let r = eng.run(&p);
        for (i, cmd) in p.commands().iter().enumerate() {
            for &d in &cmd.deps {
                prop_assert!(r.finish(i) > r.finish(d));
            }
        }
    }

    #[test]
    fn traced_spans_never_overlap_on_a_unit(
        cmds in prop::collection::vec(rand_cmd(3), 1..40),
    ) {
        let p = build(&cmds, 3);
        let mut eng = Engine::new(3, Duration::ZERO);
        let (_, spans) = eng.run_traced(&p);
        for unit in 0..3 {
            let mut mine: Vec<_> = spans.iter().filter(|s| s.unit == unit).collect();
            mine.sort_by_key(|s| s.start);
            for w in mine.windows(2) {
                prop_assert!(w[1].start >= w[0].end, "overlap on unit {unit}");
            }
        }
    }

    #[test]
    fn determinism(cmds in prop::collection::vec(rand_cmd(4), 1..40)) {
        let p = build(&cmds, 4);
        let mut eng = Engine::new(4, Duration::from_ns(2));
        let a = eng.run(&p).makespan();
        let b = eng.run(&p).makespan();
        prop_assert_eq!(a, b);
    }
}
