//! Criterion benches for the agentic-workflow layer (PR 9): the engine
//! overhead of DAG bookkeeping on top of flat continuous batching. A
//! workflow run adds per-completion fan-out (released children are
//! spliced into the time-ordered wait queue), speculative-group
//! settlement, and prefix-key registration/consumption — all O(log n)
//! or O(children) per event, so pushing the same number of *node
//! executions* through the engine as workflow instances should cost
//! close to the flat-mix baseline. A regression in the wait-queue
//! splice or the cancellation walk shows up here directly.

use criterion::{criterion_group, criterion_main, Criterion};
use ianus_core::backend::Backend;
use ianus_core::capacity::CapacityError;
use ianus_core::serving::{RequestClass, Scheduling, ServingConfig, ServingSim, WorkflowTemplate};
use ianus_model::{ModelConfig, RequestShape};
use ianus_sim::Duration;
use std::hint::black_box;

/// Analytic node (same operating point as `benches/serving_engine.rs`):
/// backend calls are a few float ops, so the bench measures workflow
/// bookkeeping, not a device pipeline.
#[derive(Debug, Clone, Copy)]
struct Node;

const PREFILL_PER_TOKEN_US: u64 = 28;
const DECODE_BASE_US: u64 = 50;
const DECODE_PER_SEQ_US: u64 = 20;

impl Backend for Node {
    fn name(&self) -> &str {
        "analytic node"
    }

    fn service_time(&mut self, _model: &ModelConfig, shape: RequestShape) -> Duration {
        Duration::from_us(PREFILL_PER_TOKEN_US) * shape.input
            + Duration::from_us(DECODE_BASE_US + DECODE_PER_SEQ_US) * shape.output.saturating_sub(1)
    }

    fn fits(&self, _model: &ModelConfig) -> Result<(), CapacityError> {
        Ok(())
    }

    fn prefill_time(&mut self, _model: &ModelConfig, tokens: u64) -> Duration {
        Duration::from_us(PREFILL_PER_TOKEN_US) * tokens.max(1)
    }

    fn decode_time(&mut self, _model: &ModelConfig, _past: u64, batch: u32) -> Duration {
        Duration::from_us(DECODE_BASE_US)
            + Duration::from_us(DECODE_PER_SEQ_US) * u64::from(batch.max(1))
    }

    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(*self))
    }
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(6))
        .warm_up_time(std::time::Duration::from_secs(1))
}

fn sim(cfg: ServingConfig, paged: bool) -> ServingSim {
    let s = ServingSim::new(cfg)
        .cluster(4, |_| Node)
        .scheduling(Scheduling::IterationLevel {
            max_batch: 16,
            prefill_chunk: Some(64),
            preempt: paged,
        });
    if paged {
        s.kv_block(64)
    } else {
        s
    }
}

/// Flat baseline vs the three built-in DAGs, normalized to comparable
/// node-execution counts (a chain instance is 4 nodes, a fan-out 6, a
/// race 5 — the flat run issues 5 independent requests per "instance").
fn bench_workflow_overhead(c: &mut Criterion) {
    let model = ModelConfig::gpt2_xl();
    let instances = 400u64;
    let rate = 40.0;

    let flat_cfg = ServingConfig {
        arrival_rate_hz: rate * 5.0,
        requests: instances * 5,
        seed: 0x5EED,
        mix: vec![RequestClass::new(RequestShape::new(128, 64), 1.0)],
        workflows: vec![],
        arrivals: Default::default(),
    };
    let mut flat = sim(flat_cfg, false);
    flat.run(&model); // warm prefill + decode-grid memos
    c.bench_function("flat_2k_nodes_baseline", |b| {
        b.iter(|| black_box(flat.run(&model)))
    });

    for (name, tpl) in [
        ("agent_chain", WorkflowTemplate::agent_chain()),
        ("tool_fanout", WorkflowTemplate::tool_fanout()),
        ("speculative", WorkflowTemplate::speculative()),
    ] {
        let cfg = ServingConfig::workflow_mix(rate, instances, vec![tpl]);
        let mut wf = sim(cfg, false);
        wf.run(&model);
        c.bench_function(&format!("workflow_400_instances_{name}"), |b| {
            b.iter(|| black_box(wf.run(&model)))
        });
    }

    // Paged + preemption: adds prefix registration, copy-on-write
    // inheritance, and refcounted release on the cancellation path.
    let cfg = ServingConfig::workflow_mix(
        rate,
        instances,
        vec![
            WorkflowTemplate::agent_chain(),
            WorkflowTemplate::speculative(),
        ],
    );
    let mut paged = sim(cfg, true);
    paged.run(&model);
    c.bench_function("workflow_400_instances_paged_inherit", |b| {
        b.iter(|| black_box(paged.run(&model)))
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_workflow_overhead
}
criterion_main!(benches);
