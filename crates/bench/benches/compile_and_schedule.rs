//! Criterion benches for PAS compilation and command scheduling — the
//! inner loop behind every figure run.

use criterion::{criterion_group, criterion_main, Criterion};
use ianus_core::compiler::Compiler;
use ianus_core::SystemConfig;
use ianus_model::{ModelConfig, Stage};
use ianus_npu::scheduler::Engine;
use std::hint::black_box;
use std::time::Duration;

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(20)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1))
}

fn bench_compile(c: &mut Criterion) {
    let cfg = SystemConfig::ianus();
    let model = ModelConfig::gpt2_xl();
    c.bench_function("compile_xl_generation_step", |b| {
        b.iter(|| {
            let mut compiler = Compiler::new(&cfg, &model);
            black_box(compiler.compile(&Stage::Generation { past_tokens: 256 }))
        })
    });
    c.bench_function("compile_xl_summarization", |b| {
        b.iter(|| {
            let mut compiler = Compiler::new(&cfg, &model);
            black_box(compiler.compile(&Stage::Summarization { tokens: 512 }))
        })
    });
}

fn bench_schedule(c: &mut Criterion) {
    let cfg = SystemConfig::ianus();
    let model = ModelConfig::gpt2_xl();
    let mut compiler = Compiler::new(&cfg, &model);
    let compiled = compiler.compile(&Stage::Generation { past_tokens: 256 });
    let units = compiler.unit_map();
    c.bench_function("schedule_xl_generation_step", |b| {
        b.iter(|| {
            let mut engine = Engine::new(units.unit_count(), cfg.npu.dispatch_overhead);
            black_box(engine.run(&compiled.program).makespan())
        })
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_compile, bench_schedule
}
criterion_main!(benches);
