//! Criterion benches for the NPU unit models and DRAM cost functions
//! (backs Figures 8/9/14: matrix-unit GEMM pricing and transfer costs).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ianus_dram::{GddrOrganization, GddrTimings, TransferModel};
use ianus_npu::{MatrixUnit, NpuConfig, VectorUnit, VuOp};
use std::hint::black_box;

fn bench_matrix_unit(c: &mut Criterion) {
    let mu = MatrixUnit::new(&NpuConfig::ianus_default());
    let mut g = c.benchmark_group("mu_gemm_pricing");
    for (name, (m, k, n)) in [
        ("gemv_1x1536x6144", (1u64, 1536u64, 6144u64)),
        ("prefill_512x1536x6144", (512, 1536, 6144)),
    ] {
        g.bench_with_input(
            BenchmarkId::from_parameter(name),
            &(m, k, n),
            |b, &(m, k, n)| b.iter(|| black_box(mu.gemm(black_box(m), k, n))),
        );
    }
    g.finish();
}

fn bench_vector_unit(c: &mut Criterion) {
    let vu = VectorUnit::new(&NpuConfig::ianus_default());
    c.bench_function("vu_softmax_pricing", |b| {
        b.iter(|| black_box(vu.op(VuOp::MaskedSoftmax, black_box(512 * 512))))
    });
}

fn bench_transfer_model(c: &mut Criterion) {
    let m = TransferModel::new(
        GddrOrganization::ianus_default(),
        GddrTimings::ianus_default(),
    );
    c.bench_function("dram_bulk_read_pricing", |b| {
        b.iter(|| black_box(m.bulk_read(black_box(56 << 20), 8)))
    });
}

criterion_group!(
    benches,
    bench_matrix_unit,
    bench_vector_unit,
    bench_transfer_model
);
criterion_main!(benches);
