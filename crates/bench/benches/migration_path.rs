//! Criterion bench for the prefill→decode migration path: a
//! disaggregated cluster pushes every request through role dispatch,
//! a migration-policy argmin, a two-leg (D2H + H2D) lane-clock DMA,
//! and the decode replica's migrant admission gate — none of which
//! exist on the unified fast path. The paired unified run is the
//! baseline: the gap between the two is the per-request cost of the
//! migration machinery itself, and a regression here (e.g. a scan
//! sneaking back into the handoff argmin) shows up directly.

use criterion::{criterion_group, criterion_main, Criterion};
use ianus_core::backend::Backend;
use ianus_core::capacity::CapacityError;
use ianus_core::serving::{
    DisaggregationConfig, RequestClass, Scheduling, ServingConfig, ServingSim,
};
use ianus_model::{ModelConfig, RequestShape};
use ianus_sim::Duration;
use std::hint::black_box;

/// Analytic node (same operating point as `serving_engine.rs`), plus a
/// cheap KV-transfer price so migrations exercise the DMA lane clocks.
#[derive(Debug, Clone, Copy)]
struct Node;

const PREFILL_PER_TOKEN_US: u64 = 28;
const DECODE_BASE_US: u64 = 50;
const DECODE_PER_SEQ_US: u64 = 20;
const LINK_GBPS: f64 = 64.0;

impl Backend for Node {
    fn name(&self) -> &str {
        "analytic node"
    }

    fn service_time(&mut self, _model: &ModelConfig, shape: RequestShape) -> Duration {
        Duration::from_us(PREFILL_PER_TOKEN_US) * shape.input
            + Duration::from_us(DECODE_BASE_US + DECODE_PER_SEQ_US) * shape.output.saturating_sub(1)
    }

    fn fits(&self, _model: &ModelConfig) -> Result<(), CapacityError> {
        Ok(())
    }

    fn prefill_time(&mut self, _model: &ModelConfig, tokens: u64) -> Duration {
        Duration::from_us(PREFILL_PER_TOKEN_US) * tokens.max(1)
    }

    fn decode_time(&mut self, _model: &ModelConfig, _past: u64, batch: u32) -> Duration {
        Duration::from_us(DECODE_BASE_US)
            + Duration::from_us(DECODE_PER_SEQ_US) * u64::from(batch.max(1))
    }

    fn kv_transfer_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        let bytes = ianus_core::capacity::kv_swap_bytes(model, tokens);
        Duration::from_ns_f64(bytes as f64 / LINK_GBPS)
    }

    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(*self))
    }
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(6))
        .warm_up_time(std::time::Duration::from_secs(1))
}

fn bench_migration_path(c: &mut Criterion) {
    let model = ModelConfig::gpt2_xl();
    let shape = RequestShape::new(128, 32);
    let max_batch = 32u32;
    // The lone prefill replica bounds the cluster: load it to 60% of
    // its analytic prompt capacity (the three decode replicas idle).
    let prefill_s = (PREFILL_PER_TOKEN_US * shape.input) as f64 * 1e-6;
    let rate = 0.6 / prefill_s;
    let cfg = ServingConfig {
        arrival_rate_hz: rate,
        requests: 2_000,
        seed: 0xBE9C,
        mix: vec![RequestClass::new(shape, 1.0)],
        workflows: vec![],
        arrivals: Default::default(),
    };
    let sched = Scheduling::IterationLevel {
        max_batch,
        prefill_chunk: None,
        preempt: false,
    };

    let mut disagg = ServingSim::new(cfg.clone())
        .disaggregated(DisaggregationConfig::by_count(1, 3), |_| Node, |_| Node)
        .scheduling(sched)
        .overlap_dma(true);
    let warm = disagg.run(&model); // warm prefill + decode-grid memos
    assert_eq!(warm.migrations, 2_000, "every request takes the path");
    c.bench_function("migrate_2k_requests_1p_3d", |b| {
        b.iter(|| black_box(disagg.run(&model)))
    });

    let mut unified = ServingSim::new(cfg)
        .cluster(4, |_| Node)
        .scheduling(sched)
        .overlap_dma(true);
    unified.run(&model);
    c.bench_function("serve_2k_requests_4_unified_baseline", |b| {
        b.iter(|| black_box(unified.run(&model)))
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_migration_path
}
criterion_main!(benches);
