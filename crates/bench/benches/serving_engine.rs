//! Criterion benches for the serving engine's event-driven core: the
//! cost of pushing a fixed per-replica workload through clusters of
//! 1 / 16 / 128 replicas. With the heap-scheduled replica index one
//! step costs `O(log replicas)` and idle replicas cost nothing, so the
//! per-request wall cost should stay near-flat as the cluster grows —
//! a regression to the per-step scan shows up as superlinear growth on
//! the 128-replica point.

use criterion::{criterion_group, criterion_main, Criterion};
use ianus_core::backend::Backend;
use ianus_core::capacity::CapacityError;
use ianus_core::serving::{RequestClass, Scheduling, ServingConfig, ServingSim};
use ianus_model::{ModelConfig, RequestShape};
use ianus_sim::Duration;
use std::hint::black_box;

/// Analytic node (same operating point as `examples/million_requests`):
/// backend calls are a few float ops, so the bench measures the engine
/// loop, not a device pipeline.
#[derive(Debug, Clone, Copy)]
struct Node;

const PREFILL_PER_TOKEN_US: u64 = 28;
const DECODE_BASE_US: u64 = 50;
const DECODE_PER_SEQ_US: u64 = 20;

impl Backend for Node {
    fn name(&self) -> &str {
        "analytic node"
    }

    fn service_time(&mut self, _model: &ModelConfig, shape: RequestShape) -> Duration {
        Duration::from_us(PREFILL_PER_TOKEN_US) * shape.input
            + Duration::from_us(DECODE_BASE_US + DECODE_PER_SEQ_US) * shape.output.saturating_sub(1)
    }

    fn fits(&self, _model: &ModelConfig) -> Result<(), CapacityError> {
        Ok(())
    }

    fn prefill_time(&mut self, _model: &ModelConfig, tokens: u64) -> Duration {
        Duration::from_us(PREFILL_PER_TOKEN_US) * tokens.max(1)
    }

    fn decode_time(&mut self, _model: &ModelConfig, _past: u64, batch: u32) -> Duration {
        Duration::from_us(DECODE_BASE_US)
            + Duration::from_us(DECODE_PER_SEQ_US) * u64::from(batch.max(1))
    }

    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(*self))
    }
}

fn quick() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(6))
        .warm_up_time(std::time::Duration::from_secs(1))
}

/// Requests/second one node sustains at steady state (same model as
/// `examples/million_requests`): a request costs its prompt prefill
/// plus its share of `output` decode iterations at `batch` tokens
/// retired per iteration.
fn node_capacity_rps(shape: RequestShape, batch: u32) -> f64 {
    let iter_s = (DECODE_BASE_US + DECODE_PER_SEQ_US * u64::from(batch)) as f64 * 1e-6;
    let prefill_s = (PREFILL_PER_TOKEN_US * shape.input) as f64 * 1e-6;
    1.0 / (shape.output as f64 * iter_s / batch as f64 + prefill_s)
}

fn bench_engine_steps(c: &mut Criterion) {
    let model = ModelConfig::gpt2_xl();
    let shape = RequestShape::new(128, 32);
    let max_batch = 32u32;
    // Constant per-replica load (60% of analytic capacity) and a
    // constant 2,000-request horizon: run cost per request should stay
    // near-flat from 1 to 128 replicas.
    for replicas in [1usize, 16, 128] {
        let rate = 0.6 * replicas as f64 * node_capacity_rps(shape, max_batch);
        let mut sim = ServingSim::new(ServingConfig {
            arrival_rate_hz: rate,
            requests: 2_000,
            seed: 0xBE9C,
            mix: vec![RequestClass::new(shape, 1.0)],
            workflows: vec![],
            arrivals: Default::default(),
        })
        .cluster(replicas, |_| Node)
        .scheduling(Scheduling::IterationLevel {
            max_batch,
            prefill_chunk: None,
            preempt: false,
        });
        sim.run(&model); // warm prefill + decode-grid memos
        c.bench_function(&format!("serve_2k_requests_{replicas}_replicas"), |b| {
            b.iter(|| black_box(sim.run(&model)))
        });
    }
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_engine_steps
}
criterion_main!(benches);
