//! Criterion benches for end-to-end request simulation — one sample per
//! figure family (Fig. 8 GPT-2 requests, Fig. 14 BERT, Fig. 17/18
//! multi-device, plus both baselines).

use criterion::{criterion_group, criterion_main, Criterion};
use ianus_baselines::{DfxModel, GpuModel};
use ianus_core::multi_device::DeviceGroup;
use ianus_core::{IanusSystem, SystemConfig};
use ianus_model::{ModelConfig, RequestShape};
use std::hint::black_box;
use std::time::Duration;

fn quick() -> Criterion {
    // End-to-end iterations cost tens of milliseconds; bound the run.
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_secs(4))
        .warm_up_time(Duration::from_secs(1))
}

fn bench_gpt2_request(c: &mut Criterion) {
    c.bench_function("e2e_gpt2m_128_8_ianus", |b| {
        b.iter(|| {
            let mut sys = IanusSystem::new(SystemConfig::ianus());
            black_box(sys.run_request(&ModelConfig::gpt2_m(), RequestShape::new(128, 8)))
        })
    });
    c.bench_function("e2e_gpt2m_128_8_npu_mem", |b| {
        b.iter(|| {
            let mut sys = IanusSystem::new(SystemConfig::npu_mem());
            black_box(sys.run_request(&ModelConfig::gpt2_m(), RequestShape::new(128, 8)))
        })
    });
}

fn bench_bert(c: &mut Criterion) {
    c.bench_function("e2e_bert_l_512_ianus", |b| {
        b.iter(|| {
            let mut sys = IanusSystem::new(SystemConfig::ianus());
            black_box(sys.run_request(&ModelConfig::bert_l(), RequestShape::new(512, 1)))
        })
    });
}

fn bench_multi_device(c: &mut Criterion) {
    c.bench_function("e2e_gpt6_7b_2dev_256_8", |b| {
        b.iter(|| {
            let mut group = DeviceGroup::new(SystemConfig::ianus(), 2);
            black_box(group.run_request(&ModelConfig::gpt_6_7b(), RequestShape::new(256, 8)))
        })
    });
}

fn bench_baselines(c: &mut Criterion) {
    let gpu = GpuModel::a100();
    let dfx = DfxModel::four_fpga();
    c.bench_function("baseline_gpu_xl_128_512", |b| {
        b.iter(|| {
            black_box(gpu.request_latency(&ModelConfig::gpt2_xl(), RequestShape::new(128, 512)))
        })
    });
    c.bench_function("baseline_dfx_xl_128_256", |b| {
        b.iter(|| {
            black_box(dfx.request_latency(&ModelConfig::gpt2_xl(), RequestShape::new(128, 256)))
        })
    });
}

fn bench_serving_cluster(c: &mut Criterion) {
    use ianus_core::serving::{DispatchPolicy, ServingConfig, ServingSim};
    // Queueing pass over a warm 4-replica cluster (service memos mean
    // each iteration is pure dispatch + statistics).
    let mut sim = ServingSim::new(ServingConfig::interactive(12.0, 400))
        .cluster(4, |_| IanusSystem::new(SystemConfig::ianus()))
        .dispatch(DispatchPolicy::ShortestExpectedJob);
    let model = ModelConfig::gpt2_m();
    sim.run(&model); // warm the per-shape service memos
    c.bench_function("serving_cluster_4x_gpt2m_400req", |b| {
        b.iter(|| black_box(sim.run(&model)))
    });
}

fn bench_serving_iteration_level(c: &mut Criterion) {
    use ianus_core::serving::{Scheduling, ServingConfig, ServingSim};
    // Iteration-level pass over the same warm cluster: after the first
    // run memoizes the decode grid, each iteration prices per-token
    // scheduling from interpolated memos — the regression guard for
    // "rate sweeps stay queueing-only fast" under continuous batching.
    let mut sim = ServingSim::new(ServingConfig::interactive(12.0, 400))
        .cluster(4, |_| IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::iteration(8));
    let model = ModelConfig::gpt2_m();
    sim.run(&model); // warm prefill + decode-grid memos
    c.bench_function("serving_iteration_4x_gpt2m_400req_b8", |b| {
        b.iter(|| black_box(sim.run(&model)))
    });
}

fn bench_serving_chunked_preemptive(c: &mut Criterion) {
    use ianus_core::serving::{RequestClass, Scheduling, ServingConfig, ServingSim};
    // The scheduler's most state-heavy configuration: chunked prefill
    // (one chunk + one decode share per iteration) plus preemptive
    // admission (current-length projections and eviction scans every
    // iteration) on the KV-pressure-heavy GPT-2 XL draft shape. Guards
    // the per-iteration bookkeeping the two knobs add on top of the
    // warm-memo queueing pass.
    let mut sim = ServingSim::new(ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 120,
        seed: 0x5EED,
        mix: vec![RequestClass::new(RequestShape::new(512, 512), 1.0)],
        workflows: vec![],
        arrivals: Default::default(),
    })
    .replica(IanusSystem::new(SystemConfig::ianus()))
    .scheduling(Scheduling::IterationLevel {
        max_batch: 32,
        prefill_chunk: Some(128),
        preempt: true,
    });
    let model = ModelConfig::gpt2_xl();
    sim.run(&model); // warm prefill + decode-grid memos
    c.bench_function("serving_chunked_preempt_gpt2xl_120req_b32", |b| {
        b.iter(|| black_box(sim.run(&model)))
    });
}

fn bench_serving_policy_sweep(c: &mut Criterion) {
    use ianus_core::serving::policy::LargestKv;
    use ianus_core::serving::{
        RequestClass, SchedulerPolicy, Scheduling, ServingConfig, ServingSim,
    };
    // A non-default eviction policy on the same KV-pressure scenario:
    // guards the comparator-based victim/readmission selection the
    // policy API added over the hard-wired min_by_key scans (the
    // per-iteration view construction is the new cost).
    let mut sim = ServingSim::new(ServingConfig {
        arrival_rate_hz: 4.0,
        requests: 120,
        seed: 0x5EED,
        mix: vec![RequestClass::new(RequestShape::new(512, 512), 1.0)],
        workflows: vec![],
        arrivals: Default::default(),
    })
    .replica(IanusSystem::new(SystemConfig::ianus()))
    .scheduling(Scheduling::IterationLevel {
        max_batch: 32,
        prefill_chunk: Some(128),
        preempt: true,
    })
    .policy(SchedulerPolicy::default().with_eviction(LargestKv));
    let model = ModelConfig::gpt2_xl();
    sim.run(&model); // warm prefill + decode-grid memos
    c.bench_function("serving_policy_largest_kv_gpt2xl_120req_b32", |b| {
        b.iter(|| black_box(sim.run(&model)))
    });
}

criterion_group! {
    name = benches;
    config = quick();
    targets = bench_gpt2_request, bench_bert, bench_multi_device, bench_baselines,
        bench_serving_cluster, bench_serving_iteration_level, bench_serving_chunked_preemptive,
        bench_serving_policy_sweep
}
criterion_main!(benches);
