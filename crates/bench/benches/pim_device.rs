//! Criterion benches for the PIM device models (backs Figures 8–13:
//! every PIM op in the system simulator is priced by these paths).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ianus_pim::{GemvShape, MacroCommand, MicroExecutor, PimConfig, PimModel};
use std::hint::black_box;

fn bench_closed_form(c: &mut Criterion) {
    let model = PimModel::new(PimConfig::ianus_default());
    let mut g = c.benchmark_group("pim_closed_form_gemv");
    for (name, shape) in [
        ("qkv_head_64x1536", GemvShape::new(64, 1536)),
        (
            "ffn1_xl_6144x1536",
            GemvShape::new(6144, 1536).with_gelu(true),
        ),
        ("lm_head_50257x1536", GemvShape::new(50257, 1536)),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &shape, |b, &s| {
            b.iter(|| black_box(model.gemv(black_box(s))))
        });
    }
    g.finish();
}

fn bench_micro_executor(c: &mut Criterion) {
    let exec = MicroExecutor::new(PimConfig::ianus_default());
    c.bench_function("pim_micro_executor_1024x1024", |b| {
        b.iter(|| black_box(exec.run_macro(&MacroCommand::Gemv(GemvShape::new(1024, 1024)))))
    });
}

fn bench_functional_gemv(c: &mut Criterion) {
    use ianus_pim::functional::{gemv_bf16, Bf16};
    let cfg = PimConfig::ianus_default();
    let rows = 256usize;
    let cols = 1024usize;
    let w: Vec<Bf16> = (0..rows * cols)
        .map(|i| Bf16::from_f32((i % 251) as f32 / 251.0 - 0.5))
        .collect();
    let x: Vec<Bf16> = (0..cols)
        .map(|i| Bf16::from_f32((i % 17) as f32 / 17.0))
        .collect();
    c.bench_function("pim_functional_gemv_256x1024", |b| {
        b.iter(|| {
            black_box(gemv_bf16(
                &cfg,
                black_box(&w),
                rows,
                cols,
                black_box(&x),
                true,
            ))
        })
    });
}

criterion_group!(
    benches,
    bench_closed_form,
    bench_micro_executor,
    bench_functional_gemv
);
criterion_main!(benches);
