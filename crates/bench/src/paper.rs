//! The paper's published numbers, transcribed from the evaluation section.
//!
//! The harness prints these next to measured values so the reproduction's
//! fidelity — who wins, by roughly what factor, where crossovers fall —
//! is auditable without the PDF open.

/// Request grid of Figure 8: inputs {128,256,512} × outputs {1,8,64,512}.
pub const FIG8_REQUESTS: [(u64, u64); 12] = [
    (128, 1),
    (128, 8),
    (128, 64),
    (128, 512),
    (256, 1),
    (256, 8),
    (256, 64),
    (256, 512),
    (512, 1),
    (512, 8),
    (512, 64),
    (512, 512),
];

/// Figure 8, A100 GPU latency in ms (rows follow [`FIG8_REQUESTS`]).
pub const FIG8_GPU_MS: [[f64; 12]; 4] = [
    // GPT-2 M
    [
        15.0, 111.0, 870.0, 6938.0, 15.0, 111.0, 872.0, 7130.0, 15.0, 112.0, 879.0, 7221.0,
    ],
    // GPT-2 L
    [
        22.0, 164.0, 1271.0, 10274.0, 23.0, 164.0, 1299.0, 10291.0, 23.0, 168.0, 1299.0, 10401.0,
    ],
    // GPT-2 XL
    [
        29.0, 212.0, 1698.0, 13622.0, 29.0, 220.0, 1740.0, 13701.0, 31.0, 221.0, 1801.0, 14239.0,
    ],
    // GPT-2 2.5B
    [
        32.0, 242.0, 1916.0, 15411.0, 33.0, 245.0, 1928.0, 15436.0, 39.0, 248.0, 2009.0, 15480.0,
    ],
];

/// Figure 8, IANUS latency in ms (rows follow [`FIG8_REQUESTS`]).
pub const FIG8_IANUS_MS: [[f64; 12]; 4] = [
    [
        5.0, 12.0, 68.0, 576.0, 6.0, 13.0, 74.0, 609.0, 9.0, 17.0, 84.0, 673.0,
    ],
    [
        10.0, 25.0, 151.0, 1261.0, 13.0, 29.0, 161.0, 1323.0, 18.0, 36.0, 182.0, 1447.0,
    ],
    [
        18.0, 43.0, 251.0, 2073.0, 22.0, 49.0, 267.0, 2171.0, 31.0, 60.0, 299.0, 2367.0,
    ],
    [
        32.0, 71.0, 388.0, 3261.0, 38.0, 79.0, 418.0, 3462.0, 50.0, 97.0, 478.0, 3864.0,
    ],
];

/// Figure 8's per-model average speedups (GPU avg / IANUS avg).
pub const FIG8_SPEEDUPS: [f64; 4] = [11.3, 7.6, 6.2, 4.3];

/// Request grid of Figure 9: inputs {32,64,128} × outputs {1,16,256}.
pub const FIG9_REQUESTS: [(u64, u64); 9] = [
    (32, 1),
    (32, 16),
    (32, 256),
    (64, 1),
    (64, 16),
    (64, 256),
    (128, 1),
    (128, 16),
    (128, 256),
];

/// Figure 9, GPT-2 XL latency in ms: DFX, NPU-MEM, IANUS.
pub const FIG9_DFX_MS: [f64; 9] = [
    227.0, 330.0, 1981.0, 447.0, 550.0, 2201.0, 887.0, 991.0, 2642.0,
];
/// NPU-MEM row of Figure 9.
pub const FIG9_NPU_MEM_MS: [f64; 9] = [
    18.0, 247.0, 3970.0, 18.0, 246.0, 3972.0, 18.0, 249.0, 3983.0,
];
/// IANUS row of Figure 9.
pub const FIG9_IANUS_MS: [f64; 9] = [18.0, 73.0, 989.0, 18.0, 72.0, 990.0, 18.0, 73.0, 997.0];

/// Figure 10 headline ratios (IANUS vs NPU-MEM, GPT-2 XL generation):
/// MHA FCs 4.1×, FFN 5.1×, self-attention 4.3×, overall 4.0× (XL) and
/// 3.6× (L).
pub const FIG10_XL_OVERALL: f64 = 4.0;
/// Figure 10 overall ratio for GPT-2 L.
pub const FIG10_L_OVERALL: f64 = 3.6;

/// Figure 11: total normalized dynamic energy (NPU-MEM, IANUS) per model
/// at (256,512), normalized to IANUS GPT-2 M.
pub const FIG11_NORMALIZED: [(f64, f64); 4] = [(3.7, 1.0), (7.7, 2.1), (13.9, 3.6), (25.1, 5.8)];

/// Figure 11 energy-efficiency improvements (NPU-MEM / IANUS).
pub const FIG11_IMPROVEMENT: [f64; 4] = [3.7, 3.6, 3.9, 4.4];

/// Figure 12: Algorithm 1's average speedup vs always-PIM and always-MU.
pub const FIG12_VS_PIM: f64 = 1.4;
/// Figure 12 speedup vs always-MU.
pub const FIG12_VS_MU: f64 = 1.2;

/// Figure 13: speedups normalized to the naive partitioned system, per
/// model (M, L, XL, 2.5B), in bar order: partitioned naive, partitioned
/// scheduled, unified PIM-attention naive, unified PIM-attention
/// scheduled, unified MU-attention naive, unified MU-attention scheduled
/// (= IANUS).
pub const FIG13_BARS: [[f64; 6]; 4] = [
    [1.0, 1.4, 1.3, 1.5, 1.6, 1.9],
    [1.0, 1.3, 1.5, 1.6, 1.7, 2.0],
    [1.0, 1.3, 1.5, 1.6, 1.7, 2.0],
    [1.0, 1.2, 3.5, 3.7, 3.5, 4.3],
];

/// Figure 14: IANUS/GPU throughput ratios for BERT B/L/1.3B/3.9B.
pub const FIG14_THROUGHPUT_RATIO: [f64; 4] = [3.1, 2.0, 0.8, 0.6];
/// Figure 14: IANUS/GPU utilization ratios.
pub const FIG14_UTILIZATION_RATIO: [f64; 4] = [5.2, 3.3, 1.3, 1.0];

/// Figure 17: average speedup of 2/4/8 IANUS devices over one A100 for
/// GPT 6.7B/13B/30B.
pub const FIG17_SPEEDUPS: [f64; 3] = [2.4, 3.4, 5.3];

/// Figure 18: tokens/second for GPT 6.7B (256,64) on 2/4/8 devices.
pub const FIG18_TOKENS_PER_S: [f64; 3] = [127.1, 211.6, 317.6];

/// Section 7.2: perf/TDP improvement over A100 for 2/4/8 devices.
pub const COST_EFFICIENCY: [f64; 3] = [3.9, 2.7, 2.1];

/// Section 6.2 headline: IANUS per-token generation latency, GPT-2 2.5B
/// (128,64).
pub const PER_TOKEN_2_5B_MS: f64 = 5.7;
/// GPU per-token latency for the same configuration.
pub const PER_TOKEN_2_5B_GPU_MS: f64 = 29.9;
/// GPT-2 XL per-token latencies (IANUS / DFX / NPU-MEM) at (64,256).
pub const PER_TOKEN_XL_MS: (f64, f64, f64) = (3.8, 6.9, 15.5);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_tables_are_consistent() {
        // IANUS wins every generation-heavy cell; summarization-only
        // cells (output = 1) can go either way for the larger models.
        for m in 0..4 {
            for (i, &(_, output)) in FIG8_REQUESTS.iter().enumerate() {
                if output > 1 {
                    assert!(FIG8_GPU_MS[m][i] >= FIG8_IANUS_MS[m][i], "({m},{i})");
                }
            }
        }
    }

    #[test]
    fn fig8_speedups_match_embedded_data() {
        for m in 0..4 {
            let gpu: f64 = FIG8_GPU_MS[m].iter().sum::<f64>() / 12.0;
            let ianus: f64 = FIG8_IANUS_MS[m].iter().sum::<f64>() / 12.0;
            let ratio = gpu / ianus;
            assert!(
                (ratio / FIG8_SPEEDUPS[m] - 1.0).abs() < 0.05,
                "model {m}: {ratio}"
            );
        }
    }

    #[test]
    fn fig9_ianus_fastest_generation() {
        for i in 0..9 {
            assert!(FIG9_IANUS_MS[i] <= FIG9_NPU_MEM_MS[i]);
        }
    }
}
