//! Figure 13: unified vs partitioned memory systems and the impact of
//! unified-memory-aware scheduling, GPT-2 at (256,512).
//!
//! Six configurations per model, normalized to the naive partitioned
//! system: {partitioned, unified×{QKᵀ/SV on PIM, on MU}} × {naive,
//! scheduled}.

use ianus_bench::{banner, paper, req_label};
use ianus_core::pas::{AttnMapping, FcMapping, PasPolicy, Schedule};
use ianus_core::{IanusSystem, SystemConfig};
use ianus_model::{ModelConfig, RequestShape};

fn policy(attn: AttnMapping, schedule: Schedule) -> PasPolicy {
    PasPolicy {
        fc: FcMapping::Adaptive,
        attention: attn,
        schedule,
    }
}

fn main() {
    banner("Figure 13: unified vs partitioned memory and PAS scheduling (256,512)");
    let req = RequestShape::new(256, 512);
    let configs: [(&str, SystemConfig); 6] = [
        (
            "partitioned + naive",
            SystemConfig::partitioned().with_pas(policy(AttnMapping::MatrixUnit, Schedule::Naive)),
        ),
        (
            "partitioned + scheduled",
            SystemConfig::partitioned()
                .with_pas(policy(AttnMapping::MatrixUnit, Schedule::Overlapped)),
        ),
        (
            "unified, QKT/SV on PIM + naive",
            SystemConfig::ianus().with_pas(policy(AttnMapping::Pim, Schedule::Naive)),
        ),
        (
            "unified, QKT/SV on PIM + scheduled",
            SystemConfig::ianus().with_pas(policy(AttnMapping::Pim, Schedule::Overlapped)),
        ),
        (
            "unified, QKT/SV on MU + naive",
            SystemConfig::ianus().with_pas(policy(AttnMapping::MatrixUnit, Schedule::Naive)),
        ),
        (
            "unified, QKT/SV on MU + scheduled (IANUS)",
            SystemConfig::ianus().with_pas(policy(AttnMapping::MatrixUnit, Schedule::Overlapped)),
        ),
    ];

    println!("\nrequest {}", req_label(req));
    for (mi, model) in ModelConfig::gpt2_family().iter().enumerate() {
        println!("\n{}:", model.name);
        println!(
            "{:<44} {:>10} {:>9} {:>8}",
            "configuration", "latency ms", "speedup", "paper"
        );
        let mut base = None;
        for (ci, (label, cfg)) in configs.iter().enumerate() {
            let mut sys = IanusSystem::new(*cfg);
            let t = sys.run_request(model, req).total.as_ms_f64();
            let b = *base.get_or_insert(t);
            println!(
                "{:<44} {:>10.1} {:>8.2}x {:>7.1}x",
                label,
                t,
                b / t,
                paper::FIG13_BARS[mi][ci]
            );
        }
    }
    println!("\npaper: scheduling on PIM mapping +7% avg; 2.5B +24%; overall PAS +34% avg");
}
