//! Figure 12: adaptive FC mapping (Algorithm 1) versus always-MU and
//! always-PIM, for 4/8/16 input tokens across the GPT-2 family.

use ianus_bench::{banner, mean, paper};
use ianus_core::pas::FcMapping;
use ianus_core::{IanusSystem, SystemConfig};
use ianus_model::ModelConfig;

fn main() {
    banner("Figure 12: adaptive FC mapping vs forced MU / PIM (block FCs, ms)");
    println!(
        "\n{:<10} {:>7} | {:>10} {:>10} {:>10} | chosen",
        "model", "tokens", "MatrixUnit", "PIM", "Algorithm1"
    );
    println!("{}", "-".repeat(72));
    let mut vs_mu = Vec::new();
    let mut vs_pim = Vec::new();
    for model in ModelConfig::gpt2_family() {
        for tokens in [4u64, 8, 16] {
            let mut sys = IanusSystem::new(SystemConfig::ianus());
            let mu = sys
                .run_fc_microbench(&model, tokens, FcMapping::MatrixUnit)
                .latency
                .as_ms_f64();
            let pim = sys
                .run_fc_microbench(&model, tokens, FcMapping::Pim)
                .latency
                .as_ms_f64();
            let adaptive = sys
                .run_fc_microbench(&model, tokens, FcMapping::Adaptive)
                .latency
                .as_ms_f64();
            vs_mu.push(mu / adaptive);
            vs_pim.push(pim / adaptive);
            let chosen = if (adaptive - pim).abs() < (adaptive - mu).abs() {
                "≈PIM"
            } else {
                "≈MU"
            };
            println!(
                "{:<10} {:>7} | {:>10.2} {:>10.2} {:>10.2} | {}",
                model.name, tokens, mu, pim, adaptive, chosen
            );
        }
        println!("{}", "-".repeat(72));
    }
    println!(
        "Algorithm 1 speedup: {:.2}x vs always-PIM (paper {:.1}x), {:.2}x vs always-MU (paper {:.1}x)",
        mean(&vs_pim),
        paper::FIG12_VS_PIM,
        mean(&vs_mu),
        paper::FIG12_VS_MU
    );
}
