//! Figure 8: end-to-end GPT-2 inference latency, A100 GPU vs IANUS,
//! over the (input, output) grid {128,256,512} × {1,8,64,512}.

use ianus_baselines::GpuModel;
use ianus_bench::{banner, mean, paper, req_label};
use ianus_core::{IanusSystem, SystemConfig};
use ianus_model::{ModelConfig, RequestShape};

fn main() {
    banner("Figure 8: GPT-2 end-to-end latency, GPU vs IANUS (ms)");
    let gpu = GpuModel::a100();
    let models = ModelConfig::gpt2_family();
    println!(
        "\n{:<10} {:>10} | {:>9} {:>9} | {:>9} {:>9} | {:>8} {:>8}",
        "model", "(in,out)", "GPU", "GPU*", "IANUS", "IANUS*", "speedup", "paper*"
    );
    println!("{}", "-".repeat(92));
    for (mi, model) in models.iter().enumerate() {
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let mut gpu_ms = Vec::new();
        let mut ianus_ms = Vec::new();
        for (ri, &(input, output)) in paper::FIG8_REQUESTS.iter().enumerate() {
            let req = RequestShape::new(input, output);
            let g = gpu.request_latency(model, req).as_ms_f64();
            let i = sys.run_request(model, req).total.as_ms_f64();
            gpu_ms.push(g);
            ianus_ms.push(i);
            println!(
                "{:<10} {:>10} | {:>9.1} {:>9.1} | {:>9.2} {:>9.1} | {:>7.1}x {:>7.1}x",
                model.name,
                req_label(req),
                g,
                paper::FIG8_GPU_MS[mi][ri],
                i,
                paper::FIG8_IANUS_MS[mi][ri],
                g / i,
                paper::FIG8_GPU_MS[mi][ri] / paper::FIG8_IANUS_MS[mi][ri],
            );
        }
        let speedup = mean(&gpu_ms) / mean(&ianus_ms);
        println!(
            "{:<10} {:>10} | avg speedup {:>6.1}x   (paper: {:.1}x)",
            model.name,
            "Avg",
            speedup,
            paper::FIG8_SPEEDUPS[mi]
        );
        println!("{}", "-".repeat(92));
    }
    println!("columns marked * are the paper's published values");

    // Section 6.2 headline: per-token generation latency, 2.5B (128,64).
    let mut sys = IanusSystem::new(SystemConfig::ianus());
    let r = sys.run_request(&ModelConfig::gpt2_2_5b(), RequestShape::new(128, 64));
    if let Some(per_token) = r.per_token_latency() {
        println!(
            "\nGPT-2 2.5B (128,64) per generated token: {:.2} ms (paper: {:.1} ms IANUS, {:.1} ms GPU)",
            per_token.as_ms_f64(),
            paper::PER_TOKEN_2_5B_MS,
            paper::PER_TOKEN_2_5B_GPU_MS
        );
    }
}
