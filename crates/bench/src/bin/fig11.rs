//! Figure 11: dynamic energy of NPU-MEM and IANUS for GPT-2 models at
//! (256,512), normalized to IANUS on GPT-2 M.

use ianus_bench::{banner, paper};
use ianus_core::{EnergyBreakdown, IanusSystem, SystemConfig};
use ianus_model::{ModelConfig, RequestShape};

fn main() {
    banner("Figure 11: normalized dynamic energy, NPU-MEM vs IANUS (256,512)");
    let req = RequestShape::new(256, 512);
    let models = ModelConfig::gpt2_family();

    let energies: Vec<(EnergyBreakdown, EnergyBreakdown)> = models
        .iter()
        .map(|m| {
            let n = IanusSystem::new(SystemConfig::npu_mem())
                .run_request(m, req)
                .energy;
            let i = IanusSystem::new(SystemConfig::ianus())
                .run_request(m, req)
                .energy;
            (n, i)
        })
        .collect();
    let base = energies[0].1.total_pj();

    println!(
        "\n{:<10} {:<8} | {:>9} {:>9} {:>9} | {:>7} {:>7}",
        "model", "system", "normal", "PIM op", "cores", "total", "paper"
    );
    println!("{}", "-".repeat(74));
    for (mi, model) in models.iter().enumerate() {
        let (n, i) = &energies[mi];
        let (pn, pi) = paper::FIG11_NORMALIZED[mi];
        for (label, e, p) in [("NPU-MEM", n, pn), ("IANUS", i, pi)] {
            println!(
                "{:<10} {:<8} | {:>9.2} {:>9.2} {:>9.2} | {:>7.2} {:>7.1}",
                model.name,
                label,
                e.dram_normal_pj / base,
                e.pim_pj / base,
                e.core_pj / base,
                e.total_pj() / base,
                p
            );
        }
        let improvement = n.total_pj() / i.total_pj();
        let normal_cut = n.dram_normal_pj / i.dram_normal_pj.max(1e-9);
        let core_cut = n.core_pj / i.core_pj.max(1e-9);
        println!(
            "{:<10} improvement {:.1}x (paper {:.1}x); normal-op cut {:.1}x (paper 10.5-13.4x); core cut {:.1}x (paper 6.3-10.2x)",
            model.name,
            improvement,
            paper::FIG11_IMPROVEMENT[mi],
            normal_cut,
            core_cut
        );
        println!("{}", "-".repeat(74));
    }
    println!("all values normalized to IANUS GPT-2 M total");
}
