//! Figure 14: BERT throughput (TFLOPS) and compute utilization on the
//! A100 GPU and IANUS, inputs {128, 256, 512}.

use ianus_baselines::GpuModel;
use ianus_bench::{banner, mean, paper};
use ianus_core::{IanusSystem, SystemConfig};
use ianus_model::{ModelConfig, RequestShape};

fn main() {
    banner("Figure 14: BERT throughput and utilization, GPU vs IANUS");
    let gpu = GpuModel::a100();
    let ianus_peak = SystemConfig::ianus().npu.peak_tflops();
    println!(
        "\n{:<10} {:>6} | {:>9} {:>9} {:>7} | {:>8} {:>8} {:>7}",
        "model", "tokens", "GPU TF", "IANUS TF", "ratio", "GPU util", "IANUS u", "ratio"
    );
    println!("{}", "-".repeat(84));
    for (mi, model) in ModelConfig::bert_family().iter().enumerate() {
        let mut ratios = Vec::new();
        let mut util_ratios = Vec::new();
        for tokens in [128u64, 256, 512] {
            let req = RequestShape::new(tokens, 1);
            let g_tf = gpu.throughput_tflops(model, req);
            let mut sys = IanusSystem::new(SystemConfig::ianus());
            let r = sys.run_request(model, req);
            let i_tf = r.throughput_tflops();
            let g_util = g_tf / gpu.peak_tflops;
            let i_util = r.utilization(ianus_peak);
            ratios.push(i_tf / g_tf);
            util_ratios.push(i_util / g_util);
            println!(
                "{:<10} {:>6} | {:>9.1} {:>9.1} {:>6.2}x | {:>7.1}% {:>7.1}% {:>6.2}x",
                model.name,
                tokens,
                g_tf,
                i_tf,
                i_tf / g_tf,
                g_util * 100.0,
                i_util * 100.0,
                i_util / g_util
            );
        }
        println!(
            "{:<10} {:>6} | avg throughput ratio {:>5.2}x (paper {:.1}x); avg util ratio {:>5.2}x (paper {:.1}x)",
            model.name,
            "Avg",
            mean(&ratios),
            paper::FIG14_THROUGHPUT_RATIO[mi],
            mean(&util_ratios),
            paper::FIG14_UTILIZATION_RATIO[mi]
        );
        println!("{}", "-".repeat(84));
    }
    println!("IANUS peak = {ianus_peak:.0} TFLOPS (matrix units only; PIM unused for BERT)");
}
