//! Figure 15: sensitivity of GPT-2 L to the number of NPU cores and PIM
//! chips, for summarization-only (256,1) and generation-dominant
//! (256,512) requests. Slowdowns are normalized to 4 cores / 4 PIM chips.

use ianus_bench::banner;
use ianus_core::{IanusSystem, SystemConfig};
use ianus_model::{ModelConfig, RequestShape};

fn run(cfg: SystemConfig, req: RequestShape) -> f64 {
    IanusSystem::new(cfg)
        .run_request(&ModelConfig::gpt2_l(), req)
        .total
        .as_ms_f64()
}

fn main() {
    banner("Figure 15: sensitivity to #cores and #PIM chips, GPT-2 L");
    let reqs = [RequestShape::new(256, 1), RequestShape::new(256, 512)];
    let base: Vec<f64> = reqs
        .iter()
        .map(|&r| run(SystemConfig::ianus(), r))
        .collect();

    println!("\nslowdown vs 4 cores / 4 PIM chips:");
    println!(
        "{:<18} {:>12} {:>12}",
        "configuration", "(256,1)", "(256,512)"
    );
    println!("{}", "-".repeat(44));
    for cores in [1u32, 2, 4] {
        let cfg = SystemConfig::ianus().with_cores(cores);
        let s: Vec<f64> = reqs
            .iter()
            .enumerate()
            .map(|(i, &r)| run(cfg, r) / base[i])
            .collect();
        println!(
            "{:<18} {:>11.2}x {:>11.2}x",
            format!("{cores} cores"),
            s[0],
            s[1]
        );
    }
    for chips in [1u32, 2, 4] {
        let cfg = SystemConfig::ianus().with_pim_chips(chips);
        let s: Vec<f64> = reqs
            .iter()
            .enumerate()
            .map(|(i, &r)| run(cfg, r) / base[i])
            .collect();
        println!(
            "{:<18} {:>11.2}x {:>11.2}x",
            format!("{chips} PIM chips"),
            s[0],
            s[1]
        );
    }
    println!(
        "\npaper: fewer cores slow both cases (summarization more); fewer PIM chips\n\
         mainly slow the generation-dominant case"
    );
}
