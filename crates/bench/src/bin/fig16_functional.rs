//! Figure 16 / Section 6.3 substitute: functional validation of the
//! PIM-offloaded decoder datapath.
//!
//! The paper demonstrates feasibility with an FPGA prototype driving real
//! AiM chips and reports GPT-2 WikiText-2 perplexities matching the
//! full-precision models. Without pretrained weights or hardware, this
//! binary validates the same property at the numerics level: a decoder
//! block executed through the BF16 PIM tile datapath (including the GELU
//! LUT) matches an f32 reference within BF16 tolerance.

use ianus_bench::banner;
use ianus_core::functional::{
    run_decoder_validation, run_tiny_gpt_decode, FunctionalConfig, TinyGptConfig,
};

fn main() {
    banner("Figure 16 substitute: functional validation of the PIM datapath");
    println!(
        "\n{:<28} {:>12} {:>12} {:>8}",
        "configuration", "max rel err", "rms rel err", "status"
    );
    println!("{}", "-".repeat(64));
    for (embed, ffn, seed) in [
        (256usize, 1024usize, 0xA1A2_A3A4u64),
        (512, 2048, 7),
        (768, 3072, 42),
        (1024, 4096, 0xDEAD_BEEF),
    ] {
        let report = run_decoder_validation(FunctionalConfig {
            embed_dim: embed,
            ffn_dim: ffn,
            seed,
        });
        println!(
            "{:<28} {:>12.5} {:>12.5} {:>8}",
            format!("E={embed}, FFN={ffn}"),
            report.max_rel_error,
            report.rms_rel_error,
            if report.passes() { "PASS" } else { "FAIL" }
        );
    }
    println!("\nend-to-end greedy decode (tiny GPT, FCs + GELU through the PIM datapath):");
    for (steps, seed) in [(12usize, 0xC0FFEEu64), (16, 3), (16, 1234)] {
        let r = run_tiny_gpt_decode(TinyGptConfig {
            steps,
            seed,
            ..TinyGptConfig::default()
        });
        println!(
            "  seed {seed:>6}: {:>4.0}% token agreement over {} steps ({})",
            r.agreement() * 100.0,
            steps,
            if r.agreement() >= 0.75 {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }
    println!(
        "\npaper prototype: GPT-2 Base/M/L/XL perplexity 30.92/22.60/19.39/17.48 on\n\
         WikiText-2, matching full-precision models; here the equivalent checks are\n\
         BF16-through-PIM activations matching f32 within tolerance and greedy\n\
         decodes agreeing token-for-token."
    );
}
