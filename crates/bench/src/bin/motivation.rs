//! Section 3 (Motivation) quantified: the diverse computational
//! intensities of end-to-end LLM inference, and why they demand a
//! heterogeneous NPU + PIM system.

use ianus_bench::banner;
use ianus_model::roofline::{block_intensities, stage_intensity, Platform};
use ianus_model::{ModelConfig, Stage};

fn main() {
    let model = ModelConfig::gpt2_xl();
    let platforms = [
        Platform::a100(),
        Platform::ianus_npu(),
        Platform::ianus_pim(),
    ];

    banner("Section 3.1: operator arithmetic intensities, GPT-2 XL");
    println!(
        "\nridge points: {}",
        platforms
            .iter()
            .map(|p| format!("{} = {:.0} FLOP/B", p.name, p.ridge_point()))
            .collect::<Vec<_>>()
            .join(", ")
    );
    for (label, stage) in [
        (
            "summarization (512 tokens)",
            Stage::Summarization { tokens: 512 },
        ),
        (
            "generation (past = 512)",
            Stage::Generation { past_tokens: 512 },
        ),
    ] {
        println!("\n{label}:");
        println!(
            "{:<26} {:>12} {:>12} {:>10}  bound on (A100 / NPU / PIM)",
            "operator", "GFLOPs", "MBytes", "FLOP/B"
        );
        for op in block_intensities(&model.block_ops(), &stage) {
            let bounds: Vec<&str> = platforms
                .iter()
                .map(|p| {
                    if p.memory_bound(&op) {
                        "mem"
                    } else {
                        "compute"
                    }
                })
                .collect();
            println!(
                "{:<26} {:>12.3} {:>12.2} {:>10.1}  {}",
                op.name,
                op.flops as f64 / 1e9,
                op.bytes as f64 / 1e6,
                op.intensity(),
                bounds.join(" / ")
            );
        }
    }

    banner("Section 3.1: stage-level intensity gap");
    for tokens in [128u64, 256, 512] {
        let s = stage_intensity(&model, &Stage::Summarization { tokens });
        let g = stage_intensity(
            &model,
            &Stage::Generation {
                past_tokens: tokens,
            },
        );
        println!(
            "  {tokens:>4} tokens: summarization {:>7.1} FLOP/B vs generation {:>5.2} FLOP/B ({:>5.0}x gap)",
            s.intensity(),
            g.intensity(),
            s.intensity() / g.intensity()
        );
    }
    println!(
        "\npaper: generating with 512 input tokens needs ~512x fewer FLOPs than\n\
         summarization yet took 88.5% of its execution time on the A100 —\n\
         the generation stage is memory-bound everywhere except inside PIM."
    );
}
