//! Figure 10: latency breakdown of GPT-2 L and XL generation stages,
//! NPU-MEM vs IANUS, at (128,256).
//!
//! The paper attributes *latency* (not busy time) to operation classes:
//! work hidden behind other units contributes nothing. We reproduce that
//! with leave-one-class-out attribution — re-running the scheduled
//! program with one class's durations zeroed and reporting the makespan
//! delta — on a representative mid-generation step, scaled to the full
//! 255-step generation phase.

use ianus_bench::{banner, paper};
use ianus_core::compiler::Compiler;
use ianus_core::{OpClass, SystemConfig};
use ianus_model::{ModelConfig, Stage};
use ianus_npu::scheduler::{Command, Engine, Program};
use ianus_sim::Duration;

/// Makespan of `program` with every command of `zeroed` given zero
/// duration (None = unmodified).
fn makespan(cfg: &SystemConfig, units: usize, program: &Program, zeroed: Option<usize>) -> f64 {
    let mut engine = Engine::new(units, cfg.npu.dispatch_overhead);
    match zeroed {
        None => engine.run(program).makespan().as_ns_f64(),
        Some(tag) => {
            let mut p = Program::new();
            for cmd in program.commands() {
                let mut c = Command::new(
                    cmd.unit,
                    if cmd.tag == tag {
                        Duration::ZERO
                    } else {
                        cmd.duration
                    },
                    cmd.tag,
                )
                .after_all(cmd.deps.iter().copied());
                for &s in &cmd.shared {
                    c = c.holding(s);
                }
                p.push(c);
            }
            engine.run(&p).makespan().as_ns_f64()
        }
    }
}

fn main() {
    banner("Figure 10: generation latency breakdown, NPU-MEM vs IANUS (128,256)");
    // Representative step of the (128,256) request: past = 128 + 255/2.
    let stage = Stage::Generation {
        past_tokens: 128 + 127,
    };
    let steps = 255.0;
    let classes = [
        OpClass::LayerNorm,
        OpClass::SelfAttention,
        OpClass::FcAttnProjAdd,
        OpClass::FfnAdd,
        OpClass::FcQkv,
    ];
    for model in [ModelConfig::gpt2_l(), ModelConfig::gpt2_xl()] {
        let mut rows: Vec<Vec<f64>> = Vec::new(); // per system: class deltas + total
        for cfg in [SystemConfig::npu_mem(), SystemConfig::ianus()] {
            let mut compiler = Compiler::new(&cfg, &model);
            let compiled = compiler.compile(&stage);
            let units = compiler.unit_map().unit_count();
            let full = makespan(&cfg, units, &compiled.program, None);
            let mut row: Vec<f64> = classes
                .iter()
                .map(|c| {
                    let without = makespan(&cfg, units, &compiled.program, Some(c.tag()));
                    (full - without) * steps / 1e6
                })
                .collect();
            row.push(full * steps / 1e6);
            rows.push(row);
        }
        println!(
            "\n{} generation latency attribution over 255 steps (ms):",
            model.name
        );
        println!(
            "{:<26} {:>10} {:>10} {:>8}",
            "class", "NPU-MEM", "IANUS", "ratio"
        );
        for (i, c) in classes.iter().enumerate() {
            let n = rows[0][i];
            let s = rows[1][i];
            let ratio = if s > 1e-9 { n / s } else { f64::INFINITY };
            println!("{:<26} {:>10.1} {:>10.1} {:>7.1}x", c.label(), n, s, ratio);
        }
        let overall = rows[0][classes.len()] / rows[1][classes.len()];
        let paper_overall = if model.name == "GPT-2 XL" {
            paper::FIG10_XL_OVERALL
        } else {
            paper::FIG10_L_OVERALL
        };
        println!(
            "{:<26} {:>10.0} {:>10.0} {:>7.1}x  (paper overall: {:.1}x)",
            "generation total",
            rows[0][classes.len()],
            rows[1][classes.len()],
            overall,
            paper_overall
        );
    }
    println!(
        "\npaper headline ratios (GPT-2 XL): MHA FCs 4.1x, FFN 5.1x, self-attention 4.3x;\n\
         classes overlap, so exclusive attributions need not sum to the total"
    );
}
