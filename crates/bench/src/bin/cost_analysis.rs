//! Section 7.2: cost (performance per TDP watt) analysis of multi-IANUS
//! groups versus a single A100, at a 256:64 input:output ratio.

use ianus_baselines::GpuModel;
use ianus_bench::{banner, paper};
use ianus_core::multi_device::{DeviceGroup, A100_TDP_WATTS, IANUS_TDP_WATTS};
use ianus_core::SystemConfig;
use ianus_model::{ModelConfig, RequestShape};

fn main() {
    banner("Section 7.2: perf/TDP cost efficiency vs A100 (256:64)");
    let gpu = GpuModel::a100_megatron();
    let req = RequestShape::new(256, 64);
    println!("\nTDP assumptions: IANUS {IANUS_TDP_WATTS} W/device, A100 {A100_TDP_WATTS} W\n");
    println!(
        "{:<10} {:>8} | {:>10} {:>10} | {:>10} {:>8}",
        "model", "devices", "GPU ms", "group ms", "perf/TDP", "paper"
    );
    println!("{}", "-".repeat(68));
    for (mi, model) in ModelConfig::large_gpt_family().iter().enumerate() {
        let devices = DeviceGroup::devices_for(model);
        let mut group = DeviceGroup::new(SystemConfig::ianus(), devices);
        let g = gpu.request_latency(model, req).as_ms_f64();
        let i = group.run_request(model, req).total.as_ms_f64();
        let eff = group.cost_efficiency_vs_gpu(g, i);
        println!(
            "{:<10} {:>8} | {:>10.0} {:>10.1} | {:>9.1}x {:>7.1}x",
            model.name,
            devices,
            g,
            i,
            eff,
            paper::COST_EFFICIENCY[mi]
        );
    }
    println!("\npaper: cost-efficiency benefits diminish as the number of IANUS devices grows");
}
