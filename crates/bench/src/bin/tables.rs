//! Tables 1–4: simulation parameters, platform specifications, and model
//! configurations, regenerated from the code's own constants (so any
//! drift between documentation and implementation is visible here).

use ianus_baselines::{DfxModel, GpuModel};
use ianus_bench::banner;
use ianus_core::SystemConfig;
use ianus_model::ModelConfig;

fn main() {
    let cfg = SystemConfig::ianus();

    banner("Table 1: simulation parameters for IANUS");
    println!("NPU");
    println!(
        "  composition        {} cores, {} PIM memory controllers",
        cfg.npu.cores, cfg.org.channels
    );
    println!("  frequency          700 MHz");
    println!(
        "  matrix unit        {}x{} PEs, {} MACs/PE, {:.0} TFLOPS/core",
        cfg.npu.mu_rows,
        cfg.npu.mu_cols,
        cfg.npu.mu_macs_per_pe,
        cfg.npu.mu_peak_tflops()
    );
    println!(
        "  vector unit        {} x {}-wide VLIW processors",
        cfg.npu.vu_processors, cfg.npu.vu_width
    );
    println!(
        "  scheduler          {} command slots/issue queue, {} pending slots",
        cfg.npu.issue_slots, cfg.npu.pending_slots
    );
    println!(
        "  scratchpads        activation {} MB, weight {} MB",
        cfg.npu.am_bytes >> 20,
        cfg.npu.wm_bytes >> 20
    );
    println!("PIM");
    println!(
        "  memory             GDDR6 {} Gb/s x{}, {} channels, {:.0} GB/s external,",
        cfg.org.pin_gbps,
        cfg.org.pins,
        cfg.org.channels,
        cfg.org.external_bandwidth_gbps()
    );
    println!(
        "                     {} channels/chip, {} banks/channel, row size {} KB",
        cfg.org.channels_per_chip,
        cfg.org.banks_per_channel,
        cfg.org.row_bytes / 1024
    );
    let t = cfg.timings;
    println!(
        "  timing             tCK={} tCCDS={} tCCDL={} tRAS={} tWR={} tRP={} tRCDRD={} tRCDWR={}",
        t.t_ck, t.t_ccd_s, t.t_ccd_l, t.t_ras, t.t_wr, t.t_rp, t.t_rcd_rd, t.t_rcd_wr
    );
    let pim = cfg.pim_group_config();
    println!(
        "  processing unit    1 GHz, 1 PU/bank, {:.0} GFLOPS/PU, {} B global buffer/channel",
        pim.peak_tflops() / pim.total_pus() as f64 * 1e3,
        pim.gb_bytes
    );

    banner("Table 2: specifications of A100, DFX, and IANUS");
    let gpu = GpuModel::a100();
    let dfx = DfxModel::four_fpga();
    println!("{:<22} {:>12} {:>12} {:>12}", "", "A100", "DFX", "IANUS");
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "frequency (MHz)", 1155, 200, 700
    );
    println!(
        "{:<22} {:>12.0} {:>12.2} {:>12.1}",
        "throughput (TFLOPS)",
        gpu.peak_tflops,
        1.64,
        cfg.npu.peak_tflops()
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "off-chip memory", "HBM2e", "HBM2", "GDDR6"
    );
    println!(
        "{:<22} {:>12} {:>12} {:>12}",
        "capacity (GB)",
        80,
        32,
        cfg.org.capacity >> 30
    );
    println!(
        "{:<22} {:>12.0} {:>12.0} {:>12.0}",
        "bandwidth (GB/s)",
        gpu.mem_gbps,
        dfx.mem_gbps,
        cfg.org.external_bandwidth_gbps()
    );
    let full_pim = ianus_pim::PimConfig::ianus_default();
    println!(
        "{:<22} {:>12} {:>12} {:>12.0}",
        "internal BW (GB/s)",
        "N/A",
        "N/A",
        full_pim.internal_bandwidth_gbps()
    );

    banner("Table 3: network configurations");
    print_models(&ModelConfig::gpt2_family());
    print_models(&ModelConfig::bert_family());

    banner("Table 4: larger LLM configurations");
    print_models(&ModelConfig::large_gpt_family());
}

fn print_models(models: &[ModelConfig]) {
    println!(
        "{:<11} {:>7} {:>6} {:>7} {:>8} {:>10}",
        "name", "embed", "head", "#heads", "#blocks", "#params"
    );
    for m in models {
        println!(
            "{:<11} {:>7} {:>6} {:>7} {:>8} {:>9.2}M",
            m.name,
            m.embed_dim,
            m.head_dim,
            m.heads,
            m.blocks,
            m.param_count() as f64 / 1e6
        );
    }
    println!();
}
