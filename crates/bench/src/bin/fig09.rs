//! Figure 9: GPT-2 XL latency on DFX, NPU-MEM and IANUS over the
//! (input, output) grid {32,64,128} × {1,16,256}.

use ianus_baselines::DfxModel;
use ianus_bench::{banner, mean, paper, req_label};
use ianus_core::{IanusSystem, SystemConfig};
use ianus_model::{ModelConfig, RequestShape};

fn main() {
    banner("Figure 9: GPT-2 XL latency, DFX vs NPU-MEM vs IANUS (ms)");
    let model = ModelConfig::gpt2_xl();
    let dfx = DfxModel::four_fpga();
    let mut npu_mem = IanusSystem::new(SystemConfig::npu_mem());
    let mut ianus = IanusSystem::new(SystemConfig::ianus());

    println!(
        "\n{:>10} | {:>8} {:>8} | {:>8} {:>8} | {:>8} {:>8}",
        "(in,out)", "DFX", "DFX*", "NPU-MEM", "NPUMEM*", "IANUS", "IANUS*"
    );
    println!("{}", "-".repeat(74));
    let mut dfx_ms = Vec::new();
    let mut ianus_ms = Vec::new();
    for (ri, &(input, output)) in paper::FIG9_REQUESTS.iter().enumerate() {
        let req = RequestShape::new(input, output);
        let d = dfx.request_latency(&model, req).as_ms_f64();
        let n = npu_mem.run_request(&model, req).total.as_ms_f64();
        let i = ianus.run_request(&model, req).total.as_ms_f64();
        dfx_ms.push(d);
        ianus_ms.push(i);
        println!(
            "{:>10} | {:>8.0} {:>8.0} | {:>8.1} {:>8.0} | {:>8.1} {:>8.0}",
            req_label(req),
            d,
            paper::FIG9_DFX_MS[ri],
            n,
            paper::FIG9_NPU_MEM_MS[ri],
            i,
            paper::FIG9_IANUS_MS[ri],
        );
    }
    println!("{}", "-".repeat(74));
    println!(
        "average speedup vs DFX: {:.1}x (paper: 3.2x); (128,1) speedup: {:.1}x (paper: 49.3x)",
        mean(&dfx_ms) / mean(&ianus_ms),
        dfx_ms[6] / ianus_ms[6],
    );

    // Section 6.2: per-token latencies at (64,256).
    let req = RequestShape::new(64, 256);
    let i = ianus.run_request(&model, req);
    let n = npu_mem.run_request(&model, req);
    let (p_i, p_d, p_n) = paper::PER_TOKEN_XL_MS;
    println!(
        "\nper generated token at (64,256): IANUS {:.2} ms (paper {p_i}), DFX {:.2} ms (paper {p_d}), NPU-MEM {:.2} ms (paper {p_n})",
        i.per_token_latency().unwrap().as_ms_f64(),
        dfx.per_token_latency(&model).as_ms_f64(),
        n.per_token_latency().unwrap().as_ms_f64(),
    );
    println!("columns marked * are the paper's published values");
}
