//! Design-choice ablations called out in DESIGN.md — knobs the paper
//! fixes (or defers to future work) and what they are worth:
//!
//! 1. PIM tile order (row-major, the paper's assumption, vs column-major)
//! 2. All-bank activation staging group size
//! 3. Macro-PIM-command overhead sensitivity (the calibrated PCU cost)
//! 4. DRAM refresh modelling on/off
//! 5. Capacity scaling: one clamshell (16 GB) device vs two 8 GB devices
//!    (the two options of Section 7.1)

use ianus_bench::banner;
use ianus_core::multi_device::DeviceGroup;
use ianus_core::{IanusSystem, SystemConfig};
use ianus_dram::{GddrOrganization, GddrTimings, TransferModel};
use ianus_model::{ModelConfig, RequestShape, Stage};
use ianus_pim::{GemvShape, PimConfig, PimModel, TileOrder};
use ianus_sim::Duration;

fn main() {
    banner("Ablation 1: PIM tile order (GPT-2 XL FFN1, 6144x1536)");
    let model = PimModel::new(PimConfig::ianus_default());
    let shape = GemvShape::new(6144, 1536);
    for (name, order) in [
        ("row-major (paper)", TileOrder::RowMajor),
        ("column-major", TileOrder::ColMajor),
    ] {
        let c = model.gemv_with_order(shape, order);
        println!(
            "  {:<20} {:>9.2} us | GB fill {:>7} B, drain {:>7} B, {:>6.0} GB/s internal",
            name,
            c.total.as_us_f64(),
            c.gb_bytes,
            c.drain_bytes,
            c.internal_bandwidth_gbps()
        );
    }
    println!("  column-major trades global-buffer refills for per-tile partial-sum drains\n");

    banner("Ablation 2: all-bank activation staging group size");
    for group in [1u32, 2, 4, 8, 16] {
        let mut timings = GddrTimings::ianus_default();
        timings.act_group = group;
        let cfg = PimConfig {
            timings,
            ..PimConfig::ianus_default()
        };
        let c = PimModel::new(cfg).gemv(GemvShape::new(8192, 1024));
        println!(
            "  act_group = {group:>2}: {:>8.2} us ({:.0} GB/s internal)",
            c.total.as_us_f64(),
            c.internal_bandwidth_gbps()
        );
    }
    println!("  wider groups shorten the activation ramp until tRCD dominates\n");

    banner("Ablation 3: macro PIM command overhead (GPT-2 XL, token at past=256)");
    for overhead_ns in [0u64, 600, 1200, 1800, 2400, 3600] {
        let mut cfg = SystemConfig::ianus();
        cfg.pim_macro_overhead = Duration::from_ns(overhead_ns);
        let mut sys = IanusSystem::new(cfg);
        let s = sys.run_stage(
            &ModelConfig::gpt2_xl(),
            &Stage::Generation { past_tokens: 256 },
        );
        println!(
            "  overhead = {:>4} ns: {:>6.2} ms/token",
            overhead_ns,
            s.latency.as_ms_f64()
        );
    }
    println!("  the repo calibrates 1800 ns to match the paper's 3.8 ms/token\n");

    banner("Ablation 4: DRAM refresh modelling");
    let org = GddrOrganization::ianus_default();
    let t = GddrTimings::ianus_default();
    let without = TransferModel::new(org, t);
    let with = TransferModel::new(org, t).with_refresh(true);
    println!(
        "  nominal: {:.1} GB/s, with refresh: {:.1} GB/s ({:.1}% overhead)",
        without.effective_bandwidth_gbps(8),
        with.effective_bandwidth_gbps(8),
        t.refresh_overhead() * 100.0
    );
    let bytes = 2_900_000_000u64; // GPT-2 XL weights
    println!(
        "  XL weight stream: {:.2} ms -> {:.2} ms per token on NPU-MEM\n",
        without.bulk_read(bytes, 8).as_ms_f64(),
        with.bulk_read(bytes, 8).as_ms_f64()
    );

    banner("Ablation 5: capacity scaling for GPT 6.7B — clamshell vs more devices");
    let model67 = ModelConfig::gpt_6_7b();
    let req = RequestShape::new(256, 64);
    // Option 1 (Section 7.1): one device with clamshell GDDR6 (16 GB).
    let mut clam_cfg = SystemConfig::ianus();
    clam_cfg.org = GddrOrganization::ianus_clamshell();
    let mut clam = IanusSystem::new(clam_cfg);
    let one = clam.run_request(&model67, req);
    // Option 2 (the paper's choice): two standard devices.
    let mut two_dev = DeviceGroup::new(SystemConfig::ianus(), 2);
    let two = two_dev.run_request(&model67, req);
    println!(
        "  1x clamshell device (16 GB):  {:>8.1} ms  ({:.1} ms/token)",
        one.total.as_ms_f64(),
        one.per_token_latency().unwrap().as_ms_f64()
    );
    println!(
        "  2x standard devices (8 GB):   {:>8.1} ms  ({:.1} ms/token)",
        two.total.as_ms_f64(),
        two.per_token_latency().unwrap().as_ms_f64()
    );
    println!(
        "  more devices add PIM bandwidth with the capacity ({:.2}x faster) —\n\
         clamshell adds only capacity, which is why the paper scales devices",
        one.total.as_ns_f64() / two.total.as_ns_f64()
    );
}
