//! Figure 18: strong scaling of GPT 6.7B (256,64) across 2/4/8 IANUS
//! devices, in generated tokens per second.

use ianus_bench::{banner, paper};
use ianus_core::multi_device::DeviceGroup;
use ianus_core::SystemConfig;
use ianus_model::{ModelConfig, RequestShape};

fn main() {
    banner("Figure 18: strong scaling, GPT 6.7B (256,64)");
    let model = ModelConfig::gpt_6_7b();
    let req = RequestShape::new(256, 64);
    println!(
        "\n{:>9} | {:>12} {:>12} | {:>9}",
        "devices", "tokens/s", "paper", "scaling"
    );
    println!("{}", "-".repeat(52));
    let mut first = None;
    for (i, devices) in [2u32, 4, 8].iter().enumerate() {
        let mut group = DeviceGroup::new(SystemConfig::ianus(), *devices);
        let tps = group.tokens_per_second(&model, req);
        let base = *first.get_or_insert(tps);
        println!(
            "{:>9} | {:>12.1} {:>12.1} | {:>8.2}x",
            devices,
            tps,
            paper::FIG18_TOKENS_PER_S[i],
            tps / base
        );
    }
    println!(
        "\npaper: 2.5x throughput from 4x devices (127.1 -> 317.6 tokens/s);\n\
         sublinear due to inter-device communication"
    );
}
