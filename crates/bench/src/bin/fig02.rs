//! Figure 2: latency/FLOPs breakdown of GPT-2 XL decoders on the A100
//! (generation stage), including the self-attention non-computing share.

use ianus_baselines::GpuModel;
use ianus_bench::banner;
use ianus_model::{ModelConfig, Stage};

fn main() {
    banner("Figure 2: GPU decoder breakdown, GPT-2 XL generation stage");
    let gpu = GpuModel::a100();
    let model = ModelConfig::gpt2_xl();
    let stage = Stage::Generation { past_tokens: 512 };
    let b = gpu.decoder_breakdown(&model, &stage);

    println!("\n(a) Decoder latency breakdown        measured   paper");
    println!(
        "    LayerNorm + residual add         {:>6.1}%   13.2%",
        b.layernorm_residual * 100.0
    );
    println!(
        "    Self-attention                   {:>6.1}%   41.4%",
        b.self_attention * 100.0
    );
    println!(
        "    FC + FFN                         {:>6.1}%   45.4%",
        b.fc_ffn * 100.0
    );

    println!("\n(b) Within self-attention:");
    println!(
        "    non-computing operations         {:>6.1}%   66.1%",
        b.attention_noncompute * 100.0
    );

    // FLOPs side of Figure 2a: vector ops are a vanishing FLOP fraction.
    let ops = model.block_ops();
    let fc_flops = ops.block_flops(&stage) - ops.attention_flops(&stage);
    let attn_flops = ops.attention_flops(&stage);
    let ln_flops = 4 * ops.layernorm_elems(&stage); // ~1 FLOP/elem/kernel
    let total = (fc_flops + attn_flops + ln_flops) as f64;
    println!(
        "\n    FLOPs shares: FC+FFN {:.1}%, self-attention {:.1}%, LN+add {:.3}% (paper: <0.06%)",
        fc_flops as f64 / total * 100.0,
        attn_flops as f64 / total * 100.0,
        ln_flops as f64 / total * 100.0,
    );
}
