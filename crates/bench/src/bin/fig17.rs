//! Figure 17: inference latency of larger LLMs (GPT 6.7B/13B/30B) on
//! multi-IANUS groups versus a single A100.

use ianus_baselines::GpuModel;
use ianus_bench::{banner, mean, paper, req_label};
use ianus_core::multi_device::DeviceGroup;
use ianus_core::SystemConfig;
use ianus_model::{ModelConfig, RequestShape};

fn main() {
    banner("Figure 17: larger LLMs on multi-IANUS vs one A100 (ms)");
    let gpu = GpuModel::a100_megatron();
    let requests: Vec<RequestShape> = [1u64, 8, 64, 512]
        .iter()
        .map(|&o| RequestShape::new(256, o))
        .collect();
    for (mi, model) in ModelConfig::large_gpt_family().iter().enumerate() {
        let devices = DeviceGroup::devices_for(model);
        let mut group = DeviceGroup::new(SystemConfig::ianus(), devices);
        group.fits(model).expect("device count must fit the model");
        println!(
            "\n{} on {} IANUS devices (paper: {}):",
            model.name,
            devices,
            [2, 4, 8][mi]
        );
        println!(
            "{:>10} | {:>9} {:>10} {:>8}",
            "(in,out)", "GPU", "IANUSx{n}", "speedup"
        );
        let mut gpu_ms = Vec::new();
        let mut grp_ms = Vec::new();
        for &req in &requests {
            let g = gpu.request_latency(model, req).as_ms_f64();
            let i = group.run_request(model, req).total.as_ms_f64();
            gpu_ms.push(g);
            grp_ms.push(i);
            println!(
                "{:>10} | {:>9.0} {:>10.1} {:>7.1}x",
                req_label(req),
                g,
                i,
                g / i
            );
        }
        println!(
            "{:>10} | avg speedup {:.1}x (paper: {:.1}x)",
            "Avg",
            mean(&gpu_ms) / mean(&grp_ms),
            paper::FIG17_SPEEDUPS[mi]
        );
    }
    println!(
        "\npaper: effective memory bandwidth ≈2.4 TB/s per device; speedups diminish\n\
         with device count due to PCIe communication overhead"
    );
}
