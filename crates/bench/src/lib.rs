//! Shared harness code for the figure-regeneration binaries.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the
//! paper's evaluation section, printing measured values side by side with
//! the paper's published numbers (embedded in [`paper`]) so fidelity is
//! visible at a glance. Run them all with:
//!
//! ```text
//! for f in fig02 fig08 fig09 fig10 fig11 fig12 fig13 fig14 fig15 \
//!          fig16_functional fig17 fig18 tables cost_analysis; do
//!     cargo run --release -p ianus-bench --bin $f
//! done
//! ```

pub mod paper;

use ianus_model::RequestShape;

/// Formats a `(input, output)` request as the paper does.
pub fn req_label(r: RequestShape) -> String {
    format!("({},{})", r.input, r.output)
}

/// Geometric mean of positive values.
///
/// # Panics
///
/// Panics if `values` is empty or contains non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean requires positive values");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Prints a horizontal rule sized to a header string.
pub fn rule(header: &str) {
    println!("{}", "-".repeat(header.len()));
}

/// Prints a figure banner.
pub fn banner(title: &str) {
    let line = "=".repeat(title.len() + 8);
    println!("{line}\n=== {title} ===\n{line}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geomean(&[3.0]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn geomean_empty_panics() {
        let _ = geomean(&[]);
    }

    #[test]
    fn label_format() {
        assert_eq!(req_label(RequestShape::new(128, 8)), "(128,8)");
    }
}
