//! Network-on-chip model (paper Section 4.3).
//!
//! IANUS's NoC provides **all-to-all connectivity** between the NPU cores
//! and the PIM memory controllers, so that (a) any core can reach any
//! memory channel when PIM serves as the NPU's main memory, and (b) the
//! PIM control unit can reach every PIM MC. It additionally supports
//! **broadcasting** of PIM commands to all PIM MCs, which is what keeps
//! the unified system's command traffic off the data path: one macro
//! operation's micro commands are delivered once, not once per channel.
//!
//! The model is analytic: a crossbar of `ports × ports` links, each with
//! a fixed per-hop latency and a serialization bandwidth, plus an
//! ingress/egress port constraint. It is deliberately standalone — the
//! system simulator folds NoC delivery cost into the calibrated macro-PIM
//! overhead and the DMA setup costs — and exists to *quantify* the two
//! §4.3 design claims:
//!
//! 1. broadcast reduces PIM-command bandwidth demand by the channel count;
//! 2. all-to-all data connectivity sustains full memory bandwidth for any
//!    core→channel traffic pattern without oversubscription.
//!
//! # Examples
//!
//! ```
//! use ianus_noc::{Crossbar, TrafficPattern};
//!
//! let noc = Crossbar::ianus_default();
//! // Broadcasting one 64 B PIM command beats 8 unicasts by ~8x in
//! // injected bytes.
//! let uni = noc.unicast_bytes(64, 8);
//! let bc = noc.broadcast_bytes(64, 8);
//! assert_eq!(uni / bc, 8);
//! let t = noc.transfer(64, TrafficPattern::Broadcast { destinations: 8 });
//! assert!(t.as_ns_f64() < 50.0);
//! ```

use ianus_sim::{Duration, Frequency};

/// How a message is delivered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficPattern {
    /// One source to one destination.
    Unicast,
    /// One source to `destinations` ports simultaneously (the PIM command
    /// broadcast path).
    Broadcast {
        /// Number of destination ports.
        destinations: u32,
    },
    /// All `pairs` disjoint source/destination pairs at once (core↔channel
    /// data traffic).
    Permutation {
        /// Concurrent disjoint pairs.
        pairs: u32,
    },
}

/// An all-to-all crossbar NoC.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Crossbar {
    /// Ports on each side (cores + PCU on one side, PIM MCs on the other).
    pub ports: u32,
    /// Link width in bytes per cycle.
    pub link_bytes_per_cycle: u32,
    /// NoC clock.
    pub clock: Frequency,
    /// Router/arbitration hops per traversal.
    pub hops: u32,
    /// Per-hop latency in cycles.
    pub cycles_per_hop: u32,
}

impl Crossbar {
    /// The IANUS configuration: 4 cores + 1 PCU talking to 8 PIM MCs over
    /// a 32 B crossbar at the core clock.
    pub fn ianus_default() -> Self {
        Crossbar {
            ports: 8,
            link_bytes_per_cycle: 32,
            clock: Frequency::from_mhz(700),
            hops: 2,
            cycles_per_hop: 2,
        }
    }

    /// Head latency of any traversal.
    pub fn head_latency(&self) -> Duration {
        self.clock
            .cycles(u64::from(self.hops * self.cycles_per_hop))
    }

    /// Peak bandwidth of one link in GB/s.
    pub fn link_bandwidth_gbps(&self) -> f64 {
        self.link_bytes_per_cycle as f64 * self.clock.as_hz() / 1e9
    }

    /// Bisection bandwidth of the crossbar in GB/s (all ports busy).
    pub fn bisection_bandwidth_gbps(&self) -> f64 {
        self.link_bandwidth_gbps() * self.ports as f64
    }

    /// Bytes injected to deliver `bytes` to `destinations` ports by
    /// repeated unicast.
    pub fn unicast_bytes(&self, bytes: u64, destinations: u32) -> u64 {
        bytes * u64::from(destinations)
    }

    /// Bytes injected to deliver `bytes` to any number of ports by
    /// broadcast (the crossbar forks the flits; the source pays once).
    pub fn broadcast_bytes(&self, bytes: u64, _destinations: u32) -> u64 {
        bytes
    }

    /// Latency of one transfer of `bytes` under a pattern.
    ///
    /// # Panics
    ///
    /// Panics if a pattern references more ports than exist.
    pub fn transfer(&self, bytes: u64, pattern: TrafficPattern) -> Duration {
        let serialization = |b: u64| {
            self.clock
                .cycles(b.div_ceil(u64::from(self.link_bytes_per_cycle)))
        };
        match pattern {
            TrafficPattern::Unicast => self.head_latency() + serialization(bytes),
            TrafficPattern::Broadcast { destinations } => {
                assert!(destinations <= self.ports, "too many destinations");
                // Flit forking is free in a crossbar: same serialization
                // as one unicast.
                self.head_latency() + serialization(bytes)
            }
            TrafficPattern::Permutation { pairs } => {
                assert!(pairs <= self.ports, "too many pairs");
                // Disjoint pairs do not contend: latency equals one
                // unicast carrying this source's share.
                self.head_latency() + serialization(bytes.div_ceil(u64::from(pairs.max(1))))
            }
        }
    }

    /// Sustained bandwidth (GB/s) a permutation pattern achieves — the
    /// §4.3 claim that all-to-all connectivity lets every core reach any
    /// channel at full rate.
    pub fn permutation_bandwidth_gbps(&self, pairs: u32) -> f64 {
        self.link_bandwidth_gbps() * pairs.min(self.ports) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noc() -> Crossbar {
        Crossbar::ianus_default()
    }

    #[test]
    fn link_rate_covers_one_memory_channel() {
        // One 32 B/cycle link at 700 MHz = 22.4 GB/s... the crossbar's 8
        // concurrent links must cover the 256 GB/s of the memory system
        // only in aggregate with channel-side clocking; the NoC model is
        // at core clock, so check aggregate ≥ 0.7x external bandwidth and
        // that the permutation path scales linearly.
        let n = noc();
        assert!((n.link_bandwidth_gbps() - 22.4).abs() < 0.01);
        assert!(n.bisection_bandwidth_gbps() > 0.69 * 256.0);
        assert_eq!(
            n.permutation_bandwidth_gbps(4),
            4.0 * n.link_bandwidth_gbps()
        );
    }

    #[test]
    fn broadcast_saves_injection_bandwidth() {
        let n = noc();
        // The §4.3 claim: broadcasting PIM commands to all 8 MCs reduces
        // NoC bandwidth demand 8x vs unicasting.
        assert_eq!(n.unicast_bytes(64, 8), 512);
        assert_eq!(n.broadcast_bytes(64, 8), 64);
        // And broadcast latency equals a single unicast.
        assert_eq!(
            n.transfer(64, TrafficPattern::Broadcast { destinations: 8 }),
            n.transfer(64, TrafficPattern::Unicast)
        );
    }

    #[test]
    fn micro_command_delivery_fits_macro_overhead() {
        // A macro PIM op's micro stream for one tile is ~70 commands × 8 B
        // ≈ 560 B; broadcast delivery must cost well under the calibrated
        // 1.8 us macro overhead.
        let n = noc();
        let t = n.transfer(70 * 8, TrafficPattern::Broadcast { destinations: 8 });
        assert!(t.as_ns_f64() < 100.0, "{t}");
    }

    #[test]
    fn permutation_scales_and_is_bounded() {
        let n = noc();
        let one = n.transfer(4096, TrafficPattern::Permutation { pairs: 1 });
        let four = n.transfer(4096, TrafficPattern::Permutation { pairs: 4 });
        assert!(four < one);
        let ratio = (one.as_ns_f64() - n.head_latency().as_ns_f64())
            / (four.as_ns_f64() - n.head_latency().as_ns_f64());
        assert!((ratio - 4.0).abs() < 0.1, "{ratio}");
    }

    #[test]
    #[should_panic(expected = "too many destinations")]
    fn broadcast_bounds_checked() {
        let _ = noc().transfer(8, TrafficPattern::Broadcast { destinations: 9 });
    }
}
