//! Per-block operator shapes shared by all platform models.

use crate::{ModelConfig, Stage};

/// Shape of one FC layer's weights: `in_dim × out_dim` (BF16).
///
/// # Examples
///
/// ```
/// use ianus_model::FcShape;
/// let fc = FcShape::new(1536, 6144);
/// assert_eq!(fc.weight_bytes(), 1536 * 6144 * 2);
/// assert_eq!(fc.gemm_flops(512), 2 * 512 * 1536 * 6144);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FcShape {
    /// Input (reduction) dimension.
    pub in_dim: u64,
    /// Output dimension.
    pub out_dim: u64,
}

impl FcShape {
    /// Creates an FC shape.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(in_dim: u64, out_dim: u64) -> Self {
        assert!(in_dim > 0 && out_dim > 0, "degenerate FC shape");
        FcShape { in_dim, out_dim }
    }

    /// BF16 weight bytes.
    pub fn weight_bytes(&self) -> u64 {
        self.in_dim * self.out_dim * 2
    }

    /// FLOPs for `tokens` input rows.
    pub fn gemm_flops(&self, tokens: u64) -> u64 {
        2 * tokens * self.in_dim * self.out_dim
    }

    /// Restricts the output dimension to a `1/parts` column slice
    /// (column-wise intra-layer partitioning across cores/devices).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero or does not divide cleanly enough to
    /// leave a non-empty slice.
    pub fn column_slice(&self, parts: u64) -> FcShape {
        assert!(parts > 0, "parts must be positive");
        FcShape::new(self.in_dim, self.out_dim.div_ceil(parts))
    }

    /// Restricts the input dimension to a `1/parts` row slice (row-wise
    /// partitioning, used for FFN2 after a column-split FFN1).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn row_slice(&self, parts: u64) -> FcShape {
        assert!(parts > 0, "parts must be positive");
        FcShape::new(self.in_dim.div_ceil(parts), self.out_dim)
    }
}

/// Operator shape inventory of one transformer block plus the task head.
///
/// # Examples
///
/// ```
/// use ianus_model::{ModelConfig, BlockOps};
/// let ops = ModelConfig::gpt2_xl().block_ops();
/// assert_eq!(ops.qkv_fc().out_dim, 3 * 1536);
/// assert_eq!(ops.ffn1_fc().out_dim, 6144);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct BlockOps {
    embed_dim: u64,
    attn_dim: u64,
    head_dim: u64,
    heads: u64,
    ffn_dim: u64,
    vocab: u64,
}

impl BlockOps {
    /// Builds the inventory for a model.
    pub fn new(cfg: &ModelConfig) -> Self {
        BlockOps {
            embed_dim: cfg.embed_dim,
            attn_dim: cfg.attn_dim(),
            head_dim: cfg.head_dim,
            heads: cfg.heads,
            ffn_dim: cfg.ffn_dim(),
            vocab: cfg.vocab,
        }
    }

    /// Fused Q, K, V projection.
    pub fn qkv_fc(&self) -> FcShape {
        FcShape::new(self.embed_dim, 3 * self.attn_dim)
    }

    /// Q (or K, or V) projection alone — head-parallel scheduling issues
    /// these separately (Figure 7).
    pub fn q_fc(&self) -> FcShape {
        FcShape::new(self.embed_dim, self.attn_dim)
    }

    /// Per-head slice of the Q/K/V projection.
    pub fn q_fc_per_head(&self) -> FcShape {
        FcShape::new(self.embed_dim, self.head_dim)
    }

    /// Attention output projection (the "FC for Attention").
    pub fn attn_out_fc(&self) -> FcShape {
        FcShape::new(self.attn_dim, self.embed_dim)
    }

    /// First FFN layer (GELU rides on it when mapped to PIM).
    pub fn ffn1_fc(&self) -> FcShape {
        FcShape::new(self.embed_dim, self.ffn_dim)
    }

    /// Second FFN layer.
    pub fn ffn2_fc(&self) -> FcShape {
        FcShape::new(self.ffn_dim, self.embed_dim)
    }

    /// Language-model head (logits over the vocabulary).
    pub fn lm_head_fc(&self) -> FcShape {
        FcShape::new(self.embed_dim, self.vocab)
    }

    /// Number of attention heads.
    pub fn heads(&self) -> u64 {
        self.heads
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> u64 {
        self.head_dim
    }

    /// Embedding dimension.
    pub fn embed_dim(&self) -> u64 {
        self.embed_dim
    }

    /// FFN hidden dimension.
    pub fn ffn_dim(&self) -> u64 {
        self.ffn_dim
    }

    /// All FC weight bytes of one block.
    pub fn block_fc_bytes(&self) -> u64 {
        self.qkv_fc().weight_bytes()
            + self.attn_out_fc().weight_bytes()
            + self.ffn1_fc().weight_bytes()
            + self.ffn2_fc().weight_bytes()
    }

    /// FLOPs of self-attention score/value products (`QKᵀ` and `SV`) for a
    /// stage, across all heads.
    pub fn attention_flops(&self, stage: &Stage) -> u64 {
        let q = stage.batch_tokens();
        let kv = stage.attended_tokens();
        // QK^T: q×kv×d per head; SV: q×kv×d per head.
        2 * (2 * q * kv * self.head_dim) * self.heads
    }

    /// Total FLOPs of one block for a stage (FCs + attention; vector ops
    /// are negligible in FLOPs, per Figure 2).
    pub fn block_flops(&self, stage: &Stage) -> u64 {
        let t = stage.batch_tokens();
        self.qkv_fc().gemm_flops(t)
            + self.attn_out_fc().gemm_flops(t)
            + self.ffn1_fc().gemm_flops(t)
            + self.ffn2_fc().gemm_flops(t)
            + self.attention_flops(stage)
    }

    /// LM-head FLOPs for a stage (only the final/new token needs logits).
    pub fn lm_head_flops(&self, _stage: &Stage) -> u64 {
        self.lm_head_fc().gemm_flops(1)
    }

    /// Elements normalized per layer-norm invocation for a stage.
    pub fn layernorm_elems(&self, stage: &Stage) -> u64 {
        stage.batch_tokens() * self.embed_dim
    }

    /// KV-cache bytes read by attention in a generation step (previous
    /// keys and values of every head).
    pub fn kv_read_bytes(&self, stage: &Stage) -> u64 {
        match stage {
            Stage::Summarization { .. } => 0,
            Stage::Generation { past_tokens } => 2 * past_tokens * self.attn_dim * 2,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModelConfig;

    #[test]
    fn ffn_is_4x_of_qkv_single() {
        // Paper Figure 10 commentary: FFN weights are 4× the two attention
        // FCs (out-proj + one of QKV... precisely: ffn1+ffn2 = 8E² vs
        // qkv+out = 4E² when attn_dim == embed_dim).
        let ops = ModelConfig::gpt2_xl().block_ops();
        let ffn = ops.ffn1_fc().weight_bytes() + ops.ffn2_fc().weight_bytes();
        let attn = ops.attn_out_fc().weight_bytes() + ops.q_fc().weight_bytes();
        assert_eq!(ffn, 4 * attn);
    }

    #[test]
    fn per_head_slices_cover_projection() {
        let ops = ModelConfig::gpt2_m().block_ops();
        assert_eq!(
            ops.q_fc_per_head().weight_bytes() * ops.heads(),
            ops.q_fc().weight_bytes()
        );
    }

    #[test]
    fn column_and_row_slices() {
        let fc = FcShape::new(1536, 6144);
        assert_eq!(fc.column_slice(4), FcShape::new(1536, 1536));
        assert_eq!(fc.row_slice(4), FcShape::new(384, 6144));
    }

    #[test]
    fn attention_flops_grow_with_past() {
        let ops = ModelConfig::gpt2_xl().block_ops();
        let a = ops.attention_flops(&Stage::Generation { past_tokens: 64 });
        let b = ops.attention_flops(&Stage::Generation { past_tokens: 512 });
        assert!(b > 7 * a);
    }

    #[test]
    fn kv_read_bytes_zero_in_summarization() {
        let ops = ModelConfig::gpt2_xl().block_ops();
        assert_eq!(ops.kv_read_bytes(&Stage::Summarization { tokens: 512 }), 0);
        assert_eq!(
            ops.kv_read_bytes(&Stage::Generation { past_tokens: 100 }),
            2 * 100 * 1536 * 2
        );
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_fc_dim_rejected() {
        let _ = FcShape::new(0, 1);
    }
}
