//! Arithmetic-intensity / roofline analysis of transformer operators.
//!
//! Section 3 of the paper motivates IANUS from the "broad range of
//! computational intensities" in end-to-end LLM inference: summarization
//! FCs are compute-bound matrix-matrix products, generation FCs are
//! memory-bound matrix-vector products, and vector ops are negligible in
//! FLOPs yet costly in time. This module quantifies that argument: every
//! operator gets an arithmetic intensity (FLOPs per byte of off-chip
//! traffic), and a [`Platform`] (peak FLOPS + memory bandwidth) decides
//! which side of its ridge point the operator falls on.

use crate::{BlockOps, ModelConfig, Stage};

/// FLOPs-per-byte classification of one operator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpIntensity {
    /// Operator label.
    pub name: &'static str,
    /// Floating-point operations.
    pub flops: u64,
    /// Off-chip bytes the operator must move (weights, KV, activations
    /// beyond on-chip capacity).
    pub bytes: u64,
}

impl OpIntensity {
    /// FLOPs per byte.
    pub fn intensity(&self) -> f64 {
        if self.bytes == 0 {
            f64::INFINITY
        } else {
            self.flops as f64 / self.bytes as f64
        }
    }
}

/// A roofline platform: peak compute and sustained memory bandwidth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Platform {
    /// Display name.
    pub name: &'static str,
    /// Peak throughput in FLOP/s.
    pub peak_flops: f64,
    /// Sustained memory bandwidth in bytes/s.
    pub mem_bytes_per_s: f64,
}

impl Platform {
    /// The IANUS NPU against its external GDDR6 bandwidth.
    pub fn ianus_npu() -> Self {
        Platform {
            name: "IANUS NPU (external DRAM)",
            peak_flops: 183.5e12,
            mem_bytes_per_s: 256e9,
        }
    }

    /// The PIM array against its internal bandwidth.
    pub fn ianus_pim() -> Self {
        Platform {
            name: "IANUS PIM (internal)",
            peak_flops: 4.096e12,
            mem_bytes_per_s: 4096e9,
        }
    }

    /// An A100 (BF16 tensor cores, HBM2e).
    pub fn a100() -> Self {
        Platform {
            name: "A100",
            peak_flops: 255e12,
            mem_bytes_per_s: 2039e9,
        }
    }

    /// Intensity at which compute and memory time are equal.
    pub fn ridge_point(&self) -> f64 {
        self.peak_flops / self.mem_bytes_per_s
    }

    /// Whether an operator is memory-bound on this platform.
    pub fn memory_bound(&self, op: &OpIntensity) -> bool {
        op.intensity() < self.ridge_point()
    }

    /// Attainable FLOP/s for an operator (the roofline).
    pub fn attainable_flops(&self, op: &OpIntensity) -> f64 {
        self.peak_flops.min(op.intensity() * self.mem_bytes_per_s)
    }
}

/// Intensities of one decoder block's operators for a stage.
pub fn block_intensities(ops: &BlockOps, stage: &Stage) -> Vec<OpIntensity> {
    let t = stage.batch_tokens();
    let act = |elems: u64| elems * 2; // BF16 activations
    vec![
        OpIntensity {
            name: "FC (QKV)",
            flops: ops.qkv_fc().gemm_flops(t),
            bytes: ops.qkv_fc().weight_bytes() + act(t * ops.embed_dim() * 4),
        },
        OpIntensity {
            name: "attention (QK^T + SV)",
            flops: ops.attention_flops(stage),
            bytes: ops.kv_read_bytes(stage) + act(2 * t * ops.embed_dim()),
        },
        OpIntensity {
            name: "FC (attn out)",
            flops: ops.attn_out_fc().gemm_flops(t),
            bytes: ops.attn_out_fc().weight_bytes() + act(2 * t * ops.embed_dim()),
        },
        OpIntensity {
            name: "FFN",
            flops: ops.ffn1_fc().gemm_flops(t) + ops.ffn2_fc().gemm_flops(t),
            bytes: ops.ffn1_fc().weight_bytes()
                + ops.ffn2_fc().weight_bytes()
                + act(2 * t * ops.embed_dim()),
        },
        OpIntensity {
            name: "layer norm + residual",
            flops: 8 * ops.layernorm_elems(stage),
            bytes: act(4 * t * ops.embed_dim()),
        },
    ]
}

/// The whole-stage intensity of a model (Section 3.1's aggregate view).
pub fn stage_intensity(model: &ModelConfig, stage: &Stage) -> OpIntensity {
    let ops = model.block_ops();
    let per_block = block_intensities(&ops, stage);
    let flops: u64 = per_block.iter().map(|o| o.flops).sum::<u64>() * model.blocks;
    let bytes: u64 = per_block.iter().map(|o| o.bytes).sum::<u64>() * model.blocks;
    OpIntensity {
        name: "whole stage",
        flops,
        bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_fcs_memory_bound_everywhere() {
        // The core motivation: a matrix-vector FC has intensity ≈ 2
        // FLOPs/byte — memory-bound on every platform in the paper.
        let ops = ModelConfig::gpt2_xl().block_ops();
        let gen = Stage::Generation { past_tokens: 256 };
        for op in block_intensities(&ops, &gen) {
            if op.name.starts_with("FC") || op.name == "FFN" {
                assert!(op.intensity() < 3.0, "{}: {}", op.name, op.intensity());
                assert!(Platform::a100().memory_bound(&op));
                assert!(Platform::ianus_npu().memory_bound(&op));
            }
        }
    }

    #[test]
    fn summarization_fcs_cross_the_a100_ridge() {
        let ops = ModelConfig::gpt2_xl().block_ops();
        let summ = Stage::Summarization { tokens: 512 };
        let ffn = block_intensities(&ops, &summ)
            .into_iter()
            .find(|o| o.name == "FFN")
            .unwrap();
        // ~512 tokens of reuse per weight byte: intensity ≈ 400+.
        assert!(ffn.intensity() > 300.0, "{}", ffn.intensity());
        // Compute-bound on the A100 (ridge ≈ 125)…
        assert!(!Platform::a100().memory_bound(&ffn));
        // …but still under the NPU's high ridge (184 TFLOPS on 256 GB/s
        // puts it at ≈ 717 FLOPs/byte): even 512-token prefill streams
        // weights at full external bandwidth on IANUS.
        assert!(Platform::ianus_npu().memory_bound(&ffn));
    }

    #[test]
    fn pim_ridge_point_matches_gemv() {
        // PIM's ridge point (1 FLOP/byte) sits right at GEMV intensity:
        // the definition of a domain-specific memory for this workload.
        let pim = Platform::ianus_pim();
        assert!((pim.ridge_point() - 1.0).abs() < 0.01);
        let ops = ModelConfig::gpt2_m().block_ops();
        let gen = Stage::Generation { past_tokens: 128 };
        let ffn = block_intensities(&ops, &gen)
            .into_iter()
            .find(|o| o.name == "FFN")
            .unwrap();
        // PIM attains ~its peak on generation FCs; the NPU attains ~1%.
        let pim_frac = pim.attainable_flops(&ffn) / pim.peak_flops;
        let npu = Platform::ianus_npu();
        let npu_frac = npu.attainable_flops(&ffn) / npu.peak_flops;
        assert!(pim_frac > 0.9, "{pim_frac}");
        assert!(npu_frac < 0.01, "{npu_frac}");
    }

    #[test]
    fn vector_ops_negligible_flops() {
        // Figure 2: LN + residual < 0.06% of FLOPs.
        let m = ModelConfig::gpt2_xl();
        let gen = Stage::Generation { past_tokens: 512 };
        let per_block = block_intensities(&m.block_ops(), &gen);
        let ln = per_block
            .iter()
            .find(|o| o.name.starts_with("layer"))
            .unwrap();
        let total: u64 = per_block.iter().map(|o| o.flops).sum();
        assert!((ln.flops as f64 / total as f64) < 6e-4);
    }

    #[test]
    fn stage_intensity_ratio_matches_section31() {
        // Summarizing 512 tokens has ~512x the intensity of generating.
        let m = ModelConfig::gpt2_xl();
        let s = stage_intensity(&m, &Stage::Summarization { tokens: 512 });
        let g = stage_intensity(&m, &Stage::Generation { past_tokens: 512 });
        let ratio = s.intensity() / g.intensity();
        assert!(ratio > 100.0 && ratio < 700.0, "{ratio}");
    }
}
