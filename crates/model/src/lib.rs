//! Transformer model configurations and operator shape math.
//!
//! This crate is the workload layer of the IANUS reproduction: the model
//! zoo of the paper's Tables 3 and 4 ([`ModelConfig`] presets for GPT-2
//! M/L/XL/2.5B, BERT B/L/1.3B/3.9B and GPT 6.7B/13B/30B), the
//! summarization/generation [`Stage`] split of NLP inference, and the
//! per-decoder-block operator inventory ([`BlockOps`]) with exact shapes,
//! FLOP counts and BF16 byte sizes.
//!
//! It is deliberately *policy-free*: both the IANUS compiler (`ianus-core`)
//! and the GPU/DFX baselines (`ianus-baselines`) consume the same shapes,
//! so performance differences come from the platform models, never from
//! diverging workload definitions.
//!
//! # Examples
//!
//! ```
//! use ianus_model::{ModelConfig, Stage};
//!
//! let xl = ModelConfig::gpt2_xl();
//! assert_eq!(xl.blocks, 48);
//! // Table 3 claims 1.5B parameters.
//! assert!((xl.param_count() as f64 / 1.5e9 - 1.0).abs() < 0.05);
//! // ~91% of GPT-2 parameters are FC weights shared between NPU and PIM.
//! assert!(xl.fc_param_fraction() > 0.88);
//!
//! let gen = Stage::Generation { past_tokens: 128 };
//! assert!(xl.stage_flops(&gen) < xl.stage_flops(&Stage::Summarization { tokens: 128 }));
//! ```

mod configs;
mod ops;
pub mod roofline;
mod stage;

pub use configs::{ModelConfig, ModelFamily, Workload};
pub use ops::{BlockOps, FcShape};
pub use stage::{RequestShape, Stage};
