//! Inference stages and request shapes (paper Section 2.1).

/// One execution phase of transformer inference.
///
/// Summarization processes all input tokens at once (matrix-matrix FCs);
/// each generation step processes one new token against the KV cache
/// (matrix-vector FCs) — the paper's central workload dichotomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Prefill over `tokens` input tokens.
    Summarization {
        /// Number of input tokens processed together.
        tokens: u64,
    },
    /// One decode step with `past_tokens` already in the KV cache (the
    /// new token attends to `past_tokens + 1` positions).
    Generation {
        /// Tokens already generated/summarized before this step.
        past_tokens: u64,
    },
}

impl Stage {
    /// Tokens processed concurrently in this stage (the GEMM `m`).
    pub fn batch_tokens(&self) -> u64 {
        match self {
            Stage::Summarization { tokens } => *tokens,
            Stage::Generation { .. } => 1,
        }
    }

    /// Sequence length visible to attention in this stage.
    pub fn attended_tokens(&self) -> u64 {
        match self {
            Stage::Summarization { tokens } => *tokens,
            Stage::Generation { past_tokens } => past_tokens + 1,
        }
    }

    /// Whether this is a generation step.
    pub fn is_generation(&self) -> bool {
        matches!(self, Stage::Generation { .. })
    }
}

/// An end-to-end request: `input` tokens summarized, then `output` tokens
/// generated — the `(input, output)` pairs of Figures 8/9.
///
/// # Examples
///
/// ```
/// use ianus_model::{RequestShape, Stage};
/// let req = RequestShape::new(128, 3);
/// let stages: Vec<Stage> = req.stages().collect();
/// assert_eq!(stages.len(), 3); // prefill + 2 more decode steps
/// assert_eq!(stages[0], Stage::Summarization { tokens: 128 });
/// assert_eq!(stages[1], Stage::Generation { past_tokens: 128 });
/// assert_eq!(stages[2], Stage::Generation { past_tokens: 129 });
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RequestShape {
    /// Input (prompt) tokens.
    pub input: u64,
    /// Output tokens produced. The first output token comes from the
    /// summarization stage itself (as in DFX/the paper), so a request
    /// runs `output - 1` generation steps.
    pub output: u64,
}

impl RequestShape {
    /// Creates a request shape.
    ///
    /// # Panics
    ///
    /// Panics if `input` or `output` is zero.
    pub fn new(input: u64, output: u64) -> Self {
        assert!(input > 0 && output > 0, "degenerate request");
        RequestShape { input, output }
    }

    /// Number of generation steps executed.
    ///
    /// Saturating: the fields are `pub`, so a struct-literal
    /// `output: 0` can bypass [`RequestShape::new`]'s assert; such a
    /// degenerate request runs zero steps instead of wrapping to
    /// `u64::MAX` in release builds.
    pub fn generation_steps(&self) -> u64 {
        self.output.saturating_sub(1)
    }

    /// Total tokens resident in the KV cache when the request completes:
    /// `input + output − 1` (the last generated token is sampled but
    /// never attended to). Saturating against struct-literal zeros, like
    /// [`Self::generation_steps`].
    pub fn total_tokens(&self) -> u64 {
        self.input.saturating_add(self.output.saturating_sub(1))
    }

    /// Iterates every stage of the request in execution order.
    pub fn stages(&self) -> impl Iterator<Item = Stage> + '_ {
        let input = self.input;
        std::iter::once(Stage::Summarization { tokens: input }).chain(
            (0..self.generation_steps()).map(move |i| Stage::Generation {
                past_tokens: input + i,
            }),
        )
    }

    /// The Figure 8 sweep: inputs {128, 256, 512} × outputs {1, 8, 64, 512}.
    pub fn figure8_sweep() -> Vec<RequestShape> {
        let mut v = Vec::new();
        for input in [128u64, 256, 512] {
            for output in [1u64, 8, 64, 512] {
                v.push(RequestShape::new(input, output));
            }
        }
        v
    }

    /// The Figure 9 sweep: inputs {32, 64, 128} × outputs {1, 16, 256}.
    pub fn figure9_sweep() -> Vec<RequestShape> {
        let mut v = Vec::new();
        for input in [32u64, 64, 128] {
            for output in [1u64, 16, 256] {
                v.push(RequestShape::new(input, output));
            }
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_token_accounting() {
        let s = Stage::Summarization { tokens: 256 };
        assert_eq!(s.batch_tokens(), 256);
        assert_eq!(s.attended_tokens(), 256);
        let g = Stage::Generation { past_tokens: 256 };
        assert_eq!(g.batch_tokens(), 1);
        assert_eq!(g.attended_tokens(), 257);
        assert!(g.is_generation() && !s.is_generation());
    }

    #[test]
    fn single_output_has_no_generation() {
        let req = RequestShape::new(128, 1);
        assert_eq!(req.stages().count(), 1);
        assert_eq!(req.generation_steps(), 0);
    }

    #[test]
    fn sweeps_have_paper_sizes() {
        assert_eq!(RequestShape::figure8_sweep().len(), 12);
        assert_eq!(RequestShape::figure9_sweep().len(), 9);
    }

    #[test]
    fn past_tokens_grow_monotonically() {
        let req = RequestShape::new(64, 16);
        let pasts: Vec<u64> = req
            .stages()
            .filter_map(|s| match s {
                Stage::Generation { past_tokens } => Some(past_tokens),
                _ => None,
            })
            .collect();
        assert_eq!(pasts.len(), 15);
        assert_eq!(pasts[0], 64);
        assert_eq!(*pasts.last().unwrap(), 78);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn zero_output_rejected() {
        let _ = RequestShape::new(8, 0);
    }

    #[test]
    fn struct_literal_zero_output_saturates() {
        // Regression: the fields are `pub`, so `output: 0` can bypass
        // `new()`'s assert. `generation_steps` must not wrap to
        // `u64::MAX` (a near-infinite loop in request execution) and
        // `stages()` must yield only the summarization stage.
        let rogue = RequestShape {
            input: 8,
            output: 0,
        };
        assert_eq!(rogue.generation_steps(), 0);
        assert_eq!(rogue.total_tokens(), 8);
        assert_eq!(rogue.stages().count(), 1);
        // Even both-zero literals stay finite.
        let degenerate = RequestShape {
            input: 0,
            output: 0,
        };
        assert_eq!(degenerate.generation_steps(), 0);
        assert_eq!(degenerate.total_tokens(), 0);
    }

    #[test]
    fn total_tokens_counts_attended_positions() {
        assert_eq!(RequestShape::new(128, 1).total_tokens(), 128);
        assert_eq!(RequestShape::new(128, 64).total_tokens(), 191);
    }
}
