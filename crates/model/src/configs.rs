//! Model zoo (paper Tables 3 and 4).

use crate::{BlockOps, Stage};

/// Transformer family — decides whether a generation stage exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelFamily {
    /// Decoder-only (GPT): summarization then token-by-token generation.
    Gpt,
    /// Encoder-only (BERT): summarization only.
    Bert,
}

/// Evaluation workload attached to a model in Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Workload {
    /// Language modelling (GPT text generation).
    LanguageModeling,
    /// Question answering (BERT).
    QuestionAnswering,
}

/// A transformer configuration (one row of Table 3 or Table 4).
///
/// # Examples
///
/// ```
/// use ianus_model::ModelConfig;
/// let m = ModelConfig::gpt2_m();
/// assert_eq!((m.embed_dim, m.head_dim, m.heads, m.blocks), (1024, 64, 16, 24));
/// assert_eq!(m.ffn_dim(), 4096);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Display name, e.g. `"GPT-2 XL"`.
    pub name: &'static str,
    /// Family (GPT or BERT).
    pub family: ModelFamily,
    /// Evaluation workload.
    pub workload: Workload,
    /// Embedding dimension.
    pub embed_dim: u64,
    /// Per-head dimension.
    pub head_dim: u64,
    /// Attention heads per block.
    pub heads: u64,
    /// Decoder/encoder blocks.
    pub blocks: u64,
    /// Vocabulary size (LM head width).
    pub vocab: u64,
    /// Maximum sequence length (positional table size).
    pub max_seq: u64,
}

impl ModelConfig {
    const fn gpt(
        name: &'static str,
        embed_dim: u64,
        head_dim: u64,
        heads: u64,
        blocks: u64,
    ) -> Self {
        ModelConfig {
            name,
            family: ModelFamily::Gpt,
            workload: Workload::LanguageModeling,
            embed_dim,
            head_dim,
            heads,
            blocks,
            vocab: 50257,
            max_seq: 1024,
        }
    }

    const fn bert(
        name: &'static str,
        embed_dim: u64,
        head_dim: u64,
        heads: u64,
        blocks: u64,
    ) -> Self {
        ModelConfig {
            name,
            family: ModelFamily::Bert,
            workload: Workload::QuestionAnswering,
            embed_dim,
            head_dim,
            heads,
            blocks,
            vocab: 30522,
            max_seq: 512,
        }
    }

    /// GPT-2 M (345M), Table 3.
    pub const fn gpt2_m() -> Self {
        Self::gpt("GPT-2 M", 1024, 64, 16, 24)
    }
    /// GPT-2 L (762M), Table 3.
    pub const fn gpt2_l() -> Self {
        Self::gpt("GPT-2 L", 1280, 64, 20, 36)
    }
    /// GPT-2 XL (1.5B) with heads reduced 25 → 24 as in the paper/DFX.
    pub const fn gpt2_xl() -> Self {
        Self::gpt("GPT-2 XL", 1536, 64, 24, 48)
    }
    /// GPT-2 2.5B, Table 3 (head dimension 96).
    pub const fn gpt2_2_5b() -> Self {
        Self::gpt("GPT-2 2.5B", 1920, 96, 20, 54)
    }
    /// BERT Base (110M), Table 3.
    pub const fn bert_b() -> Self {
        Self::bert("BERT-B", 768, 64, 12, 12)
    }
    /// BERT Large (340M), Table 3.
    pub const fn bert_l() -> Self {
        Self::bert("BERT-L", 1024, 64, 16, 24)
    }
    /// BERT 1.3B, Table 3.
    pub const fn bert_1_3b() -> Self {
        Self::bert("BERT-1.3B", 2048, 64, 32, 24)
    }
    /// BERT 3.9B, Table 3.
    pub const fn bert_3_9b() -> Self {
        Self::bert("BERT-3.9B", 2560, 64, 40, 48)
    }
    /// GPT 6.7B, Table 4 (scalability study).
    pub const fn gpt_6_7b() -> Self {
        Self::gpt("GPT 6.7B", 4096, 128, 32, 32)
    }
    /// GPT 13B, Table 4.
    pub const fn gpt_13b() -> Self {
        Self::gpt("GPT 13B", 5120, 128, 40, 40)
    }
    /// GPT 30B, Table 4.
    pub const fn gpt_30b() -> Self {
        Self::gpt("GPT 30B", 7168, 128, 56, 48)
    }

    /// The four GPT-2 models of Figures 8/11/12/13.
    pub fn gpt2_family() -> [ModelConfig; 4] {
        [
            Self::gpt2_m(),
            Self::gpt2_l(),
            Self::gpt2_xl(),
            Self::gpt2_2_5b(),
        ]
    }

    /// The four BERT models of Figure 14.
    pub fn bert_family() -> [ModelConfig; 4] {
        [
            Self::bert_b(),
            Self::bert_l(),
            Self::bert_1_3b(),
            Self::bert_3_9b(),
        ]
    }

    /// The three larger GPT models of Table 4 / Figure 17.
    pub fn large_gpt_family() -> [ModelConfig; 3] {
        [Self::gpt_6_7b(), Self::gpt_13b(), Self::gpt_30b()]
    }

    /// Every model configuration in the zoo.
    pub fn all() -> Vec<ModelConfig> {
        let mut v = Vec::new();
        v.extend(Self::gpt2_family());
        v.extend(Self::bert_family());
        v.extend(Self::large_gpt_family());
        v
    }

    /// Looks a model up by (case-insensitive) name, accepting both
    /// `"GPT-2 XL"` and shorthand like `"gpt2-xl"`.
    pub fn by_name(name: &str) -> Option<ModelConfig> {
        let norm = |s: &str| -> String {
            s.chars()
                .filter(|c| c.is_ascii_alphanumeric() || *c == '.')
                .collect::<String>()
                .to_ascii_lowercase()
        };
        let wanted = norm(name);
        Self::all().into_iter().find(|m| norm(m.name) == wanted)
    }

    /// FFN hidden dimension (4× embedding, as in GPT-2/BERT).
    pub fn ffn_dim(&self) -> u64 {
        4 * self.embed_dim
    }

    /// Attention width (heads × head dim; equals `embed_dim` for Table 3
    /// models except GPT-2 2.5B where 20×96 = 1920 as well).
    pub fn attn_dim(&self) -> u64 {
        self.heads * self.head_dim
    }

    /// Shape helpers for one block and the task head.
    pub fn block_ops(&self) -> BlockOps {
        BlockOps::new(self)
    }

    /// Total parameters (FC weights + biases + embeddings + LN).
    pub fn param_count(&self) -> u64 {
        let e = self.embed_dim;
        let a = self.attn_dim();
        let f = self.ffn_dim();
        // Per block: QKV (E×3A) + out (A×E) + FFN (E×F + F×E) + biases +
        // 2 layer norms.
        let per_block = e * 3 * a + a * e + e * f + f * e + (3 * a + e + f + e) + 4 * e;
        let embeddings = self.vocab * e + self.max_seq * e;
        per_block * self.blocks + embeddings + 2 * e
    }

    /// BF16 bytes of all parameters.
    pub fn param_bytes(&self) -> u64 {
        self.param_count() * 2
    }

    /// Parameters belonging to block FC layers (shared between NPU and
    /// PIM). The LM head is weight-tied to the token embedding and is not
    /// double-counted here.
    pub fn fc_param_count(&self) -> u64 {
        let e = self.embed_dim;
        let a = self.attn_dim();
        let f = self.ffn_dim();
        (e * 3 * a + a * e + e * f + f * e) * self.blocks
    }

    /// Fraction of parameters in FC layers — the paper's ≈ 91% for GPT-2,
    /// motivating the unified memory system.
    pub fn fc_param_fraction(&self) -> f64 {
        self.fc_param_count() as f64 / self.param_count() as f64
    }

    /// KV-cache bytes per token across all blocks (BF16 K and V).
    pub fn kv_bytes_per_token(&self) -> u64 {
        2 * self.attn_dim() * 2 * self.blocks
    }

    /// FLOPs of one full stage (all blocks + LM head where applicable).
    pub fn stage_flops(&self, stage: &Stage) -> u64 {
        let ops = self.block_ops();
        let per_block = ops.block_flops(stage);
        let head = match self.family {
            ModelFamily::Gpt => ops.lm_head_flops(stage),
            ModelFamily::Bert => 0,
        };
        per_block * self.blocks + head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn param_counts_match_table3() {
        // (model, paper count, tolerance)
        let cases = [
            (ModelConfig::gpt2_m(), 345e6, 0.06),
            (ModelConfig::gpt2_l(), 762e6, 0.06),
            (ModelConfig::gpt2_xl(), 1.5e9, 0.06),
            (ModelConfig::gpt2_2_5b(), 2.5e9, 0.08),
            (ModelConfig::bert_b(), 110e6, 0.06),
            (ModelConfig::bert_l(), 340e6, 0.06),
            (ModelConfig::bert_1_3b(), 1.3e9, 0.06),
            (ModelConfig::bert_3_9b(), 3.9e9, 0.06),
            (ModelConfig::gpt_6_7b(), 6.7e9, 0.06),
            (ModelConfig::gpt_13b(), 13e9, 0.06),
            (ModelConfig::gpt_30b(), 30e9, 0.06),
        ];
        for (m, want, tol) in cases {
            let got = m.param_count() as f64;
            let rel = (got / want - 1.0).abs();
            assert!(rel < tol, "{}: got {got:.3e}, paper {want:.3e}", m.name);
        }
    }

    #[test]
    fn fc_fraction_matches_paper_91_percent() {
        // "about 90% of model parameters shared between the NPU and PIM";
        // GPT-2 L lands on the quoted 91%, and the family spans 85–95%.
        let frac = ModelConfig::gpt2_l().fc_param_fraction();
        assert!((frac - 0.91).abs() < 0.02, "fraction {frac}");
        for m in ModelConfig::gpt2_family() {
            let f = m.fc_param_fraction();
            assert!(f > 0.82 && f < 0.97, "{}: {f}", m.name);
        }
    }

    #[test]
    fn gpt2_fits_unified_but_2_5b_not_partitioned() {
        // Section 6.2: in a 4+4 GB partitioned system the 2.5B model's FC
        // parameters cannot be fully duplicated.
        let m = ModelConfig::gpt2_2_5b();
        let fc_bytes = m.fc_param_count() * 2;
        assert!(m.param_bytes() < 8 << 30);
        assert!(fc_bytes > 4 << 30);
        let xl = ModelConfig::gpt2_xl();
        assert!(xl.fc_param_count() * 2 < 4 << 30);
    }

    #[test]
    fn attn_dim_equals_embed_for_table3() {
        for m in ModelConfig::gpt2_family() {
            assert_eq!(m.attn_dim(), m.embed_dim, "{}", m.name);
        }
        for m in ModelConfig::bert_family() {
            assert_eq!(m.attn_dim(), m.embed_dim, "{}", m.name);
        }
    }

    #[test]
    fn kv_cache_scale() {
        // GPT-2 XL: 2 × 1536 × 2 B × 48 = 294912 B/token.
        assert_eq!(ModelConfig::gpt2_xl().kv_bytes_per_token(), 294_912);
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(
            ModelConfig::by_name("gpt2-xl").map(|m| m.name),
            Some("GPT-2 XL")
        );
        assert_eq!(
            ModelConfig::by_name("BERT-1.3B").map(|m| m.name),
            Some("BERT-1.3B")
        );
        assert_eq!(
            ModelConfig::by_name("GPT 30B").map(|m| m.name),
            Some("GPT 30B")
        );
        assert!(ModelConfig::by_name("llama-7b").is_none());
        assert_eq!(ModelConfig::all().len(), 11);
    }

    #[test]
    fn generation_flops_much_smaller() {
        // Paper Section 3.1: generating with 512 past tokens needs ~512×
        // fewer FLOPs than summarizing 512 tokens.
        let m = ModelConfig::gpt2_xl();
        let s = m.stage_flops(&Stage::Summarization { tokens: 512 });
        let g = m.stage_flops(&Stage::Generation { past_tokens: 512 });
        let ratio = s as f64 / g as f64;
        assert!(ratio > 300.0 && ratio < 600.0, "ratio {ratio}");
    }
}
