//! Functional validation of the PIM-offloaded decoder (the repo's
//! substitute for the paper's FPGA prototype, Section 6.3).
//!
//! The paper validates IANUS functionally by running pretrained GPT-2
//! through a real-AiM prototype and matching full-precision perplexity.
//! Without pretrained weights, we validate the same property — *offloading
//! FCs to the PIM datapath does not corrupt the computation* — by running
//! a decoder block with deterministic synthetic weights through the BF16
//! PIM functional model ([`ianus_pim::functional`]) and comparing against
//! an f32 reference implementation, layer by layer.

use ianus_pim::functional::{gemv_bf16, gemv_reference, Bf16};
use ianus_pim::PimConfig;

/// A tiny decoder-block configuration for functional validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FunctionalConfig {
    /// Embedding dimension.
    pub embed_dim: usize,
    /// FFN hidden dimension.
    pub ffn_dim: usize,
    /// RNG seed for synthetic weights.
    pub seed: u64,
}

impl Default for FunctionalConfig {
    fn default() -> Self {
        FunctionalConfig {
            embed_dim: 256,
            ffn_dim: 1024,
            seed: 0xA1A2_A3A4,
        }
    }
}

/// Result of a functional comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FunctionalReport {
    /// Largest relative error of the PIM BF16 path against f32.
    pub max_rel_error: f64,
    /// Root-mean-square relative error.
    pub rms_rel_error: f64,
    /// Output elements compared.
    pub elements: usize,
}

impl FunctionalReport {
    /// Whether errors are within BF16 expectations (the prototype's
    /// "similar perplexity" criterion translated to activations).
    pub fn passes(&self) -> bool {
        self.max_rel_error < 0.05 && self.rms_rel_error < 0.01
    }
}

fn lcg(seed: &mut u64) -> f32 {
    *seed = seed
        .wrapping_mul(6364136223846793005)
        .wrapping_add(1442695040888963407);
    ((*seed >> 33) as f32 / (1u64 << 31) as f32) - 0.5
}

fn layer_norm(x: &[f32]) -> Vec<f32> {
    let n = x.len() as f32;
    let mean = x.iter().sum::<f32>() / n;
    let var = x.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    let inv = 1.0 / (var + 1e-5).sqrt();
    x.iter().map(|v| (v - mean) * inv).collect()
}

/// Runs one decoder block's FC chain (QKV-style projection, output
/// projection, FFN1 + GELU, FFN2, with layer norms and residuals in f32 on
/// the "vector unit") through the PIM BF16 datapath and through an f32
/// reference, returning the comparison.
///
/// # Examples
///
/// ```
/// use ianus_core::functional::{run_decoder_validation, FunctionalConfig};
/// let report = run_decoder_validation(FunctionalConfig::default());
/// assert!(report.passes(), "max {} rms {}", report.max_rel_error, report.rms_rel_error);
/// ```
pub fn run_decoder_validation(cfg: FunctionalConfig) -> FunctionalReport {
    let pim = PimConfig::ianus_default();
    let e = cfg.embed_dim;
    let f = cfg.ffn_dim;
    let mut seed = cfg.seed;
    // Small weights keep activations in BF16's comfortable range, like
    // trained transformer weights do.
    let scale = 1.0 / (e as f32).sqrt();
    let w_attn: Vec<f32> = (0..e * e).map(|_| lcg(&mut seed) * scale).collect();
    let w_proj: Vec<f32> = (0..e * e).map(|_| lcg(&mut seed) * scale).collect();
    let w_ffn1: Vec<f32> = (0..f * e).map(|_| lcg(&mut seed) * scale).collect();
    let w_ffn2: Vec<f32> = (0..e * f)
        .map(|_| lcg(&mut seed) * (1.0 / (f as f32).sqrt()))
        .collect();
    let x0: Vec<f32> = (0..e).map(|_| lcg(&mut seed)).collect();

    // f32 reference chain.
    let r_ln1 = layer_norm(&x0);
    let r_attn = gemv_reference(&w_attn, e, e, &r_ln1, false);
    let r_proj = gemv_reference(&w_proj, e, e, &r_attn, false);
    let r_res1: Vec<f32> = r_proj.iter().zip(&x0).map(|(a, b)| a + b).collect();
    let r_ln2 = layer_norm(&r_res1);
    let r_ffn1 = gemv_reference(&w_ffn1, f, e, &r_ln2, true);
    let r_ffn2 = gemv_reference(&w_ffn2, e, f, &r_ffn1, false);
    let r_out: Vec<f32> = r_ffn2.iter().zip(&r_res1).map(|(a, b)| a + b).collect();

    // PIM BF16 chain: FCs through the tiled BF16 GEMV; norms/residuals in
    // f32 like the NPU vector unit (which computes in higher precision).
    let q = |v: &[f32]| -> Vec<Bf16> { v.iter().map(|&x| Bf16::from_f32(x)).collect() };
    let dq = |v: &[Bf16]| -> Vec<f32> { v.iter().map(|x| x.to_f32()).collect() };
    let p_ln1 = layer_norm(&x0);
    let p_attn = dq(&gemv_bf16(&pim, &q(&w_attn), e, e, &q(&p_ln1), false));
    let p_proj = dq(&gemv_bf16(&pim, &q(&w_proj), e, e, &q(&p_attn), false));
    let p_res1: Vec<f32> = p_proj.iter().zip(&x0).map(|(a, b)| a + b).collect();
    let p_ln2 = layer_norm(&p_res1);
    let p_ffn1 = dq(&gemv_bf16(&pim, &q(&w_ffn1), f, e, &q(&p_ln2), true));
    let p_ffn2 = dq(&gemv_bf16(&pim, &q(&w_ffn2), e, f, &q(&p_ffn1), false));
    let p_out: Vec<f32> = p_ffn2.iter().zip(&p_res1).map(|(a, b)| a + b).collect();

    // Relative error against the typical activation magnitude.
    let denom = (r_out.iter().map(|v| v * v).sum::<f32>() / r_out.len() as f32)
        .sqrt()
        .max(1e-6);
    let mut max_rel = 0.0f64;
    let mut sum_sq = 0.0f64;
    for (p, r) in p_out.iter().zip(&r_out) {
        let rel = ((p - r).abs() / denom) as f64;
        max_rel = max_rel.max(rel);
        sum_sq += rel * rel;
    }
    FunctionalReport {
        max_rel_error: max_rel,
        rms_rel_error: (sum_sq / r_out.len() as f64).sqrt(),
        elements: r_out.len(),
    }
}

/// Configuration of the tiny end-to-end decode validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TinyGptConfig {
    /// Embedding dimension (must be a multiple of `heads`).
    pub embed_dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Decoder blocks.
    pub blocks: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Greedy-decode steps to run.
    pub steps: usize,
    /// RNG seed for weights and prompt.
    pub seed: u64,
}

impl Default for TinyGptConfig {
    fn default() -> Self {
        TinyGptConfig {
            embed_dim: 64,
            heads: 2,
            blocks: 2,
            vocab: 97,
            steps: 12,
            seed: 0xC0FFEE,
        }
    }
}

/// Result of the end-to-end decode comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeReport {
    /// Tokens produced by the f32 reference decoder.
    pub reference: Vec<usize>,
    /// Tokens produced with FC layers + GELU routed through the PIM BF16
    /// datapath.
    pub pim: Vec<usize>,
}

impl DecodeReport {
    /// Fraction of steps where both decoders chose the same token.
    pub fn agreement(&self) -> f64 {
        let same = self
            .reference
            .iter()
            .zip(&self.pim)
            .filter(|(a, b)| a == b)
            .count();
        same as f64 / self.reference.len() as f64
    }
}

struct TinyWeights {
    wq: Vec<f32>,
    wk: Vec<f32>,
    wv: Vec<f32>,
    wo: Vec<f32>,
    w1: Vec<f32>,
    w2: Vec<f32>,
}

/// Runs greedy decoding through a tiny GPT twice — an f32 reference, and
/// a path where every FC (QKV, output projection, FFN1+GELU, FFN2, LM
/// head) executes through the PIM BF16 tile datapath — and compares the
/// generated token sequences. Attention products, softmax, norms and
/// residuals run in f32 in both paths (they live on the NPU vector/matrix
/// units, which compute at higher precision).
///
/// This is the repo's analogue of the paper's FPGA-prototype validation:
/// the offloaded datapath must not change what the model *generates*.
///
/// # Examples
///
/// ```
/// use ianus_core::functional::{run_tiny_gpt_decode, TinyGptConfig};
/// let report = run_tiny_gpt_decode(TinyGptConfig::default());
/// assert!(report.agreement() >= 0.9, "{report:?}");
/// ```
pub fn run_tiny_gpt_decode(cfg: TinyGptConfig) -> DecodeReport {
    assert!(
        cfg.embed_dim.is_multiple_of(cfg.heads),
        "heads must divide embed_dim"
    );
    let e = cfg.embed_dim;
    let dh = e / cfg.heads;
    let f = 4 * e;
    let mut seed = cfg.seed;
    let scale = 1.0 / (e as f32).sqrt();
    let mut mk = |n: usize, s: f32| -> Vec<f32> { (0..n).map(|_| lcg(&mut seed) * s).collect() };
    let blocks: Vec<TinyWeights> = (0..cfg.blocks)
        .map(|_| TinyWeights {
            wq: mk(e * e, scale),
            wk: mk(e * e, scale),
            wv: mk(e * e, scale),
            wo: mk(e * e, scale),
            w1: mk(f * e, scale),
            w2: mk(e * f, 1.0 / (f as f32).sqrt()),
        })
        .collect();
    let embed: Vec<f32> = mk(cfg.vocab * e, 1.0);
    let prompt: Vec<usize> = (0..4)
        .map(|_| (lcg(&mut seed).abs() * 1e4) as usize % cfg.vocab)
        .collect();

    let pim_cfg = PimConfig::ianus_default();
    let q = |v: &[f32]| -> Vec<Bf16> { v.iter().map(|&x| Bf16::from_f32(x)).collect() };
    // FC evaluator: reference or PIM BF16 path.
    let fc =
        |use_pim: bool, w: &[f32], rows: usize, cols: usize, x: &[f32], gelu: bool| -> Vec<f32> {
            if use_pim {
                gemv_bf16(&pim_cfg, &q(w), rows, cols, &q(x), gelu)
                    .iter()
                    .map(|v| v.to_f32())
                    .collect()
            } else {
                gemv_reference(w, rows, cols, x, gelu)
            }
        };

    let decode = |use_pim: bool| -> Vec<usize> {
        let mut tokens = prompt.clone();
        // Per-block KV cache of f32 keys/values.
        let mut kcache: Vec<Vec<Vec<f32>>> = vec![Vec::new(); cfg.blocks];
        let mut vcache: Vec<Vec<Vec<f32>>> = vec![Vec::new(); cfg.blocks];
        let mut out_tokens = Vec::new();
        for step in 0..prompt.len() + cfg.steps - 1 {
            let tok = tokens[step.min(tokens.len() - 1)];
            let mut x: Vec<f32> = embed[tok * e..(tok + 1) * e].to_vec();
            for (b, w) in blocks.iter().enumerate() {
                let ln1 = layer_norm(&x);
                let qv = fc(use_pim, &w.wq, e, e, &ln1, false);
                let kv = fc(use_pim, &w.wk, e, e, &ln1, false);
                let vv = fc(use_pim, &w.wv, e, e, &ln1, false);
                kcache[b].push(kv);
                vcache[b].push(vv);
                let mut attn_out = vec![0.0f32; e];
                // The vector unit's fused masked softmax consumes the
                // 1-bit causal bitmap (all cached positions visible).
                let len = kcache[b].len();
                let mask = ianus_npu::functional::causal_mask(len - 1, len);
                for h in 0..cfg.heads {
                    let r = h * dh..(h + 1) * dh;
                    let scores: Vec<f32> = kcache[b]
                        .iter()
                        .map(|k| {
                            qv[r.clone()]
                                .iter()
                                .zip(&k[r.clone()])
                                .map(|(a, b)| a * b)
                                .sum::<f32>()
                                / (dh as f32).sqrt()
                        })
                        .collect();
                    let probs = ianus_npu::functional::masked_softmax(&scores, &mask);
                    for (s, v) in probs.iter().zip(&vcache[b]) {
                        for (o, vi) in attn_out[r.clone()].iter_mut().zip(&v[r.clone()]) {
                            *o += s * vi;
                        }
                    }
                }
                let proj = fc(use_pim, &w.wo, e, e, &attn_out, false);
                for (xi, p) in x.iter_mut().zip(&proj) {
                    *xi += p;
                }
                let ln2 = layer_norm(&x);
                let h1 = fc(use_pim, &w.w1, f, e, &ln2, true);
                let h2 = fc(use_pim, &w.w2, e, f, &h1, false);
                for (xi, p) in x.iter_mut().zip(&h2) {
                    *xi += p;
                }
            }
            if step + 1 >= tokens.len() {
                // LM head (weight-tied to the embedding) picks the next
                // token greedily.
                let logits = fc(use_pim, &embed, cfg.vocab, e, &layer_norm(&x), false);
                let next = logits
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
                    .map(|(i, _)| i)
                    .expect("non-empty vocab");
                tokens.push(next);
                out_tokens.push(next);
            }
        }
        out_tokens
    };

    DecodeReport {
        reference: decode(false),
        pim: decode(true),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_gpt_decode_agrees() {
        let r = run_tiny_gpt_decode(TinyGptConfig::default());
        assert_eq!(r.reference.len(), 12);
        assert!(r.agreement() >= 0.9, "{r:?}");
        // The first generated token must always agree (errors compound
        // only through sequence divergence).
        assert_eq!(r.reference[0], r.pim[0]);
    }

    #[test]
    fn tiny_gpt_decode_deterministic() {
        let a = run_tiny_gpt_decode(TinyGptConfig::default());
        let b = run_tiny_gpt_decode(TinyGptConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn tiny_gpt_other_seeds_agree() {
        for seed in [3u64, 1234] {
            let r = run_tiny_gpt_decode(TinyGptConfig {
                seed,
                steps: 8,
                ..TinyGptConfig::default()
            });
            assert!(r.agreement() >= 0.75, "seed {seed}: {r:?}");
        }
    }

    #[test]
    fn default_block_validates() {
        let r = run_decoder_validation(FunctionalConfig::default());
        assert!(r.passes(), "{r:?}");
        assert_eq!(r.elements, 256);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_decoder_validation(FunctionalConfig::default());
        let b = run_decoder_validation(FunctionalConfig::default());
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_still_pass() {
        for seed in [1u64, 42, 0xDEADBEEF] {
            let r = run_decoder_validation(FunctionalConfig {
                seed,
                ..FunctionalConfig::default()
            });
            assert!(r.passes(), "seed {seed}: {r:?}");
        }
    }

    #[test]
    fn larger_block_validates() {
        let r = run_decoder_validation(FunctionalConfig {
            embed_dim: 512,
            ffn_dim: 2048,
            seed: 7,
        });
        assert!(r.passes(), "{r:?}");
    }
}
