//! IANUS system integration: the paper's primary contribution.
//!
//! This crate assembles the substrate crates into the full IANUS device —
//! a 4-core NPU whose main memory *is* the GDDR6-AiM PIM array — and
//! implements **PIM Access Scheduling (PAS)**, the workload mapping and
//! scheduling layer that arbitrates between normal memory accesses and
//! PIM computation on the unified memory system:
//!
//! * [`SystemConfig`] — Table 1/Table 2 device configuration, with the
//!   unified / partitioned / plain-GDDR6 ("NPU-MEM") memory organizations
//!   of Sections 3.2 and 6.2 and the PAS policy knobs of Figure 13.
//! * [`compiler`] — compiles a model + stage into a dependency-annotated
//!   command [`Program`](ianus_npu::scheduler::Program): the Figure 6
//!   workload mapping (head-parallel Q/K/V, column-parallel FCs, 4 syncs
//!   per block) and the Figure 7 attention schedules.
//! * [`adaptive`] — Algorithm 1: compile-time adaptive FC mapping between
//!   the matrix unit and PIM.
//! * [`IanusSystem`] — runs end-to-end requests and produces
//!   [`RunReport`]s with latency breakdowns, utilization and dynamic
//!   energy (the quantities behind Figures 8–15).
//! * [`multi_device`] — multi-IANUS scaling over PCIe 5.0 (Figures 17/18,
//!   Section 7).
//! * [`backend`] — the unified [`Backend`] serving trait every device
//!   model implements (including the `ianus-baselines` crate's A100 and
//!   DFX models).
//! * [`serving`] — the cluster-scale serving engine
//!   ([`serving::ServingSim`]): replica backends, dispatch policies,
//!   seeded Poisson arrivals, tail-latency reports.
//! * [`functional`] — value-level validation of the PIM-offloaded decoder
//!   against an f32 reference (the repo's stand-in for the paper's FPGA
//!   prototype perplexity check).
//!
//! # Examples
//!
//! ```
//! use ianus_core::{IanusSystem, SystemConfig};
//! use ianus_model::{ModelConfig, RequestShape};
//!
//! let mut sys = IanusSystem::new(SystemConfig::ianus());
//! let report = sys.run_request(&ModelConfig::gpt2_m(), RequestShape::new(128, 64));
//! assert!(report.total.as_ms_f64() > 0.1);
//! // Generation dominates at 64 output tokens.
//! assert!(report.generation > report.summarization);
//! ```

pub mod adaptive;
pub mod backend;
pub mod capacity;
pub mod compiler;
mod config;
mod energy;
pub mod functional;
pub mod multi_device;
mod report;
pub mod serving;
mod system;
pub mod trace;
mod units;

pub use backend::Backend;
pub use config::{MemoryPolicy, SystemConfig};
pub use energy::{EnergyBreakdown, EnergyModel};
pub use report::{OpClass, RunReport, StageReport};
pub use system::IanusSystem;
pub use units::UnitMap;

/// PAS policy knobs (Figure 13's configuration space).
pub mod pas {
    /// Where generation-stage FC layers execute.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum FcMapping {
        /// Always the NPU matrix unit.
        MatrixUnit,
        /// Always PIM.
        Pim,
        /// Algorithm 1: choose per FC from analytic estimates.
        Adaptive,
    }

    /// Where the generation-stage `QKᵀ` and `SV` products execute
    /// (Figure 7b vs 7c).
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum AttnMapping {
        /// Matrix unit (Figure 7c — the paper's choice).
        MatrixUnit,
        /// PIM (Figure 7b).
        Pim,
    }

    /// Scheduling style.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum Schedule {
        /// Naive: operations serialized in program order, no overlap of
        /// PIM computation with NPU work.
        Naive,
        /// Unified-memory-aware scheduling (Section 5.3 overlaps).
        Overlapped,
    }

    /// The complete PAS policy.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub struct PasPolicy {
        /// FC layer mapping choice.
        pub fc: FcMapping,
        /// Attention product mapping choice.
        pub attention: AttnMapping,
        /// Overlap-aware or naive scheduling.
        pub schedule: Schedule,
    }

    impl PasPolicy {
        /// The paper's IANUS configuration: adaptive FCs, attention on the
        /// matrix unit, overlap-aware scheduling.
        pub fn ianus() -> Self {
            PasPolicy {
                fc: FcMapping::Adaptive,
                attention: AttnMapping::MatrixUnit,
                schedule: Schedule::Overlapped,
            }
        }
    }

    impl Default for PasPolicy {
        fn default() -> Self {
            Self::ianus()
        }
    }
}
