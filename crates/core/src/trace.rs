//! Execution-timeline tracing for debugging and schedule inspection.
//!
//! Produces Chrome-trace (`chrome://tracing` / Perfetto) JSON for one
//! compiled stage, with IANUS unit names (per-core MU/VU/DMAs, memory
//! channel groups, PIM pipelines, PCIe) and Figure 10 operation classes
//! as event names. This is the tool you open to *see* PIM Access
//! Scheduling: PIM spans interleaving with DMA spans on the same channel
//! group, Kpre prefetches hiding under SV, and so on.

use crate::compiler::Compiler;
use crate::report::OpClass;
use crate::{SystemConfig, UnitMap};
use ianus_model::{ModelConfig, Stage};
use ianus_npu::scheduler::{chrome_trace, Engine, Span};

/// Human-readable names for every unit of a configuration.
pub fn unit_names(units: &UnitMap) -> Vec<String> {
    let mut names = Vec::with_capacity(units.unit_count());
    for c in 0..units.cores() {
        names.push(format!("core{c}.mu"));
        names.push(format!("core{c}.vu"));
        names.push(format!("core{c}.dma_in"));
        names.push(format!("core{c}.dma_out"));
    }
    names.push("npu_mem_bus".to_owned());
    for g in 0..units.groups() {
        names.push(format!("mem_group{g}"));
    }
    for g in 0..units.groups() {
        names.push(format!("pim_group{g}"));
    }
    names.push("pcie".to_owned());
    names
}

/// Compiles and executes one stage, returning the spans and makespan.
pub fn trace_stage(cfg: &SystemConfig, model: &ModelConfig, stage: &Stage) -> TraceResult {
    let mut compiler = Compiler::new(cfg, model);
    let compiled = compiler.compile(stage);
    let units = compiler.unit_map();
    let mut engine = Engine::new(units.unit_count(), cfg.npu.dispatch_overhead);
    let (report, spans) = engine.run_traced(&compiled.program);
    TraceResult {
        spans,
        units,
        makespan: report.makespan(),
    }
}

/// A traced stage execution.
#[derive(Debug, Clone)]
pub struct TraceResult {
    /// Every command's execution interval.
    pub spans: Vec<Span>,
    /// Unit map for name resolution.
    pub units: UnitMap,
    /// Stage makespan.
    pub makespan: ianus_sim::Time,
}

impl TraceResult {
    /// Renders the trace as Chrome-trace JSON.
    ///
    /// # Examples
    ///
    /// ```
    /// use ianus_core::trace::trace_stage;
    /// use ianus_core::SystemConfig;
    /// use ianus_model::{ModelConfig, Stage};
    ///
    /// let t = trace_stage(
    ///     &SystemConfig::ianus(),
    ///     &ModelConfig::gpt2_m(),
    ///     &Stage::Generation { past_tokens: 32 },
    /// );
    /// let json = t.to_chrome_trace();
    /// assert!(json.contains("pim_group0"));
    /// assert!(json.contains("FC for Q,K,V"));
    /// ```
    pub fn to_chrome_trace(&self) -> String {
        let names = unit_names(&self.units);
        let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
        let tag_names: Vec<&str> = OpClass::ALL.iter().map(|c| c.label()).collect();
        chrome_trace(&self.spans, &name_refs, &tag_names)
    }

    /// Spans executed on a given unit.
    pub fn spans_on(&self, unit: usize) -> impl Iterator<Item = &Span> {
        self.spans.iter().filter(move |s| s.unit == unit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_cover_all_units() {
        let units = UnitMap::new(&SystemConfig::ianus());
        assert_eq!(unit_names(&units).len(), units.unit_count());
    }

    #[test]
    fn trace_has_pim_and_mu_overlap_in_generation() {
        // PAS's point: PIM query generation overlaps matrix-unit QK^T.
        let t = trace_stage(
            &SystemConfig::ianus(),
            &ModelConfig::gpt2_m(),
            &Stage::Generation { past_tokens: 64 },
        );
        let units = t.units;
        let pim: Vec<_> = t.spans_on(units.pim(0)).cloned().collect();
        let mu: Vec<_> = t.spans_on(units.mu(0)).cloned().collect();
        assert!(!pim.is_empty() && !mu.is_empty());
        let overlap = pim
            .iter()
            .any(|p| mu.iter().any(|m| p.start < m.end && m.start < p.end));
        assert!(overlap, "expected PIM/MU overlap under PAS");
    }

    #[test]
    fn chrome_json_parses_superficially() {
        let t = trace_stage(
            &SystemConfig::ianus(),
            &ModelConfig::bert_b(),
            &Stage::Summarization { tokens: 64 },
        );
        let json = t.to_chrome_trace();
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(json.matches("\"ph\": \"X\"").count(), t.spans.len());
    }
}
