//! End-to-end request execution on one IANUS device configuration.

use crate::compiler::Compiler;
use crate::report::{Breakdown, OpClass, RunReport, StageReport};
use crate::{EnergyModel, SystemConfig, UnitMap};
use ianus_model::{ModelConfig, RequestShape, Stage};
use ianus_npu::scheduler::Engine;
use ianus_sim::Duration;

/// Number of generation steps above which per-step latency is sampled and
/// integrated instead of simulated step-by-step. Per-step latency varies
/// smoothly (linearly growing KV traffic plus occasional tile-boundary
/// steps), so trapezoidal integration over ~2 dozen sample points is
/// accurate to well under a percent while cutting simulation cost by an
/// order of magnitude for 512-token outputs.
const EXACT_STEP_LIMIT: u64 = 48;

/// Sample points used when integrating long generation phases.
const SAMPLE_POINTS: u64 = 25;

/// A configured IANUS (or NPU-MEM / partitioned) device that runs
/// requests.
///
/// # Examples
///
/// ```
/// use ianus_core::{IanusSystem, SystemConfig};
/// use ianus_model::{ModelConfig, Stage};
///
/// let mut sys = IanusSystem::new(SystemConfig::ianus());
/// let stage = sys.run_stage(&ModelConfig::gpt2_m(), &Stage::Generation { past_tokens: 64 });
/// assert!(stage.latency.as_us_f64() > 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct IanusSystem {
    cfg: SystemConfig,
    energy_model: EnergyModel,
}

impl IanusSystem {
    /// Creates a system for a configuration.
    pub fn new(cfg: SystemConfig) -> Self {
        IanusSystem {
            cfg,
            energy_model: EnergyModel::default(),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SystemConfig {
        &self.cfg
    }

    /// Replaces the energy model (coefficient studies).
    pub fn set_energy_model(&mut self, m: EnergyModel) {
        self.energy_model = m;
    }

    /// Simulates one stage and returns its report.
    pub fn run_stage(&mut self, model: &ModelConfig, stage: &Stage) -> StageReport {
        let mut compiler = Compiler::new(&self.cfg, model);
        let compiled = compiler.compile(stage);
        self.execute(compiler.unit_map(), compiled)
    }

    /// Simulates the Figure 12 FC microbenchmark (all block FCs with a
    /// forced mapping).
    pub fn run_fc_microbench(
        &mut self,
        model: &ModelConfig,
        tokens: u64,
        mapping: crate::pas::FcMapping,
    ) -> StageReport {
        let mut compiler = Compiler::new(&self.cfg, model);
        let compiled = compiler.compile_fc_microbench(tokens, mapping);
        self.execute(compiler.unit_map(), compiled)
    }

    fn execute(&mut self, units: UnitMap, compiled: crate::compiler::CompiledStage) -> StageReport {
        let mut engine = Engine::new(units.unit_count(), self.cfg.npu.dispatch_overhead);
        let exec = engine.run(&compiled.program);
        let mut breakdown = Breakdown::new();
        for class in OpClass::ALL {
            breakdown.add(class, exec.tag_busy(class.tag()));
        }
        StageReport {
            latency: exec.makespan().since(ianus_sim::Time::ZERO),
            breakdown,
            flops: compiled.flops,
            energy: self.energy_model.energy(&compiled.activity),
        }
    }

    /// Runs an end-to-end request: one summarization stage plus
    /// `output − 1` generation steps (sampled when long).
    ///
    /// # Panics
    ///
    /// Panics if a BERT model is given an `output > 1` request.
    pub fn run_request(&mut self, model: &ModelConfig, request: RequestShape) -> RunReport {
        let summ = self.run_stage(
            model,
            &Stage::Summarization {
                tokens: request.input,
            },
        );
        let steps = request.generation_steps();
        let mut report = RunReport {
            total: summ.latency,
            summarization: summ.latency,
            generation: Duration::ZERO,
            generation_steps: steps,
            breakdown: summ.breakdown.clone(),
            flops: summ.flops,
            energy: summ.energy,
        };
        if steps == 0 {
            return report;
        }
        let first = request.input;
        let last = request.input + steps - 1;
        if steps <= EXACT_STEP_LIMIT {
            for past in first..=last {
                let g = self.run_stage(model, &Stage::Generation { past_tokens: past });
                report.generation += g.latency;
                report.breakdown.merge(&g.breakdown);
                report.flops += g.flops;
                report.energy.merge(&g.energy);
            }
        } else {
            // Trapezoidal integration over sampled past lengths.
            let points = SAMPLE_POINTS.min(steps);
            let sample_pasts: Vec<u64> = (0..points)
                .map(|i| first + (last - first) * i / (points - 1))
                .collect();
            let samples: Vec<StageReport> = sample_pasts
                .iter()
                .map(|&p| self.run_stage(model, &Stage::Generation { past_tokens: p }))
                .collect();
            for w in 0..points as usize - 1 {
                let (p0, p1) = (sample_pasts[w], sample_pasts[w + 1]);
                let (s0, s1) = (&samples[w], &samples[w + 1]);
                // Steps in [p0, p1), with the final sample covering its
                // own step.
                let count = if w + 2 == points as usize {
                    p1 - p0 + 1
                } else {
                    p1 - p0
                } as f64;
                let avg_lat = Duration::from_ns_f64(
                    (s0.latency.as_ns_f64() + s1.latency.as_ns_f64()) / 2.0 * count,
                );
                report.generation += avg_lat;
                let mut seg = s0.breakdown.clone();
                seg.merge(&s1.breakdown);
                report.breakdown.merge(&seg.scaled(count / 2.0));
                report.flops += ((s0.flops + s1.flops) as f64 / 2.0 * count) as u64;
                let mut e = s0.energy;
                e.merge(&s1.energy);
                report.energy.merge(&e.scaled(count / 2.0));
            }
        }
        report.total = report.summarization + report.generation;
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampled_matches_exact_within_two_percent() {
        let model = ModelConfig::gpt2_m();
        let req = RequestShape::new(32, 64); // 63 steps: sampled path
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let sampled = sys.run_request(&model, req);
        // Exact: sum the 63 steps directly.
        let mut exact = Duration::ZERO;
        for past in 32..95u64 {
            exact += sys
                .run_stage(&model, &Stage::Generation { past_tokens: past })
                .latency;
        }
        let rel = (sampled.generation.as_ns_f64() - exact.as_ns_f64()).abs() / exact.as_ns_f64();
        assert!(rel < 0.02, "relative error {rel}");
    }

    #[test]
    fn generation_latency_grows_with_past() {
        let model = ModelConfig::gpt2_l();
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let a = sys.run_stage(&model, &Stage::Generation { past_tokens: 64 });
        let b = sys.run_stage(&model, &Stage::Generation { past_tokens: 512 });
        assert!(b.latency > a.latency);
    }

    #[test]
    fn report_fields_consistent() {
        let model = ModelConfig::gpt2_m();
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let r = sys.run_request(&model, RequestShape::new(128, 8));
        assert_eq!(r.generation_steps, 7);
        assert_eq!(r.total, r.summarization + r.generation);
        assert!(r.per_token_latency().unwrap() > Duration::ZERO);
        assert!(r.throughput_tflops() > 0.0);
        assert!(r.energy.total_pj() > 0.0);
    }

    #[test]
    fn npu_mem_generation_is_weight_bound() {
        // NPU-MEM streams all FC weights per token: GPT-2 XL ≈ 2.9 GB at
        // 256 GB/s ⇒ ≥ 11 ms per token (paper: 15.5 ms).
        let model = ModelConfig::gpt2_xl();
        let mut sys = IanusSystem::new(SystemConfig::npu_mem());
        let g = sys.run_stage(&model, &Stage::Generation { past_tokens: 128 });
        assert!(
            g.latency.as_ms_f64() > 10.0 && g.latency.as_ms_f64() < 25.0,
            "{}",
            g.latency
        );
    }

    #[test]
    fn ianus_xl_token_latency_regime() {
        // Paper: IANUS generates a GPT-2 XL token in ≈ 3.8 ms.
        let model = ModelConfig::gpt2_xl();
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let g = sys.run_stage(&model, &Stage::Generation { past_tokens: 192 });
        assert!(
            g.latency.as_ms_f64() > 1.0 && g.latency.as_ms_f64() < 8.0,
            "{}",
            g.latency
        );
    }
}
