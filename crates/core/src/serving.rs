//! Cluster-scale serving simulation over the unified [`Backend`] trait.
//!
//! The paper motivates IANUS with interactive NLP serving at batch size 1
//! (Section 6.1: datacenters avoid waiting to form batches). This module
//! closes the loop above the device models: [`ServingSim`] simulates a
//! **cluster of replica backends** — any mix of [`IanusSystem`]s, device
//! groups, or the analytical baselines — fed by deterministic, seeded
//! Poisson arrivals of a weighted request-shape mix, under a pluggable
//! [`DispatchPolicy`]. The result is a [`ServingReport`] with overall and
//! per-class sojourn percentiles, per-replica utilization, and a
//! [`ServingSim::sustainable_rate`] search helper.
//!
//! Device service times come from the same simulations the figures use,
//! memoized per `(replica, shape)`, so repeated runs (e.g. a rate sweep)
//! cost one device simulation per distinct shape.
//!
//! # Examples
//!
//! A two-replica IANUS cluster under least-loaded dispatch:
//!
//! ```
//! use ianus_core::serving::{DispatchPolicy, ServingConfig, ServingSim};
//! use ianus_core::{IanusSystem, SystemConfig};
//! use ianus_model::ModelConfig;
//!
//! let report = ServingSim::new(ServingConfig::interactive(6.0, 200))
//!     .replica(IanusSystem::new(SystemConfig::ianus()))
//!     .replica(IanusSystem::new(SystemConfig::ianus()))
//!     .dispatch(DispatchPolicy::LeastLoaded)
//!     .run(&ModelConfig::gpt2_m());
//! assert_eq!(report.completed, 200);
//! assert_eq!(report.per_replica.len(), 2);
//! assert!(report.utilization > 0.0 && report.utilization <= 1.0);
//! ```
//!
//! The deprecated free function [`simulate`] is a thin shim over a
//! single-replica [`ServingSim`] and will be removed; new code should
//! build the engine directly.

use crate::backend::Backend;
use crate::{IanusSystem, SystemConfig};
use ianus_model::{ModelConfig, RequestShape};
use ianus_sim::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One entry of the request-shape mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestClass {
    /// The request shape.
    pub shape: RequestShape,
    /// Relative weight of this class in the mix.
    pub weight: f64,
}

/// Configuration of a serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Mean arrival rate in requests per second (Poisson process),
    /// aggregated over the whole cluster.
    pub arrival_rate_hz: f64,
    /// Number of requests to simulate.
    pub requests: u64,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
    /// Request-shape mix (weights need not sum to one).
    pub mix: Vec<RequestClass>,
}

impl ServingConfig {
    /// A typical interactive mix: mostly short chat turns, some longer
    /// completions.
    pub fn interactive(arrival_rate_hz: f64, requests: u64) -> Self {
        ServingConfig {
            arrival_rate_hz,
            requests,
            seed: 0x5EED,
            mix: vec![
                RequestClass {
                    shape: RequestShape::new(128, 32),
                    weight: 0.6,
                },
                RequestClass {
                    shape: RequestShape::new(256, 64),
                    weight: 0.3,
                },
                RequestClass {
                    shape: RequestShape::new(512, 256),
                    weight: 0.1,
                },
            ],
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the arrival rate (builder style).
    pub fn with_rate(mut self, arrival_rate_hz: f64) -> Self {
        self.arrival_rate_hz = arrival_rate_hz;
        self
    }
}

/// How arriving requests are assigned to replicas.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// One global FCFS queue: each request in arrival order goes to the
    /// replica that frees up earliest (classic M/G/k). Implicitly
    /// speed-aware — a fast replica frees up sooner.
    FcfsSingleQueue,
    /// Route at arrival to the replica with the *fewest outstanding
    /// requests* (queued + in service), ignoring how fast that replica
    /// is — the load-balancer view when per-request cost is unknown.
    LeastLoaded,
    /// Route at arrival to the replica with the smallest *expected
    /// completion time* for this request — backlog plus this shape's
    /// memoized service time on that replica. On heterogeneous clusters
    /// this steers work toward faster replicas.
    ShortestExpectedJob,
}

/// Sojourn statistics of one request class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// The class's request shape.
    pub shape: RequestShape,
    /// Requests of this class completed.
    pub completed: u64,
    /// Median sojourn (queueing + service) time.
    pub p50_sojourn: Duration,
    /// 95th-percentile sojourn time.
    pub p95_sojourn: Duration,
    /// 99th-percentile sojourn time.
    pub p99_sojourn: Duration,
}

/// Utilization statistics of one replica.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaReport {
    /// The replica's backend name.
    pub name: String,
    /// Requests this replica served.
    pub completed: u64,
    /// Fraction of the cluster makespan this replica was busy.
    pub utilization: f64,
}

/// Result of a serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests completed.
    pub completed: u64,
    /// Mean device service time across completed requests.
    pub mean_service: Duration,
    /// Median sojourn (queueing + service) time.
    pub p50_sojourn: Duration,
    /// 95th-percentile sojourn time.
    pub p95_sojourn: Duration,
    /// 99th-percentile sojourn time.
    pub p99_sojourn: Duration,
    /// Mean busy fraction across replicas.
    pub utilization: f64,
    /// Completed requests per second of simulated time.
    pub throughput_rps: f64,
    /// Per-class sojourn percentiles (same order as the config's mix).
    pub per_class: Vec<ClassReport>,
    /// Per-replica load (same order as the replicas were added).
    pub per_replica: Vec<ReplicaReport>,
}

impl ServingReport {
    /// Whether the system was stable (utilization below one and tail
    /// latency bounded relative to service time).
    ///
    /// The tail bound matters most on wide clusters over a finite
    /// horizon, where measured utilization saturates slowly: an
    /// overloaded 8-replica run can sit just under the utilization gate
    /// while p99 sojourn has already blown out to dozens of service
    /// times.
    pub fn stable(&self) -> bool {
        self.utilization < 0.95
            && self.p99_sojourn.as_ns_f64() < 20.0 * self.mean_service.as_ns_f64()
    }

    /// The all-zero report of an empty (zero-request) simulation.
    fn empty(replica_names: Vec<String>, mix: &[RequestClass]) -> Self {
        ServingReport {
            completed: 0,
            mean_service: Duration::ZERO,
            p50_sojourn: Duration::ZERO,
            p95_sojourn: Duration::ZERO,
            p99_sojourn: Duration::ZERO,
            utilization: 0.0,
            throughput_rps: 0.0,
            per_class: mix
                .iter()
                .map(|c| ClassReport {
                    shape: c.shape,
                    completed: 0,
                    p50_sojourn: Duration::ZERO,
                    p95_sojourn: Duration::ZERO,
                    p99_sojourn: Duration::ZERO,
                })
                .collect(),
            per_replica: replica_names
                .into_iter()
                .map(|name| ReplicaReport {
                    name,
                    completed: 0,
                    utilization: 0.0,
                })
                .collect(),
        }
    }
}

/// Picks the mix class for a uniform draw in `[0, total_weight)`.
///
/// Floating-point subtraction can leave the residual at or slightly above
/// the final weight even for in-range draws; the final class is the
/// fallback so such draws never silently snap back to `mix[0]`.
fn pick_class(mix: &[RequestClass], draw: f64) -> usize {
    let mut rem = draw;
    for (i, class) in mix.iter().enumerate() {
        if rem < class.weight {
            return i;
        }
        rem -= class.weight;
    }
    mix.len() - 1
}

struct Replica {
    backend: Box<dyn Backend>,
    /// Memoized service times, keyed by model and shape so one engine
    /// can serve different models across runs. `ModelConfig::name` is
    /// the model's identity here: two configs sharing a name are
    /// assumed to be the same model (true for the built-in zoo; callers
    /// mutating a config's fields must also rename it).
    service: HashMap<(&'static str, RequestShape), Duration>,
}

impl Replica {
    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
        let key = (model.name, shape);
        if let Some(&d) = self.service.get(&key) {
            return d;
        }
        let d = self.backend.service_time(model, shape);
        self.service.insert(key, d);
        d
    }
}

/// Builder-style cluster serving engine over [`Backend`] replicas.
///
/// Construct with a [`ServingConfig`], add one or more replicas, pick a
/// [`DispatchPolicy`], then [`run`](Self::run). The engine owns its
/// replicas; service-time memos survive across runs, so rate sweeps and
/// [`sustainable_rate`](Self::sustainable_rate) searches re-simulate no
/// device.
pub struct ServingSim {
    cfg: ServingConfig,
    policy: DispatchPolicy,
    replicas: Vec<Replica>,
}

impl ServingSim {
    /// Starts a simulation builder with no replicas and FCFS dispatch.
    pub fn new(cfg: ServingConfig) -> Self {
        ServingSim {
            cfg,
            policy: DispatchPolicy::FcfsSingleQueue,
            replicas: Vec::new(),
        }
    }

    /// Adds one replica backend.
    pub fn replica(mut self, backend: impl Backend + 'static) -> Self {
        self.replicas.push(Replica {
            backend: Box::new(backend),
            service: HashMap::new(),
        });
        self
    }

    /// Adds an already-boxed replica (for heterogeneous `dyn` lists).
    pub fn boxed_replica(mut self, backend: Box<dyn Backend>) -> Self {
        self.replicas.push(Replica {
            backend,
            service: HashMap::new(),
        });
        self
    }

    /// Adds `n` replicas built by `make(index)`.
    pub fn cluster<B: Backend + 'static>(
        mut self,
        n: usize,
        mut make: impl FnMut(usize) -> B,
    ) -> Self {
        for i in 0..n {
            self = self.replica(make(i));
        }
        self
    }

    /// Sets the dispatch policy.
    pub fn dispatch(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Number of replicas added so far.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The current configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Changes the arrival rate in place, keeping replicas and their
    /// service memos — the cheap way to run a rate sweep on one engine.
    pub fn set_rate(&mut self, arrival_rate_hz: f64) {
        self.cfg.arrival_rate_hz = arrival_rate_hz;
    }

    /// Checks that `model` is resident on every replica.
    ///
    /// # Errors
    ///
    /// The first replica's [`CapacityError`](crate::capacity::CapacityError),
    /// tagged with its index, if any replica cannot hold the model.
    pub fn fits(&self, model: &ModelConfig) -> Result<(), (usize, crate::capacity::CapacityError)> {
        for (i, r) in self.replicas.iter().enumerate() {
            r.backend.fits(model).map_err(|e| (i, e))?;
        }
        Ok(())
    }

    /// Runs the simulation for `model` and reports cluster statistics.
    ///
    /// Zero configured requests yield an all-zero report rather than a
    /// division by zero.
    ///
    /// # Panics
    ///
    /// Panics if no replicas were added, the mix is empty, a weight is
    /// non-positive, or the arrival rate is non-positive.
    pub fn run(&mut self, model: &ModelConfig) -> ServingReport {
        assert!(!self.replicas.is_empty(), "serving cluster has no replicas");
        assert!(!self.cfg.mix.is_empty(), "request mix must be non-empty");
        assert!(
            self.cfg.arrival_rate_hz > 0.0,
            "arrival rate must be positive"
        );
        assert!(
            self.cfg.mix.iter().all(|c| c.weight > 0.0),
            "weights must be positive"
        );
        if self.cfg.requests == 0 {
            return ServingReport::empty(
                self.replicas
                    .iter()
                    .map(|r| r.backend.name().to_string())
                    .collect(),
                &self.cfg.mix,
            );
        }
        let total_weight: f64 = self.cfg.mix.iter().map(|c| c.weight).sum();

        // Memoize every (replica, shape) service time up front:
        // ShortestExpectedJob consults all replicas per arrival.
        let shapes: Vec<RequestShape> = self.cfg.mix.iter().map(|c| c.shape).collect();
        for r in &mut self.replicas {
            for &shape in &shapes {
                r.service_time(model, shape);
            }
        }

        let n = self.replicas.len();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut now = 0.0f64; // seconds, arrival clock
        let mut free = vec![0.0f64; n]; // per-replica next-free time
                                        // Outstanding finish times per replica (FIFO per replica, so the
                                        // front is always the earliest) — LeastLoaded's queue lengths.
        let mut outstanding: Vec<std::collections::VecDeque<f64>> =
            vec![std::collections::VecDeque::new(); n];
        let mut busy = vec![0.0f64; n];
        let mut served = vec![0u64; n];
        let mut sojourns: Vec<f64> = Vec::with_capacity(self.cfg.requests as usize);
        let mut class_sojourns: Vec<Vec<f64>> = vec![Vec::new(); self.cfg.mix.len()];
        let mut service_sum = 0.0f64;
        let mut last_finish = 0.0f64;

        for _ in 0..self.cfg.requests {
            // Exponential inter-arrival.
            let u: f64 = rng.gen_range(f64::EPSILON..1.0);
            now += -u.ln() / self.cfg.arrival_rate_hz;
            let class = pick_class(&self.cfg.mix, rng.gen_range(0.0..total_weight));
            let shape = self.cfg.mix[class].shape;
            // Retire requests finished by this arrival instant.
            for q in &mut outstanding {
                while q.front().is_some_and(|&f| f <= now) {
                    q.pop_front();
                }
            }

            let replica = match self.policy {
                DispatchPolicy::FcfsSingleQueue => argmin(&free, |&f| f),
                DispatchPolicy::LeastLoaded => argmin(&outstanding, |q| q.len()),
                DispatchPolicy::ShortestExpectedJob => {
                    let mut best = 0usize;
                    let mut best_done = f64::INFINITY;
                    for (i, (&f, r)) in free.iter().zip(&self.replicas).enumerate() {
                        let done = f.max(now) + r.service[&(model.name, shape)].as_secs_f64();
                        if done < best_done {
                            best_done = done;
                            best = i;
                        }
                    }
                    best
                }
            };

            let s = self.replicas[replica].service[&(model.name, shape)].as_secs_f64();
            let start = now.max(free[replica]);
            let finish = start + s;
            free[replica] = finish;
            outstanding[replica].push_back(finish);
            busy[replica] += s;
            served[replica] += 1;
            service_sum += s;
            sojourns.push(finish - now);
            class_sojourns[class].push(finish - now);
            last_finish = last_finish.max(finish);
        }

        sojourns.sort_by(|a, b| a.partial_cmp(b).expect("sojourns are finite"));
        for cs in &mut class_sojourns {
            cs.sort_by(|a, b| a.partial_cmp(b).expect("sojourns are finite"));
        }
        let per_class = self
            .cfg
            .mix
            .iter()
            .zip(&class_sojourns)
            .map(|(c, cs)| ClassReport {
                shape: c.shape,
                completed: cs.len() as u64,
                p50_sojourn: percentile(cs, 0.50),
                p95_sojourn: percentile(cs, 0.95),
                p99_sojourn: percentile(cs, 0.99),
            })
            .collect();
        let per_replica = self
            .replicas
            .iter()
            .zip(busy.iter().zip(&served))
            .map(|(r, (&b, &c))| ReplicaReport {
                name: r.backend.name().to_string(),
                completed: c,
                utilization: (b / last_finish).min(1.0),
            })
            .collect();
        ServingReport {
            completed: self.cfg.requests,
            mean_service: Duration::from_secs_f64(service_sum / self.cfg.requests as f64),
            p50_sojourn: percentile(&sojourns, 0.50),
            p95_sojourn: percentile(&sojourns, 0.95),
            p99_sojourn: percentile(&sojourns, 0.99),
            utilization: (busy.iter().sum::<f64>() / (n as f64 * last_finish)).min(1.0),
            throughput_rps: self.cfg.requests as f64 / last_finish,
            per_class,
            per_replica,
        }
    }

    /// Binary-searches the highest arrival rate in `[lo_hz, hi_hz]` whose
    /// report is [`stable`](ServingReport::stable), to a 1% relative
    /// resolution. Returns `0.0` when even `lo_hz` is unstable. Service
    /// memos make each probe a queueing-only pass (no device simulation).
    ///
    /// # Panics
    ///
    /// Panics if `lo_hz` or the bracket is non-positive, or on the
    /// conditions of [`run`](Self::run).
    pub fn sustainable_rate(&mut self, model: &ModelConfig, lo_hz: f64, hi_hz: f64) -> f64 {
        assert!(lo_hz > 0.0 && hi_hz > lo_hz, "need 0 < lo_hz < hi_hz");
        let original = self.cfg.arrival_rate_hz;
        let stable_at = |sim: &mut Self, rate: f64| {
            sim.cfg.arrival_rate_hz = rate;
            sim.run(model).stable()
        };
        let mut best = 0.0f64;
        let (mut lo, mut hi) = (lo_hz, hi_hz);
        if stable_at(self, lo) {
            best = lo;
            if stable_at(self, hi) {
                best = hi;
                lo = hi;
            }
            while hi / lo > 1.01 {
                let mid = (lo * hi).sqrt();
                if stable_at(self, mid) {
                    best = mid;
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }
        self.cfg.arrival_rate_hz = original;
        best
    }
}

fn argmin<T, K: PartialOrd>(items: &[T], key: impl Fn(&T) -> K) -> usize {
    let mut best = 0usize;
    for i in 1..items.len() {
        if key(&items[i]) < key(&items[best]) {
            best = i;
        }
    }
    best
}

fn percentile(sorted: &[f64], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Duration::from_secs_f64(sorted[idx])
}

/// Runs a serving simulation of `model` on one `system` under `cfg`.
///
/// Kept so pre-`ServingSim` call sites compile; it builds a
/// single-replica FCFS [`ServingSim`] and runs it.
#[deprecated(
    since = "0.2.0",
    note = "build a `ServingSim` with `Backend` replicas instead; this shim wraps a single-replica FCFS cluster"
)]
pub fn simulate(system: SystemConfig, model: &ModelConfig, cfg: &ServingConfig) -> ServingReport {
    ServingSim::new(cfg.clone())
        .replica(IanusSystem::new(system))
        .run(model)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_device::DeviceGroup;
    use ianus_baselines_shim::*;

    /// The serving tests need a fast, exactly-predictable backend too;
    /// real-device parity is covered by `tests/backend_parity.rs` at the
    /// workspace root (ianus-core cannot depend on ianus-baselines).
    mod ianus_baselines_shim {
        use super::*;

        /// Fixed-rate synthetic backend: service time is
        /// `per_token × (input + output)`.
        pub struct FixedRate {
            pub name: &'static str,
            pub per_token: Duration,
        }

        impl Backend for FixedRate {
            fn name(&self) -> &str {
                self.name
            }

            fn service_time(&mut self, _: &ModelConfig, shape: RequestShape) -> Duration {
                Duration::from_ns_f64(
                    self.per_token.as_ns_f64() * (shape.input + shape.output) as f64,
                )
            }

            fn fits(&self, _: &ModelConfig) -> Result<(), crate::capacity::CapacityError> {
                Ok(())
            }
        }
    }

    fn mix_one(shape: RequestShape) -> Vec<RequestClass> {
        vec![RequestClass { shape, weight: 1.0 }]
    }

    fn fixed(name: &'static str, us_per_token: u64) -> FixedRate {
        FixedRate {
            name,
            per_token: Duration::from_us(us_per_token),
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ServingConfig::interactive(5.0, 100);
        let mut a = ServingSim::new(cfg.clone())
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .dispatch(DispatchPolicy::LeastLoaded);
        let mut b = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .dispatch(DispatchPolicy::LeastLoaded);
        let ra = a.run(&ModelConfig::gpt2_m());
        let rb = b.run(&ModelConfig::gpt2_m());
        assert_eq!(ra, rb);
        // And rerunning the same engine (warm memos) changes nothing.
        assert_eq!(a.run(&ModelConfig::gpt2_m()), ra);
    }

    #[test]
    fn policies_are_deterministic_and_distinct_reports_are_seed_stable() {
        for policy in [
            DispatchPolicy::FcfsSingleQueue,
            DispatchPolicy::LeastLoaded,
            DispatchPolicy::ShortestExpectedJob,
        ] {
            let build = || {
                ServingSim::new(ServingConfig::interactive(20.0, 300).with_seed(77))
                    .cluster(3, |_| fixed("fixed", 100))
                    .dispatch(policy)
            };
            let a = build().run(&ModelConfig::gpt2_m());
            let b = build().run(&ModelConfig::gpt2_m());
            assert_eq!(a, b, "{policy:?} not seed-stable");
            assert_eq!(a.completed, 300);
        }
    }

    #[test]
    fn second_replica_improves_tail_latency_and_halves_utilization() {
        let model = ModelConfig::gpt2_m();
        let cfg = ServingConfig {
            arrival_rate_hz: 40.0,
            requests: 400,
            seed: 5,
            mix: mix_one(RequestShape::new(128, 16)),
        };
        let one = ServingSim::new(cfg.clone())
            .replica(fixed("a", 500))
            .run(&model);
        let two = ServingSim::new(cfg)
            .replica(fixed("a", 500))
            .replica(fixed("b", 500))
            .run(&model);
        assert!(two.p99_sojourn < one.p99_sojourn);
        assert!(two.utilization < one.utilization);
        assert_eq!(two.per_replica.len(), 2);
        // Work spreads across both replicas.
        assert!(two.per_replica.iter().all(|r| r.completed > 50));
    }

    #[test]
    fn sej_beats_least_loaded_on_heterogeneous_cluster() {
        // One fast and one 8x slower replica: expected-completion routing
        // must not do worse than blind backlog balancing.
        let model = ModelConfig::gpt2_m();
        let cfg = ServingConfig {
            arrival_rate_hz: 8.0,
            requests: 300,
            seed: 11,
            mix: mix_one(RequestShape::new(64, 16)),
        };
        let hetero = |policy| {
            ServingSim::new(cfg.clone())
                .replica(fixed("fast", 200))
                .replica(fixed("slow", 1600))
                .dispatch(policy)
                .run(&model)
        };
        let ll = hetero(DispatchPolicy::LeastLoaded);
        let sej = hetero(DispatchPolicy::ShortestExpectedJob);
        assert!(
            sej.p99_sojourn.as_ns_f64() <= ll.p99_sojourn.as_ns_f64() * 1.001,
            "SEJ p99 {} vs least-loaded {}",
            sej.p99_sojourn,
            ll.p99_sojourn
        );
        // SEJ routes the bulk of the work to the fast replica.
        assert!(sej.per_replica[0].completed > sej.per_replica[1].completed);
    }

    #[test]
    fn least_loaded_differs_from_fcfs_on_heterogeneous_cluster() {
        // Count-based routing is speed-blind; earliest-free routing is
        // not. On a fast+slow pair the two must produce different
        // schedules.
        let model = ModelConfig::gpt2_m();
        let cfg = ServingConfig {
            arrival_rate_hz: 10.0,
            requests: 400,
            seed: 13,
            mix: mix_one(RequestShape::new(64, 16)),
        };
        let run = |policy| {
            ServingSim::new(cfg.clone())
                .replica(fixed("fast", 200))
                .replica(fixed("slow", 1600))
                .dispatch(policy)
                .run(&model)
        };
        let fcfs = run(DispatchPolicy::FcfsSingleQueue);
        let ll = run(DispatchPolicy::LeastLoaded);
        assert_ne!(fcfs, ll);
        assert_eq!(fcfs.completed, 400);
        assert_eq!(ll.completed, 400);
    }

    #[test]
    fn memo_is_model_aware_across_runs() {
        // Re-running one engine with a different model must re-price
        // service times, not reuse the previous model's memo.
        let cfg = ServingConfig {
            arrival_rate_hz: 2.0,
            requests: 50,
            seed: 4,
            mix: mix_one(RequestShape::new(128, 8)),
        };
        let mut sim = ServingSim::new(cfg.clone()).replica(IanusSystem::new(SystemConfig::ianus()));
        let small = sim.run(&ModelConfig::gpt2_m());
        let large = sim.run(&ModelConfig::gpt2_xl());
        assert!(large.mean_service > small.mean_service);
        // And each matches a cold engine for the same model.
        let cold = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .run(&ModelConfig::gpt2_xl());
        assert_eq!(large, cold);
    }

    #[test]
    fn per_class_percentiles_order_by_request_weight() {
        let model = ModelConfig::gpt2_m();
        let light = RequestShape::new(32, 8);
        let heavy = RequestShape::new(512, 64);
        let cfg = ServingConfig {
            arrival_rate_hz: 4.0,
            requests: 400,
            seed: 3,
            mix: vec![
                RequestClass {
                    shape: light,
                    weight: 0.5,
                },
                RequestClass {
                    shape: heavy,
                    weight: 0.5,
                },
            ],
        };
        let r = ServingSim::new(cfg).replica(fixed("a", 100)).run(&model);
        assert_eq!(r.per_class.len(), 2);
        assert_eq!(
            r.per_class[0].completed + r.per_class[1].completed,
            r.completed
        );
        assert!(r.per_class[1].p50_sojourn > r.per_class[0].p50_sojourn);
    }

    #[test]
    fn zero_requests_yield_empty_report() {
        let cfg = ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 0,
            seed: 0,
            mix: mix_one(RequestShape::new(128, 8)),
        };
        let r = ServingSim::new(cfg)
            .replica(fixed("a", 100))
            .run(&ModelConfig::gpt2_m());
        assert_eq!(r.completed, 0);
        assert_eq!(r.mean_service, Duration::ZERO);
        assert_eq!(r.throughput_rps, 0.0);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.per_replica[0].name, "a");
        assert_eq!(r.per_class[0].completed, 0);
    }

    #[test]
    fn weighted_pick_residue_falls_back_to_final_class() {
        // Regression: a draw at (or past) the total weight must pick the
        // *last* class, not silently snap back to mix[0].
        let mix = vec![
            RequestClass {
                shape: RequestShape::new(1, 1),
                weight: 0.1,
            },
            RequestClass {
                shape: RequestShape::new(2, 1),
                weight: 0.2,
            },
            RequestClass {
                shape: RequestShape::new(3, 1),
                weight: 0.3,
            },
        ];
        let total: f64 = mix.iter().map(|c| c.weight).sum();
        // 0.1 + 0.2 + 0.3 != 0.6 exactly in binary; whatever the residue,
        // the fallback must be the final index.
        assert_eq!(pick_class(&mix, total), mix.len() - 1);
        assert_eq!(pick_class(&mix, total + 1e-12), mix.len() - 1);
        // In-range draws still resolve normally.
        assert_eq!(pick_class(&mix, 0.05), 0);
        assert_eq!(pick_class(&mix, 0.15), 1);
        assert_eq!(pick_class(&mix, 0.45), 2);
    }

    #[test]
    fn cluster_of_device_groups_serves_large_model() {
        let model = ModelConfig::gpt_6_7b();
        let cfg = ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 60,
            seed: 9,
            mix: mix_one(RequestShape::new(128, 4)),
        };
        let mut sim = ServingSim::new(cfg)
            .cluster(2, |_| DeviceGroup::new(SystemConfig::ianus(), 2))
            .dispatch(DispatchPolicy::ShortestExpectedJob);
        assert!(sim.fits(&model).is_ok());
        let r = sim.run(&model);
        assert_eq!(r.completed, 60);
        assert_eq!(r.per_replica[0].name, "IANUS x2");
    }

    #[test]
    fn sustainable_rate_brackets_service_rate() {
        let model = ModelConfig::gpt2_m();
        // 2 replicas x 10ms service => cluster capacity 200 req/s.
        let cfg = ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 500,
            seed: 21,
            mix: mix_one(RequestShape::new(99, 1)),
        };
        let mut sim = ServingSim::new(cfg)
            .replica(fixed("a", 100))
            .replica(fixed("b", 100));
        let rate = sim.sustainable_rate(&model, 1.0, 1000.0);
        // Finite-sample Poisson wiggle: the realized stable rate can land
        // a few percent past the nominal 200 req/s capacity.
        assert!(rate > 100.0 && rate < 220.0, "rate {rate}");
        // The probe restores the configured arrival rate.
        assert_eq!(sim.config().arrival_rate_hz, 1.0);
    }

    #[test]
    fn light_load_has_no_queueing() {
        let cfg = ServingConfig {
            arrival_rate_hz: 0.5,
            requests: 64,
            seed: 1,
            mix: mix_one(RequestShape::new(128, 8)),
        };
        #[allow(deprecated)]
        let r = simulate(SystemConfig::ianus(), &ModelConfig::gpt2_m(), &cfg);
        // Sojourn ~ service at low utilization.
        assert!(r.utilization < 0.05, "{:?}", r.utilization);
        let ratio = r.p50_sojourn.as_ns_f64() / r.mean_service.as_ns_f64();
        assert!(ratio < 1.2, "ratio {ratio}");
        assert!(r.stable());
    }

    #[test]
    fn overload_grows_tail_latency() {
        let shape = RequestShape::new(128, 32);
        let service = IanusSystem::new(SystemConfig::ianus())
            .run_request(&ModelConfig::gpt2_m(), shape)
            .total
            .as_secs_f64();
        // Offer 2x the sustainable rate.
        let cfg = ServingConfig {
            arrival_rate_hz: 2.0 / service,
            requests: 200,
            seed: 2,
            mix: mix_one(shape),
        };
        #[allow(deprecated)]
        let r = simulate(SystemConfig::ianus(), &ModelConfig::gpt2_m(), &cfg);
        assert!(r.utilization > 0.95, "{}", r.utilization);
        assert!(r.p99_sojourn > r.p50_sojourn);
        assert!(!r.stable());
    }

    #[test]
    fn faster_device_serves_higher_rate() {
        let shape = RequestShape::new(128, 64);
        let cfg = ServingConfig {
            arrival_rate_hz: 3.0,
            requests: 150,
            seed: 3,
            mix: mix_one(shape),
        };
        #[allow(deprecated)]
        let ianus = simulate(SystemConfig::ianus(), &ModelConfig::gpt2_m(), &cfg);
        #[allow(deprecated)]
        let npu_mem = simulate(SystemConfig::npu_mem(), &ModelConfig::gpt2_m(), &cfg);
        assert!(ianus.p99_sojourn < npu_mem.p99_sojourn);
        assert!(ianus.utilization < npu_mem.utilization);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mix_rejected() {
        let cfg = ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 1,
            seed: 0,
            mix: Vec::new(),
        };
        #[allow(deprecated)]
        let _ = simulate(SystemConfig::ianus(), &ModelConfig::gpt2_m(), &cfg);
    }

    #[test]
    #[should_panic(expected = "no replicas")]
    fn empty_cluster_rejected() {
        let _ = ServingSim::new(ServingConfig::interactive(1.0, 1)).run(&ModelConfig::gpt2_m());
    }
}
