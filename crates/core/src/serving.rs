//! Cluster-scale serving simulation over the unified [`Backend`] trait,
//! at request or token granularity.
//!
//! [`ServingSim`] simulates a **cluster of replica backends** — any mix
//! of `IanusSystem`s, device groups, or the analytical baselines — fed by
//! deterministic, seeded Poisson arrivals of a weighted request-shape
//! mix. Two [`Scheduling`] modes cover the two ways real fleets run:
//!
//! * [`Scheduling::RequestLevel`] — each replica serves one whole request
//!   at a time (classic M/G/k) under a pluggable [`DispatchPolicy`]. This
//!   is the paper's Section 6.1 regime: interactive datacenters that
//!   refuse to wait for batches serve batch 1, and IANUS is built to win
//!   exactly there — its PIM GEMVs make non-batched decode
//!   bandwidth-efficient, so batching buys it almost nothing.
//! * [`Scheduling::IterationLevel`] — continuous batching: replicas
//!   admit requests from a global FCFS queue at every decode-iteration
//!   boundary, up to `max_batch` concurrent sequences, gated by the
//!   backend's KV-cache residency check
//!   ([`Backend::batch_fits`], built on
//!   [`capacity::check_batch`](crate::capacity::check_batch)). This is
//!   where a weight-streaming GPU claws throughput back: its decode
//!   GEMVs become skinny GEMMs whose weight traffic is read once per
//!   iteration, so `max_batch ≥ 4` multiplies its sustainable rate —
//!   at the price of inter-token latency, which is why the comparison
//!   needs both modes to be quantitative.
//!
//! Iteration-level scheduling has two further knobs, both off by
//! default (see [`Scheduling::iteration`] for the plain form):
//!
//! * **Chunked prefill** (`prefill_chunk`): instead of prefilling a
//!   whole prompt the moment a request is admitted — stalling every
//!   resident decode for the full prompt duration — the scheduler
//!   splits the prompt into chunks and runs **mixed iterations**: one
//!   chunk of one sequence's prefill plus one decode step of the
//!   resident batch, priced as [`Backend::prefill_time`] on the chunk
//!   plus [`Backend::decode_time`] on the decoding sequences. Long
//!   prompts then stretch each resident ITL sample by one *chunk*, not
//!   one *prompt*.
//! * **KV-pressure preemption** (`preempt`): admission gates on the
//!   batch's *current* KV lengths instead of every sequence's final
//!   length, so more sequences are admitted up front; when KV growth
//!   later makes the batch outgrow device memory, the scheduler evicts
//!   the lowest-[`Priority`], youngest decoding sequence to a swap
//!   queue — charging [`Backend::kv_transfer_time`] for the KV
//!   swap-out, and again for the swap-in when it is re-admitted —
//!   and reports per-request preemption counts in the
//!   [`ServingReport`].
//!
//! The result is a [`ServingReport`] with sojourn, **time-to-first-token
//! and inter-token-latency** percentiles, per-class and per-replica
//! statistics, and a [`ServingSim::sustainable_rate`] search helper that
//! works under both modes.
//!
//! Device step costs come from the same simulations the figures use,
//! memoized per replica: whole-request service times per `(model,
//! shape)`, prefill times per `(model, tokens)`, and decode-iteration
//! times per `(model, batch)` on a geometric grid of past-lengths with
//! piecewise-linear interpolation between grid points — so rate sweeps
//! stay queueing-only fast in either mode.
//!
//! # Examples
//!
//! A two-replica IANUS cluster under least-loaded dispatch:
//!
//! ```
//! use ianus_core::serving::{DispatchPolicy, ServingConfig, ServingSim};
//! use ianus_core::{IanusSystem, SystemConfig};
//! use ianus_model::ModelConfig;
//!
//! let report = ServingSim::new(ServingConfig::interactive(6.0, 200))
//!     .replica(IanusSystem::new(SystemConfig::ianus()))
//!     .replica(IanusSystem::new(SystemConfig::ianus()))
//!     .dispatch(DispatchPolicy::LeastLoaded)
//!     .run(&ModelConfig::gpt2_m());
//! assert_eq!(report.completed, 200);
//! assert_eq!(report.per_replica.len(), 2);
//! assert!(report.utilization > 0.0 && report.utilization <= 1.0);
//! ```
//!
//! The same cluster under continuous batching, with first-token and
//! inter-token tails:
//!
//! ```
//! use ianus_core::serving::{Scheduling, ServingConfig, ServingSim};
//! use ianus_core::{IanusSystem, SystemConfig};
//! use ianus_model::ModelConfig;
//!
//! let report = ServingSim::new(ServingConfig::interactive(6.0, 200))
//!     .replica(IanusSystem::new(SystemConfig::ianus()))
//!     .scheduling(Scheduling::iteration(4))
//!     .run(&ModelConfig::gpt2_m());
//! assert_eq!(report.completed, 200);
//! assert!(report.ttft.p99 >= report.ttft.p50);
//! assert!(report.inter_token.p50.as_ms_f64() > 0.0);
//! assert!(report.peak_batch >= 1 && report.peak_batch <= 4);
//! ```

#![deny(missing_docs)]

use crate::backend::Backend;
use ianus_model::{ModelConfig, RequestShape};
use ianus_sim::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Scheduling tier of a request class.
///
/// Priorities only matter under KV-pressure preemption (the `preempt`
/// knob of [`Scheduling::IterationLevel`]): when a replica must shed KV
/// pressure, it evicts [`Priority::Batch`] sequences before
/// [`Priority::Interactive`] ones (and the youngest sequence within a
/// tier). Admission itself stays FCFS in both modes — the tier decides
/// who *pays* for overcommit, not who runs first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Priority {
    /// Throughput-oriented background work (evicted first).
    Batch,
    /// Latency-sensitive interactive traffic (evicted last).
    Interactive,
}

/// One entry of the request-shape mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestClass {
    /// The request shape.
    pub shape: RequestShape,
    /// Relative weight of this class in the mix.
    pub weight: f64,
    /// Scheduling tier (see [`Priority`]).
    pub priority: Priority,
}

impl RequestClass {
    /// An [`Priority::Interactive`] class of `shape` with `weight`.
    pub fn new(shape: RequestShape, weight: f64) -> Self {
        RequestClass {
            shape,
            weight,
            priority: Priority::Interactive,
        }
    }

    /// Replaces the priority tier (builder style).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }
}

/// Configuration of a serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Mean arrival rate in requests per second (Poisson process),
    /// aggregated over the whole cluster.
    pub arrival_rate_hz: f64,
    /// Number of requests to simulate.
    pub requests: u64,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
    /// Request-shape mix (weights need not sum to one).
    pub mix: Vec<RequestClass>,
}

impl ServingConfig {
    /// A typical interactive mix: mostly short chat turns, some longer
    /// completions.
    pub fn interactive(arrival_rate_hz: f64, requests: u64) -> Self {
        ServingConfig {
            arrival_rate_hz,
            requests,
            seed: 0x5EED,
            mix: vec![
                RequestClass::new(RequestShape::new(128, 32), 0.6),
                RequestClass::new(RequestShape::new(256, 64), 0.3),
                RequestClass::new(RequestShape::new(512, 256), 0.1),
            ],
        }
    }

    /// Replaces the seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Replaces the arrival rate (builder style).
    pub fn with_rate(mut self, arrival_rate_hz: f64) -> Self {
        self.arrival_rate_hz = arrival_rate_hz;
        self
    }

    /// A decode-heavy mix: short prompts, long generations. This is the
    /// regime where iteration-level batching pays on weight-streaming
    /// backends (decode dominates, and batched decode amortizes weight
    /// traffic), and where batch-1 hardware like IANUS must win on raw
    /// per-token latency instead.
    pub fn decode_heavy(arrival_rate_hz: f64, requests: u64) -> Self {
        ServingConfig {
            arrival_rate_hz,
            requests,
            seed: 0x5EED,
            mix: vec![
                RequestClass::new(RequestShape::new(32, 128), 0.5),
                RequestClass::new(RequestShape::new(64, 256), 0.35),
                RequestClass::new(RequestShape::new(128, 512), 0.15),
            ],
        }
    }

    /// A two-tier mix of mostly short interactive turns plus a tail of
    /// long-prompt [`Priority::Batch`] jobs (document summarization /
    /// ingestion). This is the regime chunked prefill exists for: a
    /// monolithic 896-token prefill stalls every resident decode for the
    /// whole prompt, so the interactive tier's ITL tail tracks the
    /// *batch* tier's prompt length until prefill is chunked — and the
    /// regime where preemption's eviction order (batch before
    /// interactive) earns its keep.
    pub fn long_prompt(arrival_rate_hz: f64, requests: u64) -> Self {
        ServingConfig {
            arrival_rate_hz,
            requests,
            seed: 0x5EED,
            mix: vec![
                RequestClass::new(RequestShape::new(128, 32), 0.75),
                RequestClass::new(RequestShape::new(896, 64), 0.25).with_priority(Priority::Batch),
            ],
        }
    }
}

/// At what granularity the cluster schedules work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scheduling {
    /// Each replica serves one whole request at a time; arriving
    /// requests are routed by the [`DispatchPolicy`]. The paper's
    /// batch-1 interactive regime (Section 6.1).
    RequestLevel,
    /// Continuous batching: every replica admits requests from one
    /// global FCFS queue at each decode-iteration boundary, up to
    /// `max_batch` concurrent sequences, gated by the backend's
    /// KV-residency check ([`Backend::batch_fits`]). Admitted requests
    /// prefill immediately (no waiting to form batches), then join the
    /// running decode batch; each iteration emits one token per active
    /// sequence. The [`DispatchPolicy`] is ignored in this mode — the
    /// global queue *is* the dispatch.
    ///
    /// [`Scheduling::iteration`] builds the plain form (monolithic
    /// prefill, no preemption); the fields document the two extensions.
    IterationLevel {
        /// Maximum concurrent sequences per replica (≥ 1).
        max_batch: u32,
        /// Chunked prefill: `Some(n)` splits every prompt into chunks of
        /// at most `n` tokens and interleaves one chunk per iteration
        /// with the resident batch's decode step (a *mixed* iteration,
        /// priced as the chunk's [`Backend::prefill_time`] plus the
        /// decode batch's [`Backend::decode_time`]). `None` prefills
        /// each prompt whole in one iteration. Must be positive when
        /// set.
        prefill_chunk: Option<u64>,
        /// KV-pressure preemption: admission gates on *current* KV
        /// lengths (optimistic overcommit), and when batch KV growth no
        /// longer fits, the lowest-[`Priority`], youngest decoding
        /// sequence is swapped out (charged
        /// [`Backend::kv_transfer_time`] each way) until pressure
        /// clears, then re-admitted ahead of new arrivals. When `false`,
        /// admission gates on final lengths, so pressure can never
        /// reject a batch mid-flight.
        preempt: bool,
    },
}

impl Scheduling {
    /// Iteration-level continuous batching with monolithic prefill and
    /// no preemption — the common form, and the PR 2 behavior.
    pub fn iteration(max_batch: u32) -> Self {
        Scheduling::IterationLevel {
            max_batch,
            prefill_chunk: None,
            preempt: false,
        }
    }
}

/// How arriving requests are assigned to replicas (request-level
/// scheduling only; iteration-level pulls from a global FCFS queue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DispatchPolicy {
    /// One global FCFS queue: each request in arrival order goes to the
    /// replica that frees up earliest (classic M/G/k). Implicitly
    /// speed-aware — a fast replica frees up sooner.
    FcfsSingleQueue,
    /// Route at arrival to the replica with the *fewest outstanding
    /// requests* (queued + in service), ignoring how fast that replica
    /// is — the load-balancer view when per-request cost is unknown.
    LeastLoaded,
    /// Route at arrival to the replica with the smallest *expected
    /// completion time* for this request — backlog plus this shape's
    /// memoized service time on that replica. On heterogeneous clusters
    /// this steers work toward faster replicas.
    ShortestExpectedJob,
}

/// p50/p95/p99 of one latency distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyPercentiles {
    /// Median.
    pub p50: Duration,
    /// 95th percentile.
    pub p95: Duration,
    /// 99th percentile.
    pub p99: Duration,
}

impl LatencyPercentiles {
    /// All-zero percentiles (empty distribution).
    pub const ZERO: LatencyPercentiles = LatencyPercentiles {
        p50: Duration::ZERO,
        p95: Duration::ZERO,
        p99: Duration::ZERO,
    };

    /// Percentiles of an ascending-sorted sample of seconds.
    fn from_sorted(sorted: &[f64]) -> Self {
        LatencyPercentiles {
            p50: percentile(sorted, 0.50),
            p95: percentile(sorted, 0.95),
            p99: percentile(sorted, 0.99),
        }
    }
}

/// Sojourn statistics of one request class.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassReport {
    /// The class's request shape.
    pub shape: RequestShape,
    /// Requests of this class completed.
    pub completed: u64,
    /// Median sojourn (queueing + service) time.
    pub p50_sojourn: Duration,
    /// 95th-percentile sojourn time.
    pub p95_sojourn: Duration,
    /// 99th-percentile sojourn time.
    pub p99_sojourn: Duration,
    /// KV swap-outs suffered by this class's requests (0 unless
    /// preemption is enabled). Under the eviction order, batch-tier
    /// classes absorb these first.
    pub preemptions: u64,
}

/// Utilization statistics of one replica.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplicaReport {
    /// The replica's backend name.
    pub name: String,
    /// Requests this replica served.
    pub completed: u64,
    /// Fraction of the cluster makespan this replica was busy.
    pub utilization: f64,
}

/// Result of a serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests completed.
    pub completed: u64,
    /// Mean *unloaded* device service time across completed requests:
    /// what each request would cost alone on its replica (under
    /// iteration-level scheduling, prefill plus its batch-1 decode
    /// steps). Contention — queueing and batch stretch — shows up in
    /// the sojourn percentiles, not here, so [`stable`](Self::stable)'s
    /// tail bound means the same thing in both scheduling modes.
    pub mean_service: Duration,
    /// Median sojourn (queueing + service) time.
    pub p50_sojourn: Duration,
    /// 95th-percentile sojourn time.
    pub p95_sojourn: Duration,
    /// 99th-percentile sojourn time.
    pub p99_sojourn: Duration,
    /// Time-to-first-token percentiles: arrival to the end of the
    /// request's prefill (which produces the first output token). Under
    /// request-level scheduling this is queueing wait plus prefill time.
    pub ttft: LatencyPercentiles,
    /// Inter-token latency percentiles, sampled per generated token.
    /// Under iteration-level scheduling each sample is the gap between
    /// a sequence's consecutive token emissions — decode iterations
    /// *plus* any co-admitted prefills that stalled the batch; under
    /// request-level it is the request's generation time divided by its
    /// step count. Requests with a single output token contribute no
    /// samples.
    pub inter_token: LatencyPercentiles,
    /// Largest number of sequences concurrently resident on one replica
    /// (decoding or prefilling; always 1 under request-level
    /// scheduling, and at least 1 in either mode once anything is
    /// served).
    pub peak_batch: u32,
    /// Largest projected memory occupancy any admission (or, under
    /// preemption, any iteration's pressure check) saw — weights plus
    /// batch KV, as a fraction of device memory. Admissions project
    /// final lengths by default and *current* lengths under preemption.
    /// Stays 0 under request-level scheduling and for backends without
    /// a memory model. Never exceeds 1 without preemption (the gate
    /// rejects first); under preemption a value above 1 records the
    /// iterations where nothing was evictable (a lone or all-prefilling
    /// batch) and the scheduler knowingly ran overcommitted.
    pub peak_kv_occupancy: f64,
    /// Total KV swap-out events across the run (0 unless the
    /// scheduling's `preempt` knob is on). Every swap-out is eventually
    /// paired with a swap-in — preempted sequences always complete.
    pub preemptions: u64,
    /// Requests that were preempted at least once.
    pub preempted_requests: u64,
    /// Largest number of swap-outs any single request suffered.
    pub max_preemptions: u32,
    /// Mean busy fraction across replicas.
    pub utilization: f64,
    /// Completed requests per second of simulated time.
    pub throughput_rps: f64,
    /// Per-class sojourn percentiles (same order as the config's mix).
    pub per_class: Vec<ClassReport>,
    /// Per-replica load (same order as the replicas were added).
    pub per_replica: Vec<ReplicaReport>,
}

impl ServingReport {
    /// Whether the system was stable (utilization below one and tail
    /// latency bounded relative to service time).
    ///
    /// The tail bound matters most on wide clusters over a finite
    /// horizon, where measured utilization saturates slowly: an
    /// overloaded 8-replica run can sit just under the utilization gate
    /// while p99 sojourn has already blown out to dozens of service
    /// times.
    pub fn stable(&self) -> bool {
        self.utilization < 0.95
            && self.p99_sojourn.as_ns_f64() < 20.0 * self.mean_service.as_ns_f64()
    }

    /// The all-zero report of an empty (zero-request) simulation.
    fn empty(replica_names: Vec<String>, mix: &[RequestClass]) -> Self {
        ServingReport {
            completed: 0,
            mean_service: Duration::ZERO,
            p50_sojourn: Duration::ZERO,
            p95_sojourn: Duration::ZERO,
            p99_sojourn: Duration::ZERO,
            ttft: LatencyPercentiles::ZERO,
            inter_token: LatencyPercentiles::ZERO,
            peak_batch: 0,
            peak_kv_occupancy: 0.0,
            preemptions: 0,
            preempted_requests: 0,
            max_preemptions: 0,
            utilization: 0.0,
            throughput_rps: 0.0,
            per_class: mix
                .iter()
                .map(|c| ClassReport {
                    shape: c.shape,
                    completed: 0,
                    p50_sojourn: Duration::ZERO,
                    p95_sojourn: Duration::ZERO,
                    p99_sojourn: Duration::ZERO,
                    preemptions: 0,
                })
                .collect(),
            per_replica: replica_names
                .into_iter()
                .map(|name| ReplicaReport {
                    name,
                    completed: 0,
                    utilization: 0.0,
                })
                .collect(),
        }
    }
}

/// Picks the mix class for a uniform draw in `[0, total_weight)`.
///
/// Floating-point subtraction can leave the residual at or slightly above
/// the final weight even for in-range draws; the final class is the
/// fallback so such draws never silently snap back to `mix[0]`.
fn pick_class(mix: &[RequestClass], draw: f64) -> usize {
    let mut rem = draw;
    for (i, class) in mix.iter().enumerate() {
        if rem < class.weight {
            return i;
        }
        rem -= class.weight;
    }
    mix.len() - 1
}

/// Past-lengths below this are always priced exactly; above it, decode
/// times are sampled on a geometric grid and interpolated.
const DECODE_GRID_START: u64 = 4;

/// Bracketing grid points `(lo, hi]` around `past` on the geometric
/// (×5/4) decode-sampling grid starting at [`DECODE_GRID_START`].
/// Requires `past > DECODE_GRID_START`; returns `lo ≤ past ≤ hi`.
fn decode_grid_bracket(past: u64) -> (u64, u64) {
    let mut lo = DECODE_GRID_START;
    loop {
        let hi = (lo * 5 / 4).max(lo + 1);
        if past <= hi {
            return (lo, hi);
        }
        lo = hi;
    }
}

struct Replica {
    backend: Box<dyn Backend>,
    /// Memoized service times, keyed by model and shape so one engine
    /// can serve different models across runs. `ModelConfig::name` is
    /// the model's identity here: two configs sharing a name are
    /// assumed to be the same model (true for the built-in zoo; callers
    /// mutating a config's fields must also rename it).
    service: HashMap<(&'static str, RequestShape), Duration>,
    /// Memoized prefill times in seconds, keyed by (model, tokens).
    prefill: HashMap<(&'static str, u64), f64>,
    /// Memoized decode-iteration times in seconds at grid past-lengths,
    /// keyed by (model, batch, past). Queries between grid points are
    /// piecewise-linearly interpolated — decode latency varies smoothly
    /// with past length (linearly growing KV traffic), so the geometric
    /// grid keeps per-(model, batch) device simulations to a few dozen
    /// while staying accurate to well under a percent.
    decode: HashMap<(&'static str, u32, u64), f64>,
    /// Memoized unloaded batch-1 service (prefill + all decode steps) in
    /// seconds, keyed by (model, shape) — iteration-level `mean_service`.
    ideal: HashMap<(&'static str, RequestShape), f64>,
}

impl Replica {
    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
        let key = (model.name, shape);
        if let Some(&d) = self.service.get(&key) {
            return d;
        }
        let d = self.backend.service_time(model, shape);
        self.service.insert(key, d);
        d
    }

    fn prefill_secs(&mut self, model: &ModelConfig, tokens: u64) -> f64 {
        let key = (model.name, tokens);
        if let Some(&s) = self.prefill.get(&key) {
            return s;
        }
        let s = self.backend.prefill_time(model, tokens).as_secs_f64();
        self.prefill.insert(key, s);
        s
    }

    /// Exact (memoized) decode-iteration time at a grid past-length.
    fn decode_exact_secs(&mut self, model: &ModelConfig, past: u64, batch: u32) -> f64 {
        let key = (model.name, batch, past);
        if let Some(&s) = self.decode.get(&key) {
            return s;
        }
        let s = self.backend.decode_time(model, past, batch).as_secs_f64();
        self.decode.insert(key, s);
        s
    }

    /// Decode-iteration time at an arbitrary past-length: exact below
    /// [`DECODE_GRID_START`], interpolated between grid samples above.
    /// The grid is clamped to the model's positional table so sampling
    /// never prices a past the model cannot attend to.
    fn decode_secs(&mut self, model: &ModelConfig, past: u64, batch: u32) -> f64 {
        let past = past.max(1);
        if past <= DECODE_GRID_START {
            return self.decode_exact_secs(model, past, batch);
        }
        let (lo, hi) = decode_grid_bracket(past);
        let hi = hi.min(model.max_seq.saturating_sub(1)).max(past);
        if hi == lo {
            return self.decode_exact_secs(model, lo, batch);
        }
        let a = self.decode_exact_secs(model, lo, batch);
        let b = self.decode_exact_secs(model, hi, batch);
        a + (b - a) * (past - lo) as f64 / (hi - lo) as f64
    }

    /// KV swap cost (one direction) for a sequence holding `tokens` of
    /// context — charged once at swap-out and once at swap-in. Not
    /// memoized: every backend prices it with plain bandwidth
    /// arithmetic.
    fn kv_transfer_secs(&mut self, model: &ModelConfig, tokens: u64) -> f64 {
        self.backend.kv_transfer_time(model, tokens).as_secs_f64()
    }

    /// The request's *unloaded batch-1* service time: prefill plus every
    /// decode step alone on the device. This is the iteration-level
    /// analogue of the request-level service time (it matches to within
    /// decode-grid interpolation error), and what `mean_service` reports
    /// in both modes — so [`ServingReport::stable`]'s tail bound is
    /// equally strict whether or not batching stretches residency.
    fn ideal_service_secs(&mut self, model: &ModelConfig, shape: RequestShape) -> f64 {
        let key = (model.name, shape);
        if let Some(&s) = self.ideal.get(&key) {
            return s;
        }
        let mut s = self.prefill_secs(model, shape.input);
        for past in shape.input..shape.input + shape.generation_steps() {
            s += self.decode_secs(model, past, 1);
        }
        self.ideal.insert(key, s);
        s
    }
}

/// One generated arrival of the Poisson trace.
#[derive(Debug, Clone, Copy)]
struct Arrival {
    /// Arrival time in seconds.
    at: f64,
    /// Global arrival index (FCFS order; eviction's "youngest").
    idx: u64,
    /// Index into the config's mix.
    class: usize,
    /// The request shape (denormalized from the class).
    shape: RequestShape,
    /// Scheduling tier (denormalized from the class).
    priority: Priority,
}

/// One sequence resident in a replica's batch (prefilling or decoding)
/// or parked in its swap queue.
#[derive(Debug, Clone, Copy)]
struct ActiveSeq {
    shape: RequestShape,
    /// Arrival time (for sojourn accounting).
    arrival: f64,
    /// Global arrival index (admission order; eviction's "youngest").
    idx: u64,
    /// Its unloaded batch-1 service time (for `mean_service`).
    service: f64,
    /// Index into the config's mix.
    class: usize,
    /// Scheduling tier (evict `Batch` before `Interactive`).
    priority: Priority,
    /// Prompt tokens prefilled so far; the sequence is *prefilling*
    /// until this reaches `shape.input`, then *decoding*.
    prefilled: u64,
    /// Tokens currently in its KV cache (prefilled prompt + generated).
    past: u64,
    /// Decode iterations left.
    remaining: u64,
    /// When its previous token was emitted. Inter-token samples are
    /// gaps between consecutive emissions, so a co-admitted request's
    /// prefill chunk stalling the batch — or a swap-out dwell — shows
    /// up in the resident sequences' ITL, not just in sojourn.
    last_token: f64,
    /// KV swap-outs suffered so far.
    preemptions: u32,
}

impl ActiveSeq {
    /// Whether the prompt is fully prefilled (the sequence decodes).
    fn decoding(&self) -> bool {
        self.prefilled >= self.shape.input
    }

    /// The sequence's KV footprint *right now*, as a shape whose
    /// [`RequestShape::total_tokens`] is `tokens`: the currency of the
    /// optimistic (current-length) residency checks under preemption.
    /// The tokens ride in `output` with a one-token `input` so
    /// [`check_batch`](crate::capacity::check_batch)'s activation term
    /// prices a single live decode row, not a phantom `tokens`-wide
    /// prefill.
    fn kv_shape(tokens: u64) -> RequestShape {
        RequestShape {
            input: 1,
            output: tokens.max(1),
        }
    }
}

/// Raw samples out of either scheduling engine, before percentile
/// assembly.
struct RunStats {
    sojourns: Vec<f64>,
    class_sojourns: Vec<Vec<f64>>,
    ttfts: Vec<f64>,
    itls: Vec<f64>,
    busy: Vec<f64>,
    served: Vec<u64>,
    /// Sum of per-request *unloaded* service times: the whole-request
    /// device time under request-level scheduling, and the memoized
    /// batch-1 prefill + decode-step sum under iteration-level (the two
    /// agree to within decode-grid interpolation error). Keeping the
    /// batch-stretch *out* of this sum means [`ServingReport::stable`]'s
    /// `p99 < 20 × mean_service` bound is equally strict in both modes —
    /// pricing residency here instead lets finite-horizon overload pass
    /// as "stable" once batching inflates the denominator.
    service_sum: f64,
    last_finish: f64,
    peak_batch: u32,
    peak_kv_occupancy: f64,
    preemptions: u64,
    class_preemptions: Vec<u64>,
    preempted_requests: u64,
    max_preemptions: u32,
}

impl RunStats {
    fn new(replicas: usize, classes: usize, requests: u64) -> Self {
        RunStats {
            sojourns: Vec::with_capacity(requests as usize),
            class_sojourns: vec![Vec::new(); classes],
            ttfts: Vec::with_capacity(requests as usize),
            itls: Vec::new(),
            busy: vec![0.0; replicas],
            served: vec![0u64; replicas],
            service_sum: 0.0,
            last_finish: 0.0,
            peak_batch: 0,
            peak_kv_occupancy: 0.0,
            preemptions: 0,
            class_preemptions: vec![0u64; classes],
            preempted_requests: 0,
            max_preemptions: 0,
        }
    }

    /// Records one completed request: its unloaded service time and how
    /// often it was preempted along the way.
    fn complete(
        &mut self,
        replica: usize,
        class: usize,
        arrival: f64,
        service: f64,
        finish: f64,
        preemptions: u32,
    ) {
        self.sojourns.push(finish - arrival);
        self.class_sojourns[class].push(finish - arrival);
        self.service_sum += service;
        self.served[replica] += 1;
        self.last_finish = self.last_finish.max(finish);
        self.class_preemptions[class] += u64::from(preemptions);
        if preemptions > 0 {
            self.preempted_requests += 1;
            self.max_preemptions = self.max_preemptions.max(preemptions);
        }
    }
}

/// Builder-style cluster serving engine over [`Backend`] replicas.
///
/// Construct with a [`ServingConfig`], add one or more replicas, pick a
/// [`DispatchPolicy`], then [`run`](Self::run). The engine owns its
/// replicas; service-time memos survive across runs, so rate sweeps and
/// [`sustainable_rate`](Self::sustainable_rate) searches re-simulate no
/// device.
pub struct ServingSim {
    cfg: ServingConfig,
    policy: DispatchPolicy,
    scheduling: Scheduling,
    replicas: Vec<Replica>,
}

impl ServingSim {
    /// Starts a simulation builder with no replicas, FCFS dispatch, and
    /// request-level scheduling.
    pub fn new(cfg: ServingConfig) -> Self {
        ServingSim {
            cfg,
            policy: DispatchPolicy::FcfsSingleQueue,
            scheduling: Scheduling::RequestLevel,
            replicas: Vec::new(),
        }
    }

    /// Adds one replica backend.
    pub fn replica(self, backend: impl Backend + 'static) -> Self {
        self.boxed_replica(Box::new(backend))
    }

    /// Adds an already-boxed replica (for heterogeneous `dyn` lists).
    pub fn boxed_replica(mut self, backend: Box<dyn Backend>) -> Self {
        self.replicas.push(Replica {
            backend,
            service: HashMap::new(),
            prefill: HashMap::new(),
            decode: HashMap::new(),
            ideal: HashMap::new(),
        });
        self
    }

    /// Adds `n` replicas built by `make(index)`.
    pub fn cluster<B: Backend + 'static>(
        mut self,
        n: usize,
        mut make: impl FnMut(usize) -> B,
    ) -> Self {
        for i in 0..n {
            self = self.replica(make(i));
        }
        self
    }

    /// Sets the dispatch policy (request-level scheduling only).
    pub fn dispatch(mut self, policy: DispatchPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the scheduling granularity (builder style).
    pub fn scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Changes the scheduling granularity in place, keeping replicas and
    /// their memos — the cheap way to compare modes on one engine.
    pub fn set_scheduling(&mut self, scheduling: Scheduling) {
        self.scheduling = scheduling;
    }

    /// Number of replicas added so far.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The current configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Changes the arrival rate in place, keeping replicas and their
    /// service memos — the cheap way to run a rate sweep on one engine.
    pub fn set_rate(&mut self, arrival_rate_hz: f64) {
        self.cfg.arrival_rate_hz = arrival_rate_hz;
    }

    /// Checks that `model` is resident on every replica.
    ///
    /// # Errors
    ///
    /// The first replica's [`CapacityError`](crate::capacity::CapacityError),
    /// tagged with its index, if any replica cannot hold the model.
    pub fn fits(&self, model: &ModelConfig) -> Result<(), (usize, crate::capacity::CapacityError)> {
        for (i, r) in self.replicas.iter().enumerate() {
            r.backend.fits(model).map_err(|e| (i, e))?;
        }
        Ok(())
    }

    /// Runs the simulation for `model` and reports cluster statistics.
    ///
    /// Zero configured requests yield an all-zero report rather than a
    /// division by zero.
    ///
    /// # Panics
    ///
    /// Panics if no replicas were added, the mix is empty, a weight is
    /// non-positive, the arrival rate is non-positive, an
    /// iteration-level `max_batch` or `prefill_chunk` is zero, or
    /// (iteration-level only) a mix shape can never be admitted on some
    /// replica even with an empty batch.
    pub fn run(&mut self, model: &ModelConfig) -> ServingReport {
        assert!(!self.replicas.is_empty(), "serving cluster has no replicas");
        assert!(!self.cfg.mix.is_empty(), "request mix must be non-empty");
        assert!(
            self.cfg.arrival_rate_hz > 0.0,
            "arrival rate must be positive"
        );
        assert!(
            self.cfg.mix.iter().all(|c| c.weight > 0.0),
            "weights must be positive"
        );
        if self.cfg.requests == 0 {
            return ServingReport::empty(
                self.replicas
                    .iter()
                    .map(|r| r.backend.name().to_string())
                    .collect(),
                &self.cfg.mix,
            );
        }
        let stats = match self.scheduling {
            Scheduling::RequestLevel => self.run_request_level(model),
            Scheduling::IterationLevel {
                max_batch,
                prefill_chunk,
                preempt,
            } => {
                assert!(max_batch >= 1, "max_batch must be at least 1");
                assert!(prefill_chunk != Some(0), "prefill chunk must be positive");
                self.run_iteration_level(model, max_batch, prefill_chunk, preempt)
            }
        };
        self.assemble(stats)
    }

    /// Seeded Poisson arrivals of the weighted mix. The draw order (one
    /// inter-arrival draw, then one class draw, per request) is shared by
    /// both scheduling modes, so a seed denotes the *same* trace in both.
    fn generate_arrivals(&self) -> Vec<Arrival> {
        let total_weight: f64 = self.cfg.mix.iter().map(|c| c.weight).sum();
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut now = 0.0f64;
        (0..self.cfg.requests)
            .map(|idx| {
                // Exponential inter-arrival.
                let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                now += -u.ln() / self.cfg.arrival_rate_hz;
                let class = pick_class(&self.cfg.mix, rng.gen_range(0.0..total_weight));
                Arrival {
                    at: now,
                    idx,
                    class,
                    shape: self.cfg.mix[class].shape,
                    priority: self.cfg.mix[class].priority,
                }
            })
            .collect()
    }

    /// Classic M/G/k: whole requests routed at arrival by the dispatch
    /// policy, each replica serving one request at a time.
    fn run_request_level(&mut self, model: &ModelConfig) -> RunStats {
        // Memoize every (replica, shape) service and prefill time up
        // front: ShortestExpectedJob consults all replicas per arrival,
        // and TTFT needs the prefill split.
        let shapes: Vec<RequestShape> = self.cfg.mix.iter().map(|c| c.shape).collect();
        for r in &mut self.replicas {
            for &shape in &shapes {
                r.service_time(model, shape);
                r.prefill_secs(model, shape.input);
            }
        }

        let n = self.replicas.len();
        let mut free = vec![0.0f64; n]; // per-replica next-free time
                                        // Outstanding finish times per replica (FIFO per replica, so the
                                        // front is always the earliest) — LeastLoaded's queue lengths.
        let mut outstanding: Vec<std::collections::VecDeque<f64>> =
            vec![std::collections::VecDeque::new(); n];
        let mut stats = RunStats::new(n, self.cfg.mix.len(), self.cfg.requests);
        stats.peak_batch = 1;

        for arrival in self.generate_arrivals() {
            let now = arrival.at;
            let shape = arrival.shape;
            // Retire requests finished by this arrival instant.
            for q in &mut outstanding {
                while q.front().is_some_and(|&f| f <= now) {
                    q.pop_front();
                }
            }

            let replica = match self.policy {
                DispatchPolicy::FcfsSingleQueue => argmin(&free, |&f| f),
                DispatchPolicy::LeastLoaded => argmin(&outstanding, |q| q.len()),
                DispatchPolicy::ShortestExpectedJob => {
                    let mut best = 0usize;
                    let mut best_done = f64::INFINITY;
                    for (i, (&f, r)) in free.iter().zip(&self.replicas).enumerate() {
                        let done = f.max(now) + r.service[&(model.name, shape)].as_secs_f64();
                        if done < best_done {
                            best_done = done;
                            best = i;
                        }
                    }
                    best
                }
            };

            let s = self.replicas[replica].service[&(model.name, shape)].as_secs_f64();
            let prefill = self.replicas[replica].prefill[&(model.name, shape.input)];
            let start = now.max(free[replica]);
            let finish = start + s;
            free[replica] = finish;
            outstanding[replica].push_back(finish);
            stats.busy[replica] += s;
            stats.served[replica] += 1;
            stats.service_sum += s;
            stats.sojourns.push(finish - now);
            stats.class_sojourns[arrival.class].push(finish - now);
            stats.ttfts.push(start - now + prefill);
            let steps = shape.generation_steps();
            if steps > 0 {
                let itl = (s - prefill).max(0.0) / steps as f64;
                stats.itls.extend(std::iter::repeat_n(itl, steps as usize));
            }
            stats.last_finish = stats.last_finish.max(finish);
        }
        stats
    }

    /// Continuous batching: one global FCFS queue; every replica admits
    /// at each iteration boundary (KV-gated), then runs one iteration —
    /// at most one prefill chunk (the whole prompt when chunking is
    /// off) plus one decode step over its fully-prefilled sequences.
    /// With `preempt`, admission overcommits against *current* KV
    /// lengths and KV pressure evicts decoding sequences to a
    /// replica-local swap queue.
    fn run_iteration_level(
        &mut self,
        model: &ModelConfig,
        max_batch: u32,
        prefill_chunk: Option<u64>,
        preempt: bool,
    ) -> RunStats {
        let chunk_size = prefill_chunk.unwrap_or(u64::MAX);
        let n = self.replicas.len();
        let mut queue: std::collections::VecDeque<Arrival> = self.generate_arrivals().into();
        let total = self.cfg.requests;
        let mut clock = vec![0.0f64; n]; // per-replica iteration clock
        let mut batches: Vec<Vec<ActiveSeq>> = vec![Vec::new(); n];
        // Swapped-out sequences per replica (their KV lives host-side;
        // FIFO re-admission ahead of new arrivals).
        let mut swapped: Vec<std::collections::VecDeque<ActiveSeq>> =
            vec![std::collections::VecDeque::new(); n];
        let mut stats = RunStats::new(n, self.cfg.mix.len(), total);
        let mut done = 0u64;

        while done < total {
            // The next actionable replica: the earliest iteration
            // boundary among replicas that hold work (resident or
            // swapped) or could admit the queue head (idle replicas
            // fast-forward to it).
            let mut next: Option<(usize, f64)> = None;
            for (r, batch) in batches.iter().enumerate() {
                let at = if !batch.is_empty() || !swapped[r].is_empty() {
                    clock[r]
                } else if let Some(front) = queue.front() {
                    clock[r].max(front.at)
                } else {
                    continue;
                };
                if next.is_none_or(|(_, best)| at < best) {
                    next = Some((r, at));
                }
            }
            let Some((r, at)) = next else {
                unreachable!("requests outstanding but no replica actionable")
            };
            clock[r] = at;

            // Swap-ins first: preempted sequences are older than
            // anything still queued, so they are *offered* freed slots
            // before new admissions at every boundary (a head that does
            // not yet fit lets newer arrivals pass — FIFO among the
            // swapped, not a hard barrier against the queue). A swapped
            // sequence re-enters when one projected iteration of KV
            // growth (its own and the residents') still fits — checking
            // grown lengths, not current ones, keeps a re-admission
            // from bouncing straight back out through the pressure
            // check below, which would charge both transfer costs for
            // zero progress. When the batch is empty it re-enters
            // unconditionally, which guarantees every preempted
            // sequence eventually completes.
            while (batches[r].len() as u32) < max_batch {
                let Some(cand) = swapped[r].front() else {
                    break;
                };
                if !batches[r].is_empty() {
                    let grown = |s: &ActiveSeq| {
                        ActiveSeq::kv_shape(if s.decoding() && s.remaining > 0 {
                            s.past + 1
                        } else {
                            s.past
                        })
                    };
                    let mut projected: Vec<RequestShape> = batches[r].iter().map(grown).collect();
                    projected.push(grown(cand));
                    match self.replicas[r].backend.batch_fits(model, &projected) {
                        Ok(occupancy) => {
                            stats.peak_kv_occupancy = stats.peak_kv_occupancy.max(occupancy);
                        }
                        Err(_) => break,
                    }
                }
                let seq = swapped[r].pop_front().expect("front just peeked");
                let swap_in = self.replicas[r].kv_transfer_secs(model, seq.past);
                clock[r] += swap_in;
                stats.busy[r] += swap_in;
                stats.peak_batch = stats.peak_batch.max(batches[r].len() as u32 + 1);
                batches[r].push(seq);
            }

            // Admission at the iteration boundary: FCFS from the global
            // queue, bounded by batch slots and KV residency — the
            // residents' *final* lengths normally, their *current*
            // lengths (optimistic overcommit) under preemption.
            while (batches[r].len() as u32) < max_batch {
                let Some(front) = queue.front() else { break };
                if front.at > clock[r] {
                    break;
                }
                // A request that can never be served — its sequence
                // exceeds the model's positional table, or it does not
                // fit even an empty replica — must panic rather than
                // block the queue (non-preempt) or be optimistically
                // admitted into an eviction storm that no swap can
                // resolve (preempt gates on current lengths, which
                // would miss the final-length violation).
                if let Err(e) = self.replicas[r]
                    .backend
                    .batch_fits(model, std::slice::from_ref(&front.shape))
                {
                    assert!(
                        !(batches[r].is_empty() && swapped[r].is_empty()),
                        "request {:?} can never be admitted on replica {} ({}): {}",
                        front.shape,
                        r,
                        self.replicas[r].backend.name(),
                        e
                    );
                    break;
                }
                let resident: Vec<RequestShape> = if preempt {
                    let mut v: Vec<RequestShape> = batches[r]
                        .iter()
                        .map(|s| ActiveSeq::kv_shape(s.past))
                        .collect();
                    // The candidate's imminent footprint: its whole
                    // prompt's KV, at prefill activation width.
                    v.push(RequestShape {
                        input: front.shape.input.max(1),
                        output: 1,
                    });
                    v
                } else {
                    let mut v: Vec<RequestShape> = batches[r].iter().map(|s| s.shape).collect();
                    v.push(front.shape);
                    v
                };
                match self.replicas[r].backend.batch_fits(model, &resident) {
                    Ok(occupancy) => {
                        stats.peak_kv_occupancy = stats.peak_kv_occupancy.max(occupancy);
                    }
                    // Head-of-line blocking is FCFS-faithful; the
                    // lone-request check above already ruled out a
                    // never-admittable head.
                    Err(_) => break,
                }
                let arrival = queue.pop_front().expect("front just peeked");
                let service = self.replicas[r].ideal_service_secs(model, arrival.shape);
                stats.peak_batch = stats.peak_batch.max(batches[r].len() as u32 + 1);
                batches[r].push(ActiveSeq {
                    shape: arrival.shape,
                    arrival: arrival.at,
                    idx: arrival.idx,
                    service,
                    class: arrival.class,
                    priority: arrival.priority,
                    prefilled: 0,
                    past: 0,
                    remaining: arrival.shape.generation_steps(),
                    last_token: clock[r],
                    preemptions: 0,
                });
            }

            if batches[r].is_empty() {
                continue;
            }

            // The iteration's prefill share: one chunk of the oldest
            // still-prefilling sequence (FCFS by arrival index — a
            // stable id, because evictions below reshuffle positions).
            let chunk_target: Option<u64> = batches[r]
                .iter()
                .filter(|s| !s.decoding())
                .map(|s| s.idx)
                .min();
            let chunk_tokens = |s: &ActiveSeq| chunk_size.min(s.shape.input - s.prefilled);

            // KV-pressure check before executing: project every
            // sequence's KV one iteration forward (the chunk for the
            // prefilling sequence, +1 token per decoder) and evict the
            // lowest-priority, youngest *decoding* sequence until the
            // projection fits. Prefilling sequences are never evicted —
            // their partially-built KV would be wasted work — and a
            // lone sequence is never evicted (it could then never make
            // progress), so a single oversized request degrades to the
            // non-preemptive behavior instead of livelocking.
            if preempt {
                loop {
                    let projected: Vec<RequestShape> = batches[r]
                        .iter()
                        .map(|s| {
                            let grown = if chunk_target == Some(s.idx) {
                                s.past + chunk_tokens(s)
                            } else if s.decoding() && s.remaining > 0 {
                                s.past + 1
                            } else {
                                s.past
                            };
                            ActiveSeq::kv_shape(grown)
                        })
                        .collect();
                    match self.replicas[r].backend.batch_fits(model, &projected) {
                        Ok(occupancy) => {
                            stats.peak_kv_occupancy = stats.peak_kv_occupancy.max(occupancy);
                            break;
                        }
                        Err(e) => {
                            let victim = batches[r]
                                .iter()
                                .enumerate()
                                .filter(|(_, s)| s.decoding())
                                .min_by_key(|(_, s)| (s.priority, std::cmp::Reverse(s.idx)))
                                .map(|(i, _)| i);
                            let Some(v) = victim.filter(|_| batches[r].len() > 1) else {
                                // Nothing evictable: tolerate the
                                // overcommit for this iteration, and
                                // record the over-capacity footprint so
                                // the report cannot claim the run fit
                                // in memory (the final-shape admission
                                // check rules out SequenceTooLong here,
                                // so the error always carries a ratio).
                                if let crate::capacity::CapacityError::OutOfMemory {
                                    required,
                                    available,
                                } = e
                                {
                                    stats.peak_kv_occupancy = stats
                                        .peak_kv_occupancy
                                        .max(required as f64 / available as f64);
                                }
                                break;
                            };
                            let mut seq = batches[r].remove(v);
                            seq.preemptions += 1;
                            stats.preemptions += 1;
                            let swap_out = self.replicas[r].kv_transfer_secs(model, seq.past);
                            clock[r] += swap_out;
                            stats.busy[r] += swap_out;
                            swapped[r].push_back(seq);
                        }
                    }
                }
            }

            // One mixed iteration: the prefill chunk (if any) plus one
            // decode step over every fully-prefilled sequence. Both
            // shares execute in the same iteration, so the chunk
            // stretches each decoder's token gap by the *chunk* cost.
            let chunk: Option<(usize, u64)> = chunk_target.map(|idx| {
                let ci = batches[r]
                    .iter()
                    .position(|s| s.idx == idx)
                    .expect("prefilling sequences are never evicted");
                (ci, chunk_tokens(&batches[r][ci]))
            });
            let (decode_width, mean_past) = {
                let decoders: Vec<&ActiveSeq> =
                    batches[r].iter().filter(|s| s.decoding()).collect();
                let width = decoders.len();
                let mean = if width > 0 {
                    decoders.iter().map(|s| s.past).sum::<u64>() / width as u64
                } else {
                    0
                };
                (width as u32, mean)
            };
            let mut dt = 0.0f64;
            if let Some((_, tokens)) = chunk {
                dt += self.replicas[r].prefill_secs(model, tokens);
            }
            if decode_width > 0 {
                dt += self.replicas[r].decode_secs(model, mean_past, decode_width);
            }
            clock[r] += dt;
            stats.busy[r] += dt;
            let now = clock[r];

            // Advance the prefilling sequence; its first token comes out
            // of the final chunk.
            if let Some((ci, tokens)) = chunk {
                let seq = &mut batches[r][ci];
                seq.prefilled += tokens;
                seq.past = seq.prefilled;
                if seq.decoding() {
                    stats.ttfts.push(now - seq.arrival);
                    seq.last_token = now;
                    if seq.remaining == 0 {
                        // Single-token request: the prefill is the
                        // request.
                        let seq = batches[r].remove(ci);
                        stats.complete(
                            r,
                            seq.class,
                            seq.arrival,
                            seq.service,
                            now,
                            seq.preemptions,
                        );
                        done += 1;
                    }
                }
            }

            // Advance the decoders (skipping a sequence whose prefill
            // completed *this* iteration: its first decode token comes
            // next iteration).
            let mut i = 0;
            while i < batches[r].len() {
                let seq = &mut batches[r][i];
                if !seq.decoding() || seq.last_token >= now {
                    i += 1;
                    continue;
                }
                // Gap since the sequence's previous token — includes
                // co-scheduled prefill chunks and swap traffic that
                // stalled the batch, not just this iteration's decode.
                stats.itls.push(now - seq.last_token);
                seq.last_token = now;
                seq.past += 1;
                seq.remaining -= 1;
                if seq.remaining == 0 {
                    let seq = batches[r].remove(i);
                    stats.complete(r, seq.class, seq.arrival, seq.service, now, seq.preemptions);
                    done += 1;
                } else {
                    i += 1;
                }
            }
        }
        stats
    }

    /// Builds the report from either engine's raw samples.
    fn assemble(&self, mut stats: RunStats) -> ServingReport {
        let finite_sort = |v: &mut Vec<f64>| {
            v.sort_by(|a, b| a.partial_cmp(b).expect("samples are finite"));
        };
        finite_sort(&mut stats.sojourns);
        finite_sort(&mut stats.ttfts);
        finite_sort(&mut stats.itls);
        for cs in &mut stats.class_sojourns {
            finite_sort(cs);
        }
        let n = self.replicas.len();
        let per_class = self
            .cfg
            .mix
            .iter()
            .zip(stats.class_sojourns.iter().zip(&stats.class_preemptions))
            .map(|(c, (cs, &preemptions))| ClassReport {
                shape: c.shape,
                completed: cs.len() as u64,
                p50_sojourn: percentile(cs, 0.50),
                p95_sojourn: percentile(cs, 0.95),
                p99_sojourn: percentile(cs, 0.99),
                preemptions,
            })
            .collect();
        let per_replica = self
            .replicas
            .iter()
            .zip(stats.busy.iter().zip(&stats.served))
            .map(|(r, (&b, &c))| ReplicaReport {
                name: r.backend.name().to_string(),
                completed: c,
                utilization: (b / stats.last_finish).min(1.0),
            })
            .collect();
        ServingReport {
            completed: self.cfg.requests,
            mean_service: Duration::from_secs_f64(stats.service_sum / self.cfg.requests as f64),
            p50_sojourn: percentile(&stats.sojourns, 0.50),
            p95_sojourn: percentile(&stats.sojourns, 0.95),
            p99_sojourn: percentile(&stats.sojourns, 0.99),
            ttft: LatencyPercentiles::from_sorted(&stats.ttfts),
            inter_token: LatencyPercentiles::from_sorted(&stats.itls),
            peak_batch: stats.peak_batch,
            peak_kv_occupancy: stats.peak_kv_occupancy,
            preemptions: stats.preemptions,
            preempted_requests: stats.preempted_requests,
            max_preemptions: stats.max_preemptions,
            utilization: (stats.busy.iter().sum::<f64>() / (n as f64 * stats.last_finish)).min(1.0),
            throughput_rps: self.cfg.requests as f64 / stats.last_finish,
            per_class,
            per_replica,
        }
    }

    /// Binary-searches the highest arrival rate in `[lo_hz, hi_hz]` whose
    /// report is [`stable`](ServingReport::stable), to a 1% relative
    /// resolution. Returns `0.0` when even `lo_hz` is unstable. Service
    /// memos make each probe a queueing-only pass (no device simulation),
    /// and the configured arrival rate is restored afterwards.
    ///
    /// # Panics
    ///
    /// Panics if `lo_hz` or the bracket is non-positive, or on the
    /// conditions of [`run`](Self::run).
    ///
    /// # Examples
    ///
    /// ```
    /// use ianus_core::serving::{ServingConfig, ServingSim};
    /// use ianus_core::{IanusSystem, SystemConfig};
    /// use ianus_model::ModelConfig;
    ///
    /// let mut sim = ServingSim::new(ServingConfig::interactive(1.0, 150))
    ///     .replica(IanusSystem::new(SystemConfig::ianus()));
    /// let rate = sim.sustainable_rate(&ModelConfig::gpt2_m(), 0.5, 64.0);
    /// assert!(rate > 0.5, "one IANUS device sustains interactive load");
    /// // The probe leaves the configured rate untouched.
    /// assert_eq!(sim.config().arrival_rate_hz, 1.0);
    /// ```
    pub fn sustainable_rate(&mut self, model: &ModelConfig, lo_hz: f64, hi_hz: f64) -> f64 {
        assert!(lo_hz > 0.0 && hi_hz > lo_hz, "need 0 < lo_hz < hi_hz");
        let original = self.cfg.arrival_rate_hz;
        let stable_at = |sim: &mut Self, rate: f64| {
            sim.cfg.arrival_rate_hz = rate;
            sim.run(model).stable()
        };
        let mut best = 0.0f64;
        let (mut lo, mut hi) = (lo_hz, hi_hz);
        if stable_at(self, lo) {
            best = lo;
            if stable_at(self, hi) {
                best = hi;
                lo = hi;
            }
            while hi / lo > 1.01 {
                let mid = (lo * hi).sqrt();
                if stable_at(self, mid) {
                    best = mid;
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
        }
        self.cfg.arrival_rate_hz = original;
        best
    }
}

fn argmin<T, K: PartialOrd>(items: &[T], key: impl Fn(&T) -> K) -> usize {
    let mut best = 0usize;
    for i in 1..items.len() {
        if key(&items[i]) < key(&items[best]) {
            best = i;
        }
    }
    best
}

fn percentile(sorted: &[f64], p: f64) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    Duration::from_secs_f64(sorted[idx])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multi_device::DeviceGroup;
    use crate::{IanusSystem, SystemConfig};
    use ianus_baselines_shim::*;

    /// The serving tests need a fast, exactly-predictable backend too;
    /// real-device parity is covered by `tests/backend_parity.rs` at the
    /// workspace root (ianus-core cannot depend on ianus-baselines).
    mod ianus_baselines_shim {
        use super::*;

        /// Fixed-rate synthetic backend: service time is
        /// `per_token × (input + output)`.
        pub struct FixedRate {
            pub name: &'static str,
            pub per_token: Duration,
        }

        impl Backend for FixedRate {
            fn name(&self) -> &str {
                self.name
            }

            fn service_time(&mut self, _: &ModelConfig, shape: RequestShape) -> Duration {
                Duration::from_ns_f64(
                    self.per_token.as_ns_f64() * (shape.input + shape.output) as f64,
                )
            }

            fn fits(&self, _: &ModelConfig) -> Result<(), crate::capacity::CapacityError> {
                Ok(())
            }
        }
    }

    fn mix_one(shape: RequestShape) -> Vec<RequestClass> {
        vec![RequestClass::new(shape, 1.0)]
    }

    fn fixed(name: &'static str, us_per_token: u64) -> FixedRate {
        FixedRate {
            name,
            per_token: Duration::from_us(us_per_token),
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ServingConfig::interactive(5.0, 100);
        let mut a = ServingSim::new(cfg.clone())
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .dispatch(DispatchPolicy::LeastLoaded);
        let mut b = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .dispatch(DispatchPolicy::LeastLoaded);
        let ra = a.run(&ModelConfig::gpt2_m());
        let rb = b.run(&ModelConfig::gpt2_m());
        assert_eq!(ra, rb);
        // And rerunning the same engine (warm memos) changes nothing.
        assert_eq!(a.run(&ModelConfig::gpt2_m()), ra);
    }

    #[test]
    fn policies_are_deterministic_and_distinct_reports_are_seed_stable() {
        for policy in [
            DispatchPolicy::FcfsSingleQueue,
            DispatchPolicy::LeastLoaded,
            DispatchPolicy::ShortestExpectedJob,
        ] {
            let build = || {
                ServingSim::new(ServingConfig::interactive(20.0, 300).with_seed(77))
                    .cluster(3, |_| fixed("fixed", 100))
                    .dispatch(policy)
            };
            let a = build().run(&ModelConfig::gpt2_m());
            let b = build().run(&ModelConfig::gpt2_m());
            assert_eq!(a, b, "{policy:?} not seed-stable");
            assert_eq!(a.completed, 300);
        }
    }

    #[test]
    fn second_replica_improves_tail_latency_and_halves_utilization() {
        let model = ModelConfig::gpt2_m();
        let cfg = ServingConfig {
            arrival_rate_hz: 40.0,
            requests: 400,
            seed: 5,
            mix: mix_one(RequestShape::new(128, 16)),
        };
        let one = ServingSim::new(cfg.clone())
            .replica(fixed("a", 500))
            .run(&model);
        let two = ServingSim::new(cfg)
            .replica(fixed("a", 500))
            .replica(fixed("b", 500))
            .run(&model);
        assert!(two.p99_sojourn < one.p99_sojourn);
        assert!(two.utilization < one.utilization);
        assert_eq!(two.per_replica.len(), 2);
        // Work spreads across both replicas.
        assert!(two.per_replica.iter().all(|r| r.completed > 50));
    }

    #[test]
    fn sej_beats_least_loaded_on_heterogeneous_cluster() {
        // One fast and one 8x slower replica: expected-completion routing
        // must not do worse than blind backlog balancing.
        let model = ModelConfig::gpt2_m();
        let cfg = ServingConfig {
            arrival_rate_hz: 8.0,
            requests: 300,
            seed: 11,
            mix: mix_one(RequestShape::new(64, 16)),
        };
        let hetero = |policy| {
            ServingSim::new(cfg.clone())
                .replica(fixed("fast", 200))
                .replica(fixed("slow", 1600))
                .dispatch(policy)
                .run(&model)
        };
        let ll = hetero(DispatchPolicy::LeastLoaded);
        let sej = hetero(DispatchPolicy::ShortestExpectedJob);
        assert!(
            sej.p99_sojourn.as_ns_f64() <= ll.p99_sojourn.as_ns_f64() * 1.001,
            "SEJ p99 {} vs least-loaded {}",
            sej.p99_sojourn,
            ll.p99_sojourn
        );
        // SEJ routes the bulk of the work to the fast replica.
        assert!(sej.per_replica[0].completed > sej.per_replica[1].completed);
    }

    #[test]
    fn least_loaded_differs_from_fcfs_on_heterogeneous_cluster() {
        // Count-based routing is speed-blind; earliest-free routing is
        // not. On a fast+slow pair the two must produce different
        // schedules.
        let model = ModelConfig::gpt2_m();
        let cfg = ServingConfig {
            arrival_rate_hz: 10.0,
            requests: 400,
            seed: 13,
            mix: mix_one(RequestShape::new(64, 16)),
        };
        let run = |policy| {
            ServingSim::new(cfg.clone())
                .replica(fixed("fast", 200))
                .replica(fixed("slow", 1600))
                .dispatch(policy)
                .run(&model)
        };
        let fcfs = run(DispatchPolicy::FcfsSingleQueue);
        let ll = run(DispatchPolicy::LeastLoaded);
        assert_ne!(fcfs, ll);
        assert_eq!(fcfs.completed, 400);
        assert_eq!(ll.completed, 400);
    }

    #[test]
    fn memo_is_model_aware_across_runs() {
        // Re-running one engine with a different model must re-price
        // service times, not reuse the previous model's memo.
        let cfg = ServingConfig {
            arrival_rate_hz: 2.0,
            requests: 50,
            seed: 4,
            mix: mix_one(RequestShape::new(128, 8)),
        };
        let mut sim = ServingSim::new(cfg.clone()).replica(IanusSystem::new(SystemConfig::ianus()));
        let small = sim.run(&ModelConfig::gpt2_m());
        let large = sim.run(&ModelConfig::gpt2_xl());
        assert!(large.mean_service > small.mean_service);
        // And each matches a cold engine for the same model.
        let cold = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .run(&ModelConfig::gpt2_xl());
        assert_eq!(large, cold);
    }

    #[test]
    fn per_class_percentiles_order_by_request_weight() {
        let model = ModelConfig::gpt2_m();
        let light = RequestShape::new(32, 8);
        let heavy = RequestShape::new(512, 64);
        let cfg = ServingConfig {
            arrival_rate_hz: 4.0,
            requests: 400,
            seed: 3,
            mix: vec![RequestClass::new(light, 0.5), RequestClass::new(heavy, 0.5)],
        };
        let r = ServingSim::new(cfg).replica(fixed("a", 100)).run(&model);
        assert_eq!(r.per_class.len(), 2);
        assert_eq!(
            r.per_class[0].completed + r.per_class[1].completed,
            r.completed
        );
        assert!(r.per_class[1].p50_sojourn > r.per_class[0].p50_sojourn);
    }

    #[test]
    fn zero_requests_yield_empty_report() {
        let cfg = ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 0,
            seed: 0,
            mix: mix_one(RequestShape::new(128, 8)),
        };
        let r = ServingSim::new(cfg)
            .replica(fixed("a", 100))
            .run(&ModelConfig::gpt2_m());
        assert_eq!(r.completed, 0);
        assert_eq!(r.mean_service, Duration::ZERO);
        assert_eq!(r.throughput_rps, 0.0);
        assert_eq!(r.utilization, 0.0);
        assert_eq!(r.per_replica[0].name, "a");
        assert_eq!(r.per_class[0].completed, 0);
    }

    #[test]
    fn weighted_pick_residue_falls_back_to_final_class() {
        // Regression: a draw at (or past) the total weight must pick the
        // *last* class, not silently snap back to mix[0].
        let mix = vec![
            RequestClass::new(RequestShape::new(1, 1), 0.1),
            RequestClass::new(RequestShape::new(2, 1), 0.2),
            RequestClass::new(RequestShape::new(3, 1), 0.3),
        ];
        let total: f64 = mix.iter().map(|c| c.weight).sum();
        // 0.1 + 0.2 + 0.3 != 0.6 exactly in binary; whatever the residue,
        // the fallback must be the final index.
        assert_eq!(pick_class(&mix, total), mix.len() - 1);
        assert_eq!(pick_class(&mix, total + 1e-12), mix.len() - 1);
        // In-range draws still resolve normally.
        assert_eq!(pick_class(&mix, 0.05), 0);
        assert_eq!(pick_class(&mix, 0.15), 1);
        assert_eq!(pick_class(&mix, 0.45), 2);
    }

    #[test]
    fn cluster_of_device_groups_serves_large_model() {
        let model = ModelConfig::gpt_6_7b();
        let cfg = ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 60,
            seed: 9,
            mix: mix_one(RequestShape::new(128, 4)),
        };
        let mut sim = ServingSim::new(cfg)
            .cluster(2, |_| DeviceGroup::new(SystemConfig::ianus(), 2))
            .dispatch(DispatchPolicy::ShortestExpectedJob);
        assert!(sim.fits(&model).is_ok());
        let r = sim.run(&model);
        assert_eq!(r.completed, 60);
        assert_eq!(r.per_replica[0].name, "IANUS x2");
    }

    #[test]
    fn sustainable_rate_brackets_service_rate() {
        let model = ModelConfig::gpt2_m();
        // 2 replicas x 10ms service => cluster capacity 200 req/s.
        let cfg = ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 500,
            seed: 21,
            mix: mix_one(RequestShape::new(99, 1)),
        };
        let mut sim = ServingSim::new(cfg)
            .replica(fixed("a", 100))
            .replica(fixed("b", 100));
        let rate = sim.sustainable_rate(&model, 1.0, 1000.0);
        // Finite-sample Poisson wiggle: the realized stable rate can land
        // a few percent past the nominal 200 req/s capacity.
        assert!(rate > 100.0 && rate < 220.0, "rate {rate}");
        // The probe restores the configured arrival rate.
        assert_eq!(sim.config().arrival_rate_hz, 1.0);
    }

    /// Single-replica IANUS engine (what the removed `simulate` shim
    /// built).
    fn single_ianus(system: SystemConfig, cfg: ServingConfig) -> ServingSim {
        ServingSim::new(cfg).replica(IanusSystem::new(system))
    }

    #[test]
    fn light_load_has_no_queueing() {
        let cfg = ServingConfig {
            arrival_rate_hz: 0.5,
            requests: 64,
            seed: 1,
            mix: mix_one(RequestShape::new(128, 8)),
        };
        let r = single_ianus(SystemConfig::ianus(), cfg).run(&ModelConfig::gpt2_m());
        // Sojourn ~ service at low utilization.
        assert!(r.utilization < 0.05, "{:?}", r.utilization);
        let ratio = r.p50_sojourn.as_ns_f64() / r.mean_service.as_ns_f64();
        assert!(ratio < 1.2, "ratio {ratio}");
        assert!(r.stable());
    }

    #[test]
    fn overload_grows_tail_latency() {
        let shape = RequestShape::new(128, 32);
        let service = IanusSystem::new(SystemConfig::ianus())
            .run_request(&ModelConfig::gpt2_m(), shape)
            .total
            .as_secs_f64();
        // Offer 2x the sustainable rate.
        let cfg = ServingConfig {
            arrival_rate_hz: 2.0 / service,
            requests: 200,
            seed: 2,
            mix: mix_one(shape),
        };
        let r = single_ianus(SystemConfig::ianus(), cfg).run(&ModelConfig::gpt2_m());
        assert!(r.utilization > 0.95, "{}", r.utilization);
        assert!(r.p99_sojourn > r.p50_sojourn);
        assert!(!r.stable());
    }

    #[test]
    fn faster_device_serves_higher_rate() {
        let shape = RequestShape::new(128, 64);
        let cfg = ServingConfig {
            arrival_rate_hz: 3.0,
            requests: 150,
            seed: 3,
            mix: mix_one(shape),
        };
        let ianus = single_ianus(SystemConfig::ianus(), cfg.clone()).run(&ModelConfig::gpt2_m());
        let npu_mem = single_ianus(SystemConfig::npu_mem(), cfg).run(&ModelConfig::gpt2_m());
        assert!(ianus.p99_sojourn < npu_mem.p99_sojourn);
        assert!(ianus.utilization < npu_mem.utilization);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mix_rejected() {
        let cfg = ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 1,
            seed: 0,
            mix: Vec::new(),
        };
        let _ = single_ianus(SystemConfig::ianus(), cfg).run(&ModelConfig::gpt2_m());
    }

    #[test]
    #[should_panic(expected = "no replicas")]
    fn empty_cluster_rejected() {
        let _ = ServingSim::new(ServingConfig::interactive(1.0, 1)).run(&ModelConfig::gpt2_m());
    }

    #[test]
    #[should_panic(expected = "max_batch")]
    fn zero_max_batch_rejected() {
        let _ = ServingSim::new(ServingConfig::interactive(1.0, 1))
            .replica(fixed("a", 100))
            .scheduling(Scheduling::iteration(0))
            .run(&ModelConfig::gpt2_m());
    }

    /// For the synthetic fixed-rate backend the default prefill/decode
    /// decomposition is *exact* (prefill = (in+1)·t, each decode step =
    /// t), so batch-1 iteration-level scheduling must reproduce the
    /// request-level FCFS schedule to floating-point accuracy.
    #[test]
    fn iteration_batch1_matches_request_level_exactly_on_fixed_backend() {
        for replicas in [1usize, 2] {
            let cfg = ServingConfig::interactive(18.0, 300).with_seed(42);
            let req = ServingSim::new(cfg.clone())
                .cluster(replicas, |_| fixed("fixed", 150))
                .run(&ModelConfig::gpt2_m());
            let it = ServingSim::new(cfg)
                .cluster(replicas, |_| fixed("fixed", 150))
                .scheduling(Scheduling::iteration(1))
                .run(&ModelConfig::gpt2_m());
            assert_eq!(it.completed, req.completed);
            for (a, b, what) in [
                (it.p50_sojourn, req.p50_sojourn, "p50"),
                (it.p95_sojourn, req.p95_sojourn, "p95"),
                (it.p99_sojourn, req.p99_sojourn, "p99"),
                (it.mean_service, req.mean_service, "mean service"),
                (it.ttft.p50, req.ttft.p50, "ttft p50"),
                (it.inter_token.p50, req.inter_token.p50, "itl p50"),
            ] {
                let rel = (a.as_ns_f64() - b.as_ns_f64()).abs() / b.as_ns_f64().max(1.0);
                assert!(
                    rel < 1e-9,
                    "{replicas} replicas, {what}: iteration {a} vs request {b}"
                );
            }
        }
    }

    /// On the simulated IANUS device the two paths price decode
    /// differently (request-level trapezoid-integrates whole requests,
    /// iteration-level interpolates per-step grid samples), so batch-1
    /// agreement is within a few percent, not exact.
    #[test]
    fn iteration_batch1_matches_request_level_on_simulated_device() {
        let cfg = ServingConfig::interactive(4.0, 150).with_seed(7);
        let model = ModelConfig::gpt2_m();
        let req = ServingSim::new(cfg.clone())
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .run(&model);
        let it = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::iteration(1))
            .run(&model);
        assert_eq!(it.completed, req.completed);
        for (a, b, what) in [
            (it.mean_service, req.mean_service, "mean service"),
            (it.p50_sojourn, req.p50_sojourn, "p50 sojourn"),
            (it.p95_sojourn, req.p95_sojourn, "p95 sojourn"),
        ] {
            let rel = (a.as_ns_f64() - b.as_ns_f64()).abs() / b.as_ns_f64();
            assert!(
                rel < 0.05,
                "{what}: iteration {a} vs request {b} ({rel:.3} rel)"
            );
        }
        assert_eq!(it.peak_batch, 1);
    }

    /// The KV-residency gate must bound the batch below the slot limit
    /// when sequences are long: GPT-2 XL KV at (512, 512) is ~314 MB per
    /// sequence against ~3.8 GB of post-weight headroom.
    #[test]
    fn kv_gate_bounds_batch_on_tight_memory() {
        let cfg = ServingConfig {
            arrival_rate_hz: 50.0, // overload so the queue never drains
            requests: 40,
            seed: 11,
            mix: mix_one(RequestShape::new(512, 512)),
        };
        let r = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::iteration(32))
            .run(&ModelConfig::gpt2_xl());
        assert_eq!(r.completed, 40);
        assert!(
            r.peak_batch > 1 && r.peak_batch < 32,
            "peak batch {} should be KV-limited below the 32-slot cap",
            r.peak_batch
        );
        assert!(
            r.peak_kv_occupancy > 0.5 && r.peak_kv_occupancy <= 1.0,
            "peak occupancy {}",
            r.peak_kv_occupancy
        );
    }

    /// The acceptance-criterion regime: on a weight-streaming GPU a
    /// decode-heavy mix under continuous batching sustains a strictly
    /// higher arrival rate than request-level batch-1 serving, because
    /// batched decode amortizes the weight traffic.
    #[test]
    fn batched_gpu_sustains_higher_rate_on_decode_heavy_mix() {
        use ianus_baselines_like_gpu::WeightStreamGpu;
        let model = ModelConfig::gpt2_m();
        let mut req_sim = ServingSim::new(ServingConfig::decode_heavy(0.5, 250))
            .replica(WeightStreamGpu::default());
        let req_rate = req_sim.sustainable_rate(&model, 0.05, 64.0);
        let mut it_sim = ServingSim::new(ServingConfig::decode_heavy(0.5, 250))
            .replica(WeightStreamGpu::default())
            .scheduling(Scheduling::iteration(8));
        let it_rate = it_sim.sustainable_rate(&model, 0.05, 64.0);
        assert!(
            it_rate >= req_rate * 2.0,
            "continuous batching should multiply the sustainable rate: \
             iteration {it_rate:.2} req/s vs request-level {req_rate:.2} req/s"
        );
    }

    /// A weight-streaming GPU stand-in with the same *shape* of batching
    /// economics as `ianus_baselines::GpuModel` (which ianus-core cannot
    /// depend on): decode time = fixed weight-streaming cost + small
    /// per-sequence term, so batching amortizes the fixed part. The real
    /// GpuModel is exercised end-to-end in `tests/` at the workspace
    /// root.
    mod ianus_baselines_like_gpu {
        use super::*;

        pub struct WeightStreamGpu {
            /// Weight-streaming cost of one decode iteration (shared
            /// across the batch).
            pub stream: Duration,
            /// Per-sequence attention/dispatch cost per iteration.
            pub per_seq: Duration,
            /// Prefill cost per prompt token.
            pub prefill_per_token: Duration,
        }

        impl Default for WeightStreamGpu {
            fn default() -> Self {
                WeightStreamGpu {
                    stream: Duration::from_us(18_000),
                    per_seq: Duration::from_us(400),
                    prefill_per_token: Duration::from_us(120),
                }
            }
        }

        impl Backend for WeightStreamGpu {
            fn name(&self) -> &str {
                "weight-stream GPU"
            }

            fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
                self.prefill_time(model, shape.input)
                    + self.decode_time(model, shape.input, 1) * shape.generation_steps()
            }

            fn fits(&self, _: &ModelConfig) -> Result<(), crate::capacity::CapacityError> {
                Ok(())
            }

            fn prefill_time(&mut self, _: &ModelConfig, tokens: u64) -> Duration {
                Duration::from_ns_f64(self.prefill_per_token.as_ns_f64() * tokens as f64)
            }

            fn decode_time(&mut self, _: &ModelConfig, _past: u64, batch: u32) -> Duration {
                self.stream + self.per_seq * u64::from(batch.max(1))
            }
        }
    }

    #[test]
    fn ttft_and_itl_track_load_in_both_modes() {
        // Light load: TTFT ~ prefill, ITL flat. Heavier load under
        // batching: ITL grows (IANUS serializes the batch) while TTFT
        // stays bounded by admission.
        let model = ModelConfig::gpt2_m();
        let light = ServingSim::new(ServingConfig::interactive(0.5, 80))
            .replica(fixed("a", 100))
            .run(&model);
        // fixed: prefill of (128..512)-token prompts = (tokens+1) * 100us.
        assert!(light.ttft.p50.as_ms_f64() > 10.0);
        assert!(light.ttft.p50 < light.p50_sojourn);
        assert_eq!(light.inter_token.p50, Duration::from_us(100));
        assert_eq!(light.inter_token.p99, Duration::from_us(100));

        let batched = ServingSim::new(ServingConfig::interactive(30.0, 200))
            .replica(fixed("a", 100))
            .scheduling(Scheduling::iteration(4))
            .run(&model);
        assert!(batched.peak_batch > 1);
        // Serialized batches stretch the iteration time past one token.
        assert!(batched.inter_token.p99 > Duration::from_us(100));
        assert!(batched.ttft.p50 < batched.p50_sojourn);
    }

    /// Chunk sizes at or above every prompt in the mix take the exact
    /// same code path as monolithic prefill (one whole-prompt chunk per
    /// admission), so the reports must be bit-identical — the
    /// "chunk ≥ prompt degenerates to monolithic" contract.
    #[test]
    fn chunk_at_least_prompt_is_exactly_monolithic() {
        let model = ModelConfig::gpt2_m();
        let run = |prefill_chunk| {
            ServingSim::new(ServingConfig::interactive(16.0, 250).with_seed(9))
                .cluster(2, |_| fixed("fixed", 120))
                .scheduling(Scheduling::IterationLevel {
                    max_batch: 4,
                    prefill_chunk,
                    preempt: false,
                })
                .run(&model)
        };
        let mono = run(None);
        // The longest interactive-mix prompt is 512 tokens.
        assert_eq!(run(Some(512)), mono);
        assert_eq!(run(Some(100_000)), mono);
        // A smaller chunk must actually change the schedule.
        assert_ne!(run(Some(64)), mono);
    }

    /// The tentpole's latency claim: on a long-prompt + interactive
    /// mix, chunking the prefill bounds each resident decoder's stall
    /// to one chunk instead of one prompt, so the interactive ITL tail
    /// collapses at the same arrival rate.
    #[test]
    fn chunked_prefill_improves_itl_tail_on_long_prompt_mix() {
        // 20 req/s ≈ 70% utilization on the 100 µs/token backend: busy
        // enough that long prefills regularly land on a running decode
        // batch (below ~50% they mostly run alone and both schedules'
        // tails collapse to the short-prompt stall).
        let model = ModelConfig::gpt2_m();
        let run = |prefill_chunk| {
            ServingSim::new(ServingConfig::long_prompt(20.0, 400))
                .replica(fixed("fixed", 100))
                .scheduling(Scheduling::IterationLevel {
                    max_batch: 4,
                    prefill_chunk,
                    preempt: false,
                })
                .run(&model)
        };
        let mono = run(None);
        let chunked = run(Some(128));
        assert!(
            chunked.inter_token.p99.as_ns_f64() < 0.5 * mono.inter_token.p99.as_ns_f64(),
            "chunked ITL p99 {} should be well under monolithic {}",
            chunked.inter_token.p99,
            mono.inter_token.p99
        );
        // The throughput side is untouched: same completions, and the
        // long-prompt class still finishes in comparable time.
        assert_eq!(chunked.completed, mono.completed);
        assert!(
            chunked.p99_sojourn.as_ns_f64() < 1.5 * mono.p99_sojourn.as_ns_f64(),
            "chunking must not blow up sojourn: {} vs {}",
            chunked.p99_sojourn,
            mono.p99_sojourn
        );
    }

    /// KV pressure on a real memory model: optimistic admission
    /// overcommits GPT-2 XL (512,512) sequences on an 8 GB IANUS
    /// device, growth forces evictions, and every preempted sequence
    /// still completes.
    #[test]
    fn preemption_triggers_and_all_requests_complete() {
        let cfg = ServingConfig {
            arrival_rate_hz: 50.0, // overload so the queue never drains
            requests: 40,
            seed: 11,
            mix: mix_one(RequestShape::new(512, 512)),
        };
        let r = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 32,
                prefill_chunk: None,
                preempt: true,
            })
            .run(&ModelConfig::gpt2_xl());
        assert_eq!(r.completed, 40);
        assert!(r.preemptions > 0, "overcommit never triggered eviction");
        assert!(r.preempted_requests > 0 && r.preempted_requests <= r.completed);
        assert!(r.max_preemptions >= 1);
        assert!(u64::from(r.max_preemptions) <= r.preemptions);
        assert!(
            r.preemptions >= u64::from(r.max_preemptions),
            "totals must dominate the per-request max"
        );
        // Above 1 is possible only via documented tolerated overcommit
        // (lone/all-prefilling batches), which stays small here.
        assert!(
            r.peak_kv_occupancy > 0.5 && r.peak_kv_occupancy < 1.25,
            "peak occupancy {}",
            r.peak_kv_occupancy
        );
        // Optimistic admission packs more sequences than the
        // final-length gate would ever allow.
        let conservative = ServingSim::new(ServingConfig {
            arrival_rate_hz: 50.0,
            requests: 40,
            seed: 11,
            mix: mix_one(RequestShape::new(512, 512)),
        })
        .replica(IanusSystem::new(SystemConfig::ianus()))
        .scheduling(Scheduling::iteration(32))
        .run(&ModelConfig::gpt2_xl());
        assert!(
            r.peak_batch > conservative.peak_batch,
            "preemptive admission ({}) should overcommit past the \
             final-length gate ({})",
            r.peak_batch,
            conservative.peak_batch
        );
    }

    /// Eviction order: batch-tier sequences are swapped out before
    /// interactive ones, so preemptions concentrate on the batch class.
    #[test]
    fn eviction_prefers_batch_tier() {
        let shape = RequestShape::new(512, 512);
        let cfg = ServingConfig {
            arrival_rate_hz: 50.0,
            requests: 40,
            seed: 7,
            mix: vec![
                RequestClass::new(shape, 0.5),
                RequestClass::new(shape, 0.5).with_priority(Priority::Batch),
            ],
        };
        let r = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 32,
                prefill_chunk: None,
                preempt: true,
            })
            .run(&ModelConfig::gpt2_xl());
        assert_eq!(r.completed, 40);
        assert!(r.preemptions > 0);
        let interactive = &r.per_class[0];
        let batch = &r.per_class[1];
        assert_eq!(
            interactive.preemptions + batch.preemptions,
            r.preemptions,
            "class preemptions must partition the total"
        );
        assert!(
            batch.preemptions > interactive.preemptions,
            "batch tier ({}) should absorb the evictions, not the \
             interactive tier ({})",
            batch.preemptions,
            interactive.preemptions
        );
    }

    #[test]
    fn priority_orders_batch_below_interactive() {
        assert!(Priority::Batch < Priority::Interactive);
        // The default class tier is interactive; the builder overrides.
        let c = RequestClass::new(RequestShape::new(8, 8), 1.0);
        assert_eq!(c.priority, Priority::Interactive);
        assert_eq!(c.with_priority(Priority::Batch).priority, Priority::Batch);
    }

    #[test]
    fn chunked_preemptive_scheduling_is_seed_stable() {
        let build = || {
            ServingSim::new(ServingConfig::long_prompt(30.0, 120).with_seed(77))
                .replica(IanusSystem::new(SystemConfig::ianus()))
                .scheduling(Scheduling::IterationLevel {
                    max_batch: 8,
                    prefill_chunk: Some(128),
                    preempt: true,
                })
        };
        let a = build().run(&ModelConfig::gpt2_m());
        let b = build().run(&ModelConfig::gpt2_m());
        assert_eq!(a, b);
        assert_eq!(a.completed, 120);
    }

    /// Regression: optimistic (current-length) admission must not let a
    /// request whose *final* sequence exceeds the model's positional
    /// table slip in — its KV would eventually outgrow `max_seq`, an
    /// error no amount of eviction can fix. The final-shape check at
    /// admission panics instead, exactly like the non-preemptive gate.
    #[test]
    #[should_panic(expected = "can never be admitted")]
    fn preempt_rejects_sequence_exceeding_max_seq() {
        // GPT-2 M caps at 1024 positions; (512,600) totals 1111.
        let cfg = ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 1,
            seed: 0,
            mix: mix_one(RequestShape::new(512, 600)),
        };
        let _ = ServingSim::new(cfg)
            .replica(IanusSystem::new(SystemConfig::ianus()))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 4,
                prefill_chunk: None,
                preempt: true,
            })
            .run(&ModelConfig::gpt2_m());
    }

    #[test]
    #[should_panic(expected = "prefill chunk")]
    fn zero_prefill_chunk_rejected() {
        let _ = ServingSim::new(ServingConfig::interactive(1.0, 1))
            .replica(fixed("a", 100))
            .scheduling(Scheduling::IterationLevel {
                max_batch: 4,
                prefill_chunk: Some(0),
                preempt: false,
            })
            .run(&ModelConfig::gpt2_m());
    }

    #[test]
    fn iteration_scheduling_is_seed_stable() {
        let build = || {
            ServingSim::new(ServingConfig::interactive(20.0, 250).with_seed(77))
                .cluster(3, |_| fixed("fixed", 100))
                .scheduling(Scheduling::iteration(4))
        };
        let a = build().run(&ModelConfig::gpt2_m());
        let b = build().run(&ModelConfig::gpt2_m());
        assert_eq!(a, b);
        assert_eq!(a.completed, 250);
    }

    #[test]
    fn sustainable_rate_works_under_iteration_scheduling() {
        let model = ModelConfig::gpt2_m();
        // 100 us/token fixed backend, batch-4 serialized decode: the
        // sustainable rate lands between the batch-1 bound and overload.
        let mut sim = ServingSim::new(ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 300,
            seed: 21,
            mix: mix_one(RequestShape::new(99, 17)),
        })
        .replica(fixed("a", 100))
        .scheduling(Scheduling::iteration(4));
        let rate = sim.sustainable_rate(&model, 1.0, 1000.0);
        assert!(rate > 10.0 && rate < 200.0, "rate {rate}");
        assert_eq!(sim.config().arrival_rate_hz, 1.0);
    }
}
