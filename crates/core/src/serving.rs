//! Datacenter serving-level simulation.
//!
//! The paper motivates IANUS with interactive NLP serving at batch size 1
//! (Section 6.1: datacenters avoid waiting to form batches). This module
//! closes the loop above the device simulator: Poisson request arrivals
//! with a mixed request-shape distribution are served FCFS by one device,
//! and queueing statistics (p50/p95/p99 sojourn time, utilization,
//! sustainable throughput) are reported. Device service times come from
//! the same [`IanusSystem`] simulation the figures use, memoized per
//! request shape.

use crate::{IanusSystem, SystemConfig};
use ianus_model::{ModelConfig, RequestShape};
use ianus_sim::Duration;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// One entry of the request-shape mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RequestClass {
    /// The request shape.
    pub shape: RequestShape,
    /// Relative weight of this class in the mix.
    pub weight: f64,
}

/// Configuration of a serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Mean arrival rate in requests per second (Poisson process).
    pub arrival_rate_hz: f64,
    /// Number of requests to simulate.
    pub requests: u64,
    /// RNG seed (simulations are deterministic given the seed).
    pub seed: u64,
    /// Request-shape mix (weights need not sum to one).
    pub mix: Vec<RequestClass>,
}

impl ServingConfig {
    /// A typical interactive mix: mostly short chat turns, some longer
    /// completions.
    pub fn interactive(arrival_rate_hz: f64, requests: u64) -> Self {
        ServingConfig {
            arrival_rate_hz,
            requests,
            seed: 0x5EED,
            mix: vec![
                RequestClass { shape: RequestShape::new(128, 32), weight: 0.6 },
                RequestClass { shape: RequestShape::new(256, 64), weight: 0.3 },
                RequestClass { shape: RequestShape::new(512, 256), weight: 0.1 },
            ],
        }
    }
}

/// Result of a serving simulation.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Requests completed.
    pub completed: u64,
    /// Mean device service time.
    pub mean_service: Duration,
    /// Median sojourn (queueing + service) time.
    pub p50_sojourn: Duration,
    /// 95th-percentile sojourn time.
    pub p95_sojourn: Duration,
    /// 99th-percentile sojourn time.
    pub p99_sojourn: Duration,
    /// Fraction of simulated time the device was busy.
    pub utilization: f64,
    /// Completed requests per second of simulated time.
    pub throughput_rps: f64,
}

impl ServingReport {
    /// Whether the system was stable (utilization below one and tail
    /// latency bounded relative to service time).
    pub fn stable(&self) -> bool {
        self.utilization < 0.95
            && self.p99_sojourn.as_ns_f64() < 50.0 * self.mean_service.as_ns_f64()
    }
}

/// Runs a serving simulation of `model` on `system` under `cfg`.
///
/// # Panics
///
/// Panics if the mix is empty, a weight is non-positive, or the arrival
/// rate is non-positive.
///
/// # Examples
///
/// ```
/// use ianus_core::serving::{simulate, ServingConfig};
/// use ianus_core::SystemConfig;
/// use ianus_model::ModelConfig;
///
/// let report = simulate(
///     SystemConfig::ianus(),
///     &ModelConfig::gpt2_m(),
///     &ServingConfig::interactive(4.0, 200),
/// );
/// assert_eq!(report.completed, 200);
/// assert!(report.utilization > 0.0 && report.utilization <= 1.0);
/// ```
pub fn simulate(system: SystemConfig, model: &ModelConfig, cfg: &ServingConfig) -> ServingReport {
    assert!(!cfg.mix.is_empty(), "request mix must be non-empty");
    assert!(cfg.arrival_rate_hz > 0.0, "arrival rate must be positive");
    let total_weight: f64 = cfg.mix.iter().map(|c| c.weight).sum();
    assert!(
        cfg.mix.iter().all(|c| c.weight > 0.0),
        "weights must be positive"
    );

    // Memoized device service times per shape.
    let mut sys = IanusSystem::new(system);
    let mut service: HashMap<RequestShape, Duration> = HashMap::new();
    for class in &cfg.mix {
        service
            .entry(class.shape)
            .or_insert_with(|| sys.run_request(model, class.shape).total);
    }

    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut now = 0.0f64; // seconds, arrival clock
    let mut server_free = 0.0f64;
    let mut busy = 0.0f64;
    let mut sojourns: Vec<f64> = Vec::with_capacity(cfg.requests as usize);
    let mut service_sum = 0.0f64;
    let mut last_finish = 0.0f64;
    for _ in 0..cfg.requests {
        // Exponential inter-arrival.
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        now += -u.ln() / cfg.arrival_rate_hz;
        // Weighted class pick.
        let mut pick = rng.gen_range(0.0..total_weight);
        let mut shape = cfg.mix[0].shape;
        for class in &cfg.mix {
            if pick < class.weight {
                shape = class.shape;
                break;
            }
            pick -= class.weight;
        }
        let s = service[&shape].as_secs_f64();
        let start = now.max(server_free);
        let finish = start + s;
        server_free = finish;
        busy += s;
        service_sum += s;
        sojourns.push(finish - now);
        last_finish = finish;
    }
    sojourns.sort_by(|a, b| a.partial_cmp(b).expect("sojourns are finite"));
    let pct = |p: f64| -> Duration {
        let idx = ((sojourns.len() as f64 - 1.0) * p).round() as usize;
        Duration::from_secs_f64(sojourns[idx])
    };
    ServingReport {
        completed: cfg.requests,
        mean_service: Duration::from_secs_f64(service_sum / cfg.requests as f64),
        p50_sojourn: pct(0.50),
        p95_sojourn: pct(0.95),
        p99_sojourn: pct(0.99),
        utilization: (busy / last_finish).min(1.0),
        throughput_rps: cfg.requests as f64 / last_finish,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix_one(shape: RequestShape) -> Vec<RequestClass> {
        vec![RequestClass { shape, weight: 1.0 }]
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = ServingConfig::interactive(5.0, 100);
        let a = simulate(SystemConfig::ianus(), &ModelConfig::gpt2_m(), &cfg);
        let b = simulate(SystemConfig::ianus(), &ModelConfig::gpt2_m(), &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn light_load_has_no_queueing() {
        let cfg = ServingConfig {
            arrival_rate_hz: 0.5,
            requests: 64,
            seed: 1,
            mix: mix_one(RequestShape::new(128, 8)),
        };
        let r = simulate(SystemConfig::ianus(), &ModelConfig::gpt2_m(), &cfg);
        // Sojourn ≈ service at low utilization.
        assert!(r.utilization < 0.05, "{:?}", r.utilization);
        let ratio = r.p50_sojourn.as_ns_f64() / r.mean_service.as_ns_f64();
        assert!(ratio < 1.2, "ratio {ratio}");
        assert!(r.stable());
    }

    #[test]
    fn overload_grows_tail_latency() {
        let shape = RequestShape::new(128, 32);
        let service = IanusSystem::new(SystemConfig::ianus())
            .run_request(&ModelConfig::gpt2_m(), shape)
            .total
            .as_secs_f64();
        // Offer 2x the sustainable rate.
        let cfg = ServingConfig {
            arrival_rate_hz: 2.0 / service,
            requests: 200,
            seed: 2,
            mix: mix_one(shape),
        };
        let r = simulate(SystemConfig::ianus(), &ModelConfig::gpt2_m(), &cfg);
        assert!(r.utilization > 0.95, "{}", r.utilization);
        assert!(r.p99_sojourn > r.p50_sojourn);
        assert!(!r.stable());
    }

    #[test]
    fn faster_device_serves_higher_rate() {
        let shape = RequestShape::new(128, 64);
        let cfg = ServingConfig {
            arrival_rate_hz: 3.0,
            requests: 150,
            seed: 3,
            mix: mix_one(shape),
        };
        let ianus = simulate(SystemConfig::ianus(), &ModelConfig::gpt2_m(), &cfg);
        let npu_mem = simulate(SystemConfig::npu_mem(), &ModelConfig::gpt2_m(), &cfg);
        assert!(ianus.p99_sojourn < npu_mem.p99_sojourn);
        assert!(ianus.utilization < npu_mem.utilization);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_mix_rejected() {
        let cfg = ServingConfig {
            arrival_rate_hz: 1.0,
            requests: 1,
            seed: 0,
            mix: Vec::new(),
        };
        let _ = simulate(SystemConfig::ianus(), &ModelConfig::gpt2_m(), &cfg);
    }
}
