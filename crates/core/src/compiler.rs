//! Stage compiler: models × stages → dependency-annotated command programs.
//!
//! This is where PIM Access Scheduling becomes concrete. The compiler
//! implements the paper's workload mapping (Figure 6) — head-parallel
//! Q/K/V across PIM chips and cores, column-parallel other FCs, layer
//! norms and residual adds on the vector units, four synchronizations per
//! block — and the unified-memory-aware attention schedules of Figure 7:
//!
//! * summarization (7a): FCs on the matrix unit with per-head weight
//!   prefetching, on-chip key transpose overlapped with value generation,
//!   value move to the weight scratchpad during softmax;
//! * generation with QKᵀ/SV on PIM (7b);
//! * generation with QKᵀ/SV on the matrix unit (7c): key concatenation on
//!   the VU overlapped with query generation in PIM, Kpre prefetch of the
//!   next head during SV, KV stores and Vcat load during softmax.
//!
//! The naive schedule (Figure 13's ablation) chains every command of a
//! core to its predecessor, eliminating all intra-core overlap between
//! PIM computation and NPU work.

use crate::adaptive::{AdaptivePlanner, FcUnit};
use crate::energy::Activity;
use crate::pas::{AttnMapping, FcMapping, Schedule};
use crate::report::OpClass;
use crate::{SystemConfig, UnitMap};
use ianus_dram::TransferModel;
use ianus_model::{FcShape, ModelConfig, ModelFamily, Stage};
use ianus_npu::scheduler::{CmdId, Command, Program};
use ianus_npu::{DmaEngine, MatrixUnit, VectorUnit, VuOp};
use ianus_pim::{GemvShape, PimModel, PimOpCost};
use ianus_sim::Duration;
use std::collections::HashMap;

/// A compiled stage: the command program plus its activity counters and
/// FLOP total.
#[derive(Debug, Clone)]
pub struct CompiledStage {
    /// Dependency-annotated command stream for the device engine.
    pub program: Program,
    /// Energy-relevant activity counters.
    pub activity: Activity,
    /// FLOPs the stage performs (whole model, all devices).
    pub flops: u64,
}

/// Compiles stages of one model onto one system configuration.
///
/// # Examples
///
/// ```
/// use ianus_core::compiler::Compiler;
/// use ianus_core::SystemConfig;
/// use ianus_model::{ModelConfig, Stage};
///
/// let cfg = SystemConfig::ianus();
/// let model = ModelConfig::gpt2_m();
/// let mut c = Compiler::new(&cfg, &model);
/// let stage = c.compile(&Stage::Generation { past_tokens: 64 });
/// assert!(!stage.program.is_empty());
/// ```
#[derive(Debug)]
pub struct Compiler<'a> {
    cfg: &'a SystemConfig,
    model: &'a ModelConfig,
    units: UnitMap,
    mu: MatrixUnit,
    vu: VectorUnit,
    dma: DmaEngine,
    pim: Option<PimModel>,
    planner: AdaptivePlanner,
    xfer: TransferModel,
    pim_cache: HashMap<GemvShape, PimOpCost>,
    // --- per-compilation state ---
    prog: Program,
    activity: Activity,
    naive_last: Vec<Option<CmdId>>,
    /// Last macro PIM command per core (naive-schedule bookkeeping).
    naive_last_pim: Vec<Option<CmdId>>,
    /// Set while emitting the interior of one operation whose internal
    /// pipelining is a hardware property (naive chaining suspended).
    suspend_naive: bool,
}

impl<'a> Compiler<'a> {
    /// Creates a compiler for `model` on `cfg`.
    pub fn new(cfg: &'a SystemConfig, model: &'a ModelConfig) -> Self {
        let pim = if cfg.pim_channels() > 0 {
            Some(PimModel::new(cfg.pim_group_config()))
        } else {
            None
        };
        Compiler {
            cfg,
            model,
            units: UnitMap::new(cfg),
            mu: MatrixUnit::new(&cfg.npu),
            vu: VectorUnit::new(&cfg.npu),
            dma: DmaEngine::new(&cfg.npu),
            pim,
            planner: AdaptivePlanner::new(cfg),
            xfer: cfg.transfer_model(),
            pim_cache: HashMap::new(),
            prog: Program::new(),
            activity: Activity::new(),
            naive_last: Vec::new(),
            naive_last_pim: Vec::new(),
            suspend_naive: false,
        }
    }

    /// The unit map programs are emitted against.
    pub fn unit_map(&self) -> UnitMap {
        self.units
    }

    /// Work-partition factor: column slices / head groups per core over
    /// all cores and devices.
    pub fn partitions(&self) -> u64 {
        u64::from(self.cfg.npu.cores) * u64::from(self.cfg.devices)
    }

    /// Compiles one stage of the model into a program for a single device
    /// (devices execute symmetric programs; PCIe synchronization commands
    /// represent the inter-device exchanges).
    ///
    /// # Panics
    ///
    /// Panics if a generation stage is requested for an encoder-only
    /// (BERT) model.
    pub fn compile(&mut self, stage: &Stage) -> CompiledStage {
        if stage.is_generation() {
            assert!(
                self.model.family == ModelFamily::Gpt,
                "{} has no generation stage",
                self.model.name
            );
        }
        self.reset();
        let cores = self.cfg.npu.cores;
        let mut frontier: Vec<Option<CmdId>> = vec![None; cores as usize];
        for block in 0..self.model.blocks {
            frontier = self.compile_block(stage, frontier);
            let _ = block;
        }
        if self.model.family == ModelFamily::Gpt {
            frontier = self.compile_lm_head(stage, frontier);
        }
        let _ = frontier;
        CompiledStage {
            program: std::mem::take(&mut self.prog),
            activity: self.activity,
            flops: self.model.stage_flops(stage),
        }
    }

    /// Compiles a microbenchmark of one block's four FC layers (plus the
    /// interleaving norms) with a forced mapping — the Figure 12 harness.
    pub fn compile_fc_microbench(&mut self, tokens: u64, mapping: FcMapping) -> CompiledStage {
        self.reset();
        let stage = Stage::Summarization { tokens };
        let ops = self.model.block_ops();
        let part = self.partitions();
        let cores = self.cfg.npu.cores;
        let mut frontier: Vec<Option<CmdId>> = vec![None; cores as usize];
        for _ in 0..self.model.blocks {
            for c in 0..cores {
                let deps: Vec<CmdId> = frontier[c as usize].into_iter().collect();
                let ln = self.vu_cmd(
                    c,
                    VuOp::LayerNorm,
                    tokens * ops.embed_dim(),
                    OpClass::LayerNorm,
                    deps,
                );
                let qkv = self.fc(
                    c,
                    tokens,
                    ops.qkv_fc().column_slice(part),
                    false,
                    mapping,
                    OpClass::FcQkv,
                    vec![ln],
                    self.vu.op(VuOp::LayerNorm, tokens * ops.embed_dim()),
                );
                let proj = self.fc(
                    c,
                    tokens,
                    ops.attn_out_fc().column_slice(part),
                    false,
                    mapping,
                    OpClass::FcAttnProjAdd,
                    vec![qkv],
                    Duration::ZERO,
                );
                let ffn1 = self.fc(
                    c,
                    tokens,
                    ops.ffn1_fc().column_slice(part),
                    true,
                    mapping,
                    OpClass::FfnAdd,
                    vec![proj],
                    Duration::ZERO,
                );
                let ffn2 = self.fc(
                    c,
                    tokens,
                    ops.ffn2_fc().column_slice(part),
                    false,
                    mapping,
                    OpClass::FfnAdd,
                    vec![ffn1],
                    Duration::ZERO,
                );
                frontier[c as usize] = Some(ffn2);
            }
            frontier = self.barrier(stage.batch_tokens(), frontier);
        }
        CompiledStage {
            program: std::mem::take(&mut self.prog),
            activity: self.activity,
            flops: (ops.qkv_fc().gemm_flops(tokens)
                + ops.attn_out_fc().gemm_flops(tokens)
                + ops.ffn1_fc().gemm_flops(tokens)
                + ops.ffn2_fc().gemm_flops(tokens))
                * self.model.blocks,
        }
    }

    // ------------------------------------------------------------------
    // Block structure
    // ------------------------------------------------------------------

    fn compile_block(&mut self, stage: &Stage, frontier: Vec<Option<CmdId>>) -> Vec<Option<CmdId>> {
        let cores = self.cfg.npu.cores;
        let ops = self.model.block_ops();
        let tokens = stage.batch_tokens();
        let part = self.partitions();

        // LayerNorm 1 + multi-head attention per core.
        let mut after_attn: Vec<Option<CmdId>> = vec![None; cores as usize];
        for c in 0..cores {
            let deps: Vec<CmdId> = frontier[c as usize].into_iter().collect();
            let ln1 = self.vu_cmd(
                c,
                VuOp::LayerNorm,
                tokens * ops.embed_dim(),
                OpClass::LayerNorm,
                deps,
            );
            let attn_last = match stage {
                Stage::Summarization { .. } => self.summarization_attention(c, stage, ln1),
                Stage::Generation { .. } => match self.cfg.pas.attention {
                    AttnMapping::MatrixUnit => self.generation_attention_mu(c, stage, ln1),
                    AttnMapping::Pim => self.generation_attention_pim(c, stage, ln1),
                },
            };
            after_attn[c as usize] = Some(attn_last);
        }
        // Sync 1: after multi-head attention.
        let merged = self.barrier(tokens, after_attn);

        // Attention output FC (column-parallel) + residual add.
        let mut after_res1: Vec<Option<CmdId>> = vec![None; cores as usize];
        for c in 0..cores {
            let deps: Vec<CmdId> = merged[c as usize].into_iter().collect();
            let fc = self.fc(
                c,
                tokens,
                ops.attn_out_fc().column_slice(part),
                false,
                self.cfg.pas.fc,
                OpClass::FcAttnProjAdd,
                deps,
                Duration::ZERO,
            );
            let res = self.vu_cmd(
                c,
                VuOp::ResidualAdd,
                tokens * ops.embed_dim().div_ceil(part),
                OpClass::FcAttnProjAdd,
                vec![fc],
            );
            after_res1[c as usize] = Some(res);
        }
        // Sync 2: after the residual addition.
        let merged = self.barrier(tokens, after_res1);

        // LayerNorm 2 + FFN1 (+GELU).
        let mut after_gelu: Vec<Option<CmdId>> = vec![None; cores as usize];
        for c in 0..cores {
            let deps: Vec<CmdId> = merged[c as usize].into_iter().collect();
            let ln2 = self.vu_cmd(
                c,
                VuOp::LayerNorm,
                tokens * ops.embed_dim(),
                OpClass::LayerNorm,
                deps,
            );
            let ln2_time = self.vu.op(VuOp::LayerNorm, tokens * ops.embed_dim());
            let ffn1 = self.fc(
                c,
                tokens,
                ops.ffn1_fc().column_slice(part),
                true,
                self.cfg.pas.fc,
                OpClass::FfnAdd,
                vec![ln2],
                ln2_time,
            );
            after_gelu[c as usize] = Some(ffn1);
        }
        // Sync 3: after GELU.
        let merged = self.barrier(tokens, after_gelu);

        // FFN2 + residual add.
        let mut after_res2: Vec<Option<CmdId>> = vec![None; cores as usize];
        for c in 0..cores {
            let deps: Vec<CmdId> = merged[c as usize].into_iter().collect();
            let fc = self.fc(
                c,
                tokens,
                ops.ffn2_fc().column_slice(part),
                false,
                self.cfg.pas.fc,
                OpClass::FfnAdd,
                deps,
                Duration::ZERO,
            );
            let res = self.vu_cmd(
                c,
                VuOp::ResidualAdd,
                tokens * ops.embed_dim().div_ceil(part),
                OpClass::FfnAdd,
                vec![fc],
            );
            after_res2[c as usize] = Some(res);
        }
        // Sync 4: after the residual addition.
        self.barrier(tokens, after_res2)
    }

    fn compile_lm_head(
        &mut self,
        stage: &Stage,
        frontier: Vec<Option<CmdId>>,
    ) -> Vec<Option<CmdId>> {
        let cores = self.cfg.npu.cores;
        let ops = self.model.block_ops();
        let part = self.partitions();
        let mut last: Vec<Option<CmdId>> = vec![None; cores as usize];
        for c in 0..cores {
            let deps: Vec<CmdId> = frontier[c as usize].into_iter().collect();
            // Final layer norm over the last token, then logits.
            let ln = self.vu_cmd(c, VuOp::LayerNorm, ops.embed_dim(), OpClass::Other, deps);
            // Only the newest token needs logits in both stages.
            let fc = self.fc(
                c,
                1,
                ops.lm_head_fc().column_slice(part),
                false,
                self.cfg.pas.fc,
                OpClass::LmHead,
                vec![ln],
                Duration::ZERO,
            );
            last[c as usize] = Some(fc);
        }
        let _ = stage;
        self.barrier(1, last)
    }

    // ------------------------------------------------------------------
    // Attention schedules (Figure 7)
    // ------------------------------------------------------------------

    /// Figure 7a: summarization. FCs on the matrix unit; intra-head
    /// parallelism and inter-head weight prefetching via the DMA/MU/VU
    /// resource pipeline.
    fn summarization_attention(&mut self, core: u32, stage: &Stage, ln: CmdId) -> CmdId {
        let ops = self.model.block_ops();
        let m = stage.batch_tokens();
        let dh = ops.head_dim();
        let e = ops.embed_dim();
        let heads = self.heads_for_core(core);
        let w_bytes = e * dh * 2;
        let mut last_sv = ln;
        for _h in 0..heads {
            // Key first so its transpose overlaps Q/V generation.
            let wk = self.striped_load(core, w_bytes, OpClass::FcQkv, vec![]);
            let kg = self.mu_gemm(core, m, e, dh, OpClass::FcQkv, vec![wk, ln]);
            let tr = self.onchip(core, m * dh * 2, OpClass::SelfAttention, vec![kg]);
            let wq = self.striped_load(core, w_bytes, OpClass::FcQkv, vec![]);
            let qg = self.mu_gemm(core, m, e, dh, OpClass::FcQkv, vec![wq, ln]);
            let wv = self.striped_load(core, w_bytes, OpClass::FcQkv, vec![]);
            let vg = self.mu_gemm(core, m, e, dh, OpClass::FcQkv, vec![wv, ln]);
            // Scaling is fused into the matrix unit's output stage.
            let qkt = self.mu_gemm(core, m, dh, m, OpClass::SelfAttention, vec![qg, tr]);
            // Keys and values stored to the KV cache during computation.
            let _kv = self.local_store(core, 2 * m * dh * 2, OpClass::SelfAttention, vec![kg, vg]);
            let sm = self.vu_cmd(
                core,
                VuOp::MaskedSoftmax,
                m * m,
                OpClass::SelfAttention,
                vec![qkt],
            );
            // Values move to the weight scratchpad during softmax.
            let vmv = self.onchip(core, m * dh * 2, OpClass::SelfAttention, vec![vg]);
            last_sv = self.mu_gemm(core, m, m, dh, OpClass::SelfAttention, vec![sm, vmv]);
        }
        last_sv
    }

    /// Figure 7c: generation with QKᵀ/SV on the matrix unit.
    fn generation_attention_mu(&mut self, core: u32, stage: &Stage, ln: CmdId) -> CmdId {
        let ops = self.model.block_ops();
        let p = match stage {
            Stage::Generation { past_tokens } => *past_tokens,
            Stage::Summarization { .. } => unreachable!("generation schedule"),
        };
        let dh = ops.head_dim();
        let e = ops.embed_dim();
        let heads = self.heads_for_core(core);
        let qkv_slice = FcShape::new(e, dh);
        let mut last_sv = ln;
        for _h in 0..heads {
            // Kpre prefetch: no dependency, so it schedules behind the
            // previous head's SV on the load DMA (step 4 of Fig. 7c).
            let kpre = self.local_load(core, p * dh * 2, OpClass::SelfAttention, vec![]);
            // Key generation first (PIM), then concat on the VU overlaps
            // query generation in PIM (step 1).
            let kgen = self.fc(
                core,
                1,
                qkv_slice,
                false,
                self.cfg.pas.fc,
                OpClass::FcQkv,
                vec![ln],
                Duration::ZERO,
            );
            let cat = self.vu_cmd(
                core,
                VuOp::Concat,
                (p + 1) * dh,
                OpClass::SelfAttention,
                vec![kpre, kgen],
            );
            let tr = self.onchip(core, (p + 1) * dh * 2, OpClass::SelfAttention, vec![cat]);
            let qgen = self.fc(
                core,
                1,
                qkv_slice,
                false,
                self.cfg.pas.fc,
                OpClass::FcQkv,
                vec![ln],
                Duration::ZERO,
            );
            // QK^T on the matrix unit in parallel with value generation
            // (step 2).
            let qkt = self.mu_gemm(core, 1, dh, p + 1, OpClass::SelfAttention, vec![qgen, tr]);
            let vgen = self.fc(
                core,
                1,
                qkv_slice,
                false,
                self.cfg.pas.fc,
                OpClass::FcQkv,
                vec![ln],
                Duration::ZERO,
            );
            let sm = self.vu_cmd(
                core,
                VuOp::MaskedSoftmax,
                p + 1,
                OpClass::SelfAttention,
                vec![qkt],
            );
            // KV store + Vcat load during softmax (step 3).
            let _kv = self.local_store(core, 2 * dh * 2, OpClass::SelfAttention, vec![kgen, vgen]);
            let vcat = self.local_load(core, (p + 1) * dh * 2, OpClass::SelfAttention, vec![vgen]);
            last_sv = self.mu_gemm(core, 1, p + 1, dh, OpClass::SelfAttention, vec![sm, vcat]);
        }
        last_sv
    }

    /// Figure 7b: generation with QKᵀ/SV on PIM. Avoids Kpre/Vcat loads
    /// but serializes nearly everything on the PIM group and wastes row
    /// width (head dim 64 of 1024 elements).
    fn generation_attention_pim(&mut self, core: u32, stage: &Stage, ln: CmdId) -> CmdId {
        let ops = self.model.block_ops();
        let p = match stage {
            Stage::Generation { past_tokens } => *past_tokens,
            Stage::Summarization { .. } => unreachable!("generation schedule"),
        };
        let dh = ops.head_dim();
        let e = ops.embed_dim();
        let heads = self.heads_for_core(core);
        let qkv_slice = FcShape::new(e, dh);
        let mut last_sv = ln;
        for _h in 0..heads {
            let kgen = self.fc(
                core,
                1,
                qkv_slice,
                false,
                self.cfg.pas.fc,
                OpClass::FcQkv,
                vec![ln],
                Duration::ZERO,
            );
            let qgen = self.fc(
                core,
                1,
                qkv_slice,
                false,
                self.cfg.pas.fc,
                OpClass::FcQkv,
                vec![ln],
                Duration::ZERO,
            );
            let vgen = self.fc(
                core,
                1,
                qkv_slice,
                false,
                self.cfg.pas.fc,
                OpClass::FcQkv,
                vec![ln],
                Duration::ZERO,
            );
            // The new key/value must land in the PIM-resident cache before
            // the products run.
            let kst = self.local_store(core, dh * 2, OpClass::SelfAttention, vec![kgen]);
            let vst = self.local_store(core, dh * 2, OpClass::SelfAttention, vec![vgen]);
            let qkt = self.pim_gemv(
                core,
                GemvShape::new(p + 1, dh),
                OpClass::SelfAttention,
                vec![qgen, kst],
            );
            let sm = self.vu_cmd(
                core,
                VuOp::MaskedSoftmax,
                p + 1,
                OpClass::SelfAttention,
                vec![qkt],
            );
            last_sv = self.pim_gemv(
                core,
                GemvShape::new(dh, p + 1),
                OpClass::SelfAttention,
                vec![sm, vst],
            );
        }
        last_sv
    }

    // ------------------------------------------------------------------
    // FC emission
    // ------------------------------------------------------------------

    /// Emits one FC (already sliced for this core) on the unit chosen by
    /// `mapping`, fusing GELU when PIM executes it (otherwise a VU GELU
    /// command follows).
    #[allow(clippy::too_many_arguments)]
    fn fc(
        &mut self,
        core: u32,
        tokens: u64,
        fc: FcShape,
        gelu: bool,
        mapping: FcMapping,
        class: OpClass,
        deps: Vec<CmdId>,
        prefetch: Duration,
    ) -> CmdId {
        let unit = match mapping {
            FcMapping::MatrixUnit => FcUnit::MatrixUnit,
            FcMapping::Pim if self.pim.is_some() => FcUnit::Pim,
            FcMapping::Pim => FcUnit::MatrixUnit,
            FcMapping::Adaptive => self.planner.choose(tokens, fc, prefetch),
        };
        match unit {
            FcUnit::Pim => {
                // In the partitioned system only the duplicated fraction of
                // FC parameters is PIM-resident (Section 6.2: the GPT-2
                // 2.5B FCs exceed the 4 GB PIM partition); the remainder
                // executes on the matrix unit with weight streaming.
                let dup = self.duplicated_fraction();
                let pim_rows = ((fc.out_dim as f64 * dup).round() as u64).min(fc.out_dim);
                if pim_rows == 0 {
                    return self.fc_mu_with_gelu(core, tokens, fc, gelu, class, deps);
                }
                let shape = GemvShape::new(pim_rows, fc.in_dim)
                    .with_batch(tokens as u32)
                    .with_gelu(gelu);
                let pim_cmd = self.pim_gemv(core, shape, class, deps.clone());
                if pim_rows < fc.out_dim {
                    let rest = FcShape::new(fc.in_dim, fc.out_dim - pim_rows);
                    let mu_cmd = self.fc_mu_with_gelu(core, tokens, rest, gelu, class, deps);
                    // The FC completes when both halves do.
                    let join = Command::new(self.units.vu(core), Duration::ZERO, class.tag())
                        .after(pim_cmd)
                        .after(mu_cmd);
                    self.emit(core, join)
                } else {
                    pim_cmd
                }
            }
            FcUnit::MatrixUnit => self.fc_mu_with_gelu(core, tokens, fc, gelu, class, deps),
        }
    }

    /// Fraction of FC parameters duplicated into the PIM partition (1.0
    /// for unified/NPU-only memory).
    fn duplicated_fraction(&self) -> f64 {
        if self.cfg.memory != crate::MemoryPolicy::Partitioned {
            return 1.0;
        }
        let fc_bytes =
            self.model.fc_param_count() * 2 + self.model.block_ops().lm_head_fc().weight_bytes();
        let cap = self.cfg.weight_capacity_bytes();
        (cap as f64 / fc_bytes as f64).min(1.0)
    }

    fn fc_mu_with_gelu(
        &mut self,
        core: u32,
        tokens: u64,
        fc: FcShape,
        gelu: bool,
        class: OpClass,
        deps: Vec<CmdId>,
    ) -> CmdId {
        let last = self.fc_on_mu(core, tokens, fc, class, deps);
        if gelu {
            self.vu_cmd(core, VuOp::Gelu, tokens * fc.out_dim, class, vec![last])
        } else {
            last
        }
    }

    /// FC on the matrix unit: weight chunks streamed via striped DMA,
    /// double-buffered against GEMM compute.
    ///
    /// The load/compute pipeline inside one FC is a hardware property
    /// (double-buffered weight scratchpad), so it survives even under the
    /// naive PAS schedule — naive only serializes *between* operations.
    fn fc_on_mu(
        &mut self,
        core: u32,
        tokens: u64,
        fc: FcShape,
        class: OpClass,
        deps: Vec<CmdId>,
    ) -> CmdId {
        let gate: Vec<CmdId> = if self.cfg.pas.schedule == Schedule::Naive {
            // Naive scheduling: may not overlap a preceding PIM command.
            self.naive_last_pim[core as usize].into_iter().collect()
        } else {
            Vec::new()
        };
        let suspended = self.suspend_naive;
        self.suspend_naive = true;
        let chunks = self.planner.chunk_count(fc);
        let cols = fc.out_dim.div_ceil(chunks);
        let mut prev_gemm: Option<CmdId> = None;
        let mut prev_load: Option<CmdId> = None;
        let mut remaining = fc.out_dim;
        let mut last = 0;
        while remaining > 0 {
            let n = cols.min(remaining);
            remaining -= n;
            let mut load_deps = gate.clone();
            load_deps.extend(prev_load);
            let load = self.striped_load(core, fc.in_dim * n * 2, class, load_deps);
            prev_load = Some(load);
            let mut gemm_deps = vec![load];
            gemm_deps.extend(prev_gemm);
            if prev_gemm.is_none() {
                gemm_deps.extend(deps.iter().copied());
                gemm_deps.extend(gate.iter().copied());
            }
            last = self.mu_gemm(core, tokens, fc.in_dim, n, class, gemm_deps);
            prev_gemm = Some(last);
        }
        self.suspend_naive = suspended;
        self.naive_last[core as usize] = Some(last);
        last
    }

    // ------------------------------------------------------------------
    // Command emission primitives
    // ------------------------------------------------------------------

    fn heads_for_core(&self, core: u32) -> u64 {
        let part = self.partitions();
        let total = self.model.heads;
        let per = total.div_ceil(part);
        // Last slices may be short.
        let device_core = u64::from(core);
        let start = device_core * per;
        per.min(total.saturating_sub(start)).max(1)
    }

    fn reset(&mut self) {
        self.prog = Program::new();
        self.activity = Activity::new();
        self.naive_last = vec![None; self.cfg.npu.cores as usize];
        self.naive_last_pim = vec![None; self.cfg.npu.cores as usize];
        self.suspend_naive = false;
    }

    /// Pushes a non-PIM command, applying naive-schedule chaining.
    fn emit(&mut self, core: u32, cmd: Command) -> CmdId {
        self.emit_inner(core, cmd, false)
    }

    /// Pushes a command. The naive schedule of Figure 13 "fails to observe
    /// the parallelizability between PIM computations and other
    /// computations": a PIM command may not start before any earlier
    /// command of its core, and no later command may start before it —
    /// while NPU-internal dataflow (DMA/MU/VU pipelining) keeps its
    /// hardware overlap.
    fn emit_inner(&mut self, core: u32, mut cmd: Command, is_pim: bool) -> CmdId {
        let c = core as usize;
        if self.cfg.pas.schedule == Schedule::Naive && !self.suspend_naive {
            let gate = if is_pim {
                self.naive_last[c]
            } else {
                self.naive_last_pim[c]
            };
            if let Some(prev) = gate {
                cmd = cmd.after(prev);
            }
        }
        let id = self.prog.push(cmd);
        if !self.suspend_naive {
            self.naive_last[c] = Some(id);
            if is_pim {
                self.naive_last_pim[c] = Some(id);
            }
        }
        id
    }

    fn striped_load(&mut self, core: u32, bytes: u64, class: OpClass, deps: Vec<CmdId>) -> CmdId {
        self.activity.dram_read_bytes += bytes;
        let dur = self.dma.setup() + self.xfer.data_time(bytes, self.cfg.npu_channels());
        let cmd = Command::new(self.units.dma_in(core), dur, class.tag())
            .after_all(deps)
            .holding_all(self.units.striped_dma_holds());
        self.emit(core, cmd)
    }

    fn local_load(&mut self, core: u32, bytes: u64, class: OpClass, deps: Vec<CmdId>) -> CmdId {
        self.activity.dram_read_bytes += bytes;
        let ch = self.local_channels();
        let dur = self.dma.setup() + self.xfer.data_time(bytes, ch);
        let cmd = Command::new(self.units.dma_in(core), dur, class.tag())
            .after_all(deps)
            .holding_all(self.units.local_dma_holds(core));
        self.emit(core, cmd)
    }

    fn local_store(&mut self, core: u32, bytes: u64, class: OpClass, deps: Vec<CmdId>) -> CmdId {
        self.activity.dram_write_bytes += bytes;
        let ch = self.local_channels();
        let dur = self.dma.setup() + self.xfer.data_time(bytes, ch);
        let cmd = Command::new(self.units.dma_out(core), dur, class.tag())
            .after_all(deps)
            .holding_all(self.units.local_dma_holds(core));
        self.emit(core, cmd)
    }

    fn local_channels(&self) -> u32 {
        match self.cfg.memory {
            // Head-wise placement: each core's KV cache and PIM I/O live on
            // its own channel group and transfer in parallel with other
            // cores'.
            crate::MemoryPolicy::Unified => self.cfg.pim_channels_per_group().max(1),
            // Partitioned / plain-DRAM systems place per-head KV data on
            // a per-core share of the NPU channels.
            crate::MemoryPolicy::Partitioned | crate::MemoryPolicy::NpuMemOnly => {
                (self.cfg.npu_channels() / self.cfg.npu.cores).max(1)
            }
        }
    }

    fn onchip(&mut self, core: u32, bytes: u64, class: OpClass, deps: Vec<CmdId>) -> CmdId {
        self.activity.onchip_bytes += bytes;
        // The streaming transpose occupies both DMAs (Section 4.2.1), so
        // it blocks off-chip traffic from this core but not PIM.
        let dur = self.dma.onchip_transpose(bytes);
        let cmd = Command::new(self.units.dma_out(core), dur, class.tag())
            .after_all(deps)
            .holding(self.units.dma_in(core));
        self.emit(core, cmd)
    }

    fn mu_gemm(
        &mut self,
        core: u32,
        m: u64,
        k: u64,
        n: u64,
        class: OpClass,
        deps: Vec<CmdId>,
    ) -> CmdId {
        self.activity.mu_flops += 2 * m * k * n;
        let dur = self.mu.gemm(m, k, n);
        let cmd = Command::new(self.units.mu(core), dur, class.tag()).after_all(deps);
        self.emit(core, cmd)
    }

    fn vu_cmd(
        &mut self,
        core: u32,
        op: VuOp,
        elems: u64,
        class: OpClass,
        deps: Vec<CmdId>,
    ) -> CmdId {
        self.activity.vu_ops += elems;
        let dur = self.vu.op(op, elems);
        let cmd = Command::new(self.units.vu(core), dur, class.tag()).after_all(deps);
        self.emit(core, cmd)
    }

    fn pim_gemv(&mut self, core: u32, shape: GemvShape, class: OpClass, deps: Vec<CmdId>) -> CmdId {
        let pim = self.pim.as_ref().expect("pim_gemv without PIM compute");
        let cost = *self
            .pim_cache
            .entry(shape)
            .or_insert_with(|| pim.gemv(shape));
        self.activity.pim_internal_bytes += cost.internal_bytes;
        self.activity.pim_activations += cost.activations;
        self.activity.pim_gb_bytes += cost.gb_bytes;
        self.activity.pim_drain_bytes += cost.drain_bytes;
        let duration = cost.total + self.cfg.pim_macro_overhead;
        let cmd = Command::new(
            self.units.pim(self.units.group_of_core(core)),
            duration,
            class.tag(),
        )
        .after_all(deps)
        .holding_all(
            self.units
                .pim_holds(core)
                .into_iter()
                .filter(|&u| u != self.units.pim(self.units.group_of_core(core))),
        );
        self.emit_inner(core, cmd, true)
    }

    /// Emits a full synchronization: every core's next command depends on
    /// every core's last command; multi-device configurations add a PCIe
    /// exchange of the activations.
    fn barrier(&mut self, tokens: u64, last: Vec<Option<CmdId>>) -> Vec<Option<CmdId>> {
        let cores = self.cfg.npu.cores;
        let all: Vec<CmdId> = last.iter().filter_map(|&c| c).collect();
        let mut gate: Vec<CmdId> = all.clone();
        if self.cfg.devices > 1 {
            let d = u64::from(self.cfg.devices);
            let bytes = tokens * self.model.embed_dim * 2 * 2 * (d - 1) / d;
            let hops = u64::from(32 - (self.cfg.devices - 1).leading_zeros()); // ceil(log2 d)
            let dur = self.cfg.pcie_latency * hops.max(1)
                + Duration::from_ns_f64(bytes as f64 / self.cfg.pcie_gbps);
            let comm =
                Command::new(self.units.pcie(), dur, OpClass::Sync.tag()).after_all(all.clone());
            let comm_id = self.prog.push(comm);
            gate = vec![comm_id];
        }
        let mut out: Vec<Option<CmdId>> = Vec::with_capacity(cores as usize);
        for c in 0..cores {
            let cmd = Command::new(
                self.units.vu(c),
                self.cfg.npu.dispatch_overhead,
                OpClass::Sync.tag(),
            )
            .after_all(gate.iter().copied());
            out.push(Some(self.emit(c, cmd)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ianus_npu::scheduler::Engine;

    fn run(cfg: &SystemConfig, model: &ModelConfig, stage: &Stage) -> ianus_sim::Time {
        let mut c = Compiler::new(cfg, model);
        let compiled = c.compile(stage);
        let mut engine = Engine::new(c.unit_map().unit_count(), cfg.npu.dispatch_overhead);
        engine.run(&compiled.program).makespan()
    }

    #[test]
    fn generation_step_faster_on_ianus_than_npu_mem() {
        let model = ModelConfig::gpt2_m();
        let stage = Stage::Generation { past_tokens: 128 };
        let ianus = run(&SystemConfig::ianus(), &model, &stage);
        let npu_mem = run(&SystemConfig::npu_mem(), &model, &stage);
        let speedup = npu_mem.as_ns_f64() / ianus.as_ns_f64();
        assert!(speedup > 2.0, "speedup {speedup}");
    }

    #[test]
    fn summarization_similar_on_both_systems() {
        // PIM operates as standard GDDR6 during summarization (except the
        // LM head), so IANUS ≈ NPU-MEM there.
        let model = ModelConfig::gpt2_m();
        let stage = Stage::Summarization { tokens: 128 };
        let ianus = run(&SystemConfig::ianus(), &model, &stage);
        let npu_mem = run(&SystemConfig::npu_mem(), &model, &stage);
        let ratio = npu_mem.as_ns_f64() / ianus.as_ns_f64();
        assert!(ratio > 0.8 && ratio < 1.6, "ratio {ratio}");
    }

    #[test]
    fn overlap_beats_naive() {
        let model = ModelConfig::gpt2_l();
        let stage = Stage::Generation { past_tokens: 256 };
        let sched = run(&SystemConfig::ianus(), &model, &stage);
        let naive_cfg = SystemConfig::ianus().with_pas(crate::pas::PasPolicy {
            schedule: Schedule::Naive,
            ..crate::pas::PasPolicy::ianus()
        });
        let naive = run(&naive_cfg, &model, &stage);
        assert!(naive > sched, "naive {naive:?} vs scheduled {sched:?}");
    }

    #[test]
    fn bert_has_no_generation() {
        let model = ModelConfig::bert_b();
        let cfg = SystemConfig::ianus();
        let mut c = Compiler::new(&cfg, &model);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            c.compile(&Stage::Generation { past_tokens: 4 })
        }));
        assert!(result.is_err());
    }

    #[test]
    fn activity_accumulates_pim_work_in_generation() {
        let cfg = SystemConfig::ianus();
        let model = ModelConfig::gpt2_m();
        let mut c = Compiler::new(&cfg, &model);
        let compiled = c.compile(&Stage::Generation { past_tokens: 64 });
        assert!(compiled.activity.pim_internal_bytes > 0);
        // All block FC weights stream through PIM once per token.
        let fc_bytes = model.fc_param_count() * 2;
        assert!(compiled.activity.pim_internal_bytes as f64 > 0.8 * fc_bytes as f64);
    }

    #[test]
    fn multi_device_emits_pcie_commands() {
        let model = ModelConfig::gpt2_m();
        let single = {
            let cfg = SystemConfig::ianus();
            let mut c = Compiler::new(&cfg, &model);
            c.compile(&Stage::Generation { past_tokens: 32 })
                .program
                .len()
        };
        let cfg = SystemConfig::ianus().with_devices(4);
        let mut c = Compiler::new(&cfg, &model);
        let compiled = c.compile(&Stage::Generation { past_tokens: 32 });
        // One PCIe exchange per barrier: 4 per block + 1 after LM head.
        let pcie = c.unit_map().pcie();
        let pcie_cmds = compiled
            .program
            .commands()
            .iter()
            .filter(|cmd| cmd.unit == pcie)
            .count();
        assert_eq!(pcie_cmds as u64, 4 * model.blocks + 1);
        // Fewer heads per core: the per-device program shrinks.
        assert!(compiled.program.len() < single);
    }

    #[test]
    fn partitioned_splits_oversized_fc_between_pim_and_mu() {
        // GPT-2 2.5B FCs exceed the 4 GB partition, so generation FCs
        // must issue both PIM and matrix-unit commands.
        let model = ModelConfig::gpt2_2_5b();
        let cfg = SystemConfig::partitioned();
        let mut c = Compiler::new(&cfg, &model);
        let compiled = c.compile(&Stage::Generation { past_tokens: 64 });
        let units = c.unit_map();
        let pim_units: Vec<_> = (0..units.groups()).map(|g| units.pim(g)).collect();
        let pim_cmds = compiled
            .program
            .commands()
            .iter()
            .filter(|cmd| pim_units.contains(&cmd.unit))
            .count();
        let mu_fc_cmds = compiled
            .program
            .commands()
            .iter()
            .filter(|cmd| cmd.unit == units.mu(0) && cmd.tag == OpClass::FfnAdd.tag())
            .count();
        assert!(pim_cmds > 0, "no PIM commands in partitioned mode");
        assert!(
            mu_fc_cmds > 0,
            "oversized FCs must spill onto the matrix unit"
        );
        // The unified system keeps those FCs fully on PIM.
        let ucfg = SystemConfig::ianus();
        let mut uc = Compiler::new(&ucfg, &model);
        let ucompiled = uc.compile(&Stage::Generation { past_tokens: 64 });
        let uunits = uc.unit_map();
        let u_mu_fc = ucompiled
            .program
            .commands()
            .iter()
            .filter(|cmd| cmd.unit == uunits.mu(0) && cmd.tag == OpClass::FfnAdd.tag())
            .count();
        assert_eq!(u_mu_fc, 0);
    }

    #[test]
    fn pim_attention_mapping_moves_products_to_pim() {
        let model = ModelConfig::gpt2_m();
        let count_attn = |attn: AttnMapping, unit_is_mu: bool| -> usize {
            let cfg = SystemConfig::ianus().with_pas(crate::pas::PasPolicy {
                attention: attn,
                ..crate::pas::PasPolicy::ianus()
            });
            let mut c = Compiler::new(&cfg, &model);
            let compiled = c.compile(&Stage::Generation { past_tokens: 64 });
            let units = c.unit_map();
            compiled
                .program
                .commands()
                .iter()
                .filter(|cmd| {
                    cmd.tag == OpClass::SelfAttention.tag()
                        && if unit_is_mu {
                            (0..units.cores()).any(|core| cmd.unit == units.mu(core))
                        } else {
                            (0..units.groups()).any(|g| cmd.unit == units.pim(g))
                        }
                })
                .count()
        };
        assert!(count_attn(AttnMapping::MatrixUnit, true) > 0);
        assert_eq!(count_attn(AttnMapping::MatrixUnit, false), 0);
        assert!(count_attn(AttnMapping::Pim, false) > 0);
        assert_eq!(count_attn(AttnMapping::Pim, true), 0);
    }

    #[test]
    fn odd_core_counts_compile_and_run() {
        // GPT-2 L has 20 heads; 3 cores do not divide them evenly.
        let model = ModelConfig::gpt2_l();
        let cfg = SystemConfig::ianus().with_cores(3);
        let t = run(&cfg, &model, &Stage::Generation { past_tokens: 64 });
        let t4 = run(
            &SystemConfig::ianus(),
            &model,
            &Stage::Generation { past_tokens: 64 },
        );
        assert!(t > t4, "3 cores must be slower than 4");
    }

    #[test]
    fn microbench_scales_with_blocks() {
        let cfg = SystemConfig::ianus();
        let m = ModelConfig::gpt2_m(); // 24 blocks
        let l = ModelConfig::gpt2_xl(); // 48 blocks
        let mut cm = Compiler::new(&cfg, &m);
        let mut cl = Compiler::new(&cfg, &l);
        let pm = cm.compile_fc_microbench(8, FcMapping::Pim).program.len();
        let pl = cl.compile_fc_microbench(8, FcMapping::Pim).program.len();
        assert!(pl > pm);
    }

    #[test]
    fn summarization_streams_weights_over_dma() {
        let cfg = SystemConfig::ianus();
        let model = ModelConfig::gpt2_m();
        let mut c = Compiler::new(&cfg, &model);
        let compiled = c.compile(&Stage::Summarization { tokens: 128 });
        let fc_bytes = model.fc_param_count() * 2;
        let read = compiled.activity.dram_read_bytes;
        assert!(
            read as f64 > 0.9 * fc_bytes as f64 && (read as f64) < 1.5 * fc_bytes as f64,
            "read {read} vs fc {fc_bytes}"
        );
    }
}
