//! The unified [`Backend`] trait: one serving interface over every device
//! model in the workspace.
//!
//! The paper motivates IANUS with interactive batch-1 serving, and the
//! repo grew four ways to ask "how long does this request take" —
//! [`IanusSystem::run_request`], [`DeviceGroup::run_request`], and the
//! baselines' ad-hoc `request_latency` methods. [`Backend`] collapses
//! them into one trait so the serving engine ([`crate::serving`]), the
//! examples, and any future scheduler can treat a single IANUS device, a
//! PCIe-ganged device group, an A100, or a DFX appliance interchangeably
//! — through `dyn Backend` or generics.
//!
//! Implementations in this crate: [`IanusSystem`] and [`DeviceGroup`].
//! The `ianus-baselines` crate implements it for `GpuModel` and
//! `DfxModel`.
//!
//! # Examples
//!
//! ```
//! use ianus_core::backend::Backend;
//! use ianus_core::multi_device::DeviceGroup;
//! use ianus_core::{IanusSystem, SystemConfig};
//! use ianus_model::{ModelConfig, RequestShape};
//!
//! let mut backends: Vec<Box<dyn Backend>> = vec![
//!     Box::new(IanusSystem::new(SystemConfig::ianus())),
//!     Box::new(DeviceGroup::new(SystemConfig::ianus(), 2)),
//! ];
//! let model = ModelConfig::gpt2_m();
//! for b in &mut backends {
//!     assert!(b.fits(&model).is_ok());
//!     assert!(b.service_time(&model, RequestShape::new(128, 8)).as_ms_f64() > 0.0);
//! }
//! ```

use crate::capacity::{check_model, CapacityError};
use crate::multi_device::DeviceGroup;
use crate::{IanusSystem, MemoryPolicy};
use ianus_model::{ModelConfig, RequestShape};
use ianus_sim::Duration;

/// A device model that can serve whole requests.
///
/// The contract every implementation upholds:
///
/// * `service_time` is **deterministic**: the same model and shape always
///   produce the same duration (backends may memoize internally on that
///   basis).
/// * `service_time` is the same quantity the backend's native API reports
///   — `RunReport::total` for simulated devices, `request_latency` for
///   the analytical baselines — so going through the trait never changes
///   a result.
/// * `fits` is a *residency* check (weights + a nominal context's KV
///   cache + working buffers against device memory); callers dispatch a
///   request only after it returns `Ok`.
pub trait Backend {
    /// Human-readable platform name (stable across calls; used as the
    /// replica label in serving reports).
    fn name(&self) -> &str;

    /// End-to-end time to serve one request of `shape` on `model`,
    /// with the backend otherwise idle.
    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration;

    /// Whether `model` is resident on this backend.
    ///
    /// # Errors
    ///
    /// [`CapacityError`] describing the shortfall when it is not.
    fn fits(&self, model: &ModelConfig) -> Result<(), CapacityError>;
}

impl Backend for IanusSystem {
    fn name(&self) -> &str {
        let devices = self.config().devices;
        match (self.config().memory, devices) {
            (MemoryPolicy::Unified, 1) => "IANUS",
            (MemoryPolicy::Unified, _) => "IANUS group",
            (MemoryPolicy::Partitioned, _) => "IANUS (partitioned)",
            (MemoryPolicy::NpuMemOnly, _) => "NPU-MEM",
        }
    }

    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
        self.run_request(model, shape).total
    }

    fn fits(&self, model: &ModelConfig) -> Result<(), CapacityError> {
        check_model(self.config(), model)
    }
}

impl Backend for DeviceGroup {
    fn name(&self) -> &str {
        self.label()
    }

    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
        self.run_request(model, shape).total
    }

    fn fits(&self, model: &ModelConfig) -> Result<(), CapacityError> {
        check_model(self.system().config(), model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;

    #[test]
    fn ianus_system_backend_matches_direct_api() {
        let model = ModelConfig::gpt2_m();
        let shape = RequestShape::new(64, 4);
        let direct = IanusSystem::new(SystemConfig::ianus())
            .run_request(&model, shape)
            .total;
        let mut backend: Box<dyn Backend> = Box::new(IanusSystem::new(SystemConfig::ianus()));
        assert_eq!(backend.service_time(&model, shape), direct);
        assert_eq!(backend.name(), "IANUS");
    }

    #[test]
    fn device_group_backend_matches_direct_api() {
        let model = ModelConfig::gpt_6_7b();
        let shape = RequestShape::new(64, 2);
        let direct = DeviceGroup::new(SystemConfig::ianus(), 2)
            .run_request(&model, shape)
            .total;
        let mut backend = DeviceGroup::new(SystemConfig::ianus(), 2);
        assert_eq!(Backend::service_time(&mut backend, &model, shape), direct);
        assert_eq!(Backend::name(&backend), "IANUS x2");
    }

    #[test]
    fn fits_tracks_memory_policy() {
        let sys = IanusSystem::new(SystemConfig::ianus());
        assert!(sys.fits(&ModelConfig::gpt2_xl()).is_ok());
        assert!(sys.fits(&ModelConfig::gpt_13b()).is_err());
        let group = DeviceGroup::new(SystemConfig::ianus(), 4);
        assert!(Backend::fits(&group, &ModelConfig::gpt_13b()).is_ok());
    }

    #[test]
    fn backend_names_distinguish_policies() {
        assert_eq!(IanusSystem::new(SystemConfig::npu_mem()).name(), "NPU-MEM");
        assert_eq!(
            IanusSystem::new(SystemConfig::partitioned()).name(),
            "IANUS (partitioned)"
        );
    }
}
