//! The unified [`Backend`] trait: one serving interface over every device
//! model in the workspace.
//!
//! The paper motivates IANUS with interactive batch-1 serving, and the
//! repo grew four ways to ask "how long does this request take" —
//! [`IanusSystem::run_request`], [`DeviceGroup::run_request`], and the
//! baselines' ad-hoc `request_latency` methods. [`Backend`] collapses
//! them into one trait so the serving engine ([`crate::serving`]), the
//! examples, and any future scheduler can treat a single IANUS device, a
//! PCIe-ganged device group, an A100, or a DFX appliance interchangeably
//! — through `dyn Backend` or generics.
//!
//! Implementations in this crate: [`IanusSystem`] and [`DeviceGroup`].
//! The `ianus-baselines` crate implements it for `GpuModel` and
//! `DfxModel`.
//!
//! # Examples
//!
//! ```
//! use ianus_core::backend::Backend;
//! use ianus_core::multi_device::DeviceGroup;
//! use ianus_core::{IanusSystem, SystemConfig};
//! use ianus_model::{ModelConfig, RequestShape};
//!
//! let mut backends: Vec<Box<dyn Backend>> = vec![
//!     Box::new(IanusSystem::new(SystemConfig::ianus())),
//!     Box::new(DeviceGroup::new(SystemConfig::ianus(), 2)),
//! ];
//! let model = ModelConfig::gpt2_m();
//! for b in &mut backends {
//!     assert!(b.fits(&model).is_ok());
//!     assert!(b.service_time(&model, RequestShape::new(128, 8)).as_ms_f64() > 0.0);
//! }
//! ```

#![deny(missing_docs)]

use crate::capacity::{check_batch, check_model, CapacityError};
use crate::multi_device::DeviceGroup;
use crate::{IanusSystem, MemoryPolicy};
use ianus_model::{ModelConfig, RequestShape, Stage};
use ianus_sim::Duration;

/// A device model that can serve whole requests — and, for
/// iteration-level scheduling, individual prefill and decode steps.
///
/// The contract every implementation upholds:
///
/// * `service_time` is **deterministic**: the same model and shape always
///   produce the same duration (backends may memoize internally on that
///   basis).
/// * `service_time` is the same quantity the backend's native API reports
///   — `RunReport::total` for simulated devices, `request_latency` for
///   the analytical baselines — so going through the trait never changes
///   a result.
/// * `fits` is a *residency* check (weights + a nominal context's KV
///   cache + working buffers against device memory); callers dispatch a
///   request only after it returns `Ok`.
/// * `prefill_time` and `decode_time` decompose `service_time`: at batch
///   size 1, `prefill_time(model, input)` plus the request's
///   `output − 1` decode steps reproduces `service_time(model, shape)`
///   to within the backend's step-sampling accuracy. This is what lets
///   [`crate::serving::Scheduling::IterationLevel`] agree with
///   request-level results when batching is off.
/// * `kv_transfer_time` prices *one direction* of a KV-cache swap
///   (eviction to or restoration from host memory) from the sequence's
///   [`kv_swap_bytes`](crate::capacity::kv_swap_bytes) over the
///   backend's host link; the preemptive scheduler charges it once at
///   swap-out and once at swap-in. It grows monotonically with the
///   token count and is zero for zero tokens. The same price covers KV
///   *migration* between replicas of a disaggregated cluster
///   ([`crate::serving#disaggregated-prefilldecode`]): the prefill
///   replica pays `kv_transfer_time` on its D2H lane and the decode
///   replica pays its own on its H2D lane, back to back.
///
/// Backends are `Send` (every implementation in this workspace is plain
/// data) so a cloned [`crate::serving::ServingSim`] can move to a scoped
/// thread during parallel rate sweeps.
pub trait Backend: Send {
    /// Human-readable platform name (stable across calls; used as the
    /// replica label in serving reports).
    fn name(&self) -> &str;

    /// End-to-end time to serve one request of `shape` on `model`,
    /// with the backend otherwise idle.
    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration;

    /// Whether `model` is resident on this backend.
    ///
    /// # Errors
    ///
    /// [`CapacityError`] describing the shortfall when it is not.
    fn fits(&self, model: &ModelConfig) -> Result<(), CapacityError>;

    /// Time to prefill `tokens` prompt tokens (the summarization stage),
    /// which also produces the request's first output token.
    ///
    /// Default: the service time of a `(tokens, 1)` request, which is
    /// exactly the prefill stage for every backend in this workspace.
    fn prefill_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        self.service_time(model, RequestShape::new(tokens.max(1), 1))
    }

    /// Wall time of **one decode iteration** over `batch` concurrent
    /// sequences, each attending to roughly `past_tokens` of context.
    ///
    /// Default: `batch ×` the marginal cost of one extra generated token
    /// (the difference between a `(past, 2)` and a `(past, 1)` request)
    /// — i.e. a backend with no batching hardware serializes the batch.
    /// Backends whose decode is weight-streaming-bound (the GPU) override
    /// this to amortize the weight traffic across the batch.
    fn decode_time(&mut self, model: &ModelConfig, past_tokens: u64, batch: u32) -> Duration {
        let past = past_tokens.max(1);
        let with_step = self.service_time(model, RequestShape::new(past, 2));
        let without = self.service_time(model, RequestShape::new(past, 1));
        let step = if with_step > without {
            with_step - without
        } else {
            Duration::ZERO
        };
        step * u64::from(batch.max(1))
    }

    /// Residency check for a *batch* of concurrently served sequences:
    /// one copy of the weights plus every sequence's KV cache at its
    /// final length. On success returns the projected fraction of device
    /// memory occupied (the iteration-level scheduler's admission gate
    /// and the `peak_kv_occupancy` it reports).
    ///
    /// Default: the model-level [`fits`](Self::fits) check with zero
    /// reported occupancy — a backend without a memory model accepts any
    /// batch.
    ///
    /// # Errors
    ///
    /// [`CapacityError`] when the batch does not fit.
    fn batch_fits(
        &self,
        model: &ModelConfig,
        _batch: &[RequestShape],
    ) -> Result<f64, CapacityError> {
        self.fits(model)?;
        Ok(0.0)
    }

    /// Time to move one sequence's KV cache (`tokens` of context) one
    /// way between device and host memory — the cost the preemptive
    /// scheduler ([`crate::serving::Scheduling::IterationLevel`]'s
    /// `preempt` knob) charges at each swap-out and each swap-in.
    ///
    /// Default: zero. A backend without a memory model reports zero
    /// occupancy from [`batch_fits`](Self::batch_fits), so it never
    /// triggers preemption either — the two defaults are consistent.
    /// Backends with a real memory model override this to price
    /// [`kv_swap_bytes`](crate::capacity::kv_swap_bytes) over their
    /// host interconnect.
    fn kv_transfer_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        let _ = (model, tokens);
        Duration::ZERO
    }

    /// Host-side DRAM available to swapped-out KV caches, in bytes —
    /// the finite pool the preemptive scheduler debits with
    /// [`kv_swap_bytes`](crate::capacity::kv_swap_bytes) at each
    /// swap-out and credits back at the swap-in. A swap-out that would
    /// overflow the pool falls back to recompute-based eviction (the
    /// KV is dropped and re-prefilled on re-admission).
    ///
    /// Default: `None` — unbounded, consistent with the other
    /// no-memory-model defaults (and with engine behavior before the
    /// pool existed). Backends with a real memory model report their
    /// host-DRAM budget; [`ServingSim::host_kv_pool`](crate::serving::ServingSim::host_kv_pool)
    /// can override it per engine.
    fn host_kv_bytes(&self) -> Option<u64> {
        None
    }

    /// Device bytes available to hold KV cache once `model`'s weights
    /// and the activation buffers of a `widest_input`-wide prefill are
    /// resident — the budget the paged allocator
    /// ([`crate::serving::kv`]) carves into fixed-size blocks when
    /// [`ServingSim::kv_block`](crate::serving::ServingSim::kv_block)
    /// is set.
    ///
    /// Default: `None` — a backend without a memory model has no block
    /// budget either, so paging stays inactive on it (consistent with
    /// [`batch_fits`](Self::batch_fits) never triggering preemption).
    fn kv_budget_bytes(&self, model: &ModelConfig, widest_input: u64) -> Option<u64> {
        let _ = (model, widest_input);
        None
    }

    /// A boxed deep copy of this backend, if it supports cloning —
    /// what [`ServingSim::try_clone`](crate::serving::ServingSim::try_clone)
    /// uses to stamp out independent engines for parallel rate sweeps.
    ///
    /// Default: `None` (backend cannot be cloned; sweeps fall back to
    /// serial probing on the original engine). Every concrete backend
    /// in this workspace overrides it.
    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        None
    }
}

impl Backend for IanusSystem {
    fn name(&self) -> &str {
        let devices = self.config().devices;
        match (self.config().memory, devices) {
            (MemoryPolicy::Unified, 1) => "IANUS",
            (MemoryPolicy::Unified, _) => "IANUS group",
            (MemoryPolicy::Partitioned, _) => "IANUS (partitioned)",
            (MemoryPolicy::NpuMemOnly, _) => "NPU-MEM",
        }
    }

    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
        self.run_request(model, shape).total
    }

    fn fits(&self, model: &ModelConfig) -> Result<(), CapacityError> {
        check_model(self.config(), model)
    }

    fn prefill_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        self.run_stage(
            model,
            &Stage::Summarization {
                tokens: tokens.max(1),
            },
        )
        .latency
    }

    /// A batched IANUS decode iteration serializes over the batch: the
    /// generation-stage FCs run as in-memory PIM GEMVs (one pass per
    /// input vector, so weight reads are *not* amortized across
    /// sequences), and attention + vector work are per-sequence anyway.
    /// This is the quantitative form of the paper's Section 6.1 stance —
    /// IANUS serves batch 1 because batching buys it nothing.
    fn decode_time(&mut self, model: &ModelConfig, past_tokens: u64, batch: u32) -> Duration {
        self.run_stage(model, &Stage::Generation { past_tokens })
            .latency
            * u64::from(batch.max(1))
    }

    fn batch_fits(
        &self,
        model: &ModelConfig,
        batch: &[RequestShape],
    ) -> Result<f64, CapacityError> {
        check_batch(self.config(), model, batch).map(|r| r.occupancy())
    }

    /// KV swaps leave the device over PCIe (the GDDR6 side is an order
    /// of magnitude faster, so the host link binds), plus one
    /// synchronization round-trip.
    fn kv_transfer_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        let bytes = crate::capacity::kv_swap_bytes(model, tokens);
        self.config().pcie_latency + Duration::from_ns_f64(bytes as f64 / self.config().pcie_gbps)
    }

    fn host_kv_bytes(&self) -> Option<u64> {
        Some(self.config().host_kv_bytes)
    }

    fn kv_budget_bytes(&self, model: &ModelConfig, widest_input: u64) -> Option<u64> {
        Some(crate::capacity::kv_budget_bytes(
            self.config(),
            model,
            widest_input,
        ))
    }

    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(self.clone()))
    }
}

impl Backend for DeviceGroup {
    fn name(&self) -> &str {
        self.label()
    }

    fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
        self.run_request(model, shape).total
    }

    fn fits(&self, model: &ModelConfig) -> Result<(), CapacityError> {
        check_model(self.system().config(), model)
    }

    fn prefill_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        self.system_mut()
            .run_stage(
                model,
                &Stage::Summarization {
                    tokens: tokens.max(1),
                },
            )
            .latency
    }

    /// Serialized like the single device: the group's PIM GEMVs are
    /// per-sequence passes too (see [`IanusSystem`]'s `decode_time`).
    fn decode_time(&mut self, model: &ModelConfig, past_tokens: u64, batch: u32) -> Duration {
        self.system_mut()
            .run_stage(model, &Stage::Generation { past_tokens })
            .latency
            * u64::from(batch.max(1))
    }

    fn batch_fits(
        &self,
        model: &ModelConfig,
        batch: &[RequestShape],
    ) -> Result<f64, CapacityError> {
        check_batch(self.system().config(), model, batch).map(|r| r.occupancy())
    }

    /// The KV cache shards head-wise with the attention partitioning,
    /// and every device drains its shard over its own PCIe link in
    /// parallel — so the per-link traffic divides by the device count
    /// while the synchronization latency does not.
    fn kv_transfer_time(&mut self, model: &ModelConfig, tokens: u64) -> Duration {
        let cfg = *self.system().config();
        let bytes =
            crate::capacity::kv_swap_bytes(model, tokens).div_ceil(u64::from(cfg.devices.max(1)));
        cfg.pcie_latency + Duration::from_ns_f64(bytes as f64 / cfg.pcie_gbps)
    }

    /// The ganged devices hang off **one** host, so the group shares a
    /// single host-DRAM pool — it does not scale with the device count.
    fn host_kv_bytes(&self) -> Option<u64> {
        Some(self.system().config().host_kv_bytes)
    }

    /// KV blocks shard head-wise with the attention partitioning, so
    /// the group's block budget aggregates every device's headroom.
    fn kv_budget_bytes(&self, model: &ModelConfig, widest_input: u64) -> Option<u64> {
        Some(crate::capacity::kv_budget_bytes(
            self.system().config(),
            model,
            widest_input,
        ))
    }

    fn clone_box(&self) -> Option<Box<dyn Backend>> {
        Some(Box::new(self.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;

    #[test]
    fn ianus_system_backend_matches_direct_api() {
        let model = ModelConfig::gpt2_m();
        let shape = RequestShape::new(64, 4);
        let direct = IanusSystem::new(SystemConfig::ianus())
            .run_request(&model, shape)
            .total;
        let mut backend: Box<dyn Backend> = Box::new(IanusSystem::new(SystemConfig::ianus()));
        assert_eq!(backend.service_time(&model, shape), direct);
        assert_eq!(backend.name(), "IANUS");
    }

    #[test]
    fn device_group_backend_matches_direct_api() {
        let model = ModelConfig::gpt_6_7b();
        let shape = RequestShape::new(64, 2);
        let direct = DeviceGroup::new(SystemConfig::ianus(), 2)
            .run_request(&model, shape)
            .total;
        let mut backend = DeviceGroup::new(SystemConfig::ianus(), 2);
        assert_eq!(Backend::service_time(&mut backend, &model, shape), direct);
        assert_eq!(Backend::name(&backend), "IANUS x2");
    }

    #[test]
    fn fits_tracks_memory_policy() {
        let sys = IanusSystem::new(SystemConfig::ianus());
        assert!(sys.fits(&ModelConfig::gpt2_xl()).is_ok());
        assert!(sys.fits(&ModelConfig::gpt_13b()).is_err());
        let group = DeviceGroup::new(SystemConfig::ianus(), 4);
        assert!(Backend::fits(&group, &ModelConfig::gpt_13b()).is_ok());
    }

    #[test]
    fn backend_names_distinguish_policies() {
        assert_eq!(IanusSystem::new(SystemConfig::npu_mem()).name(), "NPU-MEM");
        assert_eq!(
            IanusSystem::new(SystemConfig::partitioned()).name(),
            "IANUS (partitioned)"
        );
    }

    #[test]
    fn prefill_plus_decode_steps_reproduce_service_time() {
        // For short outputs run_request sums its generation stages
        // exactly, so the step decomposition must reproduce it exactly.
        let model = ModelConfig::gpt2_m();
        let shape = RequestShape::new(64, 8);
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let service = Backend::service_time(&mut sys, &model, shape);
        let mut steps = Backend::prefill_time(&mut sys, &model, shape.input);
        for past in shape.input..shape.input + shape.generation_steps() {
            steps += Backend::decode_time(&mut sys, &model, past, 1);
        }
        assert_eq!(steps, service);
    }

    #[test]
    fn device_group_decomposition_matches_service_time() {
        let model = ModelConfig::gpt_6_7b();
        let shape = RequestShape::new(64, 4);
        let mut group = DeviceGroup::new(SystemConfig::ianus(), 2);
        let service = Backend::service_time(&mut group, &model, shape);
        let mut steps = Backend::prefill_time(&mut group, &model, shape.input);
        for past in shape.input..shape.input + shape.generation_steps() {
            steps += Backend::decode_time(&mut group, &model, past, 1);
        }
        assert_eq!(steps, service);
    }

    #[test]
    fn ianus_batched_decode_serializes() {
        // The documented IANUS batching model: a batch-b iteration costs
        // exactly b single-sequence steps (PIM GEMVs are per-sequence).
        let model = ModelConfig::gpt2_m();
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let one = Backend::decode_time(&mut sys, &model, 128, 1);
        let four = Backend::decode_time(&mut sys, &model, 128, 4);
        assert_eq!(four, one * 4);
    }

    #[test]
    fn batch_fits_reports_growing_occupancy() {
        let model = ModelConfig::gpt2_xl();
        let sys = IanusSystem::new(SystemConfig::ianus());
        let shape = RequestShape::new(512, 512);
        let one = Backend::batch_fits(&sys, &model, &[shape]).unwrap();
        let four = Backend::batch_fits(&sys, &model, &[shape; 4]).unwrap();
        assert!(four > one);
        // Enough sequences must be refused.
        assert!(Backend::batch_fits(&sys, &model, &[shape; 64]).is_err());
        // And the group spreads the same batch across more memory.
        let group = DeviceGroup::new(SystemConfig::ianus(), 4);
        let grouped = Backend::batch_fits(&group, &model, &[shape; 4]).unwrap();
        assert!(grouped < four);
    }

    #[test]
    fn host_pool_defaults() {
        // Simulated devices report the config's host-DRAM budget; a
        // device group shares one host, so the pool does not scale.
        let sys = IanusSystem::new(SystemConfig::ianus());
        assert_eq!(Backend::host_kv_bytes(&sys), Some(32 << 30));
        let group = DeviceGroup::new(SystemConfig::ianus(), 4);
        assert_eq!(Backend::host_kv_bytes(&group), Some(32 << 30));
        let tuned = IanusSystem::new(SystemConfig::ianus().with_host_kv_bytes(1 << 30));
        assert_eq!(Backend::host_kv_bytes(&tuned), Some(1 << 30));
    }

    #[test]
    fn kv_transfer_is_pcie_bound_and_monotone() {
        let model = ModelConfig::gpt2_xl();
        let mut sys = IanusSystem::new(SystemConfig::ianus());
        let short = Backend::kv_transfer_time(&mut sys, &model, 128);
        let long = Backend::kv_transfer_time(&mut sys, &model, 1024);
        assert!(short > Duration::ZERO);
        assert!(long > short, "more KV must take longer to swap");
        // 1024 tokens of GPT-2 XL KV ≈ 302 MB over a 64 GB/s link plus
        // the sync latency: single-digit milliseconds.
        assert!(long.as_ms_f64() > 1.0 && long.as_ms_f64() < 20.0, "{long}");
        // A group drains its head-wise KV shards over parallel links.
        let mut group = DeviceGroup::new(SystemConfig::ianus(), 4);
        let grouped = Backend::kv_transfer_time(&mut group, &model, 1024);
        assert!(grouped < long, "group {grouped} vs single {long}");
    }

    #[test]
    fn default_decode_time_is_marginal_service_cost() {
        // A backend using only the trait defaults decomposes consistently
        // too: default decode is the (past,2) − (past,1) marginal.
        struct Linear;
        impl Backend for Linear {
            fn name(&self) -> &str {
                "linear"
            }
            fn service_time(&mut self, _: &ModelConfig, shape: RequestShape) -> Duration {
                Duration::from_us(10) * (shape.input + shape.output)
            }
            fn fits(&self, _: &ModelConfig) -> Result<(), CapacityError> {
                Ok(())
            }
        }
        let model = ModelConfig::gpt2_m();
        let mut b = Linear;
        assert_eq!(b.decode_time(&model, 100, 1), Duration::from_us(10));
        assert_eq!(b.decode_time(&model, 100, 5), Duration::from_us(50));
        assert_eq!(b.prefill_time(&model, 128), Duration::from_us(10) * 129);
        assert!(b.batch_fits(&model, &[]).is_ok());
        // No memory model: swaps are free and host space unbounded —
        // consistent with the default batch_fits never triggering
        // preemption in the first place.
        assert_eq!(b.kv_transfer_time(&model, 1024), Duration::ZERO);
        assert_eq!(b.host_kv_bytes(), None);
    }
}
