//! Run reports: latency, breakdowns, utilization, energy.

use crate::EnergyBreakdown;
use ianus_sim::Duration;
use std::fmt;

/// Operation classes used for latency attribution — the categories of the
/// paper's Figure 10 breakdown, plus bookkeeping classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Layer normalization (vector unit).
    LayerNorm,
    /// Everything inside self-attention: QKᵀ, softmax, SV, transposes,
    /// concatenation, KV-cache traffic.
    SelfAttention,
    /// Q/K/V projection FCs (compute and weight traffic).
    FcQkv,
    /// Attention output projection FC + its residual addition.
    FcAttnProjAdd,
    /// FFN layers (+GELU) + residual addition.
    FfnAdd,
    /// Language-model head.
    LmHead,
    /// Inter-core/device synchronization and communication.
    Sync,
    /// Anything else (embeddings, final norm).
    Other,
}

impl OpClass {
    /// All classes, in report order.
    pub const ALL: [OpClass; 8] = [
        OpClass::LayerNorm,
        OpClass::SelfAttention,
        OpClass::FcQkv,
        OpClass::FcAttnProjAdd,
        OpClass::FfnAdd,
        OpClass::LmHead,
        OpClass::Sync,
        OpClass::Other,
    ];

    /// Stable tag index for the scheduler.
    pub fn tag(self) -> usize {
        match self {
            OpClass::LayerNorm => 0,
            OpClass::SelfAttention => 1,
            OpClass::FcQkv => 2,
            OpClass::FcAttnProjAdd => 3,
            OpClass::FfnAdd => 4,
            OpClass::LmHead => 5,
            OpClass::Sync => 6,
            OpClass::Other => 7,
        }
    }

    /// Human-readable label (matches Figure 10's legend).
    pub fn label(self) -> &'static str {
        match self {
            OpClass::LayerNorm => "LayerNorm",
            OpClass::SelfAttention => "Self-attention",
            OpClass::FcQkv => "FC for Q,K,V",
            OpClass::FcAttnProjAdd => "FC for Attention + Add",
            OpClass::FfnAdd => "FFN + Add",
            OpClass::LmHead => "LM head",
            OpClass::Sync => "Sync/Comm",
            OpClass::Other => "Other",
        }
    }
}

impl fmt::Display for OpClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-class busy time of one stage or request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Breakdown {
    classes: [Duration; 8],
}

impl Breakdown {
    /// Creates an empty breakdown.
    pub fn new() -> Self {
        Breakdown::default()
    }

    /// Adds busy time to a class.
    pub fn add(&mut self, class: OpClass, d: Duration) {
        self.classes[class.tag()] += d;
    }

    /// Busy time of a class.
    pub fn get(&self, class: OpClass) -> Duration {
        self.classes[class.tag()]
    }

    /// Merges another breakdown into this one.
    pub fn merge(&mut self, other: &Breakdown) {
        for c in OpClass::ALL {
            self.classes[c.tag()] += other.classes[c.tag()];
        }
    }

    /// Scales all classes by `factor` (used when extrapolating sampled
    /// generation steps).
    pub fn scaled(&self, factor: f64) -> Breakdown {
        let mut out = Breakdown::new();
        for c in OpClass::ALL {
            out.classes[c.tag()] =
                Duration::from_ns_f64(self.classes[c.tag()].as_ns_f64() * factor);
        }
        out
    }

    /// Sum over all classes.
    pub fn total(&self) -> Duration {
        self.classes.iter().copied().sum()
    }
}

/// Report of a single stage execution.
#[derive(Debug, Clone)]
pub struct StageReport {
    /// Stage makespan.
    pub latency: Duration,
    /// Per-class busy time.
    pub breakdown: Breakdown,
    /// FLOPs executed (for throughput/utilization reports).
    pub flops: u64,
    /// Dynamic energy of the stage.
    pub energy: EnergyBreakdown,
}

/// Report of an end-to-end request.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// End-to-end latency.
    pub total: Duration,
    /// Summarization-stage latency.
    pub summarization: Duration,
    /// Total generation latency (all steps).
    pub generation: Duration,
    /// Number of generation steps executed.
    pub generation_steps: u64,
    /// Per-class busy time over the whole request.
    pub breakdown: Breakdown,
    /// Total FLOPs of the request.
    pub flops: u64,
    /// Dynamic energy of the request.
    pub energy: EnergyBreakdown,
}

impl RunReport {
    /// Average latency per generated token (excluding summarization).
    pub fn per_token_latency(&self) -> Option<Duration> {
        if self.generation_steps == 0 {
            None
        } else {
            Some(self.generation / self.generation_steps)
        }
    }

    /// Achieved throughput in TFLOPS.
    pub fn throughput_tflops(&self) -> f64 {
        if self.total == Duration::ZERO {
            0.0
        } else {
            self.flops as f64 / self.total.as_secs_f64() / 1e12
        }
    }

    /// Compute utilization against a peak TFLOPS figure.
    pub fn utilization(&self, peak_tflops: f64) -> f64 {
        self.throughput_tflops() / peak_tflops
    }

    /// Generated tokens per second (counting the summarization stage's
    /// first token, as in Figure 18).
    pub fn tokens_per_second(&self, output_tokens: u64) -> f64 {
        output_tokens as f64 / self.total.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_are_dense_and_unique() {
        let mut seen = [false; 8];
        for c in OpClass::ALL {
            assert!(!seen[c.tag()]);
            seen[c.tag()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn breakdown_accumulates() {
        let mut b = Breakdown::new();
        b.add(OpClass::LayerNorm, Duration::from_ns(5));
        b.add(OpClass::LayerNorm, Duration::from_ns(5));
        b.add(OpClass::FfnAdd, Duration::from_ns(20));
        assert_eq!(b.get(OpClass::LayerNorm), Duration::from_ns(10));
        assert_eq!(b.total(), Duration::from_ns(30));
    }

    #[test]
    fn breakdown_scaling() {
        let mut b = Breakdown::new();
        b.add(OpClass::Sync, Duration::from_ns(100));
        let s = b.scaled(2.5);
        assert_eq!(s.get(OpClass::Sync), Duration::from_ns(250));
    }

    #[test]
    fn labels_match_figure10() {
        assert_eq!(OpClass::FcQkv.label(), "FC for Q,K,V");
        assert_eq!(OpClass::FfnAdd.label(), "FFN + Add");
        assert_eq!(format!("{}", OpClass::LayerNorm), "LayerNorm");
    }
}
