//! Device-memory capacity accounting for requests.
//!
//! IANUS has 8 GB per device (versus 80 GB on an A100), so whether a
//! model + request fits is a first-class question (Sections 3.2 and 7).
//! This module answers it: weights (duplicated in the partitioned
//! organization), the KV cache the request will grow to, activation
//! buffers, and the device count needed when one device is not enough.

use crate::{EnergyModel, SystemConfig};
use ianus_model::{ModelConfig, RequestShape};
use std::fmt;

/// Why a request cannot run on a configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CapacityError {
    /// The total sequence exceeds the model's positional table.
    SequenceTooLong {
        /// Requested total tokens.
        requested: u64,
        /// Model maximum.
        max_seq: u64,
    },
    /// The memory footprint exceeds device capacity.
    OutOfMemory {
        /// Required bytes per device.
        required: u64,
        /// Available bytes per device.
        available: u64,
    },
}

impl fmt::Display for CapacityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CapacityError::SequenceTooLong { requested, max_seq } => write!(
                f,
                "sequence of {requested} tokens exceeds the model maximum of {max_seq}"
            ),
            CapacityError::OutOfMemory {
                required,
                available,
            } => write!(
                f,
                "request needs {} MiB but only {} MiB of memory are available",
                required >> 20,
                available >> 20
            ),
        }
    }
}

impl std::error::Error for CapacityError {}

/// Memory footprint of a model + request on one device of a
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CapacityReport {
    /// Weight bytes per device (after sharding across devices).
    pub weight_bytes: u64,
    /// KV-cache bytes per device at the request's final length.
    pub kv_bytes: u64,
    /// Activation/working buffer estimate.
    pub activation_bytes: u64,
    /// Device capacity available to the model.
    pub available_bytes: u64,
}

impl CapacityReport {
    /// Total required bytes per device.
    pub fn required_bytes(&self) -> u64 {
        self.weight_bytes + self.kv_bytes + self.activation_bytes
    }

    /// Fraction of device memory the request occupies.
    pub fn occupancy(&self) -> f64 {
        self.required_bytes() as f64 / self.available_bytes as f64
    }
}

/// Activation/working-buffer margin assumed by the single-pool
/// residency checks: [`nominal_footprint_bytes`] and the baselines'
/// batch-admission gate both reserve this much beyond weights and KV,
/// so the two can never drift apart.
pub const WORKING_BUFFER_BYTES: u64 = 1 << 30;

/// Nominal single-pool residency footprint of `model`: weights plus a
/// 1024-token KV cache (capped at the model's maximum sequence) plus
/// the [`WORKING_BUFFER_BYTES`] activation/buffer margin. This is the
/// one place the nominal-context convention is defined; the baselines'
/// `Backend::fits` and
/// [`DeviceGroup::devices_for`](crate::multi_device::DeviceGroup::devices_for)
/// both build on it, while [`check_model`]/[`check_request`] apply the
/// device-sharded variant.
pub fn nominal_footprint_bytes(model: &ModelConfig) -> u64 {
    let context = model.max_seq.min(1024);
    model.param_bytes() + model.kv_bytes_per_token() * context + WORKING_BUFFER_BYTES
}

/// Bytes that move when a sequence holding `tokens` of context is
/// swapped out of (or back into) device memory: its KV cache, and
/// nothing else — weights stay resident and activations are transient.
/// This is the one place the swap-traffic convention is defined; every
/// [`Backend::kv_transfer_time`](crate::backend::Backend::kv_transfer_time)
/// implementation prices these bytes against its own host link.
///
/// # Examples
///
/// ```
/// use ianus_core::capacity::kv_swap_bytes;
/// use ianus_model::ModelConfig;
///
/// let m = ModelConfig::gpt2_xl();
/// assert_eq!(kv_swap_bytes(&m, 512), m.kv_bytes_per_token() * 512);
/// assert_eq!(kv_swap_bytes(&m, 0), 0);
/// ```
pub fn kv_swap_bytes(model: &ModelConfig, tokens: u64) -> u64 {
    model.kv_bytes_per_token() * tokens
}

/// Relative acquisition-cost figure for one device, in abstract "cost
/// units": its memory capacity in GiB plus a bandwidth premium —
/// 0.2 units per GB/s of sustained memory bandwidth, weighted by the
/// default [`EnergyModel`]'s DRAM I/O energy (`dram_per_byte`, pJ/B) as
/// a stand-in for interface cost. Memory capacity and memory bandwidth
/// dominate what LLM-serving accelerators are priced on, so this single
/// figure is enough to size *equal-cost* device pools when comparing
/// cluster organizations
/// ([`DisaggregationConfig::equal_cost`](crate::serving::DisaggregationConfig::equal_cost)).
/// The absolute scale is arbitrary; only ratios between devices matter.
///
/// # Examples
///
/// ```
/// use ianus_core::capacity::device_cost_units;
///
/// // An 80 GiB, 2039 GB/s device (A100-class) costs ~102.8 units;
/// // an 8 GiB, 256 GB/s GDDR6 device costs ~10.9 — roughly 9.5×
/// // cheaper, so an equal-cost pool holds ~9.5 of them per A100.
/// let a100 = device_cost_units(80 << 30, 2039.0);
/// let pim = device_cost_units(8 << 30, 256.0);
/// assert!((a100 / pim) > 9.0 && (a100 / pim) < 10.0);
/// ```
pub fn device_cost_units(hbm_bytes: u64, mem_gbps: f64) -> f64 {
    let gib = hbm_bytes as f64 / (1u64 << 30) as f64;
    gib + 0.2 * (EnergyModel::default().dram_per_byte * mem_gbps * 1e-3)
}

/// Device bytes available to hold KV cache on `cfg` once `model`'s
/// (sharded) weights and the activation buffers of a `widest_input`-wide
/// prefill are resident — aggregated across the configuration's devices,
/// since the KV cache shards head-wise just like [`check_batch`]'s
/// accounting assumes. This is the budget a paged allocator
/// ([`crate::serving::kv`]) carves into fixed-size blocks; dividing by a
/// block's [`kv_swap_bytes`] gives the device block count.
///
/// Returns 0 when the weights alone (plus buffers) exceed device memory.
///
/// # Examples
///
/// ```
/// use ianus_core::capacity::{check_batch, kv_budget_bytes};
/// use ianus_core::SystemConfig;
/// use ianus_model::{ModelConfig, RequestShape};
///
/// let cfg = SystemConfig::ianus();
/// let m = ModelConfig::gpt2_xl();
/// let budget = kv_budget_bytes(&cfg, &m, 512);
/// // The budget is exactly what check_batch would let KV grow to.
/// let kv_per_seq = m.kv_bytes_per_token() * 1024;
/// let fits = budget / kv_per_seq;
/// let batch = vec![RequestShape::new(512, 512); fits as usize];
/// assert!(check_batch(&cfg, &m, &batch).is_ok());
/// ```
pub fn kv_budget_bytes(cfg: &SystemConfig, model: &ModelConfig, widest_input: u64) -> u64 {
    let devices = u64::from(cfg.devices).max(1);
    let weight_bytes = model.param_bytes().div_ceil(devices);
    let activation_bytes = 8 * widest_input * model.ffn_dim() * 2 / devices;
    let per_device = cfg
        .weight_capacity_bytes()
        .saturating_sub(weight_bytes)
        .saturating_sub(activation_bytes);
    per_device * devices
}

/// Checks whether `model` is resident on `cfg` without a concrete
/// request: weights plus the KV cache and activations of a nominal
/// 1024-token context (capped at the model's maximum sequence). This is
/// the check behind [`crate::backend::Backend::fits`].
///
/// # Errors
///
/// [`CapacityError::OutOfMemory`] when the footprint exceeds per-device
/// memory.
///
/// # Examples
///
/// ```
/// use ianus_core::capacity::check_model;
/// use ianus_core::SystemConfig;
/// use ianus_model::ModelConfig;
///
/// assert!(check_model(&SystemConfig::ianus(), &ModelConfig::gpt2_xl()).is_ok());
/// assert!(check_model(&SystemConfig::ianus(), &ModelConfig::gpt_13b()).is_err());
/// ```
pub fn check_model(cfg: &SystemConfig, model: &ModelConfig) -> Result<(), CapacityError> {
    let context = model.max_seq.min(1024);
    check_request(cfg, model, RequestShape::new(context, 1)).map(|_| ())
}

/// Checks whether `request` on `model` fits `cfg`, returning the
/// footprint.
///
/// # Errors
///
/// [`CapacityError::SequenceTooLong`] if the request exceeds the model's
/// maximum sequence; [`CapacityError::OutOfMemory`] if the footprint
/// exceeds per-device memory.
///
/// # Examples
///
/// ```
/// use ianus_core::capacity::check_request;
/// use ianus_core::SystemConfig;
/// use ianus_model::{ModelConfig, RequestShape};
///
/// let report = check_request(
///     &SystemConfig::ianus(),
///     &ModelConfig::gpt2_xl(),
///     RequestShape::new(128, 64),
/// )?;
/// assert!(report.occupancy() < 0.5);
/// // GPT 13B cannot fit one device:
/// assert!(check_request(
///     &SystemConfig::ianus(),
///     &ModelConfig::gpt_13b(),
///     RequestShape::new(128, 64),
/// ).is_err());
/// # Ok::<(), ianus_core::capacity::CapacityError>(())
/// ```
pub fn check_request(
    cfg: &SystemConfig,
    model: &ModelConfig,
    request: RequestShape,
) -> Result<CapacityReport, CapacityError> {
    check_batch(cfg, model, std::slice::from_ref(&request))
}

/// Checks whether a *batch* of concurrently resident requests fits `cfg`:
/// one copy of the (sharded) weights, the sum of every sequence's KV
/// cache at its final length, and the activation buffers of the widest
/// prefill. This is the residency gate behind iteration-level admission
/// ([`crate::serving::Scheduling::IterationLevel`]); with a single
/// request it is exactly [`check_request`].
///
/// Request fields use the saturating token accounting of
/// [`RequestShape::total_tokens`], so struct-literal zero shapes cannot
/// underflow the `input + output − 1` arithmetic.
///
/// # Errors
///
/// [`CapacityError::SequenceTooLong`] if any sequence exceeds the model's
/// maximum; [`CapacityError::OutOfMemory`] if the combined footprint
/// exceeds per-device memory.
pub fn check_batch(
    cfg: &SystemConfig,
    model: &ModelConfig,
    batch: &[RequestShape],
) -> Result<CapacityReport, CapacityError> {
    let mut kv_total = 0u64;
    let mut widest_input = 0u64;
    for request in batch {
        let total_seq = request.total_tokens();
        if total_seq > model.max_seq {
            return Err(CapacityError::SequenceTooLong {
                requested: total_seq,
                max_seq: model.max_seq,
            });
        }
        kv_total += model.kv_bytes_per_token() * total_seq;
        widest_input = widest_input.max(request.input);
    }
    let devices = u64::from(cfg.devices);
    // Weights shard across devices (head-wise and column-wise splits).
    let weight_bytes = model.param_bytes().div_ceil(devices);
    // KV cache shards head-wise with the attention partitioning.
    let kv_bytes = kv_total.div_ceil(devices);
    // Activations: a few live token-row buffers per block-width dimension.
    let activation_bytes = 8 * widest_input * model.ffn_dim() * 2 / devices.max(1);
    let available_bytes = cfg.weight_capacity_bytes();
    let report = CapacityReport {
        weight_bytes,
        kv_bytes,
        activation_bytes,
        available_bytes,
    };
    if report.required_bytes() > available_bytes {
        return Err(CapacityError::OutOfMemory {
            required: report.required_bytes(),
            available: available_bytes,
        });
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt2_family_fits_one_device() {
        for model in ModelConfig::gpt2_family() {
            let r = check_request(&SystemConfig::ianus(), &model, RequestShape::new(512, 512));
            assert!(r.is_ok(), "{}: {r:?}", model.name);
        }
    }

    #[test]
    fn sequence_limit_enforced() {
        let err = check_request(
            &SystemConfig::ianus(),
            &ModelConfig::gpt2_m(),
            RequestShape::new(1024, 512),
        )
        .unwrap_err();
        assert!(matches!(err, CapacityError::SequenceTooLong { .. }));
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn large_models_need_paper_device_counts() {
        for (model, devices) in [
            (ModelConfig::gpt_6_7b(), 2u32),
            (ModelConfig::gpt_13b(), 4),
            (ModelConfig::gpt_30b(), 8),
        ] {
            let one = check_request(&SystemConfig::ianus(), &model, RequestShape::new(256, 64));
            assert!(one.is_err(), "{} should not fit one device", model.name);
            let enough = check_request(
                &SystemConfig::ianus().with_devices(devices),
                &model,
                RequestShape::new(256, 64),
            );
            assert!(
                enough.is_ok(),
                "{} on {devices} devices: {enough:?}",
                model.name
            );
        }
    }

    #[test]
    fn partitioned_halves_headroom() {
        let u = check_request(
            &SystemConfig::ianus(),
            &ModelConfig::gpt2_2_5b(),
            RequestShape::new(256, 64),
        )
        .unwrap();
        let p = check_request(
            &SystemConfig::partitioned(),
            &ModelConfig::gpt2_2_5b(),
            RequestShape::new(256, 64),
        );
        // 2.5B weights (4.9 GB) exceed the 4 GB duplicated partition.
        assert!(u.occupancy() < 1.0);
        assert!(p.is_err());
    }

    #[test]
    fn zero_output_literal_does_not_underflow() {
        // Regression: `RequestShape` fields are `pub`, so a struct
        // literal can carry `output: 0`; `input + output - 1` used to
        // wrap to ~u64::MAX and report SequenceTooLong nonsense (or
        // panic in debug). The saturating accounting treats it as an
        // `input`-token footprint.
        let rogue = RequestShape {
            input: 128,
            output: 0,
        };
        let r = check_request(&SystemConfig::ianus(), &ModelConfig::gpt2_m(), rogue).unwrap();
        let baseline = check_request(
            &SystemConfig::ianus(),
            &ModelConfig::gpt2_m(),
            RequestShape::new(128, 1),
        )
        .unwrap();
        assert_eq!(r.kv_bytes, baseline.kv_bytes);
    }

    #[test]
    fn batch_kv_is_additive_over_sequences() {
        let cfg = SystemConfig::ianus();
        let m = ModelConfig::gpt2_xl();
        let shape = RequestShape::new(256, 64);
        let one = check_request(&cfg, &m, shape).unwrap();
        let four = check_batch(&cfg, &m, &[shape; 4]).unwrap();
        assert_eq!(four.kv_bytes, one.kv_bytes * 4);
        assert_eq!(four.weight_bytes, one.weight_bytes);
        assert!(four.occupancy() > one.occupancy());
    }

    #[test]
    fn batch_admission_hits_memory_wall() {
        // Enough long sequences must eventually exceed the 8 GB device.
        let cfg = SystemConfig::ianus();
        let m = ModelConfig::gpt2_xl();
        let shape = RequestShape::new(512, 512);
        let mut batch = Vec::new();
        let mut admitted = 0;
        while check_batch(&cfg, &m, &batch).is_ok() {
            batch.push(shape);
            admitted += 1;
            assert!(admitted < 1000, "memory wall never reached");
        }
        assert!(admitted > 1, "a single long request should fit");
    }

    #[test]
    fn cost_units_scale_with_capacity_and_bandwidth() {
        let base = device_cost_units(8 << 30, 256.0);
        assert!(device_cost_units(16 << 30, 256.0) > base);
        assert!(device_cost_units(8 << 30, 512.0) > base);
        // Capacity term is exact GiB; bandwidth premium is positive.
        assert!(base > 8.0);
        assert!((device_cost_units(8 << 30, 0.0) - 8.0).abs() < 1e-12);
    }

    #[test]
    fn occupancy_grows_with_output() {
        let cfg = SystemConfig::ianus();
        let m = ModelConfig::gpt2_xl();
        let a = check_request(&cfg, &m, RequestShape::new(128, 8)).unwrap();
        let b = check_request(&cfg, &m, RequestShape::new(128, 512)).unwrap();
        assert!(b.kv_bytes > a.kv_bytes);
        assert!(b.occupancy() > a.occupancy());
    }
}
