//! Multi-IANUS scaling (paper Section 7, Figures 17/18).
//!
//! Larger LLMs need more memory than one device's 8 GB; the paper gangs
//! 2/4/8 IANUS devices over PCIe 5.0 ×16, exploiting intra-layer and
//! attention-head parallelism across devices. Compilation already divides
//! per-core work by `cores × devices` and inserts PCIe exchanges at every
//! synchronization, so this module is a thin orchestration layer: capacity
//! checks, device-count selection and the perf/TDP cost metrics of
//! Section 7.2.

use crate::{IanusSystem, RunReport, SystemConfig};
use ianus_model::{ModelConfig, RequestShape};

/// Thermal design power assumed for one IANUS device (Section 7.2).
pub const IANUS_TDP_WATTS: f64 = 120.0;

/// Thermal design power of the A100 comparison GPU.
pub const A100_TDP_WATTS: f64 = 400.0;

/// Error for models that do not fit the requested device group.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityError {
    /// Model name.
    pub model: &'static str,
    /// Bytes required per device.
    pub required: u64,
    /// Bytes available per device.
    pub available: u64,
}

impl std::fmt::Display for CapacityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} needs {} MiB per device but only {} MiB are available",
            self.model,
            self.required >> 20,
            self.available >> 20
        )
    }
}

impl std::error::Error for CapacityError {}

/// A group of identically configured IANUS devices.
///
/// # Examples
///
/// ```
/// use ianus_core::multi_device::DeviceGroup;
/// use ianus_core::SystemConfig;
/// use ianus_model::ModelConfig;
///
/// let g = DeviceGroup::new(SystemConfig::ianus(), 2);
/// assert!(g.fits(&ModelConfig::gpt_6_7b()).is_ok());
/// assert!(g.fits(&ModelConfig::gpt_30b()).is_err());
/// assert_eq!(DeviceGroup::devices_for(&ModelConfig::gpt_30b()), 8);
/// ```
#[derive(Debug, Clone)]
pub struct DeviceGroup {
    system: IanusSystem,
    devices: u32,
    label: String,
}

impl DeviceGroup {
    /// Creates a group of `devices` devices.
    ///
    /// # Panics
    ///
    /// Panics if `devices` is zero.
    pub fn new(base: SystemConfig, devices: u32) -> Self {
        DeviceGroup {
            system: IanusSystem::new(base.with_devices(devices)),
            devices,
            label: format!("IANUS x{devices}"),
        }
    }

    /// Device count.
    pub fn devices(&self) -> u32 {
        self.devices
    }

    /// Display label (e.g. `"IANUS x4"`), used as the group's
    /// [`Backend`](crate::backend::Backend) name.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The underlying (device-count-adjusted) system.
    pub fn system(&self) -> &IanusSystem {
        &self.system
    }

    /// Mutable access to the underlying system (stage-level runs need
    /// `&mut`; used by the group's [`Backend`](crate::backend::Backend)
    /// prefill/decode costs).
    pub fn system_mut(&mut self) -> &mut IanusSystem {
        &mut self.system
    }

    /// Minimum device count whose aggregate memory holds `model` (weights
    /// plus working set margin) — the paper's 2/4/8 for 6.7B/13B/30B.
    pub fn devices_for(model: &ModelConfig) -> u32 {
        let per_device = SystemConfig::ianus().weight_capacity_bytes();
        let needed = crate::capacity::nominal_footprint_bytes(model);
        let mut d = 1u32;
        while u64::from(d) * per_device < needed {
            d *= 2;
        }
        d
    }

    /// Checks that `model` is resident on each device of the group —
    /// the same sharded weights + nominal-context KV + activations check
    /// as [`capacity::check_model`](crate::capacity::check_model) and
    /// the group's [`Backend::fits`](crate::backend::Backend::fits),
    /// reported with this module's model-tagged error type.
    ///
    /// # Errors
    ///
    /// Returns [`CapacityError`] when the per-device footprint exceeds
    /// device memory.
    pub fn fits(&self, model: &ModelConfig) -> Result<(), CapacityError> {
        match crate::capacity::check_model(self.system.config(), model) {
            Ok(()) => Ok(()),
            Err(crate::capacity::CapacityError::OutOfMemory {
                required,
                available,
            }) => Err(CapacityError {
                model: model.name,
                required,
                available,
            }),
            // check_model's nominal context is capped at the model's
            // maximum sequence, so it can never be too long.
            Err(crate::capacity::CapacityError::SequenceTooLong { .. }) => {
                unreachable!("nominal context cannot exceed the model maximum")
            }
        }
    }

    /// Runs a request across the group (the compiled program already
    /// models the per-device share and PCIe synchronization).
    ///
    /// # Panics
    ///
    /// Panics if the model does not fit (call [`Self::fits`] first).
    pub fn run_request(&mut self, model: &ModelConfig, request: RequestShape) -> RunReport {
        assert!(self.fits(model).is_ok(), "model does not fit device group");
        self.system.run_request(model, request)
    }

    /// Generated tokens per second for a request (Figure 18's strong
    /// scaling metric).
    pub fn tokens_per_second(&mut self, model: &ModelConfig, request: RequestShape) -> f64 {
        let report = self.run_request(model, request);
        report.tokens_per_second(request.output)
    }

    /// Performance per TDP watt relative to an A100 (Section 7.2):
    /// `(t_gpu / t_group) / (group_tdp / gpu_tdp)`.
    pub fn cost_efficiency_vs_gpu(&mut self, gpu_latency_ms: f64, group_latency_ms: f64) -> f64 {
        let perf_ratio = gpu_latency_ms / group_latency_ms;
        let tdp_ratio = (self.devices as f64 * IANUS_TDP_WATTS) / A100_TDP_WATTS;
        perf_ratio / tdp_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_device_counts() {
        assert_eq!(DeviceGroup::devices_for(&ModelConfig::gpt_6_7b()), 2);
        assert_eq!(DeviceGroup::devices_for(&ModelConfig::gpt_13b()), 4);
        assert_eq!(DeviceGroup::devices_for(&ModelConfig::gpt_30b()), 8);
    }

    #[test]
    fn more_devices_faster_but_sublinear() {
        let model = ModelConfig::gpt_6_7b();
        let req = RequestShape::new(256, 64);
        let mut g2 = DeviceGroup::new(SystemConfig::ianus(), 2);
        let mut g8 = DeviceGroup::new(SystemConfig::ianus(), 8);
        let t2 = g2.tokens_per_second(&model, req);
        let t8 = g8.tokens_per_second(&model, req);
        let scaling = t8 / t2;
        // Figure 18: 4× devices give ≈ 2.5× throughput.
        assert!(scaling > 1.5 && scaling < 4.0, "scaling {scaling}");
    }

    #[test]
    fn capacity_error_reports_sizes() {
        let g = DeviceGroup::new(SystemConfig::ianus(), 1);
        let err = g.fits(&ModelConfig::gpt_13b()).unwrap_err();
        assert!(err.to_string().contains("GPT 13B"));
        assert!(err.required > err.available);
    }

    #[test]
    fn cost_efficiency_formula() {
        let mut g = DeviceGroup::new(SystemConfig::ianus(), 2);
        // 2 devices = 240 W vs 400 W; equal latency → efficiency 400/240.
        let eff = g.cost_efficiency_vs_gpu(10.0, 10.0);
        assert!((eff - 400.0 / 240.0).abs() < 1e-9);
    }
}
