//! Unit-index conventions for the scheduler engine.
//!
//! One IANUS device executes as a single [`ianus_npu::scheduler::Engine`]
//! whose resources are laid out as: per-core MU/VU/DMA-in/DMA-out blocks,
//! then the NPU memory bus, the per-group memory-channel tokens, the
//! per-group PIM pipelines, and the PCIe link. The memory-channel tokens
//! are what encodes the unified-memory conflict: a normal DMA stream holds
//! the channel tokens it touches, and a macro PIM command holds its
//! group's token — so they serialize exactly when they share channels.

use crate::{MemoryPolicy, SystemConfig};
use ianus_npu::scheduler::UnitId;

/// Resolves unit indices for a system configuration.
///
/// # Examples
///
/// ```
/// use ianus_core::{SystemConfig, UnitMap};
/// let m = UnitMap::new(&SystemConfig::ianus());
/// assert_ne!(m.mu(0), m.mu(1));
/// assert_ne!(m.pim(0), m.mem(0));
/// assert!(m.unit_count() > 16);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct UnitMap {
    cores: u32,
    groups: u32,
    unified: bool,
}

impl UnitMap {
    /// Builds the map for a configuration.
    pub fn new(cfg: &SystemConfig) -> Self {
        UnitMap {
            cores: cfg.npu.cores,
            groups: cfg.pim_groups(),
            unified: cfg.memory == MemoryPolicy::Unified,
        }
    }

    /// Number of cores.
    pub fn cores(&self) -> u32 {
        self.cores
    }

    /// Number of PIM / memory channel groups.
    pub fn groups(&self) -> u32 {
        self.groups
    }

    /// Matrix unit of core `c`.
    pub fn mu(&self, c: u32) -> UnitId {
        self.core_base(c)
    }

    /// Vector unit of core `c`.
    pub fn vu(&self, c: u32) -> UnitId {
        self.core_base(c) + 1
    }

    /// Load DMA engine of core `c`.
    pub fn dma_in(&self, c: u32) -> UnitId {
        self.core_base(c) + 2
    }

    /// Store DMA engine of core `c`.
    pub fn dma_out(&self, c: u32) -> UnitId {
        self.core_base(c) + 3
    }

    /// The striped NPU memory bus (plain DRAM traffic over all NPU
    /// channels).
    pub fn npu_mem(&self) -> UnitId {
        (self.cores * 4) as UnitId
    }

    /// Memory-channel token of group `g` (held by PIM ops and, in the
    /// unified system, by DMA streams touching those channels).
    pub fn mem(&self, g: u32) -> UnitId {
        (self.cores * 4 + 1 + (g % self.groups)) as UnitId
    }

    /// PIM compute pipeline of group `g`.
    pub fn pim(&self, g: u32) -> UnitId {
        (self.cores * 4 + 1 + self.groups + (g % self.groups)) as UnitId
    }

    /// PCIe link (multi-device synchronization).
    pub fn pcie(&self) -> UnitId {
        (self.cores * 4 + 1 + 2 * self.groups) as UnitId
    }

    /// Total resources the engine must allocate.
    pub fn unit_count(&self) -> usize {
        (self.cores * 4 + 2 + 2 * self.groups) as usize
    }

    /// The PIM group serving core `c` (cores share groups when scarce).
    pub fn group_of_core(&self, c: u32) -> u32 {
        c % self.groups
    }

    /// Resources a striped DMA stream must hold: the NPU bus, plus — in
    /// the unified system only — every channel group token (the stream
    /// touches all channels, so it conflicts with every PIM op).
    pub fn striped_dma_holds(&self) -> Vec<UnitId> {
        let mut v = vec![self.npu_mem()];
        if self.unified {
            v.extend((0..self.groups).map(|g| self.mem(g)));
        }
        v
    }

    /// Resources a core-local DMA stream (KV cache, PIM input/output under
    /// head-wise placement) must hold.
    pub fn local_dma_holds(&self, core: u32) -> Vec<UnitId> {
        if self.unified {
            vec![self.mem(self.group_of_core(core))]
        } else {
            // Partitioned / NPU-only systems also place per-head KV data
            // on per-core channels: transfers are core-private and only
            // occupy the core's own DMA engine.
            Vec::new()
        }
    }

    /// Resources a macro PIM command on core `c`'s group must hold: its
    /// PIM pipeline plus — in the unified system — its channel token.
    pub fn pim_holds(&self, core: u32) -> Vec<UnitId> {
        let g = self.group_of_core(core);
        if self.unified {
            vec![self.pim(g), self.mem(g)]
        } else {
            vec![self.pim(g)]
        }
    }

    fn core_base(&self, c: u32) -> UnitId {
        assert!(c < self.cores, "core {c} out of range");
        (c * 4) as UnitId
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SystemConfig;
    use std::collections::HashSet;

    #[test]
    fn indices_are_disjoint() {
        let m = UnitMap::new(&SystemConfig::ianus());
        let mut seen = HashSet::new();
        for c in 0..m.cores() {
            for u in [m.mu(c), m.vu(c), m.dma_in(c), m.dma_out(c)] {
                assert!(seen.insert(u), "duplicate unit {u}");
            }
        }
        assert!(seen.insert(m.npu_mem()));
        for g in 0..m.groups() {
            assert!(seen.insert(m.mem(g)));
            assert!(seen.insert(m.pim(g)));
        }
        assert!(seen.insert(m.pcie()));
        assert_eq!(seen.len(), m.unit_count());
    }

    #[test]
    fn unified_dma_conflicts_with_all_pim_groups() {
        let m = UnitMap::new(&SystemConfig::ianus());
        let holds = m.striped_dma_holds();
        assert_eq!(holds.len(), 1 + m.groups() as usize);
        for g in 0..m.groups() {
            assert!(holds.contains(&m.mem(g)));
        }
    }

    #[test]
    fn partitioned_dma_does_not_conflict_with_pim() {
        let m = UnitMap::new(&SystemConfig::partitioned());
        assert_eq!(m.striped_dma_holds(), vec![m.npu_mem()]);
        assert_eq!(m.pim_holds(0), vec![m.pim(0)]);
    }

    #[test]
    fn unified_pim_holds_channel_token() {
        let m = UnitMap::new(&SystemConfig::ianus());
        let holds = m.pim_holds(2);
        assert!(holds.contains(&m.mem(2)));
        assert!(holds.contains(&m.pim(2)));
    }

    #[test]
    fn cores_share_groups_when_scarce() {
        let m = UnitMap::new(&SystemConfig::ianus().with_pim_chips(1));
        assert_eq!(m.groups(), 2);
        assert_eq!(m.group_of_core(0), m.group_of_core(2));
        assert_ne!(m.group_of_core(0), m.group_of_core(1));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn core_bounds_checked() {
        let m = UnitMap::new(&SystemConfig::ianus());
        let _ = m.mu(4);
    }
}
