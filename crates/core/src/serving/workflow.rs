//! Agentic workflow DAGs: dependency-scheduled request graphs.
//!
//! A [`WorkflowTemplate`] describes one multi-step "agentic" job as a
//! DAG of [`WorkflowNode`]s. Each node is an LLM call with its own
//! [`RequestShape`]; edges mean *the child's prompt consumes the
//! parent's output*, so a node's **effective input** is its own prompt
//! plus the sum of its parents' outputs. The serving engine
//! ([`ServingSim`](super::ServingSim)) instantiates templates from a
//! Poisson arrival process (one draw per workflow *instance*, mirroring
//! the flat mix so a single-node template is bit-identical to the
//! equivalent [`RequestClass`](super::RequestClass) mix) and schedules
//! nodes with ready/waiting sets: a node enters the wait queue only
//! when its **last** parent completes, and each completion fans out to
//! its children.
//!
//! Two properties distinguish workflow traffic from flat mixes:
//!
//! - **KV prefix inheritance** — under paged KV accounting the parent
//!   registers its output's KV blocks in the
//!   [`PrefixCache`](super::kv::PrefixCache) just before it completes,
//!   and the child admits with those blocks mapped copy-on-write, so it
//!   prefills only its own prompt suffix (shorter prefill → lower
//!   TTFT). The cache entry is dropped eagerly once every consumer has
//!   admitted or been cancelled.
//! - **Speculative cancellation** — siblings sharing a
//!   [`speculative_group`](WorkflowNode::speculative_group) race:
//!   the first to finish wins, and every losing sibling's subtree is
//!   cancelled (queued nodes leave the wait queue, never-released nodes
//!   never enter it, and their refcounted KV is released).
//!
//! Graphs are validated *before* the run by a three-color DFS
//! ([`WorkflowTemplate::validate`]) that rejects cycles and dangling
//! parent references, so the runtime scheduler never has to defend
//! against malformed graphs.

use super::Priority;
use ianus_model::RequestShape;

/// One LLM call inside a [`WorkflowTemplate`].
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowNode {
    /// This node's own prompt and output lengths. The engine serves the
    /// node at its *effective* shape: `shape.input` plus the sum of its
    /// parents' `shape.output` (the parents' outputs are part of the
    /// child's prompt), with `shape.output` unchanged.
    pub shape: RequestShape,
    /// Indices (into [`WorkflowTemplate::nodes`]) of the nodes whose
    /// outputs this node's prompt consumes. Empty for root nodes.
    /// Self-references, out-of-range indices, and cycles are rejected
    /// by [`WorkflowTemplate::validate`].
    pub parents: Vec<usize>,
    /// Speculative-race tag: all nodes of a template carrying the same
    /// group id race each other — the first to complete wins and every
    /// other member's subtree is cancelled. `None` (the default) means
    /// the node always runs.
    pub speculative_group: Option<u32>,
}

impl WorkflowNode {
    /// A root node (no parents, no speculative group).
    pub fn new(shape: RequestShape) -> Self {
        WorkflowNode {
            shape,
            parents: Vec::new(),
            speculative_group: None,
        }
    }

    /// A node depending on `parents` (indices into the template).
    pub fn with_parents(shape: RequestShape, parents: Vec<usize>) -> Self {
        WorkflowNode {
            shape,
            parents,
            speculative_group: None,
        }
    }

    /// A speculative node: depends on `parents` and races every other
    /// node of the template tagged with the same `group`.
    pub fn speculative(shape: RequestShape, parents: Vec<usize>, group: u32) -> Self {
        WorkflowNode {
            shape,
            parents,
            speculative_group: Some(group),
        }
    }
}

/// A weighted, reusable workflow DAG the engine can instantiate.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkflowTemplate {
    /// The DAG's nodes; edges are the per-node
    /// [`parents`](WorkflowNode::parents) lists.
    pub nodes: Vec<WorkflowNode>,
    /// Relative weight of this template in the workflow mix (weights
    /// need not sum to one; the instance draw mirrors the flat mix's
    /// `pick_class`).
    pub weight: f64,
    /// Scheduling tier every node of an instance runs at.
    pub priority: Priority,
    /// End-to-end deadline in seconds, measured from the instance's
    /// arrival to the completion of its last non-cancelled node.
    /// Scored as `workflow_slo_attainment` in the
    /// [`ServingReport`](super::ServingReport), and visible to
    /// policies as the `workflow_deadline` on every queued node.
    pub deadline_secs: Option<f64>,
}

/// Why [`WorkflowTemplate::validate`] rejected a graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkflowError {
    /// The template has no nodes.
    Empty,
    /// A dependency cycle passes through `node` (detected as a
    /// back-edge to an in-progress node of the three-color DFS).
    Cycle {
        /// A node on the cycle.
        node: usize,
    },
    /// `node` names a parent that does not exist (out of range or a
    /// self-reference).
    DanglingParent {
        /// The node carrying the bad edge.
        node: usize,
        /// The offending parent index.
        parent: usize,
    },
}

impl std::fmt::Display for WorkflowError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            WorkflowError::Empty => write!(f, "workflow template has no nodes"),
            WorkflowError::Cycle { node } => {
                write!(f, "workflow dependency cycle through node {node}")
            }
            WorkflowError::DanglingParent { node, parent } => {
                write!(f, "workflow node {node} references missing parent {parent}")
            }
        }
    }
}

impl std::error::Error for WorkflowError {}

/// DFS colors of the preflight cycle check: WHITE = unvisited, GRAY =
/// on the current DFS stack (a back-edge to GRAY is a cycle), BLACK =
/// fully explored.
#[derive(Clone, Copy, PartialEq)]
enum Color {
    White,
    Gray,
    Black,
}

impl WorkflowTemplate {
    /// An [`Priority::Interactive`] template of `nodes` with `weight`
    /// and no deadline.
    pub fn new(nodes: Vec<WorkflowNode>, weight: f64) -> Self {
        WorkflowTemplate {
            nodes,
            weight,
            priority: Priority::Interactive,
            deadline_secs: None,
        }
    }

    /// Replaces the priority tier (builder style).
    pub fn with_priority(mut self, priority: Priority) -> Self {
        self.priority = priority;
        self
    }

    /// Attaches an end-to-end deadline in seconds (builder style).
    pub fn with_deadline(mut self, deadline_secs: f64) -> Self {
        self.deadline_secs = Some(deadline_secs);
        self
    }

    /// Number of nodes in the DAG.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Preflight validation: rejects empty templates, dangling or
    /// self-referential parent edges, and dependency cycles (iterative
    /// three-color DFS — a back-edge to a GRAY node is a cycle).
    pub fn validate(&self) -> Result<(), WorkflowError> {
        if self.nodes.is_empty() {
            return Err(WorkflowError::Empty);
        }
        for (i, node) in self.nodes.iter().enumerate() {
            for &p in &node.parents {
                if p >= self.nodes.len() || p == i {
                    return Err(WorkflowError::DanglingParent { node: i, parent: p });
                }
            }
        }
        let mut color = vec![Color::White; self.nodes.len()];
        for start in 0..self.nodes.len() {
            if color[start] != Color::White {
                continue;
            }
            // Iterative DFS over parent edges; (node, next-parent cursor).
            let mut stack = vec![(start, 0usize)];
            color[start] = Color::Gray;
            while let Some(&(n, cursor)) = stack.last() {
                if cursor < self.nodes[n].parents.len() {
                    stack.last_mut().expect("non-empty stack").1 += 1;
                    let p = self.nodes[n].parents[cursor];
                    match color[p] {
                        Color::Gray => return Err(WorkflowError::Cycle { node: p }),
                        Color::White => {
                            color[p] = Color::Gray;
                            stack.push((p, 0));
                        }
                        Color::Black => {}
                    }
                } else {
                    color[n] = Color::Black;
                    stack.pop();
                }
            }
        }
        Ok(())
    }

    /// Per-node children lists (the transpose of the parent edges).
    pub(crate) fn children(&self) -> Vec<Vec<usize>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (i, node) in self.nodes.iter().enumerate() {
            for &p in &node.parents {
                out[p].push(i);
            }
        }
        out
    }

    /// Per-node effective input lengths: own prompt plus the sum of
    /// parent outputs (the parents' outputs are part of the child's
    /// prompt).
    pub fn effective_inputs(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .map(|n| {
                n.shape.input
                    + n.parents
                        .iter()
                        .map(|&p| self.nodes[p].shape.output)
                        .sum::<u64>()
            })
            .collect()
    }

    /// Per-node count of transitive descendants — how many downstream
    /// nodes a completion (eventually) unblocks. Exposed to admission
    /// policies as `blocked_descendants` so
    /// [`WidestSubtreeAdmission`](super::policy::WidestSubtreeAdmission)
    /// can favor nodes that unblock the most work.
    pub fn blocked_descendants(&self) -> Vec<u32> {
        let children = self.children();
        let n = self.nodes.len();
        let mut counts = vec![0u32; n];
        // Per-start DFS; graphs are tiny (validated DAGs), so the
        // quadratic walk is simpler than a topological accumulation and
        // counts each distinct descendant exactly once.
        for start in 0..n {
            let mut seen = vec![false; n];
            let mut stack: Vec<usize> = children[start].clone();
            while let Some(c) = stack.pop() {
                if !seen[c] {
                    seen[c] = true;
                    counts[start] += 1;
                    stack.extend(children[c].iter().copied());
                }
            }
        }
        counts
    }

    /// Per-node count of children that will *inherit* this node's KV:
    /// a child admits with the prefix of its lowest-index parent, so
    /// this is the number of children whose minimum parent is the node.
    /// The engine drops the node's cached prefix once this many
    /// consumers have admitted or been cancelled.
    pub(crate) fn key_consumers(&self) -> Vec<u32> {
        let mut counts = vec![0u32; self.nodes.len()];
        for node in &self.nodes {
            if let Some(&min) = node.parents.iter().min() {
                counts[min] += 1;
            }
        }
        counts
    }

    /// Built-in 4-step agent chain: plan → act → act → summarize.
    /// Pure pipeline; each step's prompt consumes the previous step's
    /// output, so under paged KV every non-root step admits with
    /// inherited prefix blocks.
    pub fn agent_chain() -> Self {
        WorkflowTemplate::new(
            vec![
                WorkflowNode::new(RequestShape::new(512, 128)),
                WorkflowNode::with_parents(RequestShape::new(64, 128), vec![0]),
                WorkflowNode::with_parents(RequestShape::new(64, 128), vec![1]),
                WorkflowNode::with_parents(RequestShape::new(64, 64), vec![2]),
            ],
            1.0,
        )
        .with_deadline(60.0)
    }

    /// Built-in tool-call fan-out: a planner node fans out to four
    /// parallel tool calls whose outputs a join node aggregates. The
    /// join waits for its *last* parent, so its queueing exposes the
    /// straggler tool — the shape widest-subtree admission helps.
    pub fn tool_fanout() -> Self {
        WorkflowTemplate::new(
            vec![
                WorkflowNode::new(RequestShape::new(256, 64)),
                WorkflowNode::with_parents(RequestShape::new(32, 48), vec![0]),
                WorkflowNode::with_parents(RequestShape::new(32, 48), vec![0]),
                WorkflowNode::with_parents(RequestShape::new(32, 48), vec![0]),
                WorkflowNode::with_parents(RequestShape::new(32, 48), vec![0]),
                WorkflowNode::with_parents(RequestShape::new(16, 96), vec![1, 2, 3, 4]),
            ],
            1.0,
        )
        .with_deadline(60.0)
    }

    /// Built-in speculative race: a root spawns two branches in one
    /// speculative group, each with its own continuation. The first
    /// branch to finish wins; the loser and its continuation are
    /// cancelled (and their queued work and refcounted KV released).
    pub fn speculative() -> Self {
        WorkflowTemplate::new(
            vec![
                WorkflowNode::new(RequestShape::new(256, 64)),
                WorkflowNode::speculative(RequestShape::new(64, 96), vec![0], 1),
                WorkflowNode::speculative(RequestShape::new(64, 96), vec![0], 1),
                WorkflowNode::with_parents(RequestShape::new(32, 64), vec![1]),
                WorkflowNode::with_parents(RequestShape::new(32, 64), vec![2]),
            ],
            1.0,
        )
        .with_deadline(60.0)
    }
}

/// Prefix-cache key for a workflow node's published KV, in the FNV-1a
/// idiom of [`kv::prefix_key`](super::kv::prefix_key) but salted and
/// over three words so workflow keys can never collide with per-class
/// keys (which hash exactly two words).
pub(crate) fn workflow_prefix_key(instance: u64, node: usize) -> u64 {
    const SALT: u64 = 0x9e37_79b9_7f4a_7c15;
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for word in [SALT, instance, node as u64] {
        for byte in word.to_le_bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// Lifecycle of one node inside a running instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum NodeState {
    /// Has unmet dependencies; not yet in the wait queue.
    Waiting,
    /// Released to the engine's wait queue (queued or in service).
    Released,
    /// Completed.
    Done,
    /// Cancelled (speculative loser subtree); never completes.
    Cancelled,
}

/// What one node completion fans out to.
#[derive(Debug, Default)]
pub(crate) struct FanOut {
    /// Children whose last parent just completed — now ready to queue.
    pub released: Vec<usize>,
    /// Waiting nodes cancelled outright (never released to the engine).
    pub cancelled: Vec<usize>,
    /// Already-released speculative losers: the engine must cancel them
    /// if still queued ([`WorkflowRun::confirm_cancel`]) or let them run
    /// to completion if already admitted ([`WorkflowRun::keep_running`]).
    pub cancel_released: Vec<usize>,
    /// Nodes whose cached KV prefix lost its last consumer to a
    /// cancellation and can be dropped from the prefix cache.
    pub expired_keys: Vec<usize>,
    /// The instance finished with this event (no nodes left pending).
    pub workflow_done: bool,
}

/// Runtime ready/waiting bookkeeping for one workflow instance.
///
/// The template is immutable shared state; this struct tracks the
/// mutable per-instance node lifecycle — pending-parent counts, node
/// states, speculative-group outcomes, and prefix-consumer refcounts.
#[derive(Debug, Clone)]
pub(crate) struct WorkflowRun {
    /// Index into the config's template list.
    pub template: usize,
    /// Instance arrival time (the Poisson draw).
    pub start: f64,
    /// Absolute deadline (`start + deadline_secs`).
    pub deadline: Option<f64>,
    /// Per-node count of not-yet-completed parents.
    pending: Vec<u32>,
    state: Vec<NodeState>,
    /// Nodes still owed an outcome (neither done nor cancelled).
    remaining: u32,
    /// Per-node prefix-cache consumers not yet admitted or cancelled.
    key_consumers: Vec<u32>,
    /// Speculative groups already decided (winner completed).
    decided: Vec<u32>,
    /// Per-node index into the engine's arrival vector, filled when the
    /// node is released — how the engine finds a released loser in its
    /// wait queue to arbitrate a cancellation.
    pub node_arrival: Vec<Option<usize>>,
}

impl WorkflowRun {
    /// Fresh instance state for `tpl` arriving at `start`.
    pub fn new(template: usize, tpl: &WorkflowTemplate, start: f64) -> Self {
        WorkflowRun {
            template,
            start,
            deadline: tpl.deadline_secs.map(|d| start + d),
            pending: tpl.nodes.iter().map(|n| n.parents.len() as u32).collect(),
            state: vec![NodeState::Waiting; tpl.nodes.len()],
            remaining: tpl.nodes.len() as u32,
            key_consumers: tpl.key_consumers(),
            decided: Vec::new(),
            node_arrival: vec![None; tpl.nodes.len()],
        }
    }

    /// Marks every parentless node released and returns them in index
    /// order (the instance's initial arrivals).
    pub fn release_roots(&mut self) -> Vec<usize> {
        let mut roots = Vec::new();
        for n in 0..self.pending.len() {
            if self.pending[n] == 0 {
                self.state[n] = NodeState::Released;
                roots.push(n);
            }
        }
        roots
    }

    /// Current state of `node`.
    pub fn state(&self, node: usize) -> NodeState {
        self.state[node]
    }

    /// True once every node is done or cancelled.
    pub fn done(&self) -> bool {
        self.remaining == 0
    }

    /// Records `node`'s completion: marks it done, decides its
    /// speculative group (first finisher wins; losers' subtrees are
    /// cancelled), and fans out to children whose last parent this was.
    pub fn on_complete(&mut self, tpl: &WorkflowTemplate, node: usize) -> FanOut {
        let mut out = FanOut::default();
        debug_assert!(matches!(
            self.state[node],
            NodeState::Released | NodeState::Cancelled
        ));
        // A cancelled-but-admitted loser finishing late: it still
        // counted toward `remaining` only if the engine kept it running
        // (keep_running reverted it to Released), so a Cancelled state
        // here would be a bookkeeping bug.
        debug_assert_eq!(self.state[node], NodeState::Released);
        self.state[node] = NodeState::Done;
        self.remaining -= 1;

        let children = tpl.children();
        // Decide the speculative race before fan-out so a winner never
        // releases a child it shares with a just-cancelled loser.
        if let Some(g) = tpl.nodes[node].speculative_group {
            if !self.decided.contains(&g) {
                self.decided.push(g);
                for m in 0..tpl.nodes.len() {
                    if m != node
                        && tpl.nodes[m].speculative_group == Some(g)
                        && self.state[m] != NodeState::Done
                        && self.state[m] != NodeState::Cancelled
                    {
                        self.cancel_subtree(tpl, &children, m, &mut out);
                    }
                }
            }
        }

        for &c in &children[node] {
            self.pending[c] -= 1;
            if self.pending[c] == 0 && self.state[c] == NodeState::Waiting {
                self.state[c] = NodeState::Released;
                out.released.push(c);
            }
        }
        out.workflow_done = self.remaining == 0;
        out
    }

    /// Cancels `root` and its transitive descendants. Waiting nodes are
    /// cancelled outright; already-released nodes (only possible for
    /// `root` itself — a descendant of a non-done node always has a
    /// pending parent) go to `cancel_released` for the engine to
    /// arbitrate against its wait queue.
    fn cancel_subtree(
        &mut self,
        tpl: &WorkflowTemplate,
        children: &[Vec<usize>],
        root: usize,
        out: &mut FanOut,
    ) {
        let mut stack = vec![root];
        while let Some(n) = stack.pop() {
            match self.state[n] {
                NodeState::Waiting => {
                    self.state[n] = NodeState::Cancelled;
                    self.remaining -= 1;
                    out.cancelled.push(n);
                    self.consume_parent_key(tpl, n, out);
                    stack.extend(children[n].iter().copied());
                }
                NodeState::Released => {
                    out.cancel_released.push(n);
                    stack.extend(children[n].iter().copied());
                }
                // Reconvergent edge from an already-cancelled branch, or
                // (for Done) a node the winner also reached — stop here.
                NodeState::Cancelled | NodeState::Done => {}
            }
        }
    }

    /// Confirms an engine-side cancellation of a released-but-unadmitted
    /// node (it was still in the wait queue). Returns `true` when the
    /// instance finished with this cancellation.
    pub fn confirm_cancel(
        &mut self,
        tpl: &WorkflowTemplate,
        node: usize,
        out: &mut FanOut,
    ) -> bool {
        debug_assert_eq!(self.state[node], NodeState::Released);
        self.state[node] = NodeState::Cancelled;
        self.remaining -= 1;
        self.consume_parent_key(tpl, node, out);
        self.remaining == 0
    }

    /// The engine found a speculative loser already admitted; it runs to
    /// completion (its children stay cancelled, so its completion fans
    /// out to nothing).
    pub fn keep_running(&mut self, node: usize) {
        debug_assert_eq!(self.state[node], NodeState::Released);
    }

    /// How many of `node`'s inheriting consumers have not yet admitted
    /// or been cancelled — when 0, publishing its KV would feed no one.
    pub fn live_consumers(&self, node: usize) -> u32 {
        self.key_consumers[node]
    }

    /// Records that `node` (a child with parents) consumed — or, by
    /// cancellation, forfeited — its inherited-prefix slot on its
    /// lowest-index parent. Returns the parent whose cached prefix just
    /// lost its final consumer, if any.
    pub fn consume_key(&mut self, tpl: &WorkflowTemplate, node: usize) -> Option<usize> {
        let &min = tpl.nodes[node].parents.iter().min()?;
        debug_assert!(self.key_consumers[min] > 0);
        self.key_consumers[min] -= 1;
        (self.key_consumers[min] == 0).then_some(min)
    }

    fn consume_parent_key(&mut self, tpl: &WorkflowTemplate, node: usize, out: &mut FanOut) {
        if let Some(expired) = self.consume_key(tpl, node) {
            out.expired_keys.push(expired);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_templates_validate() {
        for tpl in [
            WorkflowTemplate::agent_chain(),
            WorkflowTemplate::tool_fanout(),
            WorkflowTemplate::speculative(),
        ] {
            tpl.validate().expect("builtin template must be valid");
        }
    }

    #[test]
    fn cycle_rejected() {
        let tpl = WorkflowTemplate::new(
            vec![
                WorkflowNode::with_parents(RequestShape::new(8, 8), vec![2]),
                WorkflowNode::with_parents(RequestShape::new(8, 8), vec![0]),
                WorkflowNode::with_parents(RequestShape::new(8, 8), vec![1]),
            ],
            1.0,
        );
        assert!(matches!(tpl.validate(), Err(WorkflowError::Cycle { .. })));
    }

    #[test]
    fn dangling_and_self_edges_rejected() {
        let tpl = WorkflowTemplate::new(
            vec![WorkflowNode::with_parents(RequestShape::new(8, 8), vec![7])],
            1.0,
        );
        assert_eq!(
            tpl.validate(),
            Err(WorkflowError::DanglingParent { node: 0, parent: 7 })
        );
        let tpl = WorkflowTemplate::new(
            vec![WorkflowNode::with_parents(RequestShape::new(8, 8), vec![0])],
            1.0,
        );
        assert_eq!(
            tpl.validate(),
            Err(WorkflowError::DanglingParent { node: 0, parent: 0 })
        );
        assert!(WorkflowTemplate::new(vec![], 1.0).validate().is_err());
    }

    #[test]
    fn effective_inputs_sum_parent_outputs() {
        let tpl = WorkflowTemplate::tool_fanout();
        let eff = tpl.effective_inputs();
        assert_eq!(eff[0], 256);
        assert_eq!(eff[1], 32 + 64);
        assert_eq!(eff[5], 16 + 4 * 48);
    }

    #[test]
    fn blocked_descendants_counts_transitively() {
        let tpl = WorkflowTemplate::agent_chain();
        assert_eq!(tpl.blocked_descendants(), vec![3, 2, 1, 0]);
        let tpl = WorkflowTemplate::tool_fanout();
        assert_eq!(tpl.blocked_descendants(), vec![5, 1, 1, 1, 1, 0]);
    }

    #[test]
    fn chain_fanout_lifecycle() {
        let tpl = WorkflowTemplate::agent_chain();
        let mut run = WorkflowRun::new(0, &tpl, 0.0);
        assert_eq!(run.release_roots(), vec![0]);
        let out = run.on_complete(&tpl, 0);
        assert_eq!(out.released, vec![1]);
        assert!(!out.workflow_done);
        run.on_complete(&tpl, 1);
        run.on_complete(&tpl, 2);
        let out = run.on_complete(&tpl, 3);
        assert!(out.workflow_done);
        assert!(run.done());
    }

    #[test]
    fn join_waits_for_last_parent() {
        let tpl = WorkflowTemplate::tool_fanout();
        let mut run = WorkflowRun::new(0, &tpl, 0.0);
        run.release_roots();
        let out = run.on_complete(&tpl, 0);
        assert_eq!(out.released, vec![1, 2, 3, 4]);
        for tool in [1, 2, 3] {
            assert!(run.on_complete(&tpl, tool).released.is_empty());
        }
        assert_eq!(run.on_complete(&tpl, 4).released, vec![5]);
    }

    #[test]
    fn speculative_loser_subtree_cancelled() {
        let tpl = WorkflowTemplate::speculative();
        let mut run = WorkflowRun::new(0, &tpl, 0.0);
        run.release_roots();
        let out = run.on_complete(&tpl, 0);
        assert_eq!(out.released, vec![1, 2]);
        // Node 1 wins the race: node 2 (released) goes to engine
        // arbitration, its continuation 4 (waiting) cancels outright.
        let out = run.on_complete(&tpl, 1);
        assert_eq!(out.released, vec![3]);
        assert_eq!(out.cancel_released, vec![2]);
        assert_eq!(out.cancelled, vec![4]);
        let mut scratch = FanOut::default();
        assert!(!run.confirm_cancel(&tpl, 2, &mut scratch));
        let out = run.on_complete(&tpl, 3);
        assert!(out.workflow_done);
    }

    #[test]
    fn workflow_keys_distinct_from_class_keys() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for inst in 0..64u64 {
            for node in 0..8usize {
                assert!(seen.insert(workflow_prefix_key(inst, node)));
            }
        }
        for class in 0..8usize {
            for tokens in [0u64, 64, 384] {
                assert!(seen.insert(super::super::kv::prefix_key(class, tokens)));
            }
        }
    }
}
