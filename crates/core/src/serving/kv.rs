//! Paged KV-cache allocation: a free-list block allocator with
//! ref-counted **copy-on-write prefix sharing**.
//!
//! The contiguous-bytes KV accounting of [`check_batch`] prices a
//! fiction: real engines carve device memory into fixed-size blocks
//! (vLLM's pages), pay *fragmentation* in each sequence's
//! partially-filled tail block, and share the blocks of a common system
//! prompt across every request that carries it. This module is that
//! accounting, layered under the iteration-level engine when
//! [`ServingSim::kv_block`](super::ServingSim::kv_block) is set:
//!
//! * [`BlockAllocator`] — the free list + page tracker. Blocks are
//!   ref-counted; a block is freed only when its last reference is
//!   released, so eviction can never reclaim a block another sequence
//!   (or the prefix cache) still maps.
//! * [`BlockTable`] — one sequence's ordered block mapping: a shared
//!   prefix of cache-mapped blocks followed by privately allocated
//!   blocks. Only the private tail can be partially filled — shared
//!   blocks are always full, which is the copy-on-write rule in block
//!   form (a partially filled block is never shared, because appending
//!   to it would mutate another sequence's context).
//! * [`PrefixCache`] — prompt-prefix hash → the shared blocks of that
//!   prefix. The cache holds its own reference on every cached block,
//!   so entries survive their registering sequence; entries whose
//!   blocks have no other mapper are reclaimed under block pressure.
//! * [`PagedKv`] — the per-replica bundle the engine drives: admission
//!   maps cache hits, prefill/decode growth allocates blocks at block
//!   boundaries, eviction frees only *unshared* blocks, completion
//!   releases everything.
//!
//! The block size is given in tokens; its byte size derives from the
//! model's per-token KV bytes via
//! [`kv_swap_bytes`](crate::capacity::kv_swap_bytes), and the block
//! count from the device's KV budget
//! ([`Backend::kv_budget_bytes`](crate::backend::Backend::kv_budget_bytes)).
//!
//! **KV migration** (disaggregated clusters,
//! [`crate::serving#disaggregated-prefilldecode`]) moves a sequence
//! between two *independent* allocators, so the block lifecycle is a
//! release-and-readmit: the source replica releases every block the
//! sequence mapped (`complete`) the moment the migration is issued —
//! its pages are free for new prefills while the KV bytes are still in
//! flight — and the destination admits the migrant against its own
//! allocator on arrival (`admit` + `grow` to the sequence's current
//! context, re-mapping any locally cached prompt prefix via
//! `register_prefix` first, so a shared system prompt is *not*
//! re-transferred into private blocks). Block identities do not survive
//! the move; only token counts do.
//!
//! [`check_batch`]: crate::capacity::check_batch
//!
//! # Examples
//!
//! Sharing and copy-on-write at the allocator level:
//!
//! ```
//! use ianus_core::serving::kv::{BlockAllocator, BlockTable};
//!
//! let mut alloc = BlockAllocator::new(8, 16); // 8 blocks of 16 tokens
//! let mut system_prompt = BlockTable::new();
//! system_prompt.grow_to(&mut alloc, 32); // two full blocks
//! let shared = system_prompt.blocks().to_vec();
//!
//! // A second sequence maps the same two blocks and appends privately.
//! let mut user = BlockTable::new();
//! user.map_prefix(&mut alloc, &shared, 32);
//! user.grow_to(&mut alloc, 40); // one private, half-filled block
//! assert_eq!(alloc.ref_count(shared[0]), 2);
//! assert_eq!(user.unshared_blocks(), 1);
//! assert_eq!(alloc.free_blocks(), 5); // 2 shared + 1 private in use
//!
//! // Evicting the user frees only its private tail.
//! user.truncate_to_shared(&mut alloc);
//! assert_eq!(alloc.ref_count(shared[0]), 2, "shared blocks survive");
//! assert_eq!(alloc.free_blocks(), 6);
//! ```

use std::collections::{BTreeMap, HashMap};

/// Index of one fixed-size KV block in a replica's device memory.
pub type BlockId = u32;

/// Free-list + page-tracker over fixed-size KV blocks, with per-block
/// reference counts for prefix sharing.
///
/// Invariants (checked, and exercised by the `paged_kv` proptests):
///
/// * a block is either free (refcount 0, on the free list) or
///   allocated (refcount ≥ 1) — never both;
/// * [`release`](Self::release) of a free block panics (double free),
///   and refcounts can never underflow;
/// * `free + used = total` at all times, unless
///   [`allocate_overcommit`](Self::allocate_overcommit) minted blocks
///   beyond the device budget (the engine's tolerated-overcommit path,
///   mirroring the contiguous engine's behavior when nothing is
///   evictable).
#[derive(Debug, Clone)]
pub struct BlockAllocator {
    /// Tokens per block.
    block_tokens: u64,
    /// Device block budget (minted overcommit blocks may exceed it).
    total_blocks: u64,
    /// Per-block reference counts; 0 = free.
    refcounts: Vec<u32>,
    /// LIFO free list of block ids.
    free: Vec<BlockId>,
    /// Blocks currently allocated (refcount ≥ 1).
    used: u64,
}

impl BlockAllocator {
    /// An allocator over `total_blocks` blocks of `block_tokens` tokens
    /// each.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero or `total_blocks` exceeds the
    /// [`BlockId`] range.
    pub fn new(total_blocks: u64, block_tokens: u64) -> Self {
        assert!(block_tokens > 0, "KV block size must be positive");
        assert!(
            total_blocks <= u64::from(BlockId::MAX),
            "block count exceeds the BlockId range"
        );
        BlockAllocator {
            block_tokens,
            total_blocks,
            refcounts: vec![0; total_blocks as usize],
            // Pop order is descending ids; any deterministic order works.
            free: (0..total_blocks as BlockId).collect(),
            used: 0,
        }
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> u64 {
        self.block_tokens
    }

    /// The device block budget this allocator was created with.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Blocks currently on the free list.
    pub fn free_blocks(&self) -> u64 {
        self.free.len() as u64
    }

    /// Blocks currently allocated (refcount ≥ 1). May exceed
    /// [`total_blocks`](Self::total_blocks) after overcommit minting.
    pub fn used_blocks(&self) -> u64 {
        self.used
    }

    /// Current reference count of `block` (0 = free).
    pub fn ref_count(&self, block: BlockId) -> u32 {
        self.refcounts[block as usize]
    }

    /// Blocks needed to hold `tokens` of context (the last one may be
    /// partially filled — that slack is the fragmentation the report
    /// measures).
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_tokens)
    }

    /// Allocates one block (refcount 1) from the free list, or `None`
    /// when the device is out of blocks.
    pub fn allocate(&mut self) -> Option<BlockId> {
        let block = self.free.pop()?;
        debug_assert_eq!(self.refcounts[block as usize], 0);
        self.refcounts[block as usize] = 1;
        self.used += 1;
        Some(block)
    }

    /// Allocates one block, minting a fresh id beyond the device budget
    /// when the free list is empty — the tolerated-overcommit path the
    /// engine uses after its pressure check has already decided nothing
    /// is evictable (occupancy above 1 is recorded, never hidden).
    pub fn allocate_overcommit(&mut self) -> BlockId {
        if let Some(block) = self.allocate() {
            return block;
        }
        let block = BlockId::try_from(self.refcounts.len()).expect("block id space exhausted");
        self.refcounts.push(1);
        self.used += 1;
        block
    }

    /// Adds one reference to an allocated block (prefix sharing).
    ///
    /// # Panics
    ///
    /// Panics if `block` is free — sharing a freed block would be a
    /// use-after-free.
    pub fn retain(&mut self, block: BlockId) {
        let rc = &mut self.refcounts[block as usize];
        assert!(*rc > 0, "retain of free KV block {block}");
        *rc += 1;
    }

    /// Drops one reference; frees the block (returns `true`) when it
    /// was the last.
    ///
    /// # Panics
    ///
    /// Panics if `block` is already free — the double-free that the
    /// allocator invariant tests pin down.
    pub fn release(&mut self, block: BlockId) -> bool {
        let rc = &mut self.refcounts[block as usize];
        assert!(*rc > 0, "double free of KV block {block}");
        *rc -= 1;
        if *rc == 0 {
            self.free.push(block);
            self.used -= 1;
            true
        } else {
            false
        }
    }
}

/// One sequence's ordered KV block mapping: `shared` leading blocks
/// mapped from a [`PrefixCache`] entry (always full), then privately
/// allocated blocks (only the last may be partially filled).
#[derive(Debug, Clone, Default)]
pub struct BlockTable {
    blocks: Vec<BlockId>,
    /// Leading blocks shared with the prefix cache (and possibly other
    /// sequences).
    shared: usize,
    /// Tokens of context stored across the blocks.
    tokens: u64,
}

impl BlockTable {
    /// An empty table (no blocks, no tokens).
    pub fn new() -> Self {
        BlockTable::default()
    }

    /// The mapped blocks, shared prefix first.
    pub fn blocks(&self) -> &[BlockId] {
        &self.blocks
    }

    /// Tokens of context currently stored.
    pub fn tokens(&self) -> u64 {
        self.tokens
    }

    /// Number of leading blocks shared with the prefix cache.
    pub fn shared_blocks(&self) -> usize {
        self.shared
    }

    /// Number of privately held (unshared) blocks — what an eviction
    /// actually frees, and what a swap actually moves.
    pub fn unshared_blocks(&self) -> u64 {
        (self.blocks.len() - self.shared) as u64
    }

    /// Maps the cached `prefix` blocks (retaining each) into an empty
    /// table; the table then stores `tokens` of context. Shared blocks
    /// are full by construction, so `tokens` must be
    /// `prefix.len() × block_tokens`.
    ///
    /// # Panics
    ///
    /// Panics if the table is not empty or `tokens` does not cover the
    /// mapped blocks exactly.
    pub fn map_prefix(&mut self, alloc: &mut BlockAllocator, prefix: &[BlockId], tokens: u64) {
        assert!(self.blocks.is_empty(), "prefix mapped into a live table");
        assert_eq!(
            tokens,
            prefix.len() as u64 * alloc.block_tokens(),
            "shared prefix blocks must be full"
        );
        for &b in prefix {
            alloc.retain(b);
        }
        self.blocks.extend_from_slice(prefix);
        self.shared = prefix.len();
        self.tokens = tokens;
    }

    /// Marks the table's first `blocks` entries as shared — used when a
    /// cold sequence's freshly prefilled prefix is registered in the
    /// cache (the cache retains them; this records that eviction must
    /// not move them).
    pub fn mark_shared(&mut self, blocks: usize) {
        debug_assert!(blocks <= self.blocks.len());
        self.shared = self.shared.max(blocks);
    }

    /// Grows the stored context to `tokens`, allocating blocks (with
    /// overcommit minting) as block boundaries are crossed. Shrinking
    /// is not a growth — use
    /// [`truncate_to_shared`](Self::truncate_to_shared) for eviction.
    pub fn grow_to(&mut self, alloc: &mut BlockAllocator, tokens: u64) {
        debug_assert!(tokens >= self.tokens, "grow_to cannot shrink a table");
        while (self.blocks.len() as u64) * alloc.block_tokens() < tokens {
            self.blocks.push(alloc.allocate_overcommit());
        }
        self.tokens = self.tokens.max(tokens);
    }

    /// Releases every private block (eviction: the KV leaves the device
    /// by swap or drop), keeping the shared prefix mapped — shared
    /// blocks stay device-resident, which is why paged swaps move (and
    /// host pools hold) only the unshared bytes.
    pub fn truncate_to_shared(&mut self, alloc: &mut BlockAllocator) {
        while self.blocks.len() > self.shared {
            let b = self.blocks.pop().expect("len > shared ≥ 0");
            alloc.release(b);
        }
        self.tokens = self.shared as u64 * alloc.block_tokens();
    }

    /// Releases every block (completion).
    pub fn release_all(&mut self, alloc: &mut BlockAllocator) {
        for b in self.blocks.drain(..) {
            alloc.release(b);
        }
        self.shared = 0;
        self.tokens = 0;
    }

    /// Allocated-but-unused tokens: the slack in the partially filled
    /// private tail block. Shared blocks are full by construction and
    /// contribute none.
    pub fn slack_tokens(&self, block_tokens: u64) -> u64 {
        let private_capacity = self.unshared_blocks() * block_tokens;
        let private_tokens = self.tokens - self.shared as u64 * block_tokens;
        private_capacity - private_tokens
    }
}

/// Stable hash of a request class's prompt prefix — the key under which
/// its shared blocks are cached. Two classes never collide on intent:
/// the class index is part of the identity (different classes model
/// different system prompts even at equal length).
pub fn prefix_key(class: usize, prefix_tokens: u64) -> u64 {
    // FNV-1a over the two identity words; any stable mix works.
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for word in [class as u64, prefix_tokens] {
        for byte in word.to_le_bytes() {
            h ^= u64::from(byte);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    h
}

/// Prompt-prefix hash → the shared blocks holding that prefix's KV.
///
/// The cache holds its **own** reference on every cached block, so an
/// entry outlives the sequence that registered it; under block pressure
/// entries whose blocks have no other mapper are reclaimed in
/// deterministic (key) order.
#[derive(Debug, Clone, Default)]
pub struct PrefixCache {
    entries: BTreeMap<u64, PrefixEntry>,
}

/// One cached prefix: its (full) blocks and the tokens they hold.
#[derive(Debug, Clone)]
struct PrefixEntry {
    blocks: Vec<BlockId>,
    tokens: u64,
}

impl PrefixCache {
    /// An empty cache.
    pub fn new() -> Self {
        PrefixCache::default()
    }

    /// Number of cached prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cached blocks and tokens under `key`, capped at `max_tokens`
    /// (a request maps at most the whole-block prefix of its own
    /// prompt): returns the mappable `(blocks, tokens)`.
    pub fn lookup(
        &self,
        alloc: &BlockAllocator,
        key: u64,
        max_tokens: u64,
    ) -> Option<(&[BlockId], u64)> {
        let entry = self.entries.get(&key)?;
        let cap = (max_tokens / alloc.block_tokens()) as usize;
        let blocks = entry.blocks.len().min(cap);
        (blocks > 0).then(|| {
            let tokens = entry.tokens.min(blocks as u64 * alloc.block_tokens());
            (&entry.blocks[..blocks], tokens)
        })
    }

    /// Registers `blocks` (holding `tokens` of prefix KV) under `key`,
    /// retaining each for the cache's own reference. No-op when the key
    /// is already cached; returns whether the entry was inserted.
    pub fn insert(
        &mut self,
        alloc: &mut BlockAllocator,
        key: u64,
        blocks: &[BlockId],
        tokens: u64,
    ) -> bool {
        if blocks.is_empty() || self.entries.contains_key(&key) {
            return false;
        }
        for &b in blocks {
            alloc.retain(b);
        }
        self.entries.insert(
            key,
            PrefixEntry {
                blocks: blocks.to_vec(),
                tokens,
            },
        );
        true
    }

    /// Reclaims idle entries — those whose every block is held only by
    /// the cache (refcount 1) — in key order until the free list holds
    /// at least `need` blocks or nothing idle remains. Entries still
    /// mapped by any sequence are never touched: eviction cannot free a
    /// block with other references.
    pub fn reclaim(&mut self, alloc: &mut BlockAllocator, need: u64) {
        let idle: Vec<u64> = self
            .entries
            .iter()
            .filter(|(_, e)| e.blocks.iter().all(|&b| alloc.ref_count(b) == 1))
            .map(|(&k, _)| k)
            .collect();
        for key in idle {
            if alloc.free_blocks() >= need {
                break;
            }
            let entry = self.entries.remove(&key).expect("key came from entries");
            for b in entry.blocks {
                alloc.release(b);
            }
        }
    }

    /// Removes the entry under `key` (if cached), releasing the cache's
    /// reference on each of its blocks — the eager drop a workflow
    /// parent's prefix gets once its last consumer has admitted or been
    /// cancelled. Blocks still mapped by live sequences survive (their
    /// refcounts stay above zero); only the cache's hold is released.
    /// Returns whether an entry was removed.
    pub fn remove(&mut self, alloc: &mut BlockAllocator, key: u64) -> bool {
        let Some(entry) = self.entries.remove(&key) else {
            return false;
        };
        for b in entry.blocks {
            alloc.release(b);
        }
        true
    }

    /// Releases every cached reference (end of run).
    pub fn flush(&mut self, alloc: &mut BlockAllocator) {
        for (_, entry) in std::mem::take(&mut self.entries) {
            for b in entry.blocks {
                alloc.release(b);
            }
        }
    }
}

/// One replica's paged KV state: the allocator, the prefix cache, and
/// the per-sequence block tables (keyed by the sequence's global
/// arrival index). This is the engine-facing bundle — every mutation
/// the iteration loop needs is one call here.
#[derive(Debug, Clone)]
pub struct PagedKv {
    alloc: BlockAllocator,
    cache: PrefixCache,
    tables: HashMap<u64, BlockTable>,
}

impl PagedKv {
    /// Paged KV state over `total_blocks` blocks of `block_tokens`
    /// tokens.
    pub fn new(total_blocks: u64, block_tokens: u64) -> Self {
        PagedKv {
            alloc: BlockAllocator::new(total_blocks, block_tokens),
            cache: PrefixCache::new(),
            tables: HashMap::new(),
        }
    }

    /// The underlying allocator (read-only; the tables own mutation).
    pub fn allocator(&self) -> &BlockAllocator {
        &self.alloc
    }

    /// Tokens per block.
    pub fn block_tokens(&self) -> u64 {
        self.alloc.block_tokens()
    }

    /// Blocks on the free list.
    pub fn free_blocks(&self) -> u64 {
        self.alloc.free_blocks()
    }

    /// Blocks currently allocated.
    pub fn used_blocks(&self) -> u64 {
        self.alloc.used_blocks()
    }

    /// The device block budget.
    pub fn total_blocks(&self) -> u64 {
        self.alloc.total_blocks()
    }

    /// Blocks needed for `tokens` of context.
    pub fn blocks_for(&self, tokens: u64) -> u64 {
        self.alloc.blocks_for(tokens)
    }

    /// Blocks the sequence `idx` currently maps (0 when unknown).
    pub fn blocks_of(&self, idx: u64) -> u64 {
        self.tables.get(&idx).map_or(0, |t| t.blocks.len() as u64)
    }

    /// Private (unshared) blocks the sequence `idx` currently maps —
    /// what its eviction would free.
    pub fn unshared_blocks_of(&self, idx: u64) -> u64 {
        self.tables.get(&idx).map_or(0, |t| t.unshared_blocks())
    }

    /// Tokens the cached prefix under `key` could map for a prompt of
    /// `max_tokens` (0 = cold).
    pub fn prefix_hit_tokens(&self, key: u64, max_tokens: u64) -> u64 {
        self.cache
            .lookup(&self.alloc, key, max_tokens)
            .map_or(0, |(_, tokens)| tokens)
    }

    /// Admits sequence `idx`: creates its table and, when `key` names a
    /// cached prefix, maps up to `max_tokens` of shared blocks. Returns
    /// the shared tokens mapped (0 = cold admission).
    pub fn admit(&mut self, idx: u64, key: Option<u64>, max_tokens: u64) -> u64 {
        let mut table = BlockTable::new();
        let mut shared = 0;
        if let Some(key) = key {
            if let Some((blocks, tokens)) = self.cache.lookup(&self.alloc, key, max_tokens) {
                let blocks = blocks.to_vec();
                table.map_prefix(&mut self.alloc, &blocks, tokens);
                shared = tokens;
            }
        }
        let prev = self.tables.insert(idx, table);
        debug_assert!(prev.is_none(), "sequence {idx} admitted twice");
        shared
    }

    /// Grows sequence `idx`'s stored context to `tokens` (prefill-chunk
    /// or decode-step advance, or a swap-in restoring its private
    /// blocks), allocating at block boundaries.
    pub fn grow(&mut self, idx: u64, tokens: u64) {
        let table = self.tables.get_mut(&idx).expect("grow of unknown sequence");
        table.grow_to(&mut self.alloc, tokens);
    }

    /// Registers sequence `idx`'s first `prefix_tokens` of context as
    /// the cached prefix under `key`, if absent. The registering
    /// sequence's own leading blocks become shared (its later eviction
    /// moves only the suffix). Returns the shared tokens now marked on
    /// the sequence, or `None` when the key was already cached (or the
    /// prefix spans no full block).
    pub fn register_prefix(&mut self, idx: u64, key: u64, prefix_tokens: u64) -> Option<u64> {
        let blocks = (prefix_tokens / self.alloc.block_tokens()) as usize;
        let table = self.tables.get_mut(&idx).expect("register of unknown seq");
        debug_assert!(table.tokens() >= blocks as u64 * self.alloc.block_tokens());
        let prefix = table.blocks()[..blocks].to_vec();
        let tokens = blocks as u64 * self.alloc.block_tokens();
        if !self.cache.insert(&mut self.alloc, key, &prefix, tokens) {
            return None;
        }
        table.mark_shared(blocks);
        Some(tokens)
    }

    /// Frees sequence `idx`'s private blocks (eviction by swap or
    /// recompute — either way only unshared blocks leave the device).
    pub fn drop_unshared(&mut self, idx: u64) {
        let table = self.tables.get_mut(&idx).expect("evict of unknown seq");
        table.truncate_to_shared(&mut self.alloc);
    }

    /// Releases sequence `idx`'s blocks and forgets it (completion).
    pub fn complete(&mut self, idx: u64) {
        let mut table = self.tables.remove(&idx).expect("completion of unknown seq");
        table.release_all(&mut self.alloc);
    }

    /// Reclaims idle prefix-cache entries until `need` blocks are free
    /// (or nothing idle remains).
    pub fn reclaim(&mut self, need: u64) {
        self.cache.reclaim(&mut self.alloc, need);
    }

    /// Eagerly drops the cached prefix under `key` (no-op when absent),
    /// releasing the cache's block references; blocks other sequences
    /// still map stay allocated. Returns whether an entry was dropped.
    pub fn drop_prefix(&mut self, key: u64) -> bool {
        self.cache.remove(&mut self.alloc, key)
    }

    /// The allocated-but-unused fraction of all allocated blocks right
    /// now: each live sequence's partially filled private tail, over
    /// every allocated block (shared and cache-held blocks are full, so
    /// they only grow the denominator). 0 when nothing is allocated.
    pub fn fragmentation(&self) -> f64 {
        let allocated = self.alloc.used_blocks() * self.alloc.block_tokens();
        if allocated == 0 {
            return 0.0;
        }
        let slack: u64 = self
            .tables
            .values()
            .map(|t| t.slack_tokens(self.alloc.block_tokens()))
            .sum();
        slack as f64 / allocated as f64
    }

    /// Occupied fraction of the device block budget if `extra` more
    /// blocks were allocated — the paged analogue of the contiguous
    /// gate's projected occupancy (may exceed 1 under tolerated
    /// overcommit).
    pub fn occupancy_plus(&self, extra: u64) -> f64 {
        (self.alloc.used_blocks() + extra) as f64 / self.alloc.total_blocks().max(1) as f64
    }

    /// End-of-run teardown: flushes the cache and asserts nothing
    /// leaked — every admitted sequence completed and released its
    /// blocks, so the allocator must be fully free again (the
    /// conservation invariant of the run as a whole).
    pub fn finish(&mut self) {
        debug_assert!(
            self.tables.is_empty(),
            "sequences still hold KV tables at end of run"
        );
        self.cache.flush(&mut self.alloc);
        debug_assert_eq!(self.alloc.used_blocks(), 0, "leaked KV blocks");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_release_roundtrip_conserves_blocks() {
        let mut a = BlockAllocator::new(4, 16);
        assert_eq!(a.free_blocks() + a.used_blocks(), 4);
        let b0 = a.allocate().unwrap();
        let b1 = a.allocate().unwrap();
        assert_ne!(b0, b1);
        assert_eq!(a.free_blocks() + a.used_blocks(), 4);
        assert!(a.release(b0));
        assert_eq!(a.free_blocks(), 3);
        // Exhaustion returns None; overcommit mints beyond the budget.
        while a.allocate().is_some() {}
        assert_eq!(a.free_blocks(), 0);
        let minted = a.allocate_overcommit();
        assert!(u64::from(minted) >= a.total_blocks());
        assert!(a.used_blocks() > a.total_blocks());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = BlockAllocator::new(2, 16);
        let b = a.allocate().unwrap();
        a.release(b);
        a.release(b);
    }

    #[test]
    #[should_panic(expected = "retain of free")]
    fn retain_of_free_block_panics() {
        let mut a = BlockAllocator::new(2, 16);
        a.retain(0);
    }

    #[test]
    fn shared_release_decrements_without_freeing() {
        let mut a = BlockAllocator::new(2, 16);
        let b = a.allocate().unwrap();
        a.retain(b);
        assert_eq!(a.ref_count(b), 2);
        assert!(!a.release(b), "one reference remains");
        assert_eq!(a.used_blocks(), 1);
        assert!(a.release(b), "last reference frees");
        assert_eq!(a.used_blocks(), 0);
    }

    #[test]
    fn cache_reclaims_only_idle_entries() {
        let mut alloc = BlockAllocator::new(4, 16);
        let mut cache = PrefixCache::new();
        let mut owner = BlockTable::new();
        owner.grow_to(&mut alloc, 32);
        cache.insert(&mut alloc, 7, owner.blocks(), 32);
        // Mapped by `owner` too: reclaim must not touch it.
        cache.reclaim(&mut alloc, 4);
        assert_eq!(cache.len(), 1);
        owner.release_all(&mut alloc);
        // Now idle (cache-only): reclaimable.
        cache.reclaim(&mut alloc, 4);
        assert!(cache.is_empty());
        assert_eq!(alloc.free_blocks(), 4);
    }

    #[test]
    fn paged_kv_cold_then_hit_lifecycle() {
        let mut p = PagedKv::new(16, 16);
        let key = prefix_key(0, 32);
        // Cold admission: no cache entry yet.
        assert_eq!(p.admit(1, Some(key), 47), 0);
        p.grow(1, 48); // prefilled prompt: 3 blocks, last one full at 48
        assert_eq!(p.register_prefix(1, key, 32), Some(32));
        // A second request of the class maps the two full prefix blocks.
        assert_eq!(p.admit(2, Some(key), 47), 32);
        assert_eq!(p.blocks_of(2), 2);
        p.grow(2, 48);
        assert_eq!(p.unshared_blocks_of(2), 1);
        // Evicting #2 frees only its private tail block.
        let free_before = p.free_blocks();
        p.drop_unshared(2);
        assert_eq!(p.free_blocks(), free_before + 1);
        p.complete(1);
        p.grow(2, 48);
        p.complete(2);
        p.finish();
    }

    #[test]
    fn fragmentation_measures_partial_tail_blocks() {
        let mut p = PagedKv::new(16, 16);
        p.admit(1, None, 0);
        p.grow(1, 24); // 2 blocks, 8 tokens slack
        assert!((p.fragmentation() - 8.0 / 32.0).abs() < 1e-12);
        p.grow(1, 32); // tail fills: no slack
        assert_eq!(p.fragmentation(), 0.0);
        p.complete(1);
        p.finish();
    }

    #[test]
    fn prefix_keys_are_distinct_per_class() {
        assert_ne!(prefix_key(0, 384), prefix_key(1, 384));
        assert_ne!(prefix_key(0, 384), prefix_key(0, 256));
        assert_eq!(prefix_key(3, 128), prefix_key(3, 128));
    }
}
