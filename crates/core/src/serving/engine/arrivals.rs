//! Arrival layer: who generates load, decoupled from who schedules it.
//!
//! The engine consumes a finite *trace* of [`Arrival`]s generated up
//! front from the config's [`ArrivalSpec`] — a pluggable
//! [`ArrivalProcess`] advanced once per request. The contract with the
//! scheduling layers is intentionally thin: a process yields waits and
//! raw weighted draws ([`ArrivalDraw`]); the *caller* maps each draw to
//! a class (flat mix) or template (workflow mix) with the exact
//! historical comparison order, so [`PoissonArrivals`] — the default —
//! reproduces the pre-refactor trace byte for byte, RNG draw for RNG
//! draw, on both cores and in both scheduling modes.
//!
//! Because the process is rebuilt from `(spec, seed, rate)` at the
//! start of every run, cloned engines (rate sweeps, parallel
//! bisection probes) replay identical traces — including identical
//! per-tenant sub-traces under [`ArrivalSpec::MultiTenant`].

use super::workflow_rt::{WfCtx, WfTag};
use super::ServingSim;
use crate::serving::workflow::WorkflowRun;
use crate::serving::{pick_class, Priority, Slo};
use ianus_model::RequestShape;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One generated arrival of the trace.
#[derive(Debug, Clone, Copy)]
pub(super) struct Arrival {
    /// Arrival time in seconds.
    pub(super) at: f64,
    /// Global arrival index (FCFS order; the default eviction's
    /// "youngest").
    pub(super) idx: u64,
    /// Index into the config's mix.
    pub(super) class: usize,
    /// The request shape (denormalized from the class).
    pub(super) shape: RequestShape,
    /// Scheduling tier (denormalized from the class).
    pub(super) priority: Priority,
    /// The class SLO (denormalized from the class).
    pub(super) slo: Option<Slo>,
    /// Owning tenant (0 outside [`ArrivalSpec::MultiTenant`]).
    pub(super) tenant: u32,
    /// Whether the arrival landed inside a burst window (MMPP burst
    /// phase, or the above-mean half of a diurnal cycle).
    pub(super) in_burst: bool,
    /// Workflow identity (`None` for flat-mix arrivals).
    pub(super) wf: Option<WfTag>,
}

impl Arrival {
    /// TTFT deadline in seconds: the class SLO's `arrival + ttft`, or —
    /// for workflow nodes without one — the instance deadline, so
    /// deadline-ordered policies stay meaningful in workflow mode.
    pub(super) fn deadline(&self) -> Option<f64> {
        self.slo
            .map(|s| self.at + s.ttft.as_secs_f64())
            .or(self.wf.and_then(|w| w.deadline))
    }

    /// The admission-policy view of this waiting request.
    pub(super) fn queued_view(&self) -> crate::serving::policy::QueuedRequest {
        crate::serving::policy::QueuedRequest {
            shape: self.shape,
            arrival: self.at,
            arrival_idx: self.idx,
            priority: self.priority,
            deadline: self.deadline(),
            workflow_deadline: self.wf.and_then(|w| w.deadline),
            blocked_descendants: self.wf.map_or(0, |w| w.blocked_descendants),
            tenant: self.tenant,
        }
    }
}

/// One step of an [`ArrivalProcess`]: the wait since the previous
/// arrival, the raw weighted class/template draw, and the arrival's
/// tenant/burst attribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArrivalDraw {
    /// Seconds since the previous arrival of the merged stream.
    pub wait: f64,
    /// Uniform draw in `[0, Σweights)` — the caller maps it to a class
    /// (`pick_class`-style subtract-compare) or workflow template
    /// (accumulate-compare), preserving the historical comparison
    /// order bit for bit.
    pub draw: f64,
    /// Owning tenant (0 outside multi-tenant processes).
    pub tenant: u32,
    /// Whether the arrival lands inside a burst window.
    pub in_burst: bool,
}

/// A pluggable arrival-stream generator: advanced once per request,
/// each call yields the wait to the next arrival plus its weighted
/// class/template draw ([`ArrivalDraw`]).
///
/// `weights` is the per-class (or per-template) weight list of the
/// run's mix, passed on every call so a process can draw classes — the
/// engine maps the returned [`draw`](ArrivalDraw::draw) back to an
/// index itself. Implementations must be deterministic functions of
/// their construction inputs `(spec, seed, rate)`: rebuilding a
/// process replays the identical stream, which is what makes cloned
/// engines (sweeps, parallel rate probes) bit-reproducible.
pub trait ArrivalProcess {
    /// Advances past one arrival of the merged stream.
    fn next_arrival(&mut self, weights: &[f64]) -> ArrivalDraw;
}

/// One tenant of an [`ArrivalSpec::MultiTenant`] stream.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantSpec {
    /// The tenant's share of the aggregate arrival rate (normalized
    /// over all tenants' shares; must be positive).
    pub share: f64,
    /// The tenant's own traffic shape (must not itself be
    /// [`ArrivalSpec::MultiTenant`]).
    pub inner: ArrivalSpec,
    /// Optional per-tenant class-mix override: one weight per class of
    /// the run's mix, replacing the global weights for this tenant's
    /// class draws. `None` uses the global mix.
    pub mix_weights: Option<Vec<f64>>,
}

/// Declarative arrival-stream choice, stored in
/// [`ServingConfig`](crate::serving::ServingConfig) so clones and
/// sweeps replay identical traces. Build the runtime process with
/// [`process`](Self::process).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum ArrivalSpec {
    /// Homogeneous Poisson arrivals at the configured rate — the
    /// default, byte-for-byte the historical trace.
    #[default]
    Poisson,
    /// Sinusoidal rate modulation around the configured mean:
    /// `λ(t) = rate · (1 + amplitude · sin(2πt / period_secs))`,
    /// sampled by Lewis–Shedler thinning. Arrivals in the above-mean
    /// half of the cycle are flagged in-burst.
    Diurnal {
        /// Peak deviation as a fraction of the mean rate, in `[0, 1)`.
        amplitude: f64,
        /// Cycle length in seconds.
        period_secs: f64,
    },
    /// 2-state Markov-modulated Poisson process alternating between a
    /// calm and a burst phase with exponentially distributed dwell
    /// times. Phase rates are solved so the long-run mean equals the
    /// configured rate while the burst phase runs `burst_factor`
    /// times hotter than the calm one.
    Mmpp {
        /// Burst-to-calm rate ratio (≥ 1).
        burst_factor: f64,
        /// Mean dwell time of the burst phase, seconds.
        burst_secs: f64,
        /// Mean dwell time of the calm phase, seconds.
        calm_secs: f64,
    },
    /// K tenants, each wrapping an inner process at its share of the
    /// aggregate rate (derived per-tenant seeds), merged by arrival
    /// time. Per-tenant completions, goodput, and fairness are
    /// reported per tenant.
    MultiTenant {
        /// The tenant list (non-empty; inner specs non-nested).
        tenants: Vec<TenantSpec>,
    },
}

impl ArrivalSpec {
    /// A diurnal spec (see [`ArrivalSpec::Diurnal`]).
    pub fn diurnal(amplitude: f64, period_secs: f64) -> Self {
        ArrivalSpec::Diurnal {
            amplitude,
            period_secs,
        }
    }

    /// An MMPP spec (see [`ArrivalSpec::Mmpp`]).
    pub fn mmpp(burst_factor: f64, burst_secs: f64, calm_secs: f64) -> Self {
        ArrivalSpec::Mmpp {
            burst_factor,
            burst_secs,
            calm_secs,
        }
    }

    /// `k` symmetric tenants, each an equal-share Poisson stream over
    /// the global mix.
    pub fn multi_tenant(k: u32) -> Self {
        ArrivalSpec::MultiTenant {
            tenants: (0..k)
                .map(|_| TenantSpec {
                    share: 1.0,
                    inner: ArrivalSpec::Poisson,
                    mix_weights: None,
                })
                .collect(),
        }
    }

    /// How many tenants the spec's reports are keyed by (1 outside
    /// [`MultiTenant`](Self::MultiTenant)).
    pub fn tenant_count(&self) -> u32 {
        match self {
            ArrivalSpec::MultiTenant { tenants } => tenants.len() as u32,
            _ => 1,
        }
    }

    /// Validates the spec's parameters.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint:
    /// diurnal amplitude outside `[0, 1)` or non-positive period,
    /// MMPP burst factor below 1 or non-positive dwell times, an empty
    /// tenant list, a non-positive tenant share, a nested multi-tenant
    /// spec, or a per-tenant mix override with non-positive weights.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            ArrivalSpec::Poisson => Ok(()),
            ArrivalSpec::Diurnal {
                amplitude,
                period_secs,
            } => {
                if !(0.0..1.0).contains(amplitude) {
                    return Err(format!("diurnal amplitude {amplitude} outside [0, 1)"));
                }
                if period_secs.is_nan() || *period_secs <= 0.0 {
                    return Err(format!("diurnal period {period_secs} must be positive"));
                }
                Ok(())
            }
            ArrivalSpec::Mmpp {
                burst_factor,
                burst_secs,
                calm_secs,
            } => {
                if burst_factor.is_nan() || *burst_factor < 1.0 {
                    return Err(format!("MMPP burst factor {burst_factor} must be ≥ 1"));
                }
                if burst_secs.is_nan()
                    || *burst_secs <= 0.0
                    || calm_secs.is_nan()
                    || *calm_secs <= 0.0
                {
                    return Err("MMPP dwell times must be positive".to_string());
                }
                Ok(())
            }
            ArrivalSpec::MultiTenant { tenants } => {
                if tenants.is_empty() {
                    return Err("multi-tenant spec has no tenants".to_string());
                }
                for (k, t) in tenants.iter().enumerate() {
                    if t.share.is_nan() || t.share <= 0.0 {
                        return Err(format!("tenant {k} share {} must be positive", t.share));
                    }
                    if matches!(t.inner, ArrivalSpec::MultiTenant { .. }) {
                        return Err(format!("tenant {k} nests a multi-tenant spec"));
                    }
                    t.inner.validate()?;
                    if let Some(w) = &t.mix_weights {
                        if w.is_empty() || !w.iter().all(|&x| x > 0.0) {
                            return Err(format!("tenant {k} mix weights must be positive"));
                        }
                    }
                }
                Ok(())
            }
        }
    }

    /// Builds the runtime process for one run: a deterministic function
    /// of `(self, seed, rate_hz)`, so rebuilding replays the identical
    /// stream.
    pub fn process(&self, seed: u64, rate_hz: f64) -> Box<dyn ArrivalProcess> {
        match self {
            ArrivalSpec::Poisson => Box::new(PoissonArrivals::new(seed, rate_hz)),
            ArrivalSpec::Diurnal {
                amplitude,
                period_secs,
            } => Box::new(DiurnalArrivals::new(
                seed,
                rate_hz,
                *amplitude,
                *period_secs,
            )),
            ArrivalSpec::Mmpp {
                burst_factor,
                burst_secs,
                calm_secs,
            } => Box::new(MmppArrivals::new(
                seed,
                rate_hz,
                *burst_factor,
                *burst_secs,
                *calm_secs,
            )),
            ArrivalSpec::MultiTenant { tenants } => {
                Box::new(MultiTenantArrivals::new(seed, rate_hz, tenants))
            }
        }
    }
}

/// Homogeneous Poisson arrivals: one exponential inter-arrival draw,
/// then one uniform class draw, per request — the exact historical
/// recipe and RNG stream.
pub struct PoissonArrivals {
    rng: StdRng,
    rate_hz: f64,
}

impl PoissonArrivals {
    /// A Poisson stream at `rate_hz` from `seed`.
    pub fn new(seed: u64, rate_hz: f64) -> Self {
        PoissonArrivals {
            rng: StdRng::seed_from_u64(seed),
            rate_hz,
        }
    }
}

impl ArrivalProcess for PoissonArrivals {
    fn next_arrival(&mut self, weights: &[f64]) -> ArrivalDraw {
        let total_weight: f64 = weights.iter().sum();
        // Exponential inter-arrival.
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        let wait = -u.ln() / self.rate_hz;
        let draw = self.rng.gen_range(0.0..total_weight);
        ArrivalDraw {
            wait,
            draw,
            tenant: 0,
            in_burst: false,
        }
    }
}

/// Sinusoidal rate modulation sampled by Lewis–Shedler thinning
/// against the cycle peak `rate · (1 + amplitude)`.
pub struct DiurnalArrivals {
    rng: StdRng,
    rate_hz: f64,
    amplitude: f64,
    period_secs: f64,
    /// The process's own clock (sum of emitted waits).
    now: f64,
}

impl DiurnalArrivals {
    /// A diurnal stream around mean `rate_hz` from `seed`.
    pub fn new(seed: u64, rate_hz: f64, amplitude: f64, period_secs: f64) -> Self {
        DiurnalArrivals {
            rng: StdRng::seed_from_u64(seed),
            rate_hz,
            amplitude,
            period_secs,
            now: 0.0,
        }
    }

    /// Instantaneous rate at absolute time `t`.
    fn rate_at(&self, t: f64) -> f64 {
        let phase = 2.0 * std::f64::consts::PI * t / self.period_secs;
        self.rate_hz * (1.0 + self.amplitude * phase.sin())
    }
}

impl ArrivalProcess for DiurnalArrivals {
    fn next_arrival(&mut self, weights: &[f64]) -> ArrivalDraw {
        let total_weight: f64 = weights.iter().sum();
        let peak = self.rate_hz * (1.0 + self.amplitude);
        let start = self.now;
        // Thinning: candidate arrivals at the peak rate, accepted with
        // probability λ(t)/peak. Amplitude < 1 bounds the acceptance
        // probability away from zero, so the loop terminates.
        loop {
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            self.now += -u.ln() / peak;
            let accept: f64 = self.rng.gen_range(0.0..1.0);
            if accept * peak <= self.rate_at(self.now) {
                break;
            }
        }
        let draw = self.rng.gen_range(0.0..total_weight);
        ArrivalDraw {
            wait: self.now - start,
            draw,
            tenant: 0,
            in_burst: self.rate_at(self.now) > self.rate_hz,
        }
    }
}

/// 2-state Markov-modulated Poisson process: exponential dwell times in
/// a calm and a burst phase, exponential inter-arrivals at the phase
/// rate, memoryless redraw at each phase switch.
pub struct MmppArrivals {
    rng: StdRng,
    burst_rate: f64,
    calm_rate: f64,
    burst_secs: f64,
    calm_secs: f64,
    in_burst: bool,
    /// The process's own clock (sum of emitted waits).
    now: f64,
    /// Absolute end of the current phase.
    phase_end: f64,
}

impl MmppArrivals {
    /// An MMPP stream with long-run mean `rate_hz` from `seed`: the
    /// burst phase runs `burst_factor` times hotter than the calm one,
    /// with the phase rates solved against the dwell-time mix so the
    /// time-averaged rate is exactly `rate_hz`.
    pub fn new(
        seed: u64,
        rate_hz: f64,
        burst_factor: f64,
        burst_secs: f64,
        calm_secs: f64,
    ) -> Self {
        // Long-run burst fraction f, then solve
        // f·r_b + (1−f)·r_c = rate with r_b = burst_factor·r_c.
        let f = burst_secs / (burst_secs + calm_secs);
        let calm_rate = rate_hz / ((1.0 - f) + f * burst_factor);
        let burst_rate = burst_factor * calm_rate;
        let mut p = MmppArrivals {
            rng: StdRng::seed_from_u64(seed),
            burst_rate,
            calm_rate,
            burst_secs,
            calm_secs,
            in_burst: false,
            now: 0.0,
            phase_end: 0.0,
        };
        p.phase_end = p.draw_dwell();
        p
    }

    /// Exponential dwell of the *current* phase.
    fn draw_dwell(&mut self) -> f64 {
        let mean = if self.in_burst {
            self.burst_secs
        } else {
            self.calm_secs
        };
        let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
        -u.ln() * mean
    }
}

impl ArrivalProcess for MmppArrivals {
    fn next_arrival(&mut self, weights: &[f64]) -> ArrivalDraw {
        let total_weight: f64 = weights.iter().sum();
        let start = self.now;
        loop {
            let rate = if self.in_burst {
                self.burst_rate
            } else {
                self.calm_rate
            };
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let wait = -u.ln() / rate;
            if self.now + wait <= self.phase_end {
                self.now += wait;
                break;
            }
            // Phase switch: jump to the boundary and redraw — the
            // exponential is memoryless, so discarding the overshoot
            // keeps the process exact.
            self.now = self.phase_end;
            self.in_burst = !self.in_burst;
            let dwell = self.draw_dwell();
            self.phase_end = self.now + dwell;
        }
        let draw = self.rng.gen_range(0.0..total_weight);
        ArrivalDraw {
            wait: self.now - start,
            draw,
            tenant: 0,
            in_burst: self.in_burst,
        }
    }
}

/// One tenant's stream inside [`MultiTenantArrivals`]: its inner
/// process, pending next arrival, and optional class-mix override.
struct TenantStream {
    process: Box<dyn ArrivalProcess>,
    mix_weights: Option<Vec<f64>>,
    /// Absolute time of the tenant's pending arrival.
    next_at: f64,
    /// The pending arrival's draw metadata.
    pending: ArrivalDraw,
}

/// K tenant streams merged by arrival time. Each tenant runs its inner
/// process at its share of the aggregate rate under a derived seed, so
/// every clone replays identical per-tenant sub-traces.
pub struct MultiTenantArrivals {
    tenants: Vec<TenantStream>,
    /// The merged stream's clock (sum of emitted waits).
    now: f64,
    /// Set once the tenant streams have been primed with their first
    /// arrivals (deferred to the first call, which supplies weights).
    primed: bool,
}

impl MultiTenantArrivals {
    /// A merged multi-tenant stream at aggregate `rate_hz` from `seed`.
    pub fn new(seed: u64, rate_hz: f64, tenants: &[TenantSpec]) -> Self {
        let total_share: f64 = tenants.iter().map(|t| t.share).sum();
        let streams = tenants
            .iter()
            .enumerate()
            .map(|(k, t)| {
                let tenant_seed = seed ^ (k as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let tenant_rate = rate_hz * t.share / total_share;
                TenantStream {
                    process: t.inner.process(tenant_seed, tenant_rate),
                    mix_weights: t.mix_weights.clone(),
                    next_at: 0.0,
                    pending: ArrivalDraw {
                        wait: 0.0,
                        draw: 0.0,
                        tenant: 0,
                        in_burst: false,
                    },
                }
            })
            .collect();
        MultiTenantArrivals {
            tenants: streams,
            now: 0.0,
            primed: false,
        }
    }

    /// Advances tenant `k` past one arrival: runs its inner process
    /// (against its weight override if any), then translates an
    /// overridden class pick back into a draw over the global weights —
    /// the prefix-sum boundary of the picked class, which both the
    /// subtract-compare (`pick_class`) and accumulate-compare (template
    /// pick) mappings send to exactly that index.
    fn advance(&mut self, k: usize, weights: &[f64]) {
        let t = &mut self.tenants[k];
        let d = match &t.mix_weights {
            None => t.process.next_arrival(weights),
            Some(w) => {
                debug_assert_eq!(
                    w.len(),
                    weights.len(),
                    "per-tenant mix override must cover every class"
                );
                let mut d = t.process.next_arrival(w);
                let class = pick_weight(w, d.draw);
                d.draw = weights[..class].iter().sum();
                d
            }
        };
        t.next_at += d.wait;
        t.pending = ArrivalDraw {
            tenant: k as u32,
            ..d
        };
    }
}

/// Subtract-compare weighted pick over a raw weight list — the
/// [`pick_class`] comparison order, for per-tenant mix overrides.
fn pick_weight(weights: &[f64], draw: f64) -> usize {
    let mut rem = draw;
    for (i, &w) in weights.iter().enumerate() {
        if rem < w {
            return i;
        }
        rem -= w;
    }
    weights.len() - 1
}

impl ArrivalProcess for MultiTenantArrivals {
    fn next_arrival(&mut self, weights: &[f64]) -> ArrivalDraw {
        if !self.primed {
            for k in 0..self.tenants.len() {
                self.advance(k, weights);
            }
            self.primed = true;
        }
        // Earliest pending arrival wins; ties break to the lowest
        // tenant index.
        let k = (0..self.tenants.len())
            .min_by(|&a, &b| {
                self.tenants[a]
                    .next_at
                    .total_cmp(&self.tenants[b].next_at)
                    .then(a.cmp(&b))
            })
            .expect("multi-tenant stream has at least one tenant");
        let at = self.tenants[k].next_at;
        let out = ArrivalDraw {
            wait: at - self.now,
            ..self.tenants[k].pending
        };
        self.now = at;
        self.advance(k, weights);
        out
    }
}

impl ServingSim {
    /// Seeded arrivals of the weighted mix from the config's
    /// [`ArrivalSpec`]. The draw order (one inter-arrival draw, then
    /// one class draw, per request) is shared by both scheduling modes,
    /// so a seed denotes the *same* trace in both.
    pub(super) fn generate_arrivals(&self) -> Vec<Arrival> {
        let weights: Vec<f64> = self.cfg.mix.iter().map(|c| c.weight).collect();
        let mut process = self
            .cfg
            .arrivals
            .process(self.cfg.seed, self.cfg.arrival_rate_hz);
        let mut now = 0.0f64;
        (0..self.cfg.requests)
            .map(|idx| {
                let d = process.next_arrival(&weights);
                now += d.wait;
                let class = pick_class(&self.cfg.mix, d.draw);
                Arrival {
                    at: now,
                    idx,
                    class,
                    shape: self.cfg.mix[class].shape,
                    priority: self.cfg.mix[class].priority,
                    slo: self.cfg.mix[class].slo,
                    tenant: d.tenant,
                    in_burst: d.in_burst,
                    wf: None,
                }
            })
            .collect()
    }

    /// Seeded arrivals of the weighted *workflow* mix: one
    /// inter-arrival draw, then one template draw, per instance —
    /// mirroring [`generate_arrivals`](Self::generate_arrivals)'s draw
    /// order exactly, so a single-node workflow mix denotes the same
    /// trace as the equivalent flat mix under the same seed. Only each
    /// instance's *root* nodes arrive here; children are released by
    /// the engine as their last parent completes. Returns the root
    /// arrivals, one [`WorkflowRun`] per instance, and the total node
    /// count the run must settle.
    pub(super) fn generate_workflow_arrivals(
        &self,
        ctx: &WfCtx,
    ) -> (Vec<Arrival>, Vec<WorkflowRun>, u64) {
        let weights: Vec<f64> = ctx.templates.iter().map(|t| t.weight).collect();
        let mut process = self
            .cfg
            .arrivals
            .process(self.cfg.seed, self.cfg.arrival_rate_hz);
        let mut now = 0.0f64;
        let mut arrivals = Vec::new();
        let mut runs = Vec::with_capacity(self.cfg.requests as usize);
        let mut total = 0u64;
        for inst in 0..self.cfg.requests as usize {
            let d = process.next_arrival(&weights);
            now += d.wait;
            // Weighted template pick, same fallback semantics as
            // `pick_class`.
            let draw = d.draw;
            let mut acc = 0.0;
            let mut t = ctx.templates.len() - 1;
            for (i, tpl) in ctx.templates.iter().enumerate() {
                acc += tpl.weight;
                if draw < acc {
                    t = i;
                    break;
                }
            }
            let tpl = &ctx.templates[t];
            let mut run = WorkflowRun::new(t, tpl, now);
            total += tpl.node_count() as u64;
            for node in run.release_roots() {
                run.node_arrival[node] = Some(arrivals.len());
                arrivals.push(Arrival {
                    at: now,
                    idx: arrivals.len() as u64,
                    class: ctx.base[t] + node,
                    shape: ctx.shapes[t][node],
                    priority: tpl.priority,
                    slo: None,
                    tenant: d.tenant,
                    in_burst: d.in_burst,
                    wf: Some(WfTag {
                        inst,
                        node,
                        inherit: None,
                        deadline: run.deadline,
                        blocked_descendants: ctx.blocked[t][node],
                        tenant: d.tenant,
                        in_burst: d.in_burst,
                    }),
                });
            }
            runs.push(run);
        }
        (arrivals, runs, total)
    }
}
