//! Migration layer: prefill→decode handoff and migrant admission.
//!
//! In a disaggregated cluster, a sequence whose prefill completes on a
//! `PrefillOnly` replica leaves for a decode replica the same
//! iteration, its KV crossing both host links. This layer owns the
//! decode-pool route table and the per-replica inbound deques, and the
//! two phase entry points around them: [`EngineCore::admit_migrants`]
//! lands arrived migrants into the destination batch, and
//! [`EngineCore::migrate_after_prefill`] prices and launches the
//! two-leg transfer when the batch layer hands it a finished prefill.

use super::batch::ActiveSeq;
use super::core::EngineCore;
use super::TimeKey;
use crate::serving::dma::DmaLane;
use crate::serving::kv::PagedKv;
use crate::serving::policy::MigrationTarget;
use ianus_model::RequestShape;
use std::collections::VecDeque;

/// The migration layer's state: which replicas decode, and what is in
/// flight toward each.
pub(super) struct MigrationState {
    /// Replica indices that accept migrations (`DecodeOnly` plus
    /// `Unified` in mixed clusters; empty in all-`Unified` clusters,
    /// which short-circuits every migration hook).
    pub(super) decode_pool: Vec<usize>,
    /// In-flight inbound migrations per replica: `(dma_ready_at, seq)`,
    /// completion-sorted (pushes ride the destination's monotone H2D
    /// lane in the global turn order both cores share).
    pub(super) migrating: Vec<VecDeque<(f64, ActiveSeq)>>,
}

impl EngineCore<'_> {
    /// Migrant admission: sequences whose inbound migration
    /// DMA has landed join the batch next — after this
    /// replica's own swapped sequences (they are older work)
    /// but ahead of new arrivals, FIFO by DMA-completion
    /// time. Migrants arrive fully prefilled, so the gate is
    /// the destination's residency check over their current
    /// context; like swap-ins, an empty replica admits its
    /// head unconditionally (liveness: a migrant too big for
    /// a busy replica is guaranteed a slot once the batch
    /// drains, so migrated sequences always complete). A
    /// no-op in all-`Unified` clusters (the deque is never
    /// pushed).
    pub(super) fn admit_migrants(&mut self, r: usize) {
        let model = self.model;
        let max_batch = self.max_batch;
        let mix = &self.mix;
        let replicas = &mut *self.replicas;
        let kv = &mut self.kv;
        let lanes = &mut self.lanes;
        let mig = &mut self.mig;
        let batch = &mut self.batch;
        let stats = &mut self.stats;
        while batch.batches[r].len() + lanes.incoming[r].len() < max_batch as usize
            && mig.migrating[r]
                .front()
                .is_some_and(|&(t, _)| t <= batch.clock[r])
        {
            let force = batch.batches[r].is_empty() && lanes.incoming[r].is_empty();
            if !force {
                let cand = &mig.migrating[r].front().expect("front was checked").1;
                let fits = if let Some(p) = kv.paged[r].as_mut() {
                    let hit_tokens = kv.class_keys[cand.class].map_or(0, |key| {
                        p.prefix_hit_tokens(key, cand.shape.input.saturating_sub(1))
                    });
                    let need = p
                        .blocks_for(cand.past)
                        .saturating_sub(p.blocks_for(hit_tokens));
                    p.reclaim(need);
                    if need <= p.free_blocks() {
                        stats.peak_kv_occupancy =
                            stats.peak_kv_occupancy.max(p.occupancy_plus(need));
                        true
                    } else {
                        false
                    }
                } else {
                    let mut resident: Vec<RequestShape> = batch.batches[r]
                        .iter()
                        .map(|s| ActiveSeq::kv_shape(s.past))
                        .collect();
                    resident.extend(
                        lanes.incoming[r]
                            .iter()
                            .map(|(_, s)| ActiveSeq::kv_shape(s.past)),
                    );
                    resident.extend(
                        lanes.outgoing[r]
                            .iter()
                            .map(|&(_, tok, _)| ActiveSeq::kv_shape(tok)),
                    );
                    resident.push(ActiveSeq::kv_shape(cand.past));
                    match replicas[r].backend.batch_fits(model, &resident) {
                        Ok(occupancy) => {
                            stats.peak_kv_occupancy = stats.peak_kv_occupancy.max(occupancy);
                            true
                        }
                        Err(_) => false,
                    }
                };
                if !fits {
                    break;
                }
            }
            let (ready, mut seq) = mig.migrating[r].pop_front().expect("front was checked");
            // DMA landed at `ready`; the batch had no slot (or
            // the replica no turn) until now.
            stats.migration_stall += batch.clock[r] - ready;
            if let Some(p) = kv.paged[r].as_mut() {
                // Fresh block accounting on the destination: map
                // the class prefix from the local cache if this
                // replica holds it, acquire the rest, and
                // publish the prefix for later admissions (the
                // migrant arrives fully prefilled, so its blocks
                // are publishable immediately).
                let shared = p.admit(
                    seq.idx,
                    kv.class_keys[seq.class],
                    seq.shape.input.saturating_sub(1),
                );
                seq.shared_tokens = shared;
                p.grow(seq.idx, seq.past);
                if let Some(key) = kv.class_keys[seq.class] {
                    let prefix = mix[seq.class]
                        .prefix_tokens
                        .min(seq.shape.input.saturating_sub(1));
                    if let Some(s2) = p.register_prefix(seq.idx, key, prefix) {
                        seq.shared_tokens = seq.shared_tokens.max(s2);
                    }
                }
            } else {
                seq.shared_tokens = 0;
            }
            stats.peak_batch = stats.peak_batch.max(batch.batches[r].len() as u32 + 1);
            batch.batches[r].push(seq);
        }
    }

    /// Prefill→decode handoff: the sequence leaves this
    /// replica (`r`) the iteration its prefill completes. Its
    /// KV moves over both host links — a D2H leg on the
    /// source, then an H2D leg on the destination — each
    /// priced by the owning side's `kv_transfer_time`. Like
    /// swap pricing, only the unshared context moves (a class
    /// prefix is assumed replicated to the decode pool once,
    /// amortized across its requests). The handoff is
    /// fire-and-forget: it never stalls source compute
    /// (`overlap_dma` governs swap traffic only), and the
    /// source's device KV is freed at issue — prefill
    /// admission capacity, not migration drain, is what gates
    /// this replica. Called by the batch layer with the
    /// just-completed sequence already removed from the
    /// batch; requires a non-empty decode pool.
    pub(super) fn migrate_after_prefill(&mut self, r: usize, seq: ActiveSeq, now: f64) {
        let model = self.model;
        let moved = seq.past - seq.shared_tokens;
        // No decoders ever reside here (every
        // one migrates the turn it appears), so
        // nothing was ever evicted or hosted.
        debug_assert_eq!(seq.hosted_bytes, 0);
        if let Some(p) = self.kv.paged[r].as_mut() {
            p.complete(seq.idx);
        }
        let targets: Vec<MigrationTarget> = self
            .mig
            .decode_pool
            .iter()
            .map(|&d| MigrationTarget {
                replica: d,
                batch_len: self.batch.batches[d].len() + self.lanes.incoming[d].len(),
                inbound: self.mig.migrating[d].len(),
                lane_busy_secs: (self.lanes.dma[d].free_at(DmaLane::H2D) - now).max(0.0),
                kv_free_blocks: self.kv.paged[d].as_ref().map(PagedKv::free_blocks),
            })
            .collect();
        let ti = super::select_min(&targets, |t| *t, |a, b| self.migration.compare(a, b))
            .expect("decode pool is non-empty");
        let dst = targets[ti].replica;
        let out_secs = self.replicas[r].kv_transfer_secs(model, moved);
        let in_secs = self.replicas[dst].kv_transfer_secs(model, moved);
        self.stats.dma[r] += out_secs;
        self.stats.dma[dst] += in_secs;
        let out_done = self.lanes.dma[r].issue(DmaLane::D2H, now, out_secs);
        let ready = self.lanes.dma[dst].issue(DmaLane::H2D, out_done, in_secs);
        self.stats.migrations += 1;
        self.stats.migrated_out[r] += 1;
        self.stats.migrated_in[dst] += 1;
        // Pushes ride the destination's monotone
        // H2D lane in the global turn order both
        // cores share, keeping the deque sorted.
        debug_assert!(self.mig.migrating[dst]
            .back()
            .is_none_or(|&(t, _)| t <= ready));
        self.mig.migrating[dst].push_back((ready, seq));
        if self.event_core {
            // Wake the destination (a parked
            // decode-only replica is in no
            // queue; `schedule` upserts, so a
            // busy one keeps its key).
            self.turns
                .busy_q
                .schedule(dst, TimeKey(self.batch.clock[dst]));
        }
    }
}
