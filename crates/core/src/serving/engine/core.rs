//! The engine core: layer composition and the iteration-level turn
//! loop.
//!
//! [`EngineCore`] owns one run's mutable state, split into the layer
//! structs ([`WaitQueue`], [`BatchState`], [`KvLedger`], [`LaneClocks`],
//! [`MigrationState`], [`WorkflowRt`], [`TurnIndex`]) plus the shared
//! scalars, and drives the turn loop: select the next actionable
//! replica (heap-indexed or linear-scan, bit-identically), retire DMA,
//! re-admit swapped work, land migrants, admit arrivals, relieve KV
//! pressure, execute one iteration, advance prefill and decoders, and
//! re-index. Each phase lives in its layer's module as an
//! `impl EngineCore` block; this module only sequences them.

use super::admission::WaitQueue;
use super::batch::BatchState;
use super::dma_retire::LaneClocks;
use super::kv_state::{build_paged_pools, KvLedger};
use super::migrate::MigrationState;
use super::replica::Replica;
use super::workflow_rt::WorkflowRt;
use super::{CoreMode, ServingSim, TimeKey};
use crate::serving::dma::DmaChannels;
use crate::serving::kv::prefix_key;
use crate::serving::policy::{MigrationPolicy, SchedulerPolicy};
use crate::serving::report::RunStats;
use crate::serving::{ReplicaRole, RequestClass};
use ianus_model::ModelConfig;
use ianus_sim::SlotQueue;
use std::collections::{BTreeSet, HashMap, VecDeque};

/// The event-driven next-actionable-time index. A replica is
/// *busy* (actionable at its own clock) while it holds work —
/// resident, swapped, or an inbound transfer; an in-flight
/// swap-out alone does not make it busy (matching the scan's
/// predicate: contiguous re-admission can strand an `outgoing`
/// entry on an otherwise empty replica). Idle replicas are
/// actionable at `max(clock, next pending arrival)`, so they
/// split on which side of that max binds: `idle_ready` holds
/// those with clock ≤ the next arrival (all actionable at the
/// arrival — lowest index wins), `idle_late` those past it
/// (actionable at their own clock). The next pending arrival
/// time only moves later, so `idle_late` entries migrate to
/// `idle_ready` monotonically, and once the queue drains an idle
/// replica can never act again (only a replica's own turn makes
/// it busy), so both sets clear.
pub(super) struct TurnIndex {
    /// Busy replicas keyed by their next boundary time.
    pub(super) busy_q: SlotQueue<TimeKey>,
    /// Idle replicas whose clock has not passed the arrival head.
    pub(super) idle_ready: BTreeSet<usize>,
    /// Idle replicas past the arrival head, keyed by their own clock.
    pub(super) idle_late: BTreeSet<(TimeKey, usize)>,
    /// Workflow mode only: idle non-decode replicas that found the
    /// wait queue empty. They are in no idle set (there is no head
    /// to classify them against) and are woken by the turn whose
    /// completion fan-out refills the queue.
    pub(super) parked: BTreeSet<usize>,
}

/// Which index the selected replica came from (for removal).
enum Src {
    Busy,
    Ready,
    Late,
}

/// One iteration-level run's full mutable state: the layer structs plus
/// the run-wide scalars. Phase methods are `impl EngineCore` blocks in
/// each layer's module; the call contract is documented per method.
pub(super) struct EngineCore<'a> {
    /// The model every replica serves this run.
    pub(super) model: &'a ModelConfig,
    /// The replicas (their memo tables persist across runs).
    pub(super) replicas: &'a mut [Replica],
    /// Per-replica roles (disaggregation).
    pub(super) roles: &'a [ReplicaRole],
    /// The iteration-level policy bundle.
    pub(super) scheduler: &'a SchedulerPolicy,
    /// Migration target selection (disaggregated clusters).
    pub(super) migration: &'a dyn MigrationPolicy,
    /// The run's effective class list: the flat mix, or one synthetic
    /// class per (template, node) under a workflow mix.
    pub(super) mix: Vec<RequestClass>,
    /// Max sequences resident per replica.
    pub(super) max_batch: u32,
    /// Prefill chunk size (`u64::MAX` when chunking is off).
    pub(super) chunk_size: u64,
    /// Whether admission overcommits and KV pressure evicts.
    pub(super) preempt: bool,
    /// Whether swap DMA overlaps compute.
    pub(super) overlap: bool,
    /// Whether the event-driven core is selecting turns.
    pub(super) event_core: bool,
    /// Admission layer: arrivals and the wait queue.
    pub(super) wait: WaitQueue,
    /// Batch layer: resident sequences and compute clocks.
    pub(super) batch: BatchState,
    /// KV layer: paged pools, swapped queues, host-pool ledger.
    pub(super) kv: KvLedger,
    /// DMA layer: lane clocks and in-flight swap deques.
    pub(super) lanes: LaneClocks,
    /// Migration layer: decode pool and inbound deques.
    pub(super) mig: MigrationState,
    /// Workflow runtime: instance state and fan-out tables.
    pub(super) wf: WorkflowRt,
    /// Event-core turn index.
    pub(super) turns: TurnIndex,
    /// The run's raw samples and counters.
    pub(super) stats: RunStats,
    /// Requests (or workflow nodes) settled so far.
    pub(super) done: u64,
    /// Requests (or workflow nodes) the run must settle.
    pub(super) total: u64,
    /// Divergence guard: abort once the arrived-but-unadmitted backlog
    /// exceeds this.
    pub(super) divergence_bound: Option<u64>,
    /// Set when the divergence guard fired (end-of-run invariants are
    /// then legitimately violated).
    pub(super) aborted: bool,
}

impl ServingSim {
    /// Continuous batching: one global wait queue ordered by the
    /// [`AdmissionPolicy`](crate::serving::policy::AdmissionPolicy);
    /// every replica admits at each iteration boundary (KV-gated), then
    /// runs one iteration — at most one prefill chunk (the whole prompt
    /// when chunking is off) plus one decode step over its
    /// fully-prefilled sequences. With `preempt`, admission overcommits
    /// against *current* KV lengths and KV pressure evicts the
    /// [`EvictionPolicy`](crate::serving::policy::EvictionPolicy)'s
    /// victim to a replica-local swap queue ordered by the
    /// [`ReadmissionPolicy`](crate::serving::policy::ReadmissionPolicy).
    pub(super) fn run_iteration_level(
        &mut self,
        model: &ModelConfig,
        max_batch: u32,
        prefill_chunk: Option<u64>,
        preempt: bool,
    ) -> RunStats {
        let chunk_size = prefill_chunk.unwrap_or(u64::MAX);
        let overlap = self.overlap_dma;
        let n = self.replicas.len();
        // Effective per-replica host KV pool (`None` = unbounded).
        let pools: Vec<Option<u64>> = self
            .replicas
            .iter()
            .map(|r| {
                self.host_kv_override
                    .unwrap_or_else(|| r.backend.host_kv_bytes())
            })
            .collect();
        let mix = self.effective_mix();
        let wf_mode = !self.cfg.workflows.is_empty();
        // Arrivals ascending by time (and index). The wait queue is the
        // arrived, not-yet-admitted slice: `untaken` holds the pending
        // indices in order, so each boundary walks exactly the pending
        // window — no tombstone skipping, and the first element is the
        // next pending arrival (its time is nondecreasing over the run,
        // which the idle-replica index relies on). Workflow mode
        // appends *child* arrivals mid-run as their parents complete;
        // an append can move the wait-queue head backward in time, so
        // there the idle index is repaired after each fan-out instead
        // of trusting the nondecreasing-head invariant.
        let wf_ctx = self.workflow_ctx();
        let (arrivals, wf_runs, total) = if wf_mode {
            self.generate_workflow_arrivals(&wf_ctx)
        } else {
            (self.generate_arrivals(), Vec::new(), self.cfg.requests)
        };
        // The wait queue, ordered by (time, index). On the initial trace
        // the two orders coincide; workflow children appended mid-run
        // keep the set time-sorted so the head and the admission window
        // stay correct.
        let untaken: BTreeSet<(TimeKey, usize)> = arrivals
            .iter()
            .enumerate()
            .map(|(i, a)| (TimeKey(a.at), i))
            .collect();
        let class_keys: Vec<Option<u64>> = mix
            .iter()
            .enumerate()
            .map(|(i, c)| (c.prefix_tokens > 0).then(|| prefix_key(i, c.prefix_tokens)))
            .collect();
        let paged = build_paged_pools(&self.replicas, self.kv_block, model, &mix);
        // Per-replica DMA channel clocks. Disaggregated clusters always
        // run split H2D/D2H lanes (migration traffic must not reorder
        // against swap traffic on one clock); all-`Unified` clusters
        // share one clock per replica unless `two_channel_dma` forces
        // the split — the unsplit arithmetic is bit-identical to the
        // historical single `dma_free` scalar.
        let split_dma = self.two_channel || self.roles.iter().any(|&ro| ro != ReplicaRole::Unified);
        // Decode pool for prefill→decode migrations (empty outside
        // disaggregated runs — prefill replicas then decode locally).
        let decode_pool: Vec<usize> = (0..n)
            .filter(|&i| self.roles[i] == ReplicaRole::DecodeOnly)
            .collect();
        let stats = RunStats::new(n, mix.len(), total, self.cfg.arrivals.tenant_count());
        let event_core = self.core_mode == CoreMode::EventDriven;
        let mut turns = TurnIndex {
            busy_q: SlotQueue::new(n),
            idle_ready: BTreeSet::new(),
            idle_late: BTreeSet::new(),
            parked: BTreeSet::new(),
        };
        if event_core {
            // Decode-only replicas never admit arrivals: they start
            // parked (in no idle set) and are woken by the turn that
            // issues a migration toward them.
            turns
                .idle_ready
                .extend((0..n).filter(|&i| self.roles[i] != ReplicaRole::DecodeOnly));
        }
        // Divergence guard (off unless a bound is configured or this
        // run is a rate probe): abort once the arrived-but-unadmitted
        // backlog exceeds the bound.
        let divergence_bound: Option<u64> = match self.divergence {
            Some(depth) => depth,
            None => self
                .probe_divergence
                .then(|| 1024u64.max(32 * u64::from(max_batch) * n as u64)),
        };
        let core = EngineCore {
            model,
            replicas: &mut self.replicas,
            roles: &self.roles,
            scheduler: &self.scheduler,
            migration: &*self.migration,
            mix,
            max_batch,
            chunk_size,
            preempt,
            overlap,
            event_core,
            wait: WaitQueue {
                arrivals,
                untaken,
                arrived: 0,
                admitted: 0,
            },
            batch: BatchState {
                batches: vec![Vec::new(); n],
                clock: vec![0.0f64; n],
                iter_sum: vec![0.0f64; n],
                iter_n: vec![0u64; n],
            },
            kv: KvLedger {
                paged,
                swapped: vec![Vec::new(); n],
                host_used: vec![0u64; n],
                pools,
                class_keys,
                swap_count: 0,
            },
            lanes: LaneClocks {
                dma: (0..n).map(|_| DmaChannels::new(split_dma)).collect(),
                outgoing: vec![VecDeque::new(); n],
                incoming: vec![VecDeque::new(); n],
            },
            mig: MigrationState {
                decode_pool,
                migrating: vec![VecDeque::new(); n],
            },
            wf: WorkflowRt {
                ctx: wf_ctx,
                runs: wf_runs,
                key_homes: HashMap::new(),
                inheritance: self.workflow_inheritance,
                mode: wf_mode,
            },
            turns,
            stats,
            done: 0,
            total,
            divergence_bound,
            aborted: false,
        };
        core.run()
    }
}

impl EngineCore<'_> {
    /// The turn loop: pick the next actionable replica, run its turn
    /// body (each phase a layer call, in the fixed order the monolith
    /// executed inline), re-index, repeat until every request settles
    /// or the divergence guard aborts.
    pub(super) fn run(mut self) -> RunStats {
        while self.done < self.total {
            // Whether a workflow completion appended arrivals this turn
            // (the event core must then repair its idle sets against
            // the possibly-earlier wait-queue head).
            let mut wf_pushed = false;
            let Some((r, at)) = self.select_turn() else {
                // Divergence guard fired.
                break;
            };
            self.batch.clock[r] = at;
            // The turn body, in a labeled block so the event-index
            // reclassification below always runs (the empty-batch
            // branch breaks out early where the scan core `continue`d).
            'body: {
                self.retire_dma(r);
                self.readmit_swapped(r);
                self.admit_migrants(r);
                self.admit_arrivals(r);
                if self.batch.batches[r].is_empty() {
                    self.idle_wait_for_dma(r);
                    break 'body;
                }
                let chunk_target = self.chunk_target(r);
                if self.preempt {
                    self.relieve_pressure(r, chunk_target);
                }
                let (chunk, now) = self.execute_iteration(r, chunk_target);
                wf_pushed |= self.advance_prefill(r, chunk, now);
                wf_pushed |= self.advance_decoders(r, now);
            }
            self.reindex(r, wf_pushed);
        }
        self.finish()
    }

    /// The next actionable replica: the earliest iteration boundary
    /// among replicas that hold work (resident, swapped or in-flight)
    /// or could admit the earliest pending arrival (idle replicas
    /// fast-forward to it). Ties break to the lowest replica index in
    /// both cores. Also advances the divergence guard; returns `None`
    /// when it fires (the run aborts).
    fn select_turn(&mut self) -> Option<(usize, f64)> {
        let event_core = self.event_core;
        let head_at = self.wait.untaken.first().map(|&(t, _)| t.0);
        let (r, at, src) = if event_core {
            let mut next: Option<(f64, usize, Src)> = None;
            if let Some((TimeKey(t), slot)) = self.turns.busy_q.peek() {
                next = Some((t, slot, Src::Busy));
            }
            if let Some(h) = head_at {
                if let Some(&i) = self.turns.idle_ready.first() {
                    if next
                        .as_ref()
                        .is_none_or(|&(t, s, _)| h < t || (h == t && i < s))
                    {
                        next = Some((h, i, Src::Ready));
                    }
                }
                if let Some(&(TimeKey(t), i)) = self.turns.idle_late.first() {
                    if next
                        .as_ref()
                        .is_none_or(|&(nt, ns, _)| t < nt || (t == nt && i < ns))
                    {
                        next = Some((t, i, Src::Late));
                    }
                }
            }
            let Some((at, r, src)) = next else {
                unreachable!("requests outstanding but no replica actionable")
            };
            (r, at, src)
        } else {
            let mut next: Option<(usize, f64)> = None;
            for (r, batch) in self.batch.batches.iter().enumerate() {
                let at = if !batch.is_empty()
                    || !self.kv.swapped[r].is_empty()
                    || !self.lanes.incoming[r].is_empty()
                    || !self.mig.migrating[r].is_empty()
                {
                    self.batch.clock[r]
                } else if self.roles[r] == ReplicaRole::DecodeOnly {
                    // Empty decode-only replica: nothing to do until
                    // a migration arrives (arrivals never route here).
                    continue;
                } else if let Some(h) = head_at {
                    self.batch.clock[r].max(h)
                } else {
                    continue;
                };
                if next.is_none_or(|(_, best)| at < best) {
                    next = Some((r, at));
                }
            }
            let Some((r, at)) = next else {
                unreachable!("requests outstanding but no replica actionable")
            };
            (r, at, Src::Busy)
        };
        if event_core {
            match src {
                Src::Busy => {
                    self.turns.busy_q.pop();
                }
                Src::Ready => {
                    self.turns.idle_ready.remove(&r);
                }
                Src::Late => {
                    self.turns.idle_late.remove(&(TimeKey(at), r));
                }
            }
        }
        // Divergence guard: `arrived` advances monotonically with the
        // selected event time (which never decreases); `admitted`
        // counts admissions, which can transiently outpace `arrived`
        // because a replica's clock moves past the event time within
        // its turn — hence the saturating difference.
        if let Some(bound) = self.divergence_bound {
            while self.wait.arrived < self.wait.arrivals.len()
                && self.wait.arrivals[self.wait.arrived].at <= at
            {
                self.wait.arrived += 1;
            }
            if (self.wait.arrived as u64).saturating_sub(self.wait.admitted) > bound {
                self.stats.diverged = true;
                self.aborted = true;
                return None;
            }
        }
        Some((r, at))
    }

    /// Re-index replica `r` for its next turn. A replica holding
    /// work (resident, swapped, or an in-flight swap-in) is busy
    /// at its own clock; one holding at most background swap-outs
    /// is idle — actionable at the pending-arrival head if its
    /// clock has not passed it, at its own clock otherwise. With
    /// no arrivals left an idle replica can never act again, so
    /// the idle sets empty out. A no-op under the scan core.
    fn reindex(&mut self, r: usize, wf_pushed: bool) {
        if !self.event_core {
            return;
        }
        let turns = &mut self.turns;
        let batch = &self.batch;
        let untaken = &self.wait.untaken;
        if untaken.is_empty() && !self.wf.mode {
            // With no arrivals left an idle replica can never
            // act again. (Workflow mode keeps the sets: a
            // running node's completion can refill the queue,
            // and selection already ignores idle replicas
            // while it is empty.)
            turns.idle_ready.clear();
            turns.idle_late.clear();
        }
        let busy = !batch.batches[r].is_empty()
            || !self.kv.swapped[r].is_empty()
            || !self.lanes.incoming[r].is_empty()
            || !self.mig.migrating[r].is_empty();
        if busy {
            turns.busy_q.schedule(r, TimeKey(batch.clock[r]));
        } else if self.roles[r] == ReplicaRole::DecodeOnly {
            // Parked: arrivals never route here, so the replica
            // next acts when a migration push wakes it.
        } else if let Some(&(t, _)) = untaken.first() {
            if batch.clock[r] <= t.0 {
                turns.idle_ready.insert(r);
            } else {
                turns.idle_late.insert((TimeKey(batch.clock[r]), r));
            }
        } else if self.wf.mode {
            // Queue empty but running nodes may still release
            // children: park until a fan-out turn wakes us.
            turns.parked.insert(r);
        }
        if wf_pushed {
            // A completion fan-out appended arrivals at `now`,
            // which can move the wait-queue head *backward*
            // (`now` precedes leftover root arrivals). Wake
            // every parked replica against the new head, and
            // demote ready replicas whose clock now exceeds it
            // — they act at their own clock, not the head's.
            let h = untaken
                .first()
                .map(|&(t, _)| t.0)
                .expect("fan-out left the wait queue non-empty");
            for pr in std::mem::take(&mut turns.parked) {
                if batch.clock[pr] <= h {
                    turns.idle_ready.insert(pr);
                } else {
                    turns.idle_late.insert((TimeKey(batch.clock[pr]), pr));
                }
            }
            let demote: Vec<usize> = turns
                .idle_ready
                .iter()
                .copied()
                .filter(|&ir| batch.clock[ir] > h)
                .collect();
            for ir in demote {
                turns.idle_ready.remove(&ir);
                turns.idle_late.insert((TimeKey(batch.clock[ir]), ir));
            }
        }
        // The arrival head is nondecreasing between fan-outs
        // (admissions only remove from `untaken`), so replicas
        // that fell behind it migrate from late to ready
        // monotonically.
        if let Some(&(t, _)) = untaken.first() {
            let h = t.0;
            while let Some(&(t, late_r)) = turns.idle_late.first() {
                if t.0 <= h {
                    turns.idle_late.pop_first();
                    turns.idle_ready.insert(late_r);
                } else {
                    break;
                }
            }
        }
    }

    /// End-of-run invariants and the raw samples. Every swap-out must
    /// have been paired with a swap-in (and every recompute drop with a
    /// re-prefill): nothing may end the run swapped, in flight, or
    /// holding host-pool bytes. A divergence abort leaves all of that
    /// legitimately in flight, so the invariants only hold on completed
    /// runs.
    fn finish(mut self) -> RunStats {
        if !self.aborted {
            debug_assert!(self.kv.swapped.iter().all(Vec::is_empty));
            debug_assert!(self.lanes.incoming.iter().all(VecDeque::is_empty));
            debug_assert!(self.mig.migrating.iter().all(VecDeque::is_empty));
            debug_assert!(self.kv.host_used.iter().all(|&b| b == 0));
            // Block conservation: with every sequence completed and the
            // caches flushed, every block must be back on the free
            // list.
            for p in self.kv.paged.iter_mut().flatten() {
                p.finish();
            }
        }
        self.stats
    }
}
