//! DMA lane layer: per-replica lane clocks, swap transfer deques, and
//! boundary retirement.
//!
//! This layer owns the in-flight swap traffic — the [`DmaChannels`] lane
//! clocks and the completion-sorted `outgoing` / `incoming` deques — and
//! the two phase entry points that drain them: [`EngineCore::retire_dma`]
//! retires everything due at a turn boundary, and
//! [`EngineCore::idle_wait_for_dma`] advances an empty replica's clock to
//! the next transfer (or arrival) so admission can never spin against
//! memory that is already draining.

use super::batch::ActiveSeq;
use super::core::EngineCore;
use crate::serving::dma::DmaChannels;
use crate::serving::ReplicaRole;
use std::collections::VecDeque;

/// The DMA layer's per-replica state: lane clocks plus the in-flight
/// swap deques, both kept sorted by completion time (the lanes are
/// monotone, so pushes append in order).
pub(super) struct LaneClocks {
    /// Per-replica DMA lane clocks (unified or split per direction).
    pub(super) dma: Vec<DmaChannels>,
    /// In-flight swap-outs per replica: `(completes_at, tokens,
    /// seq_idx)` — device KV is freed (paged: unshared blocks dropped)
    /// only when the transfer lands.
    pub(super) outgoing: Vec<VecDeque<(f64, u64, u64)>>,
    /// In-flight swap-ins per replica: the sequence re-joins the batch
    /// (and frees its host-pool bytes) when the transfer lands.
    pub(super) incoming: Vec<VecDeque<(f64, ActiveSeq)>>,
}

impl EngineCore<'_> {
    /// Retires DMA that completed by this boundary: finished
    /// swap-outs release their device KV, finished swap-ins join
    /// the batch (releasing their host-pool bytes). The deques
    /// are sorted by completion time, so the completed entries
    /// are exactly a front prefix — the event core pops it; the
    /// scan core keeps the historical index walk (same entries,
    /// same order, since the list is sorted).
    pub(super) fn retire_dma(&mut self, r: usize) {
        let kv = &mut self.kv;
        let lanes = &mut self.lanes;
        let batch = &mut self.batch;
        let stats = &mut self.stats;
        if self.event_core {
            while lanes.outgoing[r]
                .front()
                .is_some_and(|&(t, _, _)| t <= batch.clock[r])
            {
                let (_, _, oid) = lanes.outgoing[r].pop_front().expect("front was checked");
                if let Some(p) = kv.paged[r].as_mut() {
                    p.drop_unshared(oid);
                }
            }
            while lanes.incoming[r]
                .front()
                .is_some_and(|&(t, _)| t <= batch.clock[r])
            {
                let (_, mut seq) = lanes.incoming[r].pop_front().expect("front was checked");
                kv.host_used[r] = kv.host_used[r].saturating_sub(seq.hosted_bytes);
                seq.hosted_bytes = 0;
                stats.peak_batch = stats.peak_batch.max(batch.batches[r].len() as u32 + 1);
                batch.batches[r].push(seq);
            }
        } else {
            let mut i = 0;
            while i < lanes.outgoing[r].len() {
                if lanes.outgoing[r][i].0 <= batch.clock[r] {
                    let (_, _, oid) = lanes.outgoing[r].remove(i).expect("index in range");
                    if let Some(p) = kv.paged[r].as_mut() {
                        p.drop_unshared(oid);
                    }
                } else {
                    i += 1;
                }
            }
            let mut i = 0;
            while i < lanes.incoming[r].len() {
                if lanes.incoming[r][i].0 <= batch.clock[r] {
                    let (_, mut seq) = lanes.incoming[r].remove(i).expect("index in range");
                    kv.host_used[r] = kv.host_used[r].saturating_sub(seq.hosted_bytes);
                    seq.hosted_bytes = 0;
                    stats.peak_batch = stats.peak_batch.max(batch.batches[r].len() as u32 + 1);
                    batch.batches[r].push(seq);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Empty-batch turn with DMA in flight — a swap-in whose
    /// completion gates re-entry, or swap-outs still holding
    /// the device KV an arrival may need. Advance to the
    /// next arrival or the earliest completion on either
    /// list, whichever is sooner: the clock always moves, so
    /// admission can never spin against memory that is
    /// already draining, and idle-waiting on DMA counts as
    /// swap stall. (With nothing in flight the top-of-loop
    /// fast-forward handles the idle replica.) Both lists
    /// were pruned at the boundary, so any event here is
    /// strictly in the future.
    pub(super) fn idle_wait_for_dma(&mut self, r: usize) {
        let event_core = self.event_core;
        let kv = &mut self.kv;
        let lanes = &mut self.lanes;
        let batch = &mut self.batch;
        let stats = &mut self.stats;
        // Both deques are sorted, so their minima sit at the
        // front; the scan core keeps the historical min_by.
        let (out_event, in_event, mig_event) = if event_core {
            (
                lanes.outgoing[r].front().map(|&(t, _, _)| t),
                lanes.incoming[r].front().map(|&(t, _)| t),
                self.mig.migrating[r].front().map(|&(t, _)| t),
            )
        } else {
            (
                lanes.outgoing[r]
                    .iter()
                    .map(|&(t, _, _)| t)
                    .min_by(f64::total_cmp),
                lanes.incoming[r]
                    .iter()
                    .map(|&(t, _)| t)
                    .min_by(f64::total_cmp),
                self.mig.migrating[r]
                    .iter()
                    .map(|&(t, _)| t)
                    .min_by(f64::total_cmp),
            )
        };
        let swap_event = match (in_event, out_event) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        let event = match (swap_event, mig_event) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        if let Some(event) = event {
            // A decode-only replica never admits arrivals,
            // so the pending head is not an event for it.
            let next_arrival = if self.roles[r] == ReplicaRole::DecodeOnly {
                f64::INFINITY
            } else {
                self.wait
                    .untaken
                    .first()
                    .map_or(f64::INFINITY, |&(t, _)| t.0)
            };
            if next_arrival > batch.clock[r] && next_arrival < event {
                batch.clock[r] = next_arrival;
            } else {
                // Idle-waiting on an inbound migration is
                // migration stall; waiting on swap DMA is
                // swap stall (a tie goes to the swap side —
                // both transfers are then due at once).
                if swap_event.is_none_or(|s| event < s) {
                    stats.migration_stall += event - batch.clock[r];
                } else {
                    stats.stall[r] += event - batch.clock[r];
                }
                batch.clock[r] = event;
                if event_core {
                    while lanes.outgoing[r]
                        .front()
                        .is_some_and(|&(t, _, _)| t <= batch.clock[r])
                    {
                        let (_, _, oid) = lanes.outgoing[r].pop_front().expect("front was checked");
                        if let Some(p) = kv.paged[r].as_mut() {
                            p.drop_unshared(oid);
                        }
                    }
                } else {
                    let mut j = 0;
                    while j < lanes.outgoing[r].len() {
                        if lanes.outgoing[r][j].0 <= batch.clock[r] {
                            let (_, _, oid) = lanes.outgoing[r].remove(j).expect("index in range");
                            if let Some(p) = kv.paged[r].as_mut() {
                                p.drop_unshared(oid);
                            }
                        } else {
                            j += 1;
                        }
                    }
                }
            }
        }
    }
}
