//! Workflow runtime layer: per-instance run state and the completion
//! fan-out.
//!
//! A workflow mix replaces the flat request mix with DAG instances.
//! This layer owns the immutable per-template tables ([`WfCtx`]), the
//! per-arrival workflow identity ([`WfTag`]), and the cross-layer
//! fan-out contract ([`WfWorld`]): when a node completes, the batch
//! layer hands this layer mutable views of the wait queue and the paged
//! pools, and gets back newly released child arrivals, settled
//! cancellations, and published prefix keys. No other layer inspects
//! workflow state.

use super::arrivals::Arrival;
use super::TimeKey;
use crate::serving::kv::PagedKv;
use crate::serving::report::RunStats;
use crate::serving::workflow::{workflow_prefix_key, NodeState, WorkflowRun, WorkflowTemplate};
use crate::serving::{RequestClass, ServingConfig};
use ianus_model::RequestShape;
use std::collections::{BTreeSet, HashMap};

/// Workflow identity of an arrival / active sequence: which node of
/// which instance it serves, plus the denormalized workflow context the
/// policies and completion fan-out need. `None` on every flat-mix
/// request.
#[derive(Debug, Clone, Copy)]
pub(super) struct WfTag {
    /// Workflow instance index (into the engine's run table).
    pub(super) inst: usize,
    /// Node index inside the instance's template.
    pub(super) node: usize,
    /// Prefix-cache key of the lowest-index parent's published KV —
    /// what this node admits with under paged accounting. `None` for
    /// root nodes.
    pub(super) inherit: Option<u64>,
    /// Absolute end-to-end deadline of the instance.
    pub(super) deadline: Option<f64>,
    /// Transitive descendant count of the node (admission width).
    pub(super) blocked_descendants: u32,
    /// Tenant owning the instance (children inherit the root's tenant).
    pub(super) tenant: u32,
    /// Whether the *instance* arrived inside a burst window (children
    /// inherit the attribution — burst accounting follows the load that
    /// launched the workflow, not the fan-out instants).
    pub(super) in_burst: bool,
}

/// Immutable per-template tables the workflow hooks index at runtime:
/// the templates themselves, each template's first synthetic class
/// index (node `n` of template `t` is class `base[t] + n`), per-node
/// effective shapes, and per-node transitive descendant counts.
pub(super) struct WfCtx {
    pub(super) templates: Vec<WorkflowTemplate>,
    pub(super) base: Vec<usize>,
    pub(super) shapes: Vec<Vec<RequestShape>>,
    pub(super) blocked: Vec<Vec<u32>>,
}

/// The workflow runtime's mutable state, owned by the engine core for
/// the duration of one run: the per-instance run table, the
/// key→replica home map for published prefixes, and the inheritance
/// knob.
pub(super) struct WorkflowRt {
    /// Immutable per-template tables.
    pub(super) ctx: WfCtx,
    /// Per-instance run state, indexed by [`WfTag::inst`].
    pub(super) runs: Vec<WorkflowRun>,
    /// Which replica holds each live workflow prefix key's blocks.
    pub(super) key_homes: HashMap<u64, usize>,
    /// Whether children admit with inherited parent KV (the engine's
    /// `workflow_inheritance` knob gated on paged mode).
    pub(super) inheritance: bool,
    /// Whether this run is a workflow run at all (`false` on a flat
    /// mix; every workflow hook is skipped).
    pub(super) mode: bool,
}

/// Everything one workflow-node completion touches outside the
/// completing replica: the instance's run state, the arrival vector and
/// wait queue (released children are appended as new arrivals), the
/// paged pools (prefix registration and expired-key drops), the
/// key→replica home table, and the run counters.
pub(super) struct WfWorld<'a> {
    pub(super) ctx: &'a WfCtx,
    pub(super) runs: &'a mut [WorkflowRun],
    pub(super) arrivals: &'a mut Vec<Arrival>,
    pub(super) untaken: &'a mut BTreeSet<(TimeKey, usize)>,
    pub(super) paged: &'a mut [Option<PagedKv>],
    /// Which replica holds each live workflow prefix key's blocks.
    pub(super) key_homes: &'a mut HashMap<u64, usize>,
    /// Whether children admit with inherited parent KV (the engine's
    /// `workflow_inheritance` knob gated on paged mode).
    pub(super) inheritance: bool,
}

impl WfWorld<'_> {
    /// Drops `parent`'s published prefix (instance `inst`) from
    /// whichever replica holds it, if it was ever registered.
    fn drop_expired(&mut self, inst: usize, parent: usize) {
        let key = workflow_prefix_key(inst as u64, parent);
        if let Some(home) = self.key_homes.remove(&key) {
            if let Some(p) = self.paged[home].as_mut() {
                p.drop_prefix(key);
            }
        }
    }

    /// Fans out one completed workflow node: publishes its KV for
    /// inheriting children (must run *before* the caller completes the
    /// sequence in the paged pool, while its table is still live),
    /// settles speculative cancellations, appends newly released
    /// children to the arrival vector at `now`, and records finished
    /// instances. Returns `true` if new arrivals were appended (the
    /// event core then repairs its idle-replica sets against the new
    /// wait-queue head).
    pub(super) fn on_node_complete(
        &mut self,
        tag: WfTag,
        seq_idx: u64,
        replica: usize,
        now: f64,
        stats: &mut RunStats,
        done: &mut u64,
    ) -> bool {
        let ctx = self.ctx;
        let t = self.runs[tag.inst].template;
        let tpl = &ctx.templates[t];
        // Publish this node's output KV under its per-(instance, node)
        // key while the sequence's block table is still alive. Only
        // nodes with *live* consumers publish — a speculative loser
        // whose children were all cancelled before it finished has
        // nothing left to feed.
        if self.inheritance && self.runs[tag.inst].live_consumers(tag.node) > 0 {
            if let Some(p) = self.paged[replica].as_mut() {
                let key = workflow_prefix_key(tag.inst as u64, tag.node);
                if p.register_prefix(seq_idx, key, tpl.nodes[tag.node].shape.output)
                    .is_some()
                {
                    self.key_homes.insert(key, replica);
                }
            }
        }
        let mut out = self.runs[tag.inst].on_complete(tpl, tag.node);
        let mut settled = out.workflow_done;
        // Waiting nodes cancelled outright never reach the engine; they
        // settle here.
        stats.cancelled_nodes += out.cancelled.len() as u64;
        *done += out.cancelled.len() as u64;
        // Released speculative losers: still queued → cancel in place;
        // already admitted → run to completion (their children are
        // cancelled, so the late completion fans out to nothing).
        for i in 0..out.cancel_released.len() {
            let n = out.cancel_released[i];
            let run = &mut self.runs[tag.inst];
            let ai = run.node_arrival[n].expect("released node has an arrival slot");
            if self.untaken.remove(&(TimeKey(self.arrivals[ai].at), ai)) {
                stats.cancelled_nodes += 1;
                *done += 1;
                settled |= run.confirm_cancel(tpl, n, &mut out);
            } else {
                run.keep_running(n);
            }
        }
        for i in 0..out.expired_keys.len() {
            self.drop_expired(tag.inst, out.expired_keys[i]);
        }
        // Release ready children as fresh arrivals at the completion
        // instant.
        let mut pushed = false;
        for &c in &out.released {
            let run = &mut self.runs[tag.inst];
            let inherit = if self.inheritance {
                tpl.nodes[c]
                    .parents
                    .iter()
                    .min()
                    .map(|&p| workflow_prefix_key(tag.inst as u64, p))
            } else {
                None
            };
            let ai = self.arrivals.len();
            run.node_arrival[c] = Some(ai);
            let deadline = run.deadline;
            self.arrivals.push(Arrival {
                at: now,
                idx: ai as u64,
                class: ctx.base[t] + c,
                shape: ctx.shapes[t][c],
                priority: tpl.priority,
                slo: None,
                tenant: tag.tenant,
                in_burst: tag.in_burst,
                wf: Some(WfTag {
                    inst: tag.inst,
                    node: c,
                    inherit,
                    deadline,
                    blocked_descendants: ctx.blocked[t][c],
                    tenant: tag.tenant,
                    in_burst: tag.in_burst,
                }),
            });
            self.untaken.insert((TimeKey(now), ai));
            pushed = true;
        }
        debug_assert!(
            out.released
                .iter()
                .all(|&c| self.runs[tag.inst].state(c) == NodeState::Released),
            "fan-out queued a node that is not in the Released state"
        );
        if settled {
            let run = &self.runs[tag.inst];
            debug_assert!(run.done(), "a settled instance owes no node an outcome");
            stats.workflow_latencies.push(now - run.start);
            if run.deadline.is_none_or(|d| now <= d) {
                stats.workflow_attained += 1;
            }
        }
        pushed
    }
}

/// Derives the run's per-class accounting mix from a config: the flat
/// mix verbatim, or — under a workflow mix — one synthetic class per
/// (template, node) in template order, shaped by the node's *effective*
/// prompt (own prompt plus every parent's output). Synthetic classes
/// carry the template's priority, no SLO (workflow deadlines are
/// whole-instance, not per-node), and no class-level prefix (workflow
/// nodes share KV through per-instance inheritance keys instead).
pub(super) fn effective_mix(cfg: &ServingConfig) -> Vec<RequestClass> {
    if cfg.workflows.is_empty() {
        return cfg.mix.clone();
    }
    let mut mix = Vec::new();
    for tpl in &cfg.workflows {
        for (node, eff) in tpl.effective_inputs().into_iter().enumerate() {
            mix.push(RequestClass {
                shape: RequestShape {
                    input: eff,
                    output: tpl.nodes[node].shape.output,
                },
                weight: tpl.weight,
                priority: tpl.priority,
                slo: None,
                prefix_tokens: 0,
            });
        }
    }
    mix
}

/// Per-template tables the workflow hooks index at runtime, all
/// derived once from the validated templates.
pub(super) fn workflow_ctx(cfg: &ServingConfig) -> WfCtx {
    let templates = cfg.workflows.clone();
    let mut base = Vec::with_capacity(templates.len());
    let mut next = 0usize;
    for tpl in &templates {
        base.push(next);
        next += tpl.node_count();
    }
    let shapes = templates
        .iter()
        .map(|tpl| {
            tpl.effective_inputs()
                .into_iter()
                .enumerate()
                .map(|(node, eff)| RequestShape {
                    input: eff,
                    output: tpl.nodes[node].shape.output,
                })
                .collect()
        })
        .collect();
    let blocked = templates.iter().map(|t| t.blocked_descendants()).collect();
    WfCtx {
        templates,
        base,
        shapes,
        blocked,
    }
}
