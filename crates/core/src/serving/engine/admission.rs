//! Admission layer: the global wait queue and both admission paths.
//!
//! This layer owns the arrival vector and the time-ordered wait queue
//! ([`WaitQueue`]), and decides when queued work becomes resident:
//! [`EngineCore::admit_arrivals`] runs the iteration-level admission
//! policy at every boundary (KV-gated, batch-slot-bounded), while
//! [`ServingSim::run_request_level`] is the whole request-level
//! scheduling mode — there a "batch" is one request and admission is
//! just dispatch, so no engine core is needed.

use super::arrivals::Arrival;
use super::batch::ActiveSeq;
use super::core::EngineCore;
use super::TimeKey;
use crate::serving::policy::QueuedRequest;
use crate::serving::report::{request_attains, RunStats};
use crate::serving::workflow::workflow_prefix_key;
use crate::serving::DispatchPolicy;
use crate::serving::ReplicaRole;
use ianus_model::{ModelConfig, RequestShape};

/// The wait-queue layer: every generated arrival, the subset not yet
/// admitted (ordered by arrival time, then index), and the divergence
/// counters.
pub(super) struct WaitQueue {
    /// Every arrival of the run, indexed by arrival id. Workflow
    /// fan-outs append released children at completion instants.
    pub(super) arrivals: Vec<Arrival>,
    /// `(arrival_time, arrival_index)` of every not-yet-admitted
    /// request — the global FCFS-ordered wait queue both cores share.
    pub(super) untaken: std::collections::BTreeSet<(TimeKey, usize)>,
    /// How many arrivals have occurred by the current boundary
    /// (divergence accounting only).
    pub(super) arrived: usize,
    /// How many arrivals have been admitted (divergence accounting
    /// only).
    pub(super) admitted: u64,
}

impl super::ServingSim {
    /// Request-level scheduling: each request is dispatched whole to
    /// one replica and served run-to-completion (no batching).
    pub(super) fn run_request_level(&mut self, model: &ModelConfig) -> RunStats {
        // Memoize every (replica, shape) service and prefill time up
        // front: ShortestExpectedJob consults all replicas per arrival,
        // and TTFT needs the prefill split.
        let shapes: Vec<RequestShape> = self.cfg.mix.iter().map(|c| c.shape).collect();
        for r in &mut self.replicas {
            for &shape in &shapes {
                r.service_time(model, shape);
                r.prefill_secs(model, shape.input);
            }
        }

        let n = self.replicas.len();
        let mut free = vec![0.0f64; n]; // per-replica next-free time
                                        // Outstanding finish times per replica (FIFO per replica, so the
                                        // front is always the earliest) — LeastLoaded's queue lengths.
        let mut outstanding: Vec<std::collections::VecDeque<f64>> =
            vec![std::collections::VecDeque::new(); n];
        // FCFS dispatch is argmin over next-free times with
        // lowest-index tie-breaks — exactly the lexicographic (time,
        // index) heap minimum, so a heap with one entry per replica
        // replaces the O(n) scan per arrival: only the dispatched
        // replica's key changes, and it is re-pushed right where it
        // changes. LeastLoaded/SEJ keep the scan — their keys change
        // for replicas that were *not* dispatched.
        let mut fcfs_heap: std::collections::BinaryHeap<std::cmp::Reverse<(TimeKey, usize)>> =
            match self.dispatch {
                DispatchPolicy::FcfsSingleQueue => (0..n)
                    .map(|i| std::cmp::Reverse((TimeKey(0.0), i)))
                    .collect(),
                _ => std::collections::BinaryHeap::new(),
            };
        let mut stats = RunStats::new(
            n,
            self.cfg.mix.len(),
            self.cfg.requests,
            self.cfg.arrivals.tenant_count(),
        );
        stats.peak_batch = 1;

        for arrival in self.generate_arrivals() {
            let now = arrival.at;
            let shape = arrival.shape;
            // Retire requests finished by this arrival instant.
            for q in &mut outstanding {
                while q.front().is_some_and(|&f| f <= now) {
                    q.pop_front();
                }
            }

            let replica = match self.dispatch {
                DispatchPolicy::FcfsSingleQueue => {
                    let std::cmp::Reverse((TimeKey(t), i)) =
                        fcfs_heap.pop().expect("one entry per replica");
                    // Comparing a *stored* f64 against itself: the heap
                    // mirrors `free` exactly (the popped entry is
                    // re-pushed with its new key after dispatch below).
                    debug_assert_eq!(t, free[i]);
                    i
                }
                DispatchPolicy::LeastLoaded => super::argmin(&outstanding, |q| q.len()),
                DispatchPolicy::ShortestExpectedJob => {
                    let mut best = 0usize;
                    let mut best_done = f64::INFINITY;
                    for (i, (&f, r)) in free.iter().zip(&self.replicas).enumerate() {
                        let done = f.max(now) + r.service[&(model.name, shape)].as_secs_f64();
                        if done < best_done {
                            best_done = done;
                            best = i;
                        }
                    }
                    best
                }
            };

            let s = self.replicas[replica].service[&(model.name, shape)].as_secs_f64();
            let prefill = self.replicas[replica].prefill[&(model.name, shape.input)];
            let start = now.max(free[replica]);
            let finish = start + s;
            free[replica] = finish;
            if self.dispatch == DispatchPolicy::FcfsSingleQueue {
                fcfs_heap.push(std::cmp::Reverse((TimeKey(finish), replica)));
            }
            outstanding[replica].push_back(finish);
            stats.busy[replica] += s;
            let ttft = start - now + prefill;
            stats.ttfts.push(ttft);
            // Request-level scheduling has no prefix cache: every TTFT
            // is a cold one.
            stats.ttft_colds.push(ttft);
            let steps = shape.generation_steps();
            let attained = if steps > 0 {
                let itl = (s - prefill).max(0.0) / steps as f64;
                stats.itls.extend(std::iter::repeat_n(itl, steps as usize));
                if arrival.in_burst {
                    stats
                        .burst_itls
                        .extend(std::iter::repeat_n(itl, steps as usize));
                }
                request_attains(arrival.slo, ttft, &[itl])
            } else {
                request_attains(arrival.slo, ttft, &[])
            };
            stats.complete(
                replica,
                arrival.class,
                now,
                s,
                finish,
                0,
                0,
                attained,
                arrival.tenant,
                arrival.in_burst,
            );
        }
        stats
    }
}

impl EngineCore<'_> {
    /// Admission at the iteration boundary: the admission
    /// policy's order over the already-arrived slice of the
    /// queue, bounded by batch slots and KV residency — the
    /// residents' *final* lengths normally, their *current*
    /// lengths (optimistic overcommit) under preemption.
    /// Decode-only replicas never admit arrivals.
    pub(super) fn admit_arrivals(&mut self, r: usize) {
        let model = self.model;
        let max_batch = self.max_batch;
        let preempt = self.preempt;
        let scheduler = self.scheduler;
        let replicas = &mut *self.replicas;
        let kv = &mut self.kv;
        let lanes = &mut self.lanes;
        let batch = &mut self.batch;
        let wait = &mut self.wait;
        let wf = &mut self.wf;
        let stats = &mut self.stats;
        while self.roles[r] != ReplicaRole::DecodeOnly
            && batch.batches[r].len() + lanes.incoming[r].len() < max_batch as usize
        {
            let mut window: Vec<(usize, QueuedRequest)> = Vec::new();
            for &(_, i) in wait.untaken.iter() {
                if wait.arrivals[i].at > batch.clock[r] {
                    break;
                }
                window.push((i, wait.arrivals[i].queued_view()));
            }
            let Some(wi) =
                super::select_min(&window, |t| t.1, |a, b| scheduler.admission.compare(a, b))
            else {
                break;
            };
            let pi = window[wi].0;
            let cand = &wait.arrivals[pi];
            // A request that can never be served — its sequence
            // exceeds the model's positional table, or it does not
            // fit even an empty replica — must panic rather than
            // block the queue (non-preempt) or be optimistically
            // admitted into an eviction storm that no swap can
            // resolve (preempt gates on current lengths, which
            // would miss the final-length violation).
            if let Err(e) = replicas[r]
                .backend
                .batch_fits(model, std::slice::from_ref(&cand.shape))
            {
                assert!(
                    !(batch.batches[r].is_empty()
                        && kv.swapped[r].is_empty()
                        && lanes.incoming[r].is_empty()),
                    "request {:?} can never be admitted on replica {} ({}): {}",
                    cand.shape,
                    r,
                    replicas[r].backend.name(),
                    e
                );
                break;
            }
            let fits = if let Some(p) = kv.paged[r].as_mut() {
                // Block arithmetic. The candidate's need is its
                // footprint minus whatever the prefix cache already
                // holds (capped below the whole prompt so at least
                // one token always prefills — TTFT stays
                // measurable): the imminent prompt under preemptive
                // overcommit, the final length otherwise — plus, in
                // the final-length mode, every resident's residual
                // growth to completion.
                // Workflow children gate on their inherited
                // parent prefix; flat classes on their class
                // prefix (a workflow node's synthetic class
                // never declares one).
                let cand_key = cand
                    .wf
                    .and_then(|w| w.inherit)
                    .or(kv.class_keys[cand.class]);
                let hit_tokens = cand_key.map_or(0, |key| {
                    p.prefix_hit_tokens(key, cand.shape.input.saturating_sub(1))
                });
                let mut need = if preempt {
                    p.blocks_for(cand.shape.input)
                } else {
                    p.blocks_for(cand.shape.total_tokens())
                }
                .saturating_sub(p.blocks_for(hit_tokens));
                if !preempt {
                    for s in batch.batches[r].iter() {
                        need += p
                            .blocks_for(s.shape.total_tokens())
                            .saturating_sub(p.blocks_of(s.idx));
                    }
                }
                p.reclaim(need);
                if need <= p.free_blocks() {
                    stats.peak_kv_occupancy = stats.peak_kv_occupancy.max(p.occupancy_plus(need));
                    true
                } else {
                    false
                }
            } else {
                let resident: Vec<RequestShape> = if preempt {
                    let mut v: Vec<RequestShape> = batch.batches[r]
                        .iter()
                        .map(|s| ActiveSeq::kv_shape(s.past))
                        .collect();
                    // In-flight KV holds device memory too: reserved
                    // swap-ins, and swap-outs not yet drained.
                    v.extend(
                        lanes.incoming[r]
                            .iter()
                            .map(|(_, s)| ActiveSeq::kv_shape(s.past)),
                    );
                    v.extend(
                        lanes.outgoing[r]
                            .iter()
                            .map(|&(_, tok, _)| ActiveSeq::kv_shape(tok)),
                    );
                    // The candidate's imminent footprint: its whole
                    // prompt's KV, at prefill activation width.
                    v.push(RequestShape {
                        input: cand.shape.input.max(1),
                        output: 1,
                    });
                    v
                } else {
                    let mut v: Vec<RequestShape> =
                        batch.batches[r].iter().map(|s| s.shape).collect();
                    v.push(cand.shape);
                    v
                };
                match replicas[r].backend.batch_fits(model, &resident) {
                    Ok(occupancy) => {
                        stats.peak_kv_occupancy = stats.peak_kv_occupancy.max(occupancy);
                        true
                    }
                    Err(_) => false,
                }
            };
            // Head-of-line blocking (in policy order) is faithful
            // to the policy; the lone-request check above already
            // ruled out a never-admittable head.
            if !fits {
                break;
            }
            wait.untaken.remove(&(TimeKey(wait.arrivals[pi].at), pi));
            wait.admitted += 1;
            let arrival = wait.arrivals[pi];
            let service = replicas[r].ideal_service_secs(model, arrival.shape);
            // Map the shared prefix (if the class opted in and the
            // cache holds it): the sequence starts with those
            // tokens already built and prefills only the suffix.
            let mut shared_tokens = 0u64;
            if let Some(p) = kv.paged[r].as_mut() {
                let inherit_key = arrival.wf.and_then(|w| w.inherit);
                shared_tokens = p.admit(
                    arrival.idx,
                    inherit_key.or(kv.class_keys[arrival.class]),
                    arrival.shape.input.saturating_sub(1),
                );
                stats.prompt_tokens += arrival.shape.input;
                if shared_tokens > 0 {
                    stats.prefix_hits += 1;
                    stats.shared_prompt_tokens += shared_tokens;
                }
                if inherit_key.is_some() {
                    // Cross-node inheritance accounting: how much
                    // of this child's prompt its parent's KV
                    // covered (0 on a cross-replica miss).
                    stats.inheritable_tokens += arrival.shape.input;
                    stats.inherited_tokens += shared_tokens;
                }
            }
            // The child has claimed (or forfeited, on a miss) its
            // slot on the parent's published prefix; drop the
            // parent's cache entry once its last consumer is in.
            if let Some(w) = arrival.wf {
                let run = &mut wf.runs[w.inst];
                let tpl = &wf.ctx.templates[run.template];
                if let Some(parent) = run.consume_key(tpl, w.node) {
                    let key = workflow_prefix_key(w.inst as u64, parent);
                    if let Some(home) = wf.key_homes.remove(&key) {
                        if let Some(p) = kv.paged[home].as_mut() {
                            p.drop_prefix(key);
                        }
                    }
                }
            }
            stats.peak_batch = stats.peak_batch.max(batch.batches[r].len() as u32 + 1);
            batch.batches[r].push(ActiveSeq {
                shape: arrival.shape,
                arrival: arrival.at,
                idx: arrival.idx,
                service,
                class: arrival.class,
                priority: arrival.priority,
                slo: arrival.slo,
                prefilled: shared_tokens,
                prefill_target: arrival.shape.input,
                past: shared_tokens,
                remaining: arrival.shape.generation_steps(),
                last_token: batch.clock[r],
                ttft: 0.0,
                gaps: Vec::new(),
                preemptions: 0,
                recomputes: 0,
                swap_epoch: 0,
                hosted_bytes: 0,
                just_prefilled: false,
                shared_tokens,
                cache_hit: shared_tokens > 0,
                tenant: arrival.tenant,
                in_burst: arrival.in_burst,
                wf: arrival.wf,
            });
        }
    }
}
