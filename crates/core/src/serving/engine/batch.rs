//! Batch layer: resident sequences, the iteration clock, and the
//! execute/advance phases of each turn.
//!
//! This layer owns what is *on the device right now* — the per-replica
//! batches of [`ActiveSeq`] and the compute clocks — and the three
//! phases that move time: [`EngineCore::execute_iteration`] prices one
//! mixed iteration (prefill chunk + decode step) and advances the
//! clock, [`EngineCore::advance_prefill`] moves the chunked sequence
//! forward (emitting TTFT, completing single-token requests, or handing
//! a finished prefill to the migration layer), and
//! [`EngineCore::advance_decoders`] emits one token per decoder and
//! completes finished sequences. Workflow completions fan out through
//! [`WfWorld`](super::workflow_rt::WfWorld) before the paged pool frees
//! the block table.

use super::core::EngineCore;
use super::workflow_rt::{WfTag, WfWorld};
use crate::serving::policy::SeqView;
use crate::serving::report::request_attains;
use crate::serving::ReplicaRole;
use crate::serving::{Priority, Slo};
use ianus_model::RequestShape;

/// One sequence resident in a replica's batch (prefilling or decoding)
/// or parked in its swap queue.
#[derive(Debug, Clone)]
pub(super) struct ActiveSeq {
    pub(super) shape: RequestShape,
    /// Arrival time (for sojourn accounting).
    pub(super) arrival: f64,
    /// Global arrival index (admission order; the default eviction's
    /// "youngest").
    pub(super) idx: u64,
    /// Its unloaded batch-1 service time (for `mean_service`).
    pub(super) service: f64,
    /// Index into the config's mix.
    pub(super) class: usize,
    /// Scheduling tier.
    pub(super) priority: Priority,
    /// The class SLO (for attainment scoring and deadline policies).
    pub(super) slo: Option<Slo>,
    /// Prompt tokens prefilled so far; the sequence is *prefilling*
    /// until this reaches [`prefill_target`](Self::prefill_target),
    /// then *decoding*.
    pub(super) prefilled: u64,
    /// How many tokens of context the current prefill must build:
    /// `shape.input` for the initial prompt. A recompute-based eviction
    /// resets this to the context length at eviction (prompt plus
    /// tokens generated so far) — the re-prefill rebuilds the whole
    /// context through the same chunk machinery.
    pub(super) prefill_target: u64,
    /// Tokens currently in its KV cache (prefilled prompt + generated).
    pub(super) past: u64,
    /// Decode iterations left.
    pub(super) remaining: u64,
    /// When its previous token was emitted. Inter-token samples are
    /// gaps between consecutive emissions, so a co-admitted request's
    /// prefill chunk stalling the batch — or a swap-out dwell — shows
    /// up in the resident sequences' ITL, not just in sojourn.
    pub(super) last_token: f64,
    /// Measured time-to-first-token in seconds (set when the prefill
    /// completes; every completion passes through that point first).
    pub(super) ttft: f64,
    /// This sequence's own inter-token gaps (for per-request SLO
    /// attainment; the same samples also land in the global ITL pool).
    pub(super) gaps: Vec<f64>,
    /// KV evictions suffered so far (swap-outs plus recompute drops).
    pub(super) preemptions: u32,
    /// Recompute-based evictions suffered so far (subset of
    /// `preemptions`).
    pub(super) recomputes: u32,
    /// Monotone swap-out sequence number (0 until first preempted) —
    /// what FIFO re-admission orders by.
    pub(super) swap_epoch: u64,
    /// Bytes this sequence currently holds in the replica's host pool
    /// (0 while resident, and always 0 for recompute evictions).
    pub(super) hosted_bytes: u64,
    /// Set when a recompute re-prefill completed *this* iteration: the
    /// rebuild produces no new token, so the decode advance must skip
    /// the sequence once without resetting its inter-token clock (the
    /// eviction dwell belongs in its ITL, like a swap dwell does).
    pub(super) just_prefilled: bool,
    /// Prompt tokens served out of the prefix cache (paged mode only;
    /// always 0 under contiguous accounting). These blocks are shared
    /// with the cache, so evictions neither move nor drop them and
    /// recompute re-prefills restart from here, not from zero.
    pub(super) shared_tokens: u64,
    /// Whether admission hit the prefix cache (routes the TTFT sample
    /// into the cache-hit pool instead of the cold one).
    pub(super) cache_hit: bool,
    /// Tenant that issued the request (0 outside multi-tenant traffic).
    pub(super) tenant: u32,
    /// Whether the request arrived inside a burst window (per-window
    /// SLO attribution; always `false` under pure Poisson traffic).
    pub(super) in_burst: bool,
    /// Workflow identity (`None` for flat-mix sequences). Completion
    /// fans out through this to release children and decide races.
    pub(super) wf: Option<WfTag>,
}

impl ActiveSeq {
    /// Whether the context is fully (re)built (the sequence decodes).
    pub(super) fn decoding(&self) -> bool {
        self.prefilled >= self.prefill_target
    }

    /// TTFT deadline in seconds: the class SLO's `arrival + ttft`, or —
    /// for workflow nodes without one — the instance deadline.
    fn deadline(&self) -> Option<f64> {
        self.slo
            .map(|s| self.arrival + s.ttft.as_secs_f64())
            .or(self.wf.and_then(|w| w.deadline))
    }

    /// The eviction/re-admission policy view of this sequence, with
    /// the engine-supplied eviction-cost estimates filled in.
    pub(super) fn view(
        &self,
        swap_secs: f64,
        recompute_secs: f64,
        kv_blocks: u64,
        readmit_delay_secs: f64,
    ) -> SeqView {
        SeqView {
            shape: self.shape,
            arrival: self.arrival,
            arrival_idx: self.idx,
            priority: self.priority,
            deadline: self.deadline(),
            kv_tokens: self.past,
            prefilled: self.prefilled,
            generated: self.shape.generation_steps() - self.remaining,
            remaining: self.remaining,
            preemptions: self.preemptions,
            swap_epoch: self.swap_epoch,
            swap_secs,
            recompute_secs,
            kv_blocks,
            shared_tokens: self.shared_tokens,
            readmit_delay_secs,
            workflow_deadline: self.wf.and_then(|w| w.deadline),
            blocked_descendants: self.wf.map_or(0, |w| w.blocked_descendants),
        }
    }

    /// The sequence's KV footprint *right now*, as a shape whose
    /// [`RequestShape::total_tokens`] is `tokens`: the currency of the
    /// optimistic (current-length) residency checks under preemption.
    /// The tokens ride in `output` with a one-token `input` so
    /// [`check_batch`](crate::capacity::check_batch)'s activation term
    /// prices a single live decode row, not a phantom `tokens`-wide
    /// prefill.
    pub(super) fn kv_shape(tokens: u64) -> RequestShape {
        RequestShape {
            input: 1,
            output: tokens.max(1),
        }
    }
}

/// The batch layer's per-replica state: what is resident and where each
/// replica's compute clock stands.
pub(super) struct BatchState {
    /// Resident sequences per replica (order is batch position; stable
    /// ids live in [`ActiveSeq::idx`]).
    pub(super) batches: Vec<Vec<ActiveSeq>>,
    /// Per-replica compute clocks (iteration boundaries).
    pub(super) clock: Vec<f64>,
    /// Sum of executed iteration durations per replica (with
    /// [`iter_n`](Self::iter_n), the mean iteration time behind
    /// re-admission-delay estimates).
    pub(super) iter_sum: Vec<f64>,
    /// Count of executed iterations per replica.
    pub(super) iter_n: Vec<u64>,
}

impl EngineCore<'_> {
    /// The iteration's prefill share: one chunk of the oldest
    /// still-prefilling sequence (FCFS by arrival index — a
    /// stable id, because evictions reshuffle positions).
    pub(super) fn chunk_target(&self, r: usize) -> Option<u64> {
        self.batch.batches[r]
            .iter()
            .filter(|s| !s.decoding())
            .map(|s| s.idx)
            .min()
    }

    /// One mixed iteration: the prefill chunk (if any) plus one
    /// decode step over every fully-prefilled sequence. Both
    /// shares execute in the same iteration, so the chunk
    /// stretches each decoder's token gap by the *chunk* cost.
    /// Returns the chunk (batch position, tokens) and the new
    /// boundary time.
    pub(super) fn execute_iteration(
        &mut self,
        r: usize,
        chunk_target: Option<u64>,
    ) -> (Option<(usize, u64)>, f64) {
        let model = self.model;
        let chunk_size = self.chunk_size;
        let batch = &mut self.batch;
        let stats = &mut self.stats;
        let chunk: Option<(usize, u64)> = chunk_target.map(|idx| {
            let ci = batch.batches[r]
                .iter()
                .position(|s| s.idx == idx)
                .expect("prefilling sequences are never evicted");
            let tokens = chunk_size
                .min(batch.batches[r][ci].prefill_target - batch.batches[r][ci].prefilled);
            (ci, tokens)
        });
        let (decode_width, mean_past) = {
            let decoders: Vec<&ActiveSeq> =
                batch.batches[r].iter().filter(|s| s.decoding()).collect();
            let width = decoders.len();
            let mean = if width > 0 {
                // Round the mean in f64: integer division floored
                // it, systematically under-pricing decode for
                // heterogeneous batches.
                let sum = decoders.iter().map(|s| s.past).sum::<u64>();
                (sum as f64 / width as f64).round() as u64
            } else {
                0
            };
            (width as u32, mean)
        };
        let mut dt = 0.0f64;
        if let Some((_, tokens)) = chunk {
            dt += self.replicas[r].prefill_secs(model, tokens);
        }
        if decode_width > 0 {
            dt += self.replicas[r].decode_secs(model, mean_past, decode_width);
        }
        batch.clock[r] += dt;
        stats.busy[r] += dt;
        batch.iter_sum[r] += dt;
        batch.iter_n[r] += 1;
        if let Some(p) = self.kv.paged[r].as_ref() {
            // Fragmentation sampled once per executed iteration:
            // private-tail slack over allocated block capacity.
            stats.frag_sum += p.fragmentation();
            stats.frag_samples += 1;
        }
        (chunk, batch.clock[r])
    }

    /// Advance the prefilling sequence; its first token comes out
    /// of the final chunk — unless this was a recompute
    /// re-prefill, which only rebuilds KV the sequence already
    /// produced tokens for. Returns whether a workflow fan-out
    /// appended arrivals.
    pub(super) fn advance_prefill(
        &mut self,
        r: usize,
        chunk: Option<(usize, u64)>,
        now: f64,
    ) -> bool {
        let mut wf_pushed = false;
        let Some((ci, tokens)) = chunk else {
            return wf_pushed;
        };
        let seq = &mut self.batch.batches[r][ci];
        seq.prefilled += tokens;
        seq.past = seq.prefilled;
        if let Some(p) = self.kv.paged[r].as_mut() {
            p.grow(seq.idx, seq.past);
            if seq.decoding() {
                // The prompt's full prefix blocks are now
                // built: publish them to the class's cache
                // entry (first completer wins; later ones
                // find the entry already present).
                if let Some(key) = self.kv.class_keys[seq.class] {
                    let prefix = self.mix[seq.class]
                        .prefix_tokens
                        .min(seq.shape.input.saturating_sub(1));
                    if let Some(shared) = p.register_prefix(seq.idx, key, prefix) {
                        seq.shared_tokens = seq.shared_tokens.max(shared);
                    }
                }
            }
        }
        if seq.decoding() {
            if seq.recomputes == 0 {
                seq.ttft = now - seq.arrival;
                let ttft = seq.ttft;
                let cache_hit = seq.cache_hit;
                self.stats.ttfts.push(ttft);
                if cache_hit {
                    self.stats.ttft_hits.push(ttft);
                } else {
                    self.stats.ttft_colds.push(ttft);
                }
                let seq = &mut self.batch.batches[r][ci];
                seq.last_token = now;
                if seq.remaining == 0 {
                    // Single-token request: the prefill is the
                    // request.
                    let seq = self.batch.batches[r].remove(ci);
                    if let Some(tag) = seq.wf {
                        // Fan out before `complete` frees the
                        // block table: children inherit this
                        // node's KV as a shared prefix.
                        wf_pushed |= WfWorld {
                            ctx: &self.wf.ctx,
                            runs: &mut self.wf.runs,
                            arrivals: &mut self.wait.arrivals,
                            untaken: &mut self.wait.untaken,
                            paged: &mut self.kv.paged,
                            key_homes: &mut self.wf.key_homes,
                            inheritance: self.wf.inheritance,
                        }
                        .on_node_complete(
                            tag,
                            seq.idx,
                            r,
                            now,
                            &mut self.stats,
                            &mut self.done,
                        );
                    }
                    if let Some(p) = self.kv.paged[r].as_mut() {
                        p.complete(seq.idx);
                    }
                    let attained = request_attains(seq.slo, seq.ttft, &seq.gaps);
                    self.stats.complete(
                        r,
                        seq.class,
                        seq.arrival,
                        seq.service,
                        now,
                        seq.preemptions,
                        seq.recomputes,
                        attained,
                        seq.tenant,
                        seq.in_burst,
                    );
                    self.done += 1;
                } else if self.roles[r] == ReplicaRole::PrefillOnly
                    && !self.mig.decode_pool.is_empty()
                {
                    let seq = self.batch.batches[r].remove(ci);
                    self.migrate_after_prefill(r, seq, now);
                }
            } else {
                // No token emitted: skip this sequence's decode
                // advance once, keeping `last_token` so the
                // whole eviction dwell lands in its next ITL
                // gap (as a swap dwell would).
                seq.just_prefilled = true;
            }
        }
        wf_pushed
    }

    /// Advance the decoders (skipping a sequence whose prefill
    /// completed *this* iteration: its first decode token comes
    /// next iteration). Returns whether a workflow fan-out
    /// appended arrivals.
    pub(super) fn advance_decoders(&mut self, r: usize, now: f64) -> bool {
        let mut wf_pushed = false;
        let mut i = 0;
        while i < self.batch.batches[r].len() {
            let seq = &mut self.batch.batches[r][i];
            if std::mem::take(&mut seq.just_prefilled) || !seq.decoding() || seq.last_token >= now {
                i += 1;
                continue;
            }
            // Gap since the sequence's previous token — includes
            // co-scheduled prefill chunks and swap traffic that
            // stalled the batch, not just this iteration's decode.
            let gap = now - seq.last_token;
            let in_burst = seq.in_burst;
            seq.gaps.push(gap);
            seq.last_token = now;
            seq.past += 1;
            seq.remaining -= 1;
            let (idx, finished) = (seq.idx, seq.remaining == 0);
            let wf_tag = seq.wf;
            self.stats.itls.push(gap);
            if in_burst {
                self.stats.burst_itls.push(gap);
            }
            if finished {
                if let Some(tag) = wf_tag {
                    // Fan out before `complete` frees the block
                    // table: children inherit this node's KV as
                    // a shared prefix.
                    wf_pushed |= WfWorld {
                        ctx: &self.wf.ctx,
                        runs: &mut self.wf.runs,
                        arrivals: &mut self.wait.arrivals,
                        untaken: &mut self.wait.untaken,
                        paged: &mut self.kv.paged,
                        key_homes: &mut self.wf.key_homes,
                        inheritance: self.wf.inheritance,
                    }
                    .on_node_complete(
                        tag,
                        idx,
                        r,
                        now,
                        &mut self.stats,
                        &mut self.done,
                    );
                }
            }
            if let Some(p) = self.kv.paged[r].as_mut() {
                if finished {
                    p.complete(idx);
                } else {
                    p.grow(idx, self.batch.batches[r][i].past);
                }
            }
            if finished {
                let seq = self.batch.batches[r].remove(i);
                let attained = request_attains(seq.slo, seq.ttft, &seq.gaps);
                self.stats.complete(
                    r,
                    seq.class,
                    seq.arrival,
                    seq.service,
                    now,
                    seq.preemptions,
                    seq.recomputes,
                    attained,
                    seq.tenant,
                    seq.in_burst,
                );
                self.done += 1;
            } else {
                i += 1;
            }
        }
        wf_pushed
    }
}
