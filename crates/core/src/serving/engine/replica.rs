//! Replica layer: one [`Backend`] plus its service-time memoization.
//!
//! Every device simulation the engine prices — request service, prefill
//! chunks, decode iterations, recompute estimates — funnels through
//! [`Replica`], which memoizes results keyed by model identity so the
//! iteration loops stay cheap. No other layer talks to a [`Backend`]
//! directly.

use crate::backend::Backend;
use ianus_model::{ModelConfig, RequestShape};
use ianus_sim::Duration;
use std::collections::HashMap;

/// Past-lengths below this are always priced exactly; above it, decode
/// times are sampled on a geometric grid and interpolated.
const DECODE_GRID_START: u64 = 4;

/// Bracketing grid points `(lo, hi]` around `past` on the geometric
/// (×5/4) decode-sampling grid starting at [`DECODE_GRID_START`].
/// Requires `past > DECODE_GRID_START`; returns `lo ≤ past ≤ hi`.
fn decode_grid_bracket(past: u64) -> (u64, u64) {
    let mut lo = DECODE_GRID_START;
    loop {
        let hi = (lo * 5 / 4).max(lo + 1);
        if past <= hi {
            return (lo, hi);
        }
        lo = hi;
    }
}

pub(super) struct Replica {
    pub(super) backend: Box<dyn Backend>,
    /// Memoized service times, keyed by model and shape so one engine
    /// can serve different models across runs. `ModelConfig::name` is
    /// the model's identity here: two configs sharing a name are
    /// assumed to be the same model (true for the built-in zoo; callers
    /// mutating a config's fields must also rename it).
    /// (Exposed to the request-level path, which pre-memoizes every
    /// (model, shape) pair and then reads the tables directly in its
    /// dispatch loop.)
    pub(super) service: HashMap<(&'static str, RequestShape), Duration>,
    /// Memoized prefill times in seconds, keyed by (model, tokens).
    pub(super) prefill: HashMap<(&'static str, u64), f64>,
    /// Memoized decode-iteration times in seconds at grid past-lengths,
    /// keyed by (model, batch, past). Queries between grid points are
    /// piecewise-linearly interpolated — decode latency varies smoothly
    /// with past length (linearly growing KV traffic), so the geometric
    /// grid keeps per-(model, batch) device simulations to a few dozen
    /// while staying accurate to well under a percent.
    decode: HashMap<(&'static str, u32, u64), f64>,
    /// Memoized unloaded batch-1 service (prefill + all decode steps) in
    /// seconds, keyed by (model, shape) — iteration-level `mean_service`.
    ideal: HashMap<(&'static str, RequestShape), f64>,
}

impl Replica {
    /// Wraps a backend with empty memo tables.
    pub(super) fn new(backend: Box<dyn Backend>) -> Self {
        Replica {
            backend,
            service: HashMap::new(),
            prefill: HashMap::new(),
            decode: HashMap::new(),
            ideal: HashMap::new(),
        }
    }

    /// Deep copy — backend via [`Backend::clone_box`], memo tables by
    /// value — or `None` if the backend does not support cloning.
    pub(super) fn try_clone(&self) -> Option<Replica> {
        Some(Replica {
            backend: self.backend.clone_box()?,
            service: self.service.clone(),
            prefill: self.prefill.clone(),
            decode: self.decode.clone(),
            ideal: self.ideal.clone(),
        })
    }

    pub(super) fn service_time(&mut self, model: &ModelConfig, shape: RequestShape) -> Duration {
        let key = (model.name, shape);
        if let Some(&d) = self.service.get(&key) {
            return d;
        }
        let d = self.backend.service_time(model, shape);
        self.service.insert(key, d);
        d
    }

    pub(super) fn prefill_secs(&mut self, model: &ModelConfig, tokens: u64) -> f64 {
        let key = (model.name, tokens);
        if let Some(&s) = self.prefill.get(&key) {
            return s;
        }
        let s = self.backend.prefill_time(model, tokens).as_secs_f64();
        self.prefill.insert(key, s);
        s
    }

    /// Exact (memoized) decode-iteration time at a grid past-length.
    fn decode_exact_secs(&mut self, model: &ModelConfig, past: u64, batch: u32) -> f64 {
        let key = (model.name, batch, past);
        if let Some(&s) = self.decode.get(&key) {
            return s;
        }
        let s = self.backend.decode_time(model, past, batch).as_secs_f64();
        self.decode.insert(key, s);
        s
    }

    /// Decode-iteration time at an arbitrary past-length: exact below
    /// [`DECODE_GRID_START`], interpolated between grid samples above.
    /// The grid is clamped to the model's positional table so sampling
    /// never prices a past the model cannot attend to.
    pub(super) fn decode_secs(&mut self, model: &ModelConfig, past: u64, batch: u32) -> f64 {
        let past = past.max(1);
        if past <= DECODE_GRID_START {
            return self.decode_exact_secs(model, past, batch);
        }
        let (lo, hi) = decode_grid_bracket(past);
        let hi = hi.min(model.max_seq.saturating_sub(1)).max(past);
        if hi == lo {
            return self.decode_exact_secs(model, lo, batch);
        }
        let a = self.decode_exact_secs(model, lo, batch);
        let b = self.decode_exact_secs(model, hi, batch);
        a + (b - a) * (past - lo) as f64 / (hi - lo) as f64
    }

    /// KV swap cost (one direction) for a sequence holding `tokens` of
    /// context — charged once at swap-out and once at swap-in. Not
    /// memoized: every backend prices it with plain bandwidth
    /// arithmetic.
    pub(super) fn kv_transfer_secs(&mut self, model: &ModelConfig, tokens: u64) -> f64 {
        self.backend.kv_transfer_time(model, tokens).as_secs_f64()
    }

    /// Grid-interpolated prefill cost at an arbitrary token count:
    /// exact at and below [`DECODE_GRID_START`], interpolated between
    /// geometric grid samples above. This is the *recompute-cost
    /// estimate* behind eviction decisions — pricing every distinct
    /// context length exactly would run a fresh device simulation per
    /// candidate per pressure event. (Actual re-prefill execution is
    /// still priced exactly, through the chunk machinery.)
    pub(super) fn prefill_est_secs(&mut self, model: &ModelConfig, tokens: u64) -> f64 {
        let tokens = tokens.max(1);
        if tokens <= DECODE_GRID_START {
            return self.prefill_secs(model, tokens);
        }
        let (lo, hi) = decode_grid_bracket(tokens);
        let hi = hi.min(model.max_seq).max(tokens);
        if hi == lo {
            return self.prefill_secs(model, lo);
        }
        let a = self.prefill_secs(model, lo);
        let b = self.prefill_secs(model, hi);
        a + (b - a) * (tokens - lo) as f64 / (hi - lo) as f64
    }

    /// The request's *unloaded batch-1* service time: prefill plus every
    /// decode step alone on the device. This is the iteration-level
    /// analogue of the request-level service time (it matches to within
    /// decode-grid interpolation error), and what `mean_service` reports
    /// in both modes — so [`ServingReport::stable`]'s tail bound is
    /// equally strict whether or not batching stretches residency.
    ///
    /// [`ServingReport::stable`]: crate::serving::ServingReport::stable
    pub(super) fn ideal_service_secs(&mut self, model: &ModelConfig, shape: RequestShape) -> f64 {
        let key = (model.name, shape);
        if let Some(&s) = self.ideal.get(&key) {
            return s;
        }
        let mut s = self.prefill_secs(model, shape.input);
        for past in shape.input..shape.input + shape.generation_steps() {
            s += self.decode_secs(model, past, 1);
        }
        self.ideal.insert(key, s);
        s
    }
}
