//! KV-state layer: paged/contiguous KV accounting, swapped-sequence
//! re-admission, and the pressure/eviction loop.
//!
//! This layer owns everything about *where KV lives*: the per-replica
//! paged pools (or contiguous accounting when `kv_block` is 0), the
//! swapped-out queues, the host-pool byte ledger, and the monotone
//! swap-epoch counter. Its two phase entry points are called by the
//! engine core each turn: [`EngineCore::readmit_swapped`] offers freed
//! slots to preempted sequences before new admissions, and
//! [`EngineCore::relieve_pressure`] projects one iteration of KV
//! growth and evicts the eviction policy's victims until it fits.

use super::batch::ActiveSeq;
use super::core::EngineCore;
use super::replica::Replica;
use crate::serving::dma::DmaLane;
use crate::serving::kv::PagedKv;
use crate::serving::policy::{EvictionMechanism, SeqView};
use crate::serving::RequestClass;
use ianus_model::{ModelConfig, RequestShape};

/// The KV ledger: every byte/block of KV the cluster holds outside the
/// compute path — paged pools, swapped-out sequences, host-pool usage —
/// plus the per-class prefix keys and the swap-epoch counter.
pub(super) struct KvLedger {
    /// Paged-KV state per replica when a block size is set and the
    /// backend reports a block budget; `None` keeps the legacy
    /// contiguous accounting (bit-identical) on that replica.
    pub(super) paged: Vec<Option<PagedKv>>,
    /// Swapped-out sequences per replica (their KV lives host-side —
    /// or nowhere, for recompute evictions; re-admission order is
    /// the readmission policy's, ahead of new arrivals).
    pub(super) swapped: Vec<Vec<ActiveSeq>>,
    /// Bytes of swapped KV host-side, per replica.
    pub(super) host_used: Vec<u64>,
    /// Effective per-replica host KV pool (`None` = unbounded).
    pub(super) pools: Vec<Option<u64>>,
    /// Per-class prefix-cache keys (`None` when the class opted out).
    pub(super) class_keys: Vec<Option<u64>>,
    /// Monotone swap-out counter (FIFO re-admission's order).
    pub(super) swap_count: u64,
}

/// Builds the per-replica paged pools for one run: `Some` where a block
/// size is set and the backend reports a block budget, `None` keeps
/// contiguous accounting on that replica. Panics when a mix shape
/// could never fit an empty replica's block budget (the paged analogue
/// of the never-admittable admission guard).
pub(super) fn build_paged_pools(
    replicas: &[Replica],
    kv_block: u64,
    model: &ModelConfig,
    mix: &[RequestClass],
) -> Vec<Option<PagedKv>> {
    let widest_input = mix.iter().map(|c| c.shape.input).max().unwrap_or(1);
    let mut paged: Vec<Option<PagedKv>> = Vec::with_capacity(replicas.len());
    for (i, rep) in replicas.iter().enumerate() {
        let p = (kv_block > 0)
            .then(|| rep.backend.kv_budget_bytes(model, widest_input))
            .flatten()
            .map(|budget| {
                let block_bytes = crate::capacity::kv_swap_bytes(model, kv_block).max(1);
                let total_blocks = budget / block_bytes;
                // The paged analogue of the never-admittable
                // admission guard: every mix shape must fit an
                // empty replica, or the run could only livelock.
                let need = mix
                    .iter()
                    .map(|c| c.shape.total_tokens().div_ceil(kv_block))
                    .max()
                    .unwrap_or(1);
                assert!(
                    total_blocks >= need,
                    "kv_block {kv_block}: replica {i} ({}) holds {total_blocks} KV blocks but the \
                     largest mix sequence needs {need} — shrink the block size or the shapes",
                    rep.backend.name(),
                );
                PagedKv::new(total_blocks, kv_block)
            });
        paged.push(p);
    }
    paged
}

/// The policy view of `seq` with its eviction-cost estimates: one-way
/// swap time (infinite when the replica's host-pool `headroom` cannot
/// take the sequence's KV bytes) and the grid-estimated re-prefill
/// cost. Both price only the *unshared* context — shared prefix blocks
/// neither move nor recompute (everything is unshared under contiguous
/// accounting). The headroom check charges whole blocks when
/// `block_tokens` is nonzero (paged mode), matching the engine's
/// block-granular pool debit; 0 keeps the exact contiguous charge.
/// `kv_blocks` and `readmit_delay` pass through to the view for
/// block-aware policies.
pub(super) fn costed_view(
    seq: &ActiveSeq,
    replica: &mut Replica,
    model: &ModelConfig,
    headroom: Option<u64>,
    block_tokens: u64,
    kv_blocks: u64,
    readmit_delay: f64,
) -> SeqView {
    let moved = seq.past - seq.shared_tokens;
    let pool_tokens = if block_tokens > 0 {
        moved.div_ceil(block_tokens) * block_tokens
    } else {
        moved
    };
    let bytes = crate::capacity::kv_swap_bytes(model, pool_tokens);
    let swap_secs = match headroom {
        Some(h) if bytes > h => f64::INFINITY,
        _ => replica.kv_transfer_secs(model, moved),
    };
    let recompute_secs = replica.prefill_est_secs(model, moved);
    seq.view(swap_secs, recompute_secs, kv_blocks, readmit_delay)
}

impl EngineCore<'_> {
    /// Swap-ins first: preempted sequences are older than
    /// anything still queued, so they are *offered* freed slots
    /// before new admissions at every boundary (a policy head
    /// that does not yet fit lets newer arrivals pass —
    /// policy-ordered among the swapped, not a hard barrier
    /// against the queue). A swapped sequence re-enters when one
    /// projected iteration of KV growth (its own and the
    /// residents') still fits — checking grown lengths, not
    /// current ones, keeps a re-admission from bouncing straight
    /// back out through the pressure check below, which would
    /// charge both transfer costs for zero progress. When the
    /// replica is empty it re-enters unconditionally, which
    /// guarantees every preempted sequence eventually completes.
    pub(super) fn readmit_swapped(&mut self, r: usize) {
        let model = self.model;
        let max_batch = self.max_batch;
        let overlap = self.overlap;
        let scheduler = self.scheduler;
        let replicas = &mut *self.replicas;
        let kv = &mut self.kv;
        let lanes = &mut self.lanes;
        let batch = &mut self.batch;
        let stats = &mut self.stats;
        while batch.batches[r].len() + lanes.incoming[r].len() < max_batch as usize
            && !kv.swapped[r].is_empty()
        {
            // What one re-admission-queue slot costs in wall clock
            // right now (for the cost views; the depth excludes the
            // candidate itself — it prices the queue it would
            // re-join on a further eviction).
            let readmit_delay = if batch.iter_n[r] > 0 {
                kv.swapped[r].len().saturating_sub(1) as f64 * batch.iter_sum[r]
                    / batch.iter_n[r] as f64
            } else {
                0.0
            };
            let views: Vec<(usize, SeqView)> = kv.swapped[r]
                .iter()
                .enumerate()
                .map(|(i, s)| {
                    // Credit the candidate's own hosted bytes back:
                    // its swap-side cost must not read as "pool
                    // full" when the fullness is the candidate
                    // itself (swapping *in* frees the pool).
                    let headroom = kv.pools[r]
                        .map(|p| p.saturating_sub(kv.host_used[r].saturating_sub(s.hosted_bytes)));
                    let kv_blocks = kv.paged[r].as_ref().map_or(0, |p| p.blocks_of(s.idx));
                    let block_tokens = kv.paged[r].as_ref().map_or(0, |p| p.block_tokens());
                    (
                        i,
                        costed_view(
                            s,
                            &mut replicas[r],
                            model,
                            headroom,
                            block_tokens,
                            kv_blocks,
                            readmit_delay,
                        ),
                    )
                })
                .collect();
            let Some(vi) =
                super::select_min(&views, |t| t.1, |a, b| scheduler.readmission.compare(a, b))
            else {
                break;
            };
            let ci = views[vi].0;
            let force = batch.batches[r].is_empty() && lanes.incoming[r].is_empty();
            if !force {
                let grown_tokens = |s: &ActiveSeq| {
                    if s.decoding() && s.remaining > 0 {
                        s.past + 1
                    } else {
                        s.past
                    }
                };
                let fits = if let Some(p) = kv.paged[r].as_mut() {
                    // Block arithmetic: residents' one-iteration
                    // growth plus whatever the candidate must
                    // reacquire beyond the (shared) blocks it still
                    // holds — its context for a hosted victim, its
                    // imminent re-prefill target for a recompute
                    // victim (gating on the vacuously small current
                    // cache would invite recompute thrash).
                    let cand = &kv.swapped[r][ci];
                    let target = if cand.decoding() {
                        grown_tokens(cand)
                    } else {
                        cand.prefill_target.max(1)
                    };
                    let mut need = p.blocks_for(target).saturating_sub(p.blocks_of(cand.idx));
                    for s in batch.batches[r].iter() {
                        need += p
                            .blocks_for(grown_tokens(s))
                            .saturating_sub(p.blocks_of(s.idx));
                    }
                    p.reclaim(need);
                    if need <= p.free_blocks() {
                        stats.peak_kv_occupancy =
                            stats.peak_kv_occupancy.max(p.occupancy_plus(need));
                        true
                    } else {
                        false
                    }
                } else {
                    let grown = |s: &ActiveSeq| ActiveSeq::kv_shape(grown_tokens(s));
                    let mut projected: Vec<RequestShape> =
                        batch.batches[r].iter().map(grown).collect();
                    projected.extend(
                        lanes.incoming[r]
                            .iter()
                            .map(|(_, s)| ActiveSeq::kv_shape(s.past)),
                    );
                    projected.extend(
                        lanes.outgoing[r]
                            .iter()
                            .map(|&(_, tok, _)| ActiveSeq::kv_shape(tok)),
                    );
                    let cand = &kv.swapped[r][ci];
                    if cand.decoding() {
                        projected.push(grown(cand));
                    } else {
                        // A recompute victim holds no KV *yet*, but
                        // will immediately re-prefill its whole
                        // context: gate on that imminent footprint
                        // (like fresh admission does on the prompt),
                        // not on its vacuously empty cache — otherwise
                        // it re-enters a full device and the pressure
                        // check just evicts someone else (recompute
                        // thrash).
                        projected.push(RequestShape {
                            input: cand.prefill_target.max(1),
                            output: 1,
                        });
                    }
                    match replicas[r].backend.batch_fits(model, &projected) {
                        Ok(occupancy) => {
                            stats.peak_kv_occupancy = stats.peak_kv_occupancy.max(occupancy);
                            true
                        }
                        Err(_) => false,
                    }
                };
                if !fits {
                    break;
                }
            }
            let mut seq = kv.swapped[r].remove(ci);
            if let Some(p) = kv.paged[r].as_mut() {
                // A victim whose swap-out DMA is still draining
                // never really left the device: cancel the pending
                // retire (which would free blocks now live again)
                // and regrow the table to its context — a no-op
                // when the blocks were never dropped. Recompute
                // victims reacquire blocks lazily, chunk by chunk.
                lanes.outgoing[r].retain(|&(_, _, oid)| oid != seq.idx);
                p.grow(seq.idx, seq.past);
            }
            if seq.hosted_bytes == 0 {
                // Recompute victim: nothing to restore over the
                // link — it rejoins the batch and re-prefills its
                // context through the chunk machinery.
                stats.peak_batch = stats.peak_batch.max(batch.batches[r].len() as u32 + 1);
                batch.batches[r].push(seq);
                continue;
            }
            // Restore what the swap-out moved: the unshared
            // context (everything, under contiguous accounting).
            let swap_in = replicas[r].kv_transfer_secs(model, seq.past - seq.shared_tokens);
            stats.dma[r] += swap_in;
            let ready = lanes.dma[r].issue(DmaLane::H2D, batch.clock[r], swap_in);
            if overlap && !force {
                // Decode continues around the transfer; the
                // sequence re-enters when its DMA completes.
                debug_assert!(lanes.incoming[r].back().is_none_or(|&(t, _)| t <= ready));
                lanes.incoming[r].push_back((ready, seq));
            } else {
                // Serialized (or forced restart of an empty
                // replica): the compute clock waits out the DMA.
                stats.stall[r] += ready - batch.clock[r];
                batch.clock[r] = ready;
                kv.host_used[r] = kv.host_used[r].saturating_sub(seq.hosted_bytes);
                seq.hosted_bytes = 0;
                stats.peak_batch = stats.peak_batch.max(batch.batches[r].len() as u32 + 1);
                batch.batches[r].push(seq);
            }
        }
    }

    /// KV-pressure check before executing: project every
    /// sequence's KV one iteration forward (the chunk for the
    /// prefilling sequence, +1 token per decoder) and evict the
    /// eviction policy's victim among the *decoding* sequences
    /// until the projection fits. Prefilling sequences are never
    /// evicted — their partially-built KV would be wasted work —
    /// and a lone sequence is never evicted (it could then never
    /// make progress), so a single oversized request degrades to
    /// the non-preemptive behavior instead of livelocking.
    ///
    /// The victim's KV leaves by the bundle's `EvictionMechanism`:
    /// swapped to the host pool (falling back to recompute when
    /// the pool is full), dropped for re-prefill, or whichever
    /// is cheaper for this victim. Under overlapped DMA an
    /// eviction frees memory only at transfer completion, so the
    /// fit check runs at two horizons: the *eventual* projection
    /// (in-flight swap-outs excluded — they drain without
    /// further evictions) decides whether more victims are
    /// needed, and the *current* projection (in-flight KV
    /// included) decides how long the iteration must stall for
    /// the DMA to hand the memory back.
    pub(super) fn relieve_pressure(&mut self, r: usize, chunk_target: Option<u64>) {
        let model = self.model;
        let chunk_size = self.chunk_size;
        let overlap = self.overlap;
        let event_core = self.event_core;
        let scheduler = self.scheduler;
        let replicas = &mut *self.replicas;
        let kv = &mut self.kv;
        let lanes = &mut self.lanes;
        let batch = &mut self.batch;
        let stats = &mut self.stats;
        let chunk_tokens = |s: &ActiveSeq| chunk_size.min(s.prefill_target - s.prefilled);
        // Outcome of one pressure probe: either the projection
        // fits (possibly after stalling for in-flight
        // swap-outs), or a victim must go — carrying the
        // over-capacity ratio to record if nothing is
        // evictable.
        enum Pressure {
            Fits,
            Evict(Option<f64>),
        }
        loop {
            let grown_tokens = |s: &ActiveSeq| {
                if chunk_target == Some(s.idx) {
                    s.past + chunk_tokens(s)
                } else if s.decoding() && s.remaining > 0 {
                    s.past + 1
                } else {
                    s.past
                }
            };
            let pressure = if let Some(p) = kv.paged[r].as_mut() {
                // Block arithmetic: one iteration of growth
                // over the batch, against free blocks plus the
                // unshared blocks in-flight swap-outs will hand
                // back (they drain without further evictions).
                let growth: u64 = batch.batches[r]
                    .iter()
                    .map(|s| {
                        p.blocks_for(grown_tokens(s))
                            .saturating_sub(p.blocks_of(s.idx))
                    })
                    .sum();
                p.reclaim(growth);
                let in_flight: u64 = lanes.outgoing[r]
                    .iter()
                    .map(|&(_, _, oid)| p.unshared_blocks_of(oid))
                    .sum();
                if growth <= p.free_blocks() + in_flight {
                    // Enough memory once in-flight swap-outs
                    // drain; stall the iteration until the ones
                    // it actually needs have completed.
                    while growth > p.free_blocks() {
                        let (done_at, oid) = if event_core {
                            // The deque is completion-sorted, so
                            // the front is the earliest swap-out.
                            let (t, _, oid) = lanes.outgoing[r].pop_front().expect(
                                "growth exceeds free blocks only through \
                                 in-flight swap-outs",
                            );
                            (t, oid)
                        } else {
                            let (j, t) = lanes.outgoing[r]
                                .iter()
                                .enumerate()
                                .map(|(j, &(t, _, _))| (j, t))
                                .min_by(|a, b| a.1.total_cmp(&b.1))
                                .expect(
                                    "growth exceeds free blocks only through \
                                     in-flight swap-outs",
                                );
                            let (_, _, oid) = lanes.outgoing[r].remove(j).expect("index in range");
                            (t, oid)
                        };
                        stats.stall[r] += (done_at - batch.clock[r]).max(0.0);
                        batch.clock[r] = batch.clock[r].max(done_at);
                        p.drop_unshared(oid);
                    }
                    stats.peak_kv_occupancy = stats.peak_kv_occupancy.max(p.occupancy_plus(growth));
                    Pressure::Fits
                } else {
                    Pressure::Evict(Some(p.occupancy_plus(growth)))
                }
            } else {
                let grown_shape = |s: &ActiveSeq| ActiveSeq::kv_shape(grown_tokens(s));
                let mut eventual: Vec<RequestShape> =
                    batch.batches[r].iter().map(grown_shape).collect();
                eventual.extend(
                    lanes.incoming[r]
                        .iter()
                        .map(|(_, s)| ActiveSeq::kv_shape(s.past)),
                );
                match replicas[r].backend.batch_fits(model, &eventual) {
                    Ok(_) => {
                        // Enough memory once in-flight swap-outs
                        // drain; stall the iteration until the ones
                        // it actually needs have completed.
                        loop {
                            let mut current = eventual.clone();
                            current.extend(
                                lanes.outgoing[r]
                                    .iter()
                                    .map(|&(_, tok, _)| ActiveSeq::kv_shape(tok)),
                            );
                            match replicas[r].backend.batch_fits(model, &current) {
                                Ok(occupancy) => {
                                    stats.peak_kv_occupancy =
                                        stats.peak_kv_occupancy.max(occupancy);
                                    break;
                                }
                                Err(_) => {
                                    let done_at = if event_core {
                                        let (t, _, _) = lanes.outgoing[r].pop_front().expect(
                                            "current projection exceeds the \
                                             eventual one only through \
                                             in-flight swap-outs",
                                        );
                                        t
                                    } else {
                                        let (j, t) = lanes.outgoing[r]
                                            .iter()
                                            .enumerate()
                                            .map(|(j, &(t, _, _))| (j, t))
                                            .min_by(|a, b| a.1.total_cmp(&b.1))
                                            .expect(
                                                "current projection exceeds the \
                                                 eventual one only through \
                                                 in-flight swap-outs",
                                            );
                                        lanes.outgoing[r].remove(j);
                                        t
                                    };
                                    stats.stall[r] += (done_at - batch.clock[r]).max(0.0);
                                    batch.clock[r] = batch.clock[r].max(done_at);
                                }
                            }
                        }
                        Pressure::Fits
                    }
                    // The final-shape admission check rules out
                    // SequenceTooLong here, so the error always
                    // carries a ratio.
                    Err(e) => Pressure::Evict(
                        if let crate::capacity::CapacityError::OutOfMemory {
                            required,
                            available,
                        } = e
                        {
                            Some(required as f64 / available as f64)
                        } else {
                            None
                        },
                    ),
                }
            };
            let over = match pressure {
                Pressure::Fits => break,
                Pressure::Evict(over) => over,
            };
            let headroom = kv.pools[r].map(|p| p.saturating_sub(kv.host_used[r]));
            // The queue the victim would join: each slot ahead
            // of it costs roughly one mean iteration of wait.
            let readmit_delay = if batch.iter_n[r] > 0 {
                kv.swapped[r].len() as f64 * batch.iter_sum[r] / batch.iter_n[r] as f64
            } else {
                0.0
            };
            let views: Vec<(usize, SeqView)> = batch.batches[r]
                .iter()
                .enumerate()
                .filter(|(_, s)| s.decoding())
                .map(|(i, s)| {
                    let kv_blocks = kv.paged[r].as_ref().map_or(0, |p| p.blocks_of(s.idx));
                    let block_tokens = kv.paged[r].as_ref().map_or(0, |p| p.block_tokens());
                    (
                        i,
                        costed_view(
                            s,
                            &mut replicas[r],
                            model,
                            headroom,
                            block_tokens,
                            kv_blocks,
                            readmit_delay,
                        ),
                    )
                })
                .collect();
            let victim =
                super::select_min(&views, |t| t.1, |a, b| scheduler.eviction.compare(a, b));
            let Some(vi) = victim.filter(|_| batch.batches[r].len() > 1) else {
                // Nothing evictable: tolerate the overcommit
                // for this iteration, and record the
                // over-capacity footprint so the report cannot
                // claim the run fit in memory.
                if let Some(ratio) = over {
                    stats.peak_kv_occupancy = stats.peak_kv_occupancy.max(ratio);
                }
                break;
            };
            let (v, view) = views[vi];
            let mut seq = batch.batches[r].remove(v);
            seq.preemptions += 1;
            kv.swap_count += 1;
            seq.swap_epoch = kv.swap_count;
            stats.preemptions += 1;
            // Only the *unshared* context moves (or drops):
            // shared prefix blocks stay resident under the
            // cache's reference. Contiguous mode has no shared
            // tokens, so this is the whole context there.
            let moved = seq.past - seq.shared_tokens;
            // The host pool parks whole blocks in paged mode
            // — a partially filled tail block occupies a full
            // block host-side too — so the pool debit rounds
            // `moved` up to the block size. The DMA transfer
            // below still prices the actual tokens moved;
            // contiguous mode stays exact (and bit-identical).
            let pool_tokens = match kv.paged[r].as_ref() {
                Some(p) => moved.div_ceil(p.block_tokens()) * p.block_tokens(),
                None => moved,
            };
            let bytes = crate::capacity::kv_swap_bytes(model, pool_tokens);
            let pool_takes = headroom.is_none_or(|h| bytes <= h);
            let by_swap = match scheduler.mechanism {
                EvictionMechanism::Swap => pool_takes,
                EvictionMechanism::Recompute => false,
                // The one published cost rule
                // (`SeqView::eviction_cost_secs`):
                // `swap_secs` is already infinite when
                // the pool cannot take the bytes, so
                // the comparison alone decides. (The
                // re-admission delay term is common to
                // both mechanisms, so it cancels here.)
                EvictionMechanism::Cheapest => 2.0 * view.swap_secs <= view.recompute_secs,
            };
            if by_swap {
                seq.hosted_bytes = bytes;
                kv.host_used[r] += bytes;
                stats.host_peak_bytes = stats.host_peak_bytes.max(kv.host_used[r]);
                if let Some(pool) = kv.pools[r] {
                    stats.host_peak_occupancy = stats
                        .host_peak_occupancy
                        .max(kv.host_used[r] as f64 / pool.max(1) as f64);
                }
                let swap_out = replicas[r].kv_transfer_secs(model, moved);
                stats.dma[r] += swap_out;
                let done_at = lanes.dma[r].issue(DmaLane::D2H, batch.clock[r], swap_out);
                if overlap {
                    // Device KV drains in the
                    // background; freed at completion.
                    // The D2H lane is monotone, so pushes
                    // keep the deque completion-sorted.
                    debug_assert!(lanes.outgoing[r]
                        .back()
                        .is_none_or(|&(t, _, _)| t <= done_at));
                    lanes.outgoing[r].push_back((done_at, moved, seq.idx));
                } else {
                    stats.stall[r] += done_at - batch.clock[r];
                    batch.clock[r] = done_at;
                    if let Some(p) = kv.paged[r].as_mut() {
                        p.drop_unshared(seq.idx);
                    }
                }
            } else {
                // Recompute-based eviction (chosen, or
                // forced by a full host pool): drop the
                // KV now, rebuild the whole context by
                // re-prefill on re-admission — from the
                // shared prefix up, in paged mode.
                stats.recomputes += 1;
                seq.recomputes += 1;
                seq.prefill_target = seq.past;
                seq.prefilled = seq.shared_tokens;
                seq.past = seq.shared_tokens;
                if let Some(p) = kv.paged[r].as_mut() {
                    p.drop_unshared(seq.idx);
                }
            }
            kv.swapped[r].push(seq);
        }
    }
}
