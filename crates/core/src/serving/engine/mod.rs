//! The cluster engine, layered: replica memoization, arrival
//! generation, both scheduling loops, and the rate-search helpers.
//!
//! The engine is decomposed into one module per subsystem, each owning
//! its state as a named struct with documented call contracts:
//!
//! | module        | layer struct       | owns                                        |
//! |---------------|--------------------|---------------------------------------------|
//! | `replica`     | `Replica`          | one backend + service-time memos            |
//! | `arrivals`    | [`ArrivalProcess`] | trace generation (Poisson/diurnal/MMPP/...) |
//! | `admission`   | `WaitQueue`        | arrival vector, wait queue, admission       |
//! | `batch`       | `BatchState`       | resident sequences, clocks, execute/advance |
//! | `kv_state`    | `KvLedger`         | paged pools, swap queues, pressure/eviction |
//! | `dma_retire`  | `LaneClocks`       | DMA lanes, in-flight swaps, retirement      |
//! | `migrate`     | `MigrationState`   | decode pool, prefill→decode handoff         |
//! | `workflow_rt` | `WorkflowRt`       | workflow instances, completion fan-out      |
//! | `core`        | `EngineCore`       | layer composition + the turn loop           |
//!
//! This module keeps the public facade: [`ServingSim`] (builders, `run`,
//! the rate sweeps) and [`CoreMode`]. Behavior is bit-identical to the
//! pre-split monolith on both cores.

mod admission;
mod arrivals;
mod batch;
mod core;
mod dma_retire;
mod kv_state;
mod migrate;
mod replica;
mod workflow_rt;

pub use arrivals::{
    ArrivalDraw, ArrivalProcess, ArrivalSpec, DiurnalArrivals, MmppArrivals, MultiTenantArrivals,
    PoissonArrivals, TenantSpec,
};

use self::replica::Replica;
use super::policy::{LeastLoadedMigration, MigrationPolicy, SchedulerPolicy};
use super::DispatchPolicy;
use super::{
    DisaggregationConfig, ReplicaRole, RequestClass, Scheduling, ServingConfig, ServingReport,
};
use crate::backend::Backend;
use ianus_model::ModelConfig;

/// Which core advances the iteration-level loop. Both cores produce
/// **bit-identical** reports — [`StepScan`](CoreMode::StepScan) is the
/// reference implementation the event-driven core is differential-tested
/// against; it exists for auditability, not for use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoreMode {
    /// Heap-indexed next-actionable-time selection: one step costs
    /// O(log replicas), idle replicas cost nothing, and DMA retirement
    /// pops a sorted queue instead of scanning it. The default.
    #[default]
    EventDriven,
    /// The historical linear scan: every step walks all replicas and
    /// `min_by`s the in-flight DMA lists.
    StepScan,
}

/// Total order over engine clocks. Clocks are finite and non-negative,
/// where `total_cmp` agrees with IEEE `<`, so heap order reproduces the
/// scan's comparisons exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct TimeKey(pub(crate) f64);

impl Eq for TimeKey {}
impl PartialOrd for TimeKey {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimeKey {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// Builder-style cluster serving engine over [`Backend`] replicas.
///
/// Construct with a [`ServingConfig`], add one or more replicas, pick a
/// [`DispatchPolicy`] (request-level) or a [`SchedulerPolicy`]
/// (iteration-level), then [`run`](Self::run). The engine owns its
/// replicas; service-time memos survive across runs, so rate sweeps and
/// [`sustainable_rate`](Self::sustainable_rate) searches re-simulate no
/// device.
pub struct ServingSim {
    cfg: ServingConfig,
    dispatch: DispatchPolicy,
    scheduling: Scheduling,
    scheduler: SchedulerPolicy,
    replicas: Vec<Replica>,
    /// Host-pool override: `None` defers to each replica's
    /// [`Backend::host_kv_bytes`]; `Some(None)` forces unbounded;
    /// `Some(Some(b))` forces a `b`-byte pool on every replica.
    host_kv_override: Option<Option<u64>>,
    /// Whether swap DMA overlaps compute (off by default — serialized
    /// transfers, the historical behavior).
    overlap_dma: bool,
    /// Paged-KV block size in tokens; 0 (the default) keeps the legacy
    /// contiguous accounting.
    kv_block: u64,
    /// Which iteration-level core advances the loop (bit-identical
    /// either way; see [`CoreMode`]).
    core_mode: CoreMode,
    /// Divergence-guard override: `None` defers to the context (the
    /// auto bound during rate probes, off in direct runs);
    /// `Some(None)` forces the guard off; `Some(Some(d))` aborts a run
    /// when the arrived-but-unadmitted backlog exceeds `d` requests.
    divergence: Option<Option<u64>>,
    /// Set while [`sustainable_rate_where`](Self::sustainable_rate_where)
    /// probes rates, enabling the automatic divergence bound.
    probe_divergence: bool,
    /// Per-replica [`ReplicaRole`]s, aligned with `replicas`
    /// (all-`Unified` outside disaggregated runs).
    roles: Vec<ReplicaRole>,
    /// Destination choice for prefill→decode KV migrations.
    migration: std::sync::Arc<dyn MigrationPolicy + Send + Sync>,
    /// Whether swap/migration DMA runs on split H2D/D2H lanes even in
    /// all-`Unified` clusters (disaggregated runs always split). Off by
    /// default — the single-channel model every pin was captured on.
    two_channel: bool,
    /// Whether workflow children inherit their parent's registered KV
    /// blocks as a shared prefix in paged mode (on by default; the
    /// off switch exists so experiments can measure the cold
    /// re-prefill baseline on the same trace).
    workflow_inheritance: bool,
}

impl ServingSim {
    /// Starts a simulation builder with no replicas, FCFS dispatch,
    /// request-level scheduling, and the default [`SchedulerPolicy`].
    pub fn new(cfg: ServingConfig) -> Self {
        ServingSim {
            cfg,
            dispatch: DispatchPolicy::FcfsSingleQueue,
            scheduling: Scheduling::RequestLevel,
            scheduler: SchedulerPolicy::default(),
            replicas: Vec::new(),
            host_kv_override: None,
            overlap_dma: false,
            kv_block: 0,
            core_mode: CoreMode::default(),
            divergence: None,
            probe_divergence: false,
            roles: Vec::new(),
            migration: std::sync::Arc::new(LeastLoadedMigration),
            two_channel: false,
            workflow_inheritance: true,
        }
    }

    /// Adds one replica backend.
    pub fn replica(self, backend: impl Backend + 'static) -> Self {
        self.boxed_replica(Box::new(backend))
    }

    /// Adds one replica backend with an explicit [`ReplicaRole`]
    /// (iteration-level scheduling only; see the
    /// [module docs](super#disaggregated-prefilldecode)).
    pub fn replica_with_role(self, backend: impl Backend + 'static, role: ReplicaRole) -> Self {
        let mut s = self.boxed_replica(Box::new(backend));
        *s.roles.last_mut().expect("boxed_replica pushed a role") = role;
        s
    }

    /// Adds an already-boxed replica (for heterogeneous `dyn` lists).
    pub fn boxed_replica(mut self, backend: Box<dyn Backend>) -> Self {
        self.replicas.push(Replica::new(backend));
        self.roles.push(ReplicaRole::Unified);
        self
    }

    /// Adds `n` replicas built by `make(index)`.
    pub fn cluster<B: Backend + 'static>(
        mut self,
        n: usize,
        mut make: impl FnMut(usize) -> B,
    ) -> Self {
        for i in 0..n {
            self = self.replica(make(i));
        }
        self
    }

    /// Adds a disaggregated cluster per `cfg`: `cfg.prefill`
    /// [`ReplicaRole::PrefillOnly`] replicas built by `prefill(index)`,
    /// then `cfg.decode` [`ReplicaRole::DecodeOnly`] replicas built by
    /// `decode(index)` (each index counts within its own pool).
    /// Requires iteration-level scheduling at [`run`](Self::run) time.
    pub fn disaggregated<P: Backend + 'static, D: Backend + 'static>(
        mut self,
        cfg: DisaggregationConfig,
        mut prefill: impl FnMut(usize) -> P,
        mut decode: impl FnMut(usize) -> D,
    ) -> Self {
        for i in 0..cfg.prefill {
            self = self.replica_with_role(prefill(i), ReplicaRole::PrefillOnly);
        }
        for i in 0..cfg.decode {
            self = self.replica_with_role(decode(i), ReplicaRole::DecodeOnly);
        }
        self
    }

    /// The per-replica roles, in replica order.
    pub fn roles(&self) -> &[ReplicaRole] {
        &self.roles
    }

    /// Installs the [`MigrationPolicy`] choosing which decode replica
    /// receives each prefill→decode handoff
    /// ([`LeastLoadedMigration`] by default). Only consulted when the
    /// cluster has [`ReplicaRole::PrefillOnly`] replicas.
    pub fn migration(mut self, policy: impl MigrationPolicy + Send + Sync + 'static) -> Self {
        self.migration = std::sync::Arc::new(policy);
        self
    }

    /// In-place form of [`migration`](Self::migration) for warm engines.
    pub fn set_migration(&mut self, policy: impl MigrationPolicy + Send + Sync + 'static) {
        self.migration = std::sync::Arc::new(policy);
    }

    /// Forces **two-channel DMA** (split H2D/D2H lanes — swap-ins never
    /// queue behind swap-outs; see [`super::dma`]) even in
    /// all-`Unified` clusters. Disaggregated clusters always run split
    /// lanes; off by default otherwise, where both directions share one
    /// channel clock (the historical single-channel model, preserved
    /// bit-identically).
    pub fn two_channel_dma(mut self, split: bool) -> Self {
        self.two_channel = split;
        self
    }

    /// In-place form of [`two_channel_dma`](Self::two_channel_dma) for
    /// warm engines.
    pub fn set_two_channel_dma(&mut self, split: bool) {
        self.two_channel = split;
    }

    /// Enables (the default) or disables **workflow KV inheritance**:
    /// in paged mode ([`kv_block`](Self::kv_block)), a completing
    /// workflow node registers its KV under a per-(instance, node)
    /// prefix key, and each child admits with its lowest-index
    /// parent's blocks mapped copy-on-write as a shared prefix —
    /// skipping the re-prefill of context the cluster already holds.
    /// Cross-replica admissions miss and prefill cold (KV does not
    /// teleport between replicas). Off, every node prefills its full
    /// effective prompt from scratch — the control arm for measuring
    /// the inheritance win. No effect on flat (non-workflow) runs or
    /// in contiguous mode.
    pub fn workflow_inheritance(mut self, inherit: bool) -> Self {
        self.workflow_inheritance = inherit;
        self
    }

    /// In-place form of
    /// [`workflow_inheritance`](Self::workflow_inheritance) for warm
    /// engines.
    pub fn set_workflow_inheritance(&mut self, inherit: bool) {
        self.workflow_inheritance = inherit;
    }

    /// Sets the dispatch policy (request-level scheduling only).
    pub fn dispatch(mut self, policy: DispatchPolicy) -> Self {
        self.dispatch = policy;
        self
    }

    /// Sets the scheduling granularity (builder style).
    pub fn scheduling(mut self, scheduling: Scheduling) -> Self {
        self.scheduling = scheduling;
        self
    }

    /// Changes the scheduling granularity in place, keeping replicas and
    /// their memos — the cheap way to compare modes on one engine.
    pub fn set_scheduling(&mut self, scheduling: Scheduling) {
        self.scheduling = scheduling;
    }

    /// Installs a [`SchedulerPolicy`] bundle (iteration-level
    /// scheduling; request-level routing stays with
    /// [`dispatch`](Self::dispatch)). The default bundle reproduces the
    /// historical hard-wired scheduler bit-identically.
    pub fn policy(mut self, scheduler: SchedulerPolicy) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Swaps the policy bundle in place, keeping replicas and their
    /// memos — the cheap way to sweep the policy space on one engine
    /// (the device costs do not depend on the policy).
    pub fn set_policy(&mut self, scheduler: SchedulerPolicy) {
        self.scheduler = scheduler;
    }

    /// The installed policy bundle.
    pub fn scheduler_policy(&self) -> &SchedulerPolicy {
        &self.scheduler
    }

    /// Overrides every replica's host-side KV swap pool: `Some(bytes)`
    /// forces a finite pool of that size, `None` forces an unbounded
    /// pool. Without this override each replica uses its backend's own
    /// [`Backend::host_kv_bytes`]. The pool bounds how much swapped KV
    /// can live host-side at once; a swap-out that would overflow it
    /// falls back to recompute-based eviction.
    pub fn host_kv_pool(mut self, bytes: Option<u64>) -> Self {
        self.host_kv_override = Some(bytes);
        self
    }

    /// In-place form of [`host_kv_pool`](Self::host_kv_pool) for warm
    /// engines.
    pub fn set_host_kv_pool(&mut self, bytes: Option<u64>) {
        self.host_kv_override = Some(bytes);
    }

    /// Enables (or disables) **overlapped swap DMA**: each replica gets
    /// a DMA-channel clock, swap transfers run on it concurrently with
    /// compute, and the batch only stalls when it actually needs the
    /// data or the memory — a swap-out frees device KV at DMA
    /// *completion* (the iteration waits if it needs those bytes
    /// sooner) and a swap-in's completion gates the sequence's
    /// re-entry into the batch while decode continues around it. Off by
    /// default: transfers serialize with compute on the replica clock,
    /// the historical behavior.
    pub fn overlap_dma(mut self, overlap: bool) -> Self {
        self.overlap_dma = overlap;
        self
    }

    /// In-place form of [`overlap_dma`](Self::overlap_dma) for warm
    /// engines.
    pub fn set_overlap_dma(&mut self, overlap: bool) {
        self.overlap_dma = overlap;
    }

    /// Switches iteration-level KV accounting to **paged blocks** of
    /// `tokens` tokens each (0, the default, keeps the legacy
    /// contiguous accounting, bit-identically). Each replica's block
    /// budget comes from its backend's
    /// [`Backend::kv_budget_bytes`](crate::backend::Backend::kv_budget_bytes);
    /// a backend that reports no budget stays contiguous. Paged mode
    /// gates admission and pressure on free *blocks*, shares
    /// full-block prompt prefixes copy-on-write across requests of the
    /// same class (a [`RequestClass::prefix_tokens`](super::RequestClass)
    /// above 0 opts the class in), and moves only a sequence's
    /// *unshared* tokens on swap or recompute.
    pub fn kv_block(mut self, tokens: u64) -> Self {
        self.kv_block = tokens;
        self
    }

    /// In-place form of [`kv_block`](Self::kv_block) for warm engines.
    pub fn set_kv_block(&mut self, tokens: u64) {
        self.kv_block = tokens;
    }

    /// Selects the iteration-level engine core (builder style). The
    /// default [`CoreMode::EventDriven`] and the reference
    /// [`CoreMode::StepScan`] produce bit-identical reports; the knob
    /// exists for differential testing and benchmarking the cores
    /// against each other.
    pub fn core_mode(mut self, mode: CoreMode) -> Self {
        self.core_mode = mode;
        self
    }

    /// In-place form of [`core_mode`](Self::core_mode) for warm engines.
    pub fn set_core_mode(&mut self, mode: CoreMode) {
        self.core_mode = mode;
    }

    /// Sets the **divergence guard** (builder style): `Some(d)` aborts
    /// an iteration-level run once more than `d` arrived requests are
    /// waiting unadmitted — the run is hopelessly overloaded, and its
    /// report comes back with [`ServingReport::diverged`] set (never
    /// [`stable`](ServingReport::stable)) covering only the simulated
    /// prefix. `None` disables the guard everywhere, including inside
    /// rate probes.
    ///
    /// Without this override, the guard is off in direct
    /// [`run`](Self::run)s (every configured request completes) and an
    /// automatic bound — generous enough that any run it stops would
    /// have failed the stability predicate anyway — protects
    /// [`sustainable_rate_where`](Self::sustainable_rate_where) probes
    /// from simulating the full horizon of a diverged queue.
    pub fn divergence_depth(mut self, depth: Option<u64>) -> Self {
        self.divergence = Some(depth);
        self
    }

    /// In-place form of [`divergence_depth`](Self::divergence_depth)
    /// for warm engines.
    pub fn set_divergence_depth(&mut self, depth: Option<u64>) {
        self.divergence = Some(depth);
    }

    /// A deep copy of this engine — replicas (via
    /// [`Backend::clone_box`]), their warm service memos, and every
    /// knob — or `None` if any replica's backend does not support
    /// cloning. Clones are what [`sweep_rates`](Self::sweep_rates) and
    /// the parallel [`sustainable_rate_where`](Self::sustainable_rate_where)
    /// hand to scoped threads; a run on a clone produces exactly the
    /// report the original would (runs depend only on the config and
    /// the backends' deterministic costs, never on memo warmth).
    pub fn try_clone(&self) -> Option<ServingSim> {
        let mut replicas = Vec::with_capacity(self.replicas.len());
        for r in &self.replicas {
            replicas.push(r.try_clone()?);
        }
        Some(ServingSim {
            cfg: self.cfg.clone(),
            dispatch: self.dispatch,
            scheduling: self.scheduling,
            scheduler: self.scheduler.clone(),
            replicas,
            host_kv_override: self.host_kv_override,
            overlap_dma: self.overlap_dma,
            kv_block: self.kv_block,
            core_mode: self.core_mode,
            divergence: self.divergence,
            probe_divergence: self.probe_divergence,
            roles: self.roles.clone(),
            migration: self.migration.clone(),
            two_channel: self.two_channel,
            workflow_inheritance: self.workflow_inheritance,
        })
    }

    /// Number of replicas added so far.
    pub fn replica_count(&self) -> usize {
        self.replicas.len()
    }

    /// The current configuration.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Changes the arrival rate in place, keeping replicas and their
    /// service memos. This is the canonical rate-sweep entry: the first
    /// [`run`](Self::run) prices every (model, shape/step) the mix
    /// needs on each replica, after which every further rate is a
    /// queueing-only pass (no device simulation), each re-seeding the
    /// same arrival trace *shape* at the new rate.
    ///
    /// # Examples
    ///
    /// ```
    /// use ianus_core::serving::{ServingConfig, ServingSim};
    /// use ianus_core::{IanusSystem, SystemConfig};
    /// use ianus_model::ModelConfig;
    ///
    /// let model = ModelConfig::gpt2_m();
    /// let mut sim = ServingSim::new(ServingConfig::interactive(1.0, 150))
    ///     .replica(IanusSystem::new(SystemConfig::ianus()));
    /// let mut last_p99 = 0.0;
    /// for rate in [1.0, 4.0, 16.0] {
    ///     sim.set_rate(rate); // warm memos after the first run
    ///     let r = sim.run(&model);
    ///     assert_eq!(r.completed, 150);
    ///     assert!(r.sojourn.p99.as_ms_f64() >= last_p99);
    ///     last_p99 = r.sojourn.p99.as_ms_f64();
    /// }
    /// assert_eq!(sim.config().arrival_rate_hz, 16.0);
    /// ```
    pub fn set_rate(&mut self, arrival_rate_hz: f64) {
        self.cfg.arrival_rate_hz = arrival_rate_hz;
    }

    /// Checks that `model` is resident on every replica.
    ///
    /// # Errors
    ///
    /// The first replica's [`CapacityError`](crate::capacity::CapacityError),
    /// tagged with its index, if any replica cannot hold the model.
    pub fn fits(&self, model: &ModelConfig) -> Result<(), (usize, crate::capacity::CapacityError)> {
        for (i, r) in self.replicas.iter().enumerate() {
            r.backend.fits(model).map_err(|e| (i, e))?;
        }
        Ok(())
    }

    /// Runs the simulation for `model` and reports cluster statistics.
    ///
    /// Zero configured requests yield an all-zero report rather than a
    /// division by zero.
    ///
    /// # Panics
    ///
    /// Panics if no replicas were added, the mix is empty, a weight is
    /// non-positive, the arrival rate is non-positive, the arrival
    /// spec is invalid, an iteration-level `max_batch` or
    /// `prefill_chunk` is zero, or (iteration-level only) a mix shape
    /// can never be admitted on some replica even with an empty batch.
    pub fn run(&mut self, model: &ModelConfig) -> ServingReport {
        assert!(!self.replicas.is_empty(), "serving cluster has no replicas");
        let workflow_mode = !self.cfg.workflows.is_empty();
        if workflow_mode {
            assert!(
                self.cfg.mix.is_empty(),
                "a config drives either a flat mix or workflows, not both"
            );
            assert!(
                self.cfg.workflows.iter().all(|t| t.weight > 0.0),
                "workflow weights must be positive"
            );
            for (i, t) in self.cfg.workflows.iter().enumerate() {
                if let Err(e) = t.validate() {
                    panic!("workflow template {i} is invalid: {e}");
                }
            }
        } else {
            assert!(!self.cfg.mix.is_empty(), "request mix must be non-empty");
            assert!(
                self.cfg.mix.iter().all(|c| c.weight > 0.0),
                "weights must be positive"
            );
        }
        assert!(
            self.cfg.arrival_rate_hz > 0.0,
            "arrival rate must be positive"
        );
        if let Err(e) = self.cfg.arrivals.validate() {
            panic!("invalid arrival spec: {e}");
        }
        if self.cfg.requests == 0 {
            return ServingReport::empty(
                self.replicas
                    .iter()
                    .zip(&self.roles)
                    .map(|(r, &role)| (r.backend.name().to_string(), role))
                    .collect(),
                &self.effective_mix(),
                self.cfg.arrivals.tenant_count(),
            );
        }
        let stats = match self.scheduling {
            Scheduling::RequestLevel => {
                assert!(
                    self.roles.iter().all(|&ro| ro == ReplicaRole::Unified),
                    "replica roles (disaggregation) require iteration-level scheduling"
                );
                assert!(
                    !workflow_mode,
                    "workflow mixes require iteration-level scheduling"
                );
                self.run_request_level(model)
            }
            Scheduling::IterationLevel {
                max_batch,
                prefill_chunk,
                preempt,
            } => {
                assert!(max_batch >= 1, "max_batch must be at least 1");
                assert!(prefill_chunk != Some(0), "prefill chunk must be positive");
                assert!(
                    self.roles.iter().any(|&ro| ro != ReplicaRole::DecodeOnly),
                    "every replica is decode-only: arrivals could never be admitted"
                );
                self.run_iteration_level(model, max_batch, prefill_chunk, preempt)
            }
        };
        stats.into_report(
            &self.effective_mix(),
            self.replicas
                .iter()
                .zip(&self.roles)
                .map(|(r, &role)| (r.backend.name().to_string(), role))
                .collect(),
        )
    }

    /// The request-class list the run's per-class accounting is keyed
    /// by (see [`workflow_rt::effective_mix`]).
    fn effective_mix(&self) -> Vec<RequestClass> {
        workflow_rt::effective_mix(&self.cfg)
    }

    /// Per-template tables the workflow hooks index at runtime.
    fn workflow_ctx(&self) -> workflow_rt::WfCtx {
        workflow_rt::workflow_ctx(&self.cfg)
    }

    /// Runs the simulation once per rate in `rates` and returns the
    /// reports **in the same order** — probing the rates in parallel
    /// (one [`try_clone`](Self::try_clone) per extra rate, on
    /// `std::thread::scope` threads) when every backend supports
    /// cloning, serially on this engine otherwise. Either path yields
    /// identical reports: a run is a pure function of the config and
    /// the backends' deterministic costs. The configured arrival rate
    /// is restored afterwards.
    ///
    /// # Panics
    ///
    /// Panics on the conditions of [`run`](Self::run), or if a probe
    /// thread panics.
    pub fn sweep_rates(&mut self, model: &ModelConfig, rates: &[f64]) -> Vec<ServingReport> {
        let original = self.cfg.arrival_rate_hz;
        let reports = self.probe_rates(model, rates);
        self.cfg.arrival_rate_hz = original;
        reports
    }

    /// [`sweep_rates`](Self::sweep_rates) without the rate restore —
    /// the shared probe core under the public sweep and the bisection.
    fn probe_rates(&mut self, model: &ModelConfig, rates: &[f64]) -> Vec<ServingReport> {
        let Some((&first_rate, rest)) = rates.split_first() else {
            return Vec::new();
        };
        let mut clones: Vec<ServingSim> = Vec::with_capacity(rest.len());
        for _ in rest {
            match self.try_clone() {
                Some(c) => clones.push(c),
                None => {
                    // A replica backend cannot clone: probe serially on
                    // this engine. Same reports, just one at a time.
                    let mut out = Vec::with_capacity(rates.len());
                    for &rate in rates {
                        self.cfg.arrival_rate_hz = rate;
                        out.push(self.run(model));
                    }
                    return out;
                }
            }
        }
        let mut out = Vec::with_capacity(rates.len());
        std::thread::scope(|s| {
            let handles: Vec<_> = clones
                .iter_mut()
                .zip(rest)
                .map(|(clone, &rate)| {
                    s.spawn(move || {
                        clone.cfg.arrival_rate_hz = rate;
                        clone.run(model)
                    })
                })
                .collect();
            // The first rate runs on this engine, concurrently with the
            // spawned probes — and leaves its memos warm for later
            // rounds.
            self.cfg.arrival_rate_hz = first_rate;
            out.push(self.run(model));
            for h in handles {
                out.push(h.join().expect("rate-probe thread panicked"));
            }
        });
        out
    }

    /// Binary-searches the highest arrival rate in `[lo_hz, hi_hz]` whose
    /// report satisfies `ok`, to a 1% relative resolution. Returns `0.0`
    /// when even `lo_hz` fails. Service memos make each probe a
    /// queueing-only pass (no device simulation), and the configured
    /// arrival rate is restored afterwards.
    ///
    /// Probes run **speculatively in parallel** when the backends
    /// support [`try_clone`](Self::try_clone): each round simulates the
    /// current midpoint and both possible next midpoints concurrently,
    /// then consults `ok` serially — `ok` sees exactly the reports, in
    /// exactly the order, the serial bisection would show it, so the
    /// returned rate is identical (runs are deterministic, and the
    /// bracket arithmetic is reproduced bit-for-bit). Probes also run
    /// under the automatic divergence guard
    /// ([`divergence_depth`](Self::divergence_depth)): a probe whose
    /// backlog diverges is cut short and counted as failing — which it
    /// would, since [`stable`](ServingReport::stable) rejects diverged
    /// reports — instead of simulating the whole horizon of an
    /// overloaded queue.
    ///
    /// This is the generic form behind
    /// [`sustainable_rate`](Self::sustainable_rate) (stability) and
    /// [`sustainable_goodput_rate`](Self::sustainable_goodput_rate)
    /// (stability + SLO attainment); `ok` must be monotone in spirit —
    /// a criterion that flickers with rate makes bisection meaningless.
    ///
    /// # Panics
    ///
    /// Panics if `lo_hz` or the bracket is non-positive, or on the
    /// conditions of [`run`](Self::run).
    pub fn sustainable_rate_where(
        &mut self,
        model: &ModelConfig,
        lo_hz: f64,
        hi_hz: f64,
        mut ok: impl FnMut(&ServingReport) -> bool,
    ) -> f64 {
        assert!(lo_hz > 0.0 && hi_hz > lo_hz, "need 0 < lo_hz < hi_hz");
        let original = self.cfg.arrival_rate_hz;
        let was_probing = self.probe_divergence;
        self.probe_divergence = true;
        // A diverged probe fails regardless of `ok`: its report covers
        // only a prefix of the horizon, and a backlog past the auto
        // bound is the definition of "hopelessly unstable".
        let mut pass = |report: &ServingReport| !report.diverged && ok(report);
        let mut best = 0.0f64;
        let (mut lo, mut hi) = (lo_hz, hi_hz);
        let ends = self.probe_rates(model, &[lo, hi]);
        if pass(&ends[0]) {
            best = lo;
            if pass(&ends[1]) {
                best = hi;
                lo = hi;
            }
            while hi / lo > 1.01 {
                // The serial step would probe mid = √(lo·hi), then —
                // depending on the verdict — √(mid·hi) or √(lo·mid)
                // next. Simulate all three now, consult `ok` in the
                // serial order on the two the serial search would see.
                let mid = (lo * hi).sqrt();
                let on_fail = (lo * mid).sqrt();
                let on_pass = (mid * hi).sqrt();
                let probes = self.probe_rates(model, &[mid, on_fail, on_pass]);
                let (child, child_report) = if pass(&probes[0]) {
                    best = mid;
                    lo = mid;
                    (on_pass, &probes[2])
                } else {
                    hi = mid;
                    (on_fail, &probes[1])
                };
                if hi / lo > 1.01 {
                    if pass(child_report) {
                        best = child;
                        lo = child;
                    } else {
                        hi = child;
                    }
                }
            }
        }
        self.probe_divergence = was_probing;
        self.cfg.arrival_rate_hz = original;
        best
    }

    /// Binary-searches the highest arrival rate in `[lo_hz, hi_hz]` whose
    /// report is [`stable`](ServingReport::stable), to a 1% relative
    /// resolution. Returns `0.0` when even `lo_hz` is unstable.
    ///
    /// # Panics
    ///
    /// See [`sustainable_rate_where`](Self::sustainable_rate_where).
    ///
    /// # Examples
    ///
    /// ```
    /// use ianus_core::serving::{ServingConfig, ServingSim};
    /// use ianus_core::{IanusSystem, SystemConfig};
    /// use ianus_model::ModelConfig;
    ///
    /// let mut sim = ServingSim::new(ServingConfig::interactive(1.0, 150))
    ///     .replica(IanusSystem::new(SystemConfig::ianus()));
    /// let rate = sim.sustainable_rate(&ModelConfig::gpt2_m(), 0.5, 64.0);
    /// assert!(rate > 0.5, "one IANUS device sustains interactive load");
    /// // The probe leaves the configured rate untouched.
    /// assert_eq!(sim.config().arrival_rate_hz, 1.0);
    /// ```
    pub fn sustainable_rate(&mut self, model: &ModelConfig, lo_hz: f64, hi_hz: f64) -> f64 {
        self.sustainable_rate_where(model, lo_hz, hi_hz, |r| r.stable())
    }

    /// Binary-searches the highest arrival rate whose report is both
    /// [`stable`](ServingReport::stable) and meets `min_attainment` of
    /// its SLOs ([`slo_attainment`](ServingReport::slo_attainment) ≥
    /// `min_attainment`) — the **goodput** capacity an SLO-aware
    /// operator provisions for, rather than the bare stability knee.
    /// With no SLOs in the mix this degrades to
    /// [`sustainable_rate`](Self::sustainable_rate) (attainment is
    /// identically 1).
    ///
    /// # Panics
    ///
    /// See [`sustainable_rate_where`](Self::sustainable_rate_where).
    pub fn sustainable_goodput_rate(
        &mut self,
        model: &ModelConfig,
        lo_hz: f64,
        hi_hz: f64,
        min_attainment: f64,
    ) -> f64 {
        self.sustainable_rate_where(model, lo_hz, hi_hz, |r| {
            r.stable() && r.slo_attainment >= min_attainment
        })
    }
}

/// Index of the comparator-minimal element (ties keep the earliest),
/// viewing each element through `view`. `None` on an empty slice.
fn select_min<T, V>(
    items: &[T],
    view: impl Fn(&T) -> V,
    compare: impl Fn(&V, &V) -> std::cmp::Ordering,
) -> Option<usize> {
    let mut best: Option<(usize, V)> = None;
    for (i, item) in items.iter().enumerate() {
        let v = view(item);
        best = match best {
            None => Some((i, v)),
            Some((bi, bv)) => {
                if compare(&v, &bv).is_lt() {
                    Some((i, v))
                } else {
                    Some((bi, bv))
                }
            }
        };
    }
    best.map(|(i, _)| i)
}

fn argmin<T, K: PartialOrd>(items: &[T], key: impl Fn(&T) -> K) -> usize {
    let mut best = 0usize;
    for i in 1..items.len() {
        if key(&items[i]) < key(&items[best]) {
            best = i;
        }
    }
    best
}
